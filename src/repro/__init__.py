"""repro — reproduction of Satish et al., "Navigating the Maze of Graph
Analytics Frameworks using Massive Graph Datasets" (SIGMOD 2014).

The package re-implements, in pure Python/NumPy:

* the four workloads of the paper (PageRank, BFS, triangle counting,
  collaborative filtering) as hand-optimized *native* kernels;
* the five frameworks the paper studies, as faithful programming-model
  engines (vertex programs, sparse-matrix semirings, Datalog, task
  worklists) with per-framework cost profiles;
* the Graph500 RMAT and power-law ratings generators of Section 4;
* a simulated cluster with the paper's hardware constants, so the
  single-node and multi-node experiments (Tables 4-7, Figures 3-7) can
  be regenerated at laptop scale.

Quickstart::

    from repro import datagen
    from repro.harness import run_experiment

    graph = datagen.rmat_graph(scale=14, seed=1)
    result = run_experiment("pagerank", "native", graph, nodes=1)
    print(result.time_per_iteration)
"""

from . import errors, graph

__version__ = "1.0.0"

__all__ = ["errors", "graph", "__version__"]
