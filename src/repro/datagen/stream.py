"""Chunked R-MAT generation: the out-of-core half of the Graph500 generator.

:func:`repro.datagen.rmat.rmat_edges` materializes every per-level draw
for the whole edge list at once — ~48 bytes of transient arrays per
edge — so peak RSS, not the simulated cost model, caps the scale a
reproduction can run. This module re-derives the *same* edge stream in
fixed-size chunks:

* **Bit-identical by stream slicing, not re-seeding.** The in-memory
  generator consumes its PCG64 stream in a fixed layout — per recursion
  level, 4 jitter draws then one double per edge, and finally the
  vertex permutation. ``PCG64.advance`` jumps to any offset in O(log n),
  so chunk *k* draws exactly the doubles the monolithic pass would have
  used for edges ``[k*chunk, (k+1)*chunk)``. Concatenating chunks of
  *any* size reproduces ``rmat_edges`` byte for byte — there is no
  canonical chunking baked into the output.
* **O(vertices) resident state.** A chunk needs the level jitters
  (re-derived per chunk, 4 doubles each) and the final vertex
  permutation (O(V), shared across chunks) — never an O(edges) array.

The chunk produced here is the raw Graph500 block: duplicates and self
loops included, vertex ids permuted. Deduplication, symmetrization and
CSR construction happen downstream in the external-sort pass
(:func:`repro.graph.sharded.build_sharded_csr`).
"""

from __future__ import annotations

import numpy as np

from ..graph import EdgeList
from .rmat import RMATParams

#: Default streaming block: 2**18 edges = 4 MB of (src, dst) int64 pairs.
DEFAULT_CHUNK_EDGES = 1 << 18


class RMATStream:
    """Seeded R-MAT edge stream addressable by edge index range.

    ``RMATStream(scale, ...)`` describes the same graph as
    ``rmat_edges(scale, ...)``; :meth:`chunk` returns any contiguous
    slice of its edge list without materializing the rest.
    """

    def __init__(self, scale: int, edge_factor: int = 16,
                 params: RMATParams = None, seed: int = 0,
                 noise: float = 0.1):
        if scale < 1:
            raise ValueError(f"scale must be >= 1, got {scale}")
        if edge_factor < 1:
            raise ValueError(f"edge_factor must be >= 1, got {edge_factor}")
        self.scale = scale
        self.edge_factor = edge_factor
        self.params = params or RMATParams()
        self.seed = seed
        self.noise = noise
        self.num_vertices = 1 << scale
        self.num_edges = edge_factor * self.num_vertices
        #: Doubles the monolithic pass consumes per recursion level:
        #: 4 jitter draws plus one per edge.
        self._draws_per_level = 4 + self.num_edges
        self._permutation = None

    # -- stream addressing ---------------------------------------------------

    def _generator_at(self, offset: int) -> np.random.Generator:
        """A generator positioned ``offset`` doubles into the stream.

        ``default_rng(seed)`` is ``Generator(PCG64(seed))``, and each
        ``random()`` double consumes exactly one 64-bit PCG64 output, so
        ``advance(offset)`` lands precisely where the monolithic pass
        would be after ``offset`` draws.
        """
        bitgen = np.random.PCG64(self.seed)
        if offset:
            bitgen.advance(offset)
        return np.random.Generator(bitgen)

    def _level_probs(self, level: int) -> np.ndarray:
        """The jittered, renormalized quadrant probabilities of ``level``."""
        rng = self._generator_at(level * self._draws_per_level)
        jitter = 1.0 + self.noise * (2.0 * rng.random(4) - 1.0)
        p = self.params
        probs = np.array([p.a, p.b, p.c, p.d]) * jitter
        return probs / probs.sum()

    def permutation(self) -> np.ndarray:
        """The final vertex-id permutation (O(V); cached per stream)."""
        if self._permutation is None:
            rng = self._generator_at(self.scale * self._draws_per_level)
            self._permutation = rng.permutation(self.num_vertices)
        return self._permutation

    # -- chunk generation ----------------------------------------------------

    def chunk(self, start: int, stop: int) -> EdgeList:
        """Edges ``[start, stop)`` of the stream, permuted like the whole.

        Bit-identical to ``rmat_edges(...)`` sliced to the same range.
        """
        if not 0 <= start <= stop <= self.num_edges:
            raise ValueError(
                f"chunk [{start}, {stop}) outside [0, {self.num_edges}]")
        count = stop - start
        src = np.zeros(count, dtype=np.int64)
        dst = np.zeros(count, dtype=np.int64)
        for level in range(self.scale):
            probs = self._level_probs(level)
            rng = self._generator_at(
                level * self._draws_per_level + 4 + start)
            draw = rng.random(count)
            quadrant = np.searchsorted(np.cumsum(probs)[:3], draw)
            bit = np.int64(1 << (self.scale - 1 - level))
            src += bit * (quadrant >= 2)
            dst += bit * ((quadrant == 1) | (quadrant == 3))
        permutation = self.permutation()
        return EdgeList(self.num_vertices, permutation[src], permutation[dst])

    def chunks(self, chunk_edges: int = DEFAULT_CHUNK_EDGES):
        """Yield ``(index, EdgeList)`` blocks covering the whole stream."""
        if chunk_edges < 1:
            raise ValueError(f"chunk_edges must be >= 1, got {chunk_edges}")
        for index, start in enumerate(range(0, self.num_edges, chunk_edges)):
            yield index, self.chunk(start,
                                    min(start + chunk_edges, self.num_edges))

    def num_chunks(self, chunk_edges: int = DEFAULT_CHUNK_EDGES) -> int:
        return -(-self.num_edges // chunk_edges)

    def __repr__(self) -> str:
        return (f"RMATStream(scale={self.scale}, "
                f"edge_factor={self.edge_factor}, seed={self.seed}, "
                f"num_edges={self.num_edges})")
