"""Power-law ratings-matrix generator (paper Section 4.1.2).

The paper's collaborative-filtering data generator is itself a
contribution: unlike Gemulla et al.'s uniform sampler, it produces ratings
whose user/item degree distributions follow the Netflix power law. The
recipe, reproduced here step by step:

1. generate a Graph500 graph with RMAT parameters ``A=0.40, B=C=0.22``
   ("generates degree distributions whose tail is reasonably close to
   that of the Netflix dataset");
2. "chunk the columns of the Graph500 matrix into chunks of size
   N_movies", then "fold the matrix by performing a logical or of these
   chunks" — producing an ``N x N_movies`` bipartite incidence matrix;
3. "post-process the graphs to remove all vertices with degree < 5";
4. attach rating values (we sample the 1-5 star marginal of the Netflix
   prize data, which the paper keeps implicit).
"""

from __future__ import annotations

import numpy as np

from ..graph import EdgeList, RatingsMatrix
from .cache import disk_cached
from .rmat import RATINGS_PARAMS, RMATParams, rmat_edges

# Marginal distribution of star values in the Netflix Prize training set.
_NETFLIX_STAR_PROBS = np.array([0.046, 0.101, 0.287, 0.336, 0.230])
_NETFLIX_STARS = np.array([1.0, 2.0, 3.0, 4.0, 5.0])


def fold_to_bipartite(edges: EdgeList, num_items: int) -> EdgeList:
    """Fold a square adjacency into an ``N x num_items`` incidence matrix.

    Column ``j`` of the folded matrix is the logical OR of columns
    ``j, j + num_items, j + 2*num_items, ...`` of the input — the paper's
    step 2. Implemented as ``dst mod num_items`` followed by
    deduplication (OR of 0/1 entries == dedup of edges).
    """
    if num_items < 1:
        raise ValueError(f"num_items must be >= 1, got {num_items}")
    folded = EdgeList(
        max(edges.num_vertices, num_items), edges.src, edges.dst % num_items
    )
    return folded.deduplicate()


def filter_min_degree(edges: EdgeList, num_items: int, min_degree: int = 5):
    """Iteratively drop users/items with degree < ``min_degree`` (step 3).

    Removal is iterated to a fixed point because dropping a user can push
    an item below the threshold and vice versa. Returns the surviving
    (users-compacted, items-compacted) edge list as index arrays.
    """
    src, dst = edges.src, edges.dst
    while True:
        user_deg = np.bincount(src, minlength=edges.num_vertices)
        item_deg = np.bincount(dst, minlength=num_items)
        keep = (user_deg[src] >= min_degree) & (item_deg[dst] >= min_degree)
        if keep.all():
            break
        src, dst = src[keep], dst[keep]
        if src.size == 0:
            break
    return src, dst


@disk_cached("netflix_like_ratings")
def netflix_like_ratings(scale: int, num_items: int, edge_factor: int = 16,
                         seed: int = 0, min_degree: int = 5) -> RatingsMatrix:
    """Full paper pipeline: RMAT -> fold -> degree filter -> star values.

    ``scale`` controls the raw RMAT size (``2**scale`` rows before
    filtering); ``num_items`` is the paper's ``N_movies``. The returned
    matrix has compacted user/item id spaces.
    """
    raw = rmat_edges(scale, edge_factor, RMATParams(*RATINGS_PARAMS), seed)
    folded = fold_to_bipartite(raw.drop_self_loops(), num_items)
    src, dst = filter_min_degree(folded, num_items, min_degree)
    if src.size == 0:
        raise ValueError(
            "degree filter removed every rating; increase scale or "
            "edge_factor, or lower min_degree"
        )

    # Compact both id spaces independently (users and items are disjoint
    # universes in a bipartite graph).
    users_present = np.unique(src)
    items_present = np.unique(dst)
    user_map = np.full(int(src.max()) + 1, -1, dtype=np.int64)
    user_map[users_present] = np.arange(users_present.size)
    item_map = np.full(num_items, -1, dtype=np.int64)
    item_map[items_present] = np.arange(items_present.size)

    rng = np.random.default_rng(seed + 1)
    stars = rng.choice(_NETFLIX_STARS, size=src.size, p=_NETFLIX_STAR_PROBS)
    return RatingsMatrix(
        int(users_present.size), int(items_present.size),
        user_map[src], item_map[dst], stars,
    )


def uniform_ratings(num_users: int, num_items: int, num_ratings: int,
                    seed: int = 0) -> RatingsMatrix:
    """Gemulla-style uniform sampler — the baseline the paper criticizes.

    "[16] generates data by sampling uniformly matching the expected
    number of non-zeros overall but not as a power law distribution."
    Provided so the degree-distribution contrast can be demonstrated.
    """
    rng = np.random.default_rng(seed)
    users = rng.integers(0, num_users, size=num_ratings)
    items = rng.integers(0, num_items, size=num_ratings)
    stars = rng.choice(_NETFLIX_STARS, size=num_ratings, p=_NETFLIX_STAR_PROBS)
    # Deduplicate (user, item) pairs to keep it a valid sparse matrix.
    keys = users * np.int64(num_items) + items
    _, first = np.unique(keys, return_index=True)
    return RatingsMatrix(num_users, num_items,
                         users[first], items[first], stars[first])
