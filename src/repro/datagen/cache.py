"""Content-addressed on-disk cache for generated datasets.

Every sweep cell, benchmark and worker process used to regenerate its
RMAT graphs and ratings matrices from scratch (or at best share a
per-process ``functools.lru_cache``). Generation is deterministic, so
that work is pure waste: the same ``(generator, params, seed)`` always
produces the same arrays. This module gives the generators a shared
disk cache:

* **Content-addressed keys.** An entry's identity is the SHA-256 of the
  canonical JSON of ``{generator, params (defaults applied), code
  version}``. The *code-version salt* is a hash over the source of
  every ``repro.datagen`` module, so editing a generator invalidates
  its entries without any manual versioning.
* **Memory-mapped loads.** Arrays are stored as raw ``.npy`` files and
  loaded with ``mmap_mode="r"``: a warm hit costs an ``open`` + page
  faults, not an allocation + copy, and every worker process of a
  parallel sweep shares the page cache for one generation pass.
* **Read-only by construction.** Loaded arrays are immutable (read-only
  mmaps), and freshly built arrays are frozen with
  ``setflags(write=False)`` before anyone sees them — the fix for the
  cross-cell aliasing hazard where one cell could mutate a cached
  ``CSRGraph`` and poison every later cell.
* **Crash/concurrency safety.** An entry is built in a temp directory
  and published with one ``os.replace``; concurrent writers race
  benignly (first replace wins, losers discard their temp dir).
* **Observable.** Hits, misses and stores are mirrored as tracer
  instants (``dataset-cache-hit`` / ``-miss`` / ``-store``) on the
  active tracer, so a sweep's flight record proves whether generation
  actually happened.
* **Pinned hot datasets.** Long-lived processes (the ``repro serve``
  daemon) can :func:`pin` entries — a refcounted in-process registry
  holding strong references to the loaded arrays, checked *before* the
  disk lookup. A pinned hit costs a dict lookup (no ``open``, no page
  faults on a cold page cache) and is marked ``pinned=true`` on its
  ``dataset-cache-hit`` instant; :func:`pinning` pins everything a
  warm-up block touches.

The cache root is ``$REPRO_CACHE_DIR`` when set, else ``.repro_cache``
under the current directory. ``REPRO_DATASET_CACHE=0`` disables disk
caching entirely (generators still freeze their outputs).
"""

from __future__ import annotations

import functools
import hashlib
import inspect
import json
import os
import shutil
import tempfile
import threading
from contextlib import contextmanager
from pathlib import Path

import numpy as np

from ..observability import NULL_TRACER

#: Environment variable overriding the cache root directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable disabling the disk cache ("0"/"off"/"false").
CACHE_ENABLE_ENV = "REPRO_DATASET_CACHE"

_DEFAULT_ROOT = ".repro_cache"
_META_NAME = "meta.json"

#: The tracer cache events land on; swapped per cell by the sweep
#: engine via :func:`use_tracer` (one per process — workers each bind
#: their own).
_TRACER = NULL_TRACER


@contextmanager
def use_tracer(tracer):
    """Route cache instants to ``tracer`` for the duration of the block."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer if tracer is not None else NULL_TRACER
    try:
        yield
    finally:
        _TRACER = previous


def cache_enabled() -> bool:
    return os.environ.get(CACHE_ENABLE_ENV, "1").lower() \
        not in ("0", "off", "false", "no")


def cache_root() -> Path:
    """The cache directory currently in effect (may not exist yet)."""
    return Path(os.environ.get(CACHE_DIR_ENV) or _DEFAULT_ROOT)


@functools.lru_cache(maxsize=1)
def code_version() -> str:
    """Hash of every ``repro.datagen`` source file: the invalidation salt.

    Any edit to a generator (or to this cache module) changes the salt,
    which changes every key, which orphans stale entries instead of
    serving data a different implementation would no longer produce.
    """
    digest = hashlib.sha256()
    for path in sorted(Path(__file__).parent.glob("*.py")):
        digest.update(path.name.encode())
        digest.update(path.read_bytes())
    return digest.hexdigest()[:16]


def _normalize(value):
    """Canonical JSON-safe form of one generator parameter."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (tuple, list)):
        return [_normalize(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _normalize(val) for key, val in value.items()}
    if hasattr(value, "__dataclass_fields__"):   # e.g. RMATParams
        return {name: _normalize(getattr(value, name))
                for name in sorted(value.__dataclass_fields__)}
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    raise TypeError(
        f"cannot derive a cache key from parameter of type "
        f"{type(value).__name__}"
    )


def entry_key(generator: str, params: dict) -> str:
    """Content address of one cache entry (hex digest)."""
    canonical = json.dumps(
        {"generator": generator, "params": _normalize(params),
         "version": code_version()},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:24]


def freeze_dataset(data):
    """Make a dataset's arrays immutable in place; returns it.

    Cached datasets are shared across cells (and, via the page cache,
    across worker processes); a writable array here is the aliasing
    hazard this module exists to close.
    """
    for array in _arrays_of(data).values():
        if isinstance(array, np.ndarray) and array.flags.writeable:
            array.setflags(write=False)
    return data


# -- (de)serialization -------------------------------------------------------

_ARRAYS_NPZ = "arrays.npz"


def _arrays_of(data) -> dict:
    from ..graph import CSRGraph, EdgeList, RatingsMatrix, ShardedCSRGraph

    if isinstance(data, ShardedCSRGraph):
        # Shard files live on disk already and are mapped read-only by
        # construction; nothing in-process to serialize or freeze.
        return {}
    if isinstance(data, CSRGraph):
        arrays = {"offsets": data.offsets, "targets": data.targets}
        if data.edge_weights is not None:
            arrays["edge_weights"] = data.edge_weights
        return arrays
    if isinstance(data, EdgeList):
        arrays = {"src": data.src, "dst": data.dst}
        if data.weights is not None:
            arrays["weights"] = data.weights
        return arrays
    if isinstance(data, RatingsMatrix):
        return {"users": data.users, "items": data.items,
                "ratings": data.ratings}
    raise TypeError(f"cannot cache dataset of type {type(data).__name__}")


def _scalars_of(data) -> dict:
    from ..graph import CSRGraph, EdgeList

    if isinstance(data, CSRGraph):
        return {"kind": "csr", "num_vertices": data.num_vertices}
    if isinstance(data, EdgeList):
        return {"kind": "edgelist", "num_vertices": data.num_vertices}
    return {"kind": "ratings", "num_users": data.num_users,
            "num_items": data.num_items}


def _materialize(meta: dict, arrays: dict):
    from ..graph import CSRGraph, EdgeList, RatingsMatrix

    if meta["kind"] == "csr":
        return CSRGraph(meta["num_vertices"], arrays["offsets"],
                        arrays["targets"], arrays.get("edge_weights"))
    if meta["kind"] == "edgelist":
        return EdgeList(meta["num_vertices"], arrays["src"], arrays["dst"],
                        arrays.get("weights"))
    return RatingsMatrix(meta["num_users"], meta["num_items"],
                         arrays["users"], arrays["items"],
                         arrays["ratings"])


def _store(entry: Path, generator: str, params: dict, data,
           compress: bool = False) -> None:
    """Publish one entry atomically (temp dir + ``os.replace``)."""
    entry.parent.mkdir(parents=True, exist_ok=True)
    tmp = Path(tempfile.mkdtemp(dir=entry.parent,
                                prefix=entry.name + ".tmp."))
    try:
        arrays = _arrays_of(data)
        if compress:
            np.savez_compressed(
                tmp / _ARRAYS_NPZ,
                **{name: np.ascontiguousarray(a) for name, a in arrays.items()})
        else:
            for name, array in arrays.items():
                np.save(tmp / f"{name}.npy", np.ascontiguousarray(array))
        meta = {**_scalars_of(data), "generator": generator,
                "params": _normalize(params), "version": code_version()}
        (tmp / _META_NAME).write_text(json.dumps(meta, sort_keys=True,
                                                 indent=2) + "\n")
        os.replace(tmp, entry)
    except OSError:
        # Lost a race (entry exists) or the rename failed: the existing
        # entry is authoritative either way.
        shutil.rmtree(tmp, ignore_errors=True)
        if not (entry / _META_NAME).exists():
            raise


def _load(entry: Path):
    from ..graph import ShardedCSRGraph

    meta = json.loads((entry / _META_NAME).read_text())
    if meta.get("kind") == "sharded-csr":
        return ShardedCSRGraph(entry)
    npz = entry / _ARRAYS_NPZ
    if npz.exists():
        # Compressed entries (edge shards) decompress into plain arrays —
        # they are chunk-sized by construction, so no mmap needed.
        arrays = dict(np.load(npz))
    else:
        arrays = {
            path.stem: np.load(path, mmap_mode="r")
            for path in sorted(entry.glob("*.npy"))
        }
    return _materialize(meta, arrays)


def get_or_build(generator: str, params: dict, build,
                 compress: bool = False):
    """The cache's one lookup: load the entry or build + publish it.

    Returns the *loaded* (memory-mapped, immutable) dataset on both
    paths, so cold and warm runs hand out indistinguishable objects.
    Falls back to a frozen in-memory build when caching is disabled or
    the entry cannot be written (read-only filesystem). Pinned entries
    (see :func:`pin`) short-circuit everything: the held object is
    returned directly, with a ``pinned=true`` hit instant as proof.
    ``compress=True`` stores the arrays as one compressed npz (the
    edge-shard entries — chunk-sized, loaded whole, worth shrinking).
    """
    key = entry_key(generator, params)
    with _PINS_LOCK:
        held = _PINS.get(key)
        if held is not None:
            held["hits"] += 1
    if held is not None:
        _TRACER.instant("dataset-cache-hit", generator=generator, key=key,
                        pinned=True)
        return held["data"]
    if not cache_enabled():
        return _maybe_pin(key, generator, freeze_dataset(build()))
    entry = cache_root() / key
    if (entry / _META_NAME).exists():
        _TRACER.instant("dataset-cache-hit", generator=generator, key=key)
        return _maybe_pin(key, generator, freeze_dataset(_load(entry)))
    _TRACER.instant("dataset-cache-miss", generator=generator, key=key)
    data = build()
    try:
        _store(entry, generator, params, data, compress=compress)
    except OSError:
        return _maybe_pin(key, generator, freeze_dataset(data))
    _TRACER.instant("dataset-cache-store", generator=generator, key=key)
    return _maybe_pin(key, generator, freeze_dataset(_load(entry)))


def get_or_build_dir(generator: str, params: dict, build_into):
    """Directory-shaped cache entries (the sharded-CSR manifests).

    ``build_into(tmpdir)`` must write a complete sharded graph directory
    (shard files plus a ``meta.json`` manifest) into ``tmpdir``; the
    cache stamps the manifest with its generator/params/version identity
    and publishes it with one ``os.replace``, exactly like array
    entries. A hit hands back a :class:`~repro.graph.ShardedCSRGraph`
    over the published directory — loading costs one manifest read plus
    the lazy mmaps, so pinning the result pins the *manifest*, not the
    edge bytes. With caching disabled, builds land in a process-lifetime
    temp directory (sharded graphs need a disk home regardless).
    """
    key = entry_key(generator, params)
    with _PINS_LOCK:
        held = _PINS.get(key)
        if held is not None:
            held["hits"] += 1
    if held is not None:
        _TRACER.instant("dataset-cache-hit", generator=generator, key=key,
                        pinned=True)
        return held["data"]

    def stamp(tmp: Path):
        meta_path = tmp / _META_NAME
        meta = json.loads(meta_path.read_text())
        meta.update({"generator": generator, "params": _normalize(params),
                     "version": code_version()})
        meta_path.write_text(json.dumps(meta, sort_keys=True, indent=2) + "\n")

    if not cache_enabled():
        scratch = Path(_scratch_root()) / key
        if not (scratch / _META_NAME).exists():
            tmp = Path(tempfile.mkdtemp(dir=_scratch_root(),
                                        prefix=key + ".tmp."))
            build_into(tmp)
            stamp(tmp)
            try:
                os.replace(tmp, scratch)
            except OSError:
                shutil.rmtree(tmp, ignore_errors=True)
                if not (scratch / _META_NAME).exists():
                    raise
        return _maybe_pin(key, generator, _load(scratch))
    entry = cache_root() / key
    if (entry / _META_NAME).exists():
        _TRACER.instant("dataset-cache-hit", generator=generator, key=key)
        return _maybe_pin(key, generator, _load(entry))
    _TRACER.instant("dataset-cache-miss", generator=generator, key=key)
    entry.parent.mkdir(parents=True, exist_ok=True)
    tmp = Path(tempfile.mkdtemp(dir=entry.parent, prefix=key + ".tmp."))
    try:
        build_into(tmp)
        stamp(tmp)
        os.replace(tmp, entry)
    except OSError:
        shutil.rmtree(tmp, ignore_errors=True)
        if not (entry / _META_NAME).exists():
            raise
    _TRACER.instant("dataset-cache-store", generator=generator, key=key)
    return _maybe_pin(key, generator, _load(entry))


@functools.lru_cache(maxsize=1)
def _scratch_root() -> str:
    """Process-lifetime home for cache-disabled sharded builds."""
    import atexit

    root = tempfile.mkdtemp(prefix="repro-ooc-")
    atexit.register(shutil.rmtree, root, ignore_errors=True)
    return root


def disk_cached(generator: str, compress: bool = False):
    """Decorator wiring one dataset generator through the disk cache.

    The cache key binds the call's full signature (defaults applied),
    so ``rmat_graph(10)`` and ``rmat_graph(scale=10, edge_factor=16)``
    share one entry. The undecorated function stays reachable as
    ``fn.__wrapped__`` for tests that need a fresh, writable build.
    """

    def wrap(fn):
        signature = inspect.signature(fn)
        _GENERATOR_SIGNATURES[generator] = signature

        @functools.wraps(fn)
        def inner(*args, **kwargs):
            bound = signature.bind(*args, **kwargs)
            bound.apply_defaults()
            return get_or_build(generator, dict(bound.arguments),
                                lambda: fn(*args, **kwargs),
                                compress=compress)

        return inner

    return wrap


# -- pinned hot datasets (the serving layer's warm set) ----------------------

#: key -> {"generator", "data", "refcount", "hits"}; guarded by the lock
#: (the server touches this from its event loop and sweep threads).
_PINS = {}
_PINS_LOCK = threading.Lock()

#: generator name -> its ``inspect.Signature``; filled by
#: :func:`disk_cached` so :func:`pin` can apply the same
#: defaults-applied key normalization the decorated call path uses.
_GENERATOR_SIGNATURES = {}


def _full_params(generator: str, params: dict) -> dict:
    signature = _GENERATOR_SIGNATURES.get(generator)
    if signature is None:
        return params
    bound = signature.bind(**params)
    bound.apply_defaults()
    return dict(bound.arguments)

#: Depth of active :func:`pinning` blocks (>0 = auto-pin every load).
_PINNING_DEPTH = [0]


def _maybe_pin(key: str, generator: str, data):
    """Auto-pin a freshly loaded dataset inside a :func:`pinning` block."""
    with _PINS_LOCK:
        if _PINNING_DEPTH[0] > 0:
            held = _PINS.get(key)
            if held is not None:
                held["refcount"] += 1
            else:
                _PINS[key] = {"generator": generator, "data": data,
                              "refcount": 1, "hits": 0}
    return data


@contextmanager
def pinning():
    """Pin every dataset loaded inside the block (refcount +1 each).

    The serving layer wraps its warm-up requests in this: afterwards
    the gate datasets live in the process as strong references, and
    every later request hits them without touching the filesystem.
    """
    with _PINS_LOCK:
        _PINNING_DEPTH[0] += 1
    try:
        yield
    finally:
        with _PINS_LOCK:
            _PINNING_DEPTH[0] -= 1


def pin(generator: str, params: dict, build=None) -> str:
    """Pin one entry by identity; returns its key.

    Loads the disk entry when present, else falls back to ``build``
    (and publishes it on the way, same as :func:`get_or_build`). A
    repeated pin of the same key bumps its refcount. ``params`` may be
    partial for a :func:`disk_cached` generator — the registered
    signature fills in defaults, exactly like the decorated call path.
    """
    params = _full_params(generator, params)
    key = entry_key(generator, params)
    with _PINS_LOCK:
        held = _PINS.get(key)
        if held is not None:
            held["refcount"] += 1
            return key
    entry = cache_root() / key
    if cache_enabled() and (entry / _META_NAME).exists():
        _TRACER.instant("dataset-cache-hit", generator=generator, key=key)
        data = freeze_dataset(_load(entry))
    elif build is not None:
        data = get_or_build(generator, params, build)
    else:
        raise KeyError(
            f"cannot pin {generator} entry {key}: not in the disk cache "
            "and no build callable given")
    with _PINS_LOCK:
        held = _PINS.get(key)
        if held is not None:
            held["refcount"] += 1
        else:
            _PINS[key] = {"generator": generator, "data": data,
                          "refcount": 1, "hits": 0}
    return key


def unpin(key: str) -> bool:
    """Drop one reference; the entry is released at refcount zero."""
    with _PINS_LOCK:
        held = _PINS.get(key)
        if held is None:
            return False
        held["refcount"] -= 1
        if held["refcount"] <= 0:
            del _PINS[key]
        return True


def pinned() -> list:
    """The pinned entries: key, generator, refcount, pinned-hit count."""
    with _PINS_LOCK:
        return [{"key": key, "generator": held["generator"],
                 "refcount": held["refcount"], "hits": held["hits"]}
                for key, held in sorted(_PINS.items())]


def clear_pins() -> int:
    """Release every pin (the server's shutdown path); returns count."""
    with _PINS_LOCK:
        count = len(_PINS)
        _PINS.clear()
        return count


# -- management (the ``repro cache`` subcommand) -----------------------------

def pinned_memory() -> dict:
    """Virtual vs resident footprint of the pinned warm set.

    ``virtual_bytes`` sums ``nbytes()`` (what the address space holds,
    shard files included); ``resident_bytes`` sums ``resident_nbytes()``
    (anonymous memory actually held — mmap-backed arrays count zero).
    Memory admission budgets against the resident number.
    """
    with _PINS_LOCK:
        held = [item["data"] for item in _PINS.values()]
    virtual = resident = 0
    for data in held:
        nbytes = getattr(data, "nbytes", None)
        if callable(nbytes):
            virtual += int(nbytes())
        resident_fn = getattr(data, "resident_nbytes", None)
        if callable(resident_fn):
            resident += int(resident_fn())
        elif callable(nbytes):
            resident += int(nbytes())
    return {"virtual_bytes": virtual, "resident_bytes": resident}


def entries(root=None) -> list:
    """All cache entries as dicts: key, generator, kind, size, files."""
    root = Path(root) if root is not None else cache_root()
    if not root.exists():
        return []
    out = []
    for entry in sorted(root.iterdir()):
        meta_path = entry / _META_NAME
        if not entry.is_dir() or not meta_path.exists():
            continue
        meta = json.loads(meta_path.read_text())
        # Recursive walk: sharded entries nest shard files (and possibly
        # a reverse/ transpose directory) below the entry root.
        size = sum(path.stat().st_size
                   for path in entry.rglob("*") if path.is_file())
        item = {
            "key": entry.name,
            "generator": meta.get("generator", "?"),
            "kind": meta.get("kind", "?"),
            "params": meta.get("params", {}),
            "version": meta.get("version", "?"),
            "bytes": size,
            "stale": meta.get("version") != code_version(),
        }
        if meta.get("kind") == "sharded-csr":
            sharded = meta.get("sharded", {})
            item["partitions"] = len(sharded.get("partitions", []))
            item["num_edges"] = sharded.get("num_edges")
        out.append(item)
    return out


def stats(root=None) -> dict:
    """Aggregate cache statistics (for ``repro cache stats``)."""
    root = Path(root) if root is not None else cache_root()
    listed = entries(root)
    by_generator = {}
    by_kind = {}
    for item in listed:
        bucket = by_generator.setdefault(
            item["generator"], {"entries": 0, "bytes": 0})
        bucket["entries"] += 1
        bucket["bytes"] += item["bytes"]
        kind = by_kind.setdefault(item["kind"], {"entries": 0, "bytes": 0})
        kind["entries"] += 1
        kind["bytes"] += item["bytes"]
    sharded = [item for item in listed if item["kind"] == "sharded-csr"]
    edge_shards = [item for item in listed if item["kind"] == "edgelist"]
    held = pinned()
    return {
        "root": str(root),
        "enabled": cache_enabled(),
        "entries": len(listed),
        "bytes": sum(item["bytes"] for item in listed),
        "stale_entries": sum(1 for item in listed if item["stale"]),
        "by_generator": by_generator,
        "by_kind": by_kind,
        "shards": {
            "sharded_graphs": len(sharded),
            "partitions": sum(item.get("partitions", 0) for item in sharded),
            "edge_shards": len(edge_shards),
            "bytes": sum(item["bytes"] for item in sharded + edge_shards),
        },
        "pinned": {
            "entries": len(held),
            "refcount": sum(item["refcount"] for item in held),
            "hits": sum(item["hits"] for item in held),
            "keys": held,
            "memory": pinned_memory(),
        },
    }


def clear_report(root=None, stale_only: bool = False) -> dict:
    """Delete cache entries; reports per-kind counts and reclaimed bytes."""
    root = Path(root) if root is not None else cache_root()
    removed = 0
    reclaimed = 0
    by_kind = {}
    for item in entries(root):
        if stale_only and not item["stale"]:
            continue
        shutil.rmtree(root / item["key"], ignore_errors=True)
        removed += 1
        reclaimed += item["bytes"]
        kind = by_kind.setdefault(item["kind"], {"entries": 0, "bytes": 0})
        kind["entries"] += 1
        kind["bytes"] += item["bytes"]
    return {"removed": removed, "reclaimed_bytes": reclaimed,
            "by_kind": by_kind}


def clear(root=None, stale_only: bool = False) -> int:
    """Delete cache entries; returns how many were removed."""
    return clear_report(root, stale_only=stale_only)["removed"]
