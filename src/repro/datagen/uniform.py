"""Non-skewed graph generators, for the skew ablation.

The paper's premise is that "real-world graph data follows a pattern of
sparsity that is not uniform but highly skewed towards a few items" and
that this skew is what makes scalable implementation hard (abstract,
Section 1). These generators produce the *counterfactual* — same vertex
and edge counts, but uniform or ring-lattice degree structure — so the
ablation benchmarks can measure how much of each framework's trouble is
skew versus volume.
"""

from __future__ import annotations

import numpy as np

from ..graph import CSRGraph, EdgeList


def erdos_renyi_edges(num_vertices: int, num_edges: int,
                      seed: int = 0) -> EdgeList:
    """Uniform random directed edges (G(n, m) with replacement).

    Duplicates/self-loops are possible, mirroring the RMAT generator's
    raw output contract; callers clean up with the usual pipeline.
    """
    if num_vertices < 1 or num_edges < 0:
        raise ValueError("need at least one vertex and non-negative edges")
    rng = np.random.default_rng(seed)
    src = rng.integers(0, num_vertices, size=num_edges)
    dst = rng.integers(0, num_vertices, size=num_edges)
    return EdgeList(num_vertices, src, dst)


def erdos_renyi_graph(num_vertices: int, num_edges: int, seed: int = 0,
                      directed: bool = True) -> CSRGraph:
    """Cleaned uniform random graph with ~``num_edges`` edges."""
    edges = erdos_renyi_edges(num_vertices, num_edges, seed)
    edges = edges.drop_self_loops().deduplicate()
    if not directed:
        edges = edges.symmetrize()
    return CSRGraph.from_edges(edges)


def ring_lattice_graph(num_vertices: int, degree: int = 8) -> CSRGraph:
    """Perfectly regular ring lattice: every vertex has exactly
    ``degree`` out-edges to its nearest higher-id neighbors (mod n).

    The zero-skew extreme: Gini coefficient 0.
    """
    if num_vertices < 2:
        raise ValueError("need at least two vertices")
    degree = min(degree, num_vertices - 1)
    src = np.repeat(np.arange(num_vertices, dtype=np.int64), degree)
    offsets = np.tile(np.arange(1, degree + 1, dtype=np.int64), num_vertices)
    dst = (src + offsets) % num_vertices
    return CSRGraph.from_edges(EdgeList(num_vertices, src, dst))


def watts_strogatz_graph(num_vertices: int, degree: int = 8,
                         rewire_probability: float = 0.1,
                         seed: int = 0) -> CSRGraph:
    """Small-world graph: ring lattice with random rewiring.

    Interpolates between the regular lattice (p=0) and uniform random
    structure (p=1) — mild clustering, still no degree skew to speak of.
    """
    if not 0.0 <= rewire_probability <= 1.0:
        raise ValueError("rewire_probability must be in [0, 1]")
    base = ring_lattice_graph(num_vertices, degree)
    rng = np.random.default_rng(seed)
    src = base.sources()
    dst = base.targets.copy()
    rewire = rng.random(dst.size) < rewire_probability
    dst[rewire] = rng.integers(0, num_vertices, size=int(rewire.sum()))
    edges = EdgeList(num_vertices, src, dst).drop_self_loops().deduplicate()
    return CSRGraph.from_edges(edges)
