"""Catalog of the paper's datasets and their laptop-scale proxies.

Table 3 of the paper lists six real-world datasets and two large
synthetics. The real datasets are not redistributable (and Twitter alone
is 30 GB), so per the reproduction plan each is replaced by a *proxy*: an
RMAT synthetic whose vertex/edge ratio matches the original and whose
size is scaled down by ``1/DOWNSCALE`` so every experiment runs in-memory
in seconds. The paper itself validates this substitution: "the trends on
the synthetic dataset are in line with real-world data" (Section 5.2).

Every proxy is deterministic given its seed, and the catalog keeps the
paper's original statistics alongside for Table 3 regeneration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..graph import CSRGraph, RatingsMatrix
from .ratings import netflix_like_ratings
from .rmat import rmat_graph, rmat_triangle_graph

#: Linear downscale factor between the paper's dataset sizes and the
#: proxies generated here (vertex counts are divided by roughly this).
DOWNSCALE = 256


@dataclass(frozen=True)
class DatasetSpec:
    """One row of Table 3 plus the recipe for its proxy."""

    name: str
    kind: str                      # "graph" or "ratings"
    paper_vertices: str
    paper_edges: int
    description: str
    builder: Callable
    algorithms: tuple

    def build(self):
        """Materialize the proxy dataset (deterministic)."""
        return self.builder()


def _graph_proxy(scale, edge_factor, seed, directed=True):
    return lambda: rmat_graph(scale, edge_factor=edge_factor, seed=seed,
                              directed=directed)


def _triangle_proxy(scale, edge_factor, seed):
    return lambda: rmat_triangle_graph(scale, edge_factor=edge_factor, seed=seed)


def _ratings_proxy(scale, num_items, edge_factor, seed):
    return lambda: netflix_like_ratings(scale, num_items,
                                        edge_factor=edge_factor, seed=seed)


# Edge factors approximate each real dataset's average degree:
# Facebook 14.3, Wikipedia 23.8, LiveJournal 17.7, Twitter 23.8.
CATALOG = {
    "facebook": DatasetSpec(
        name="facebook", kind="graph",
        paper_vertices="2,937,612", paper_edges=41_919_708,
        description="Facebook user interaction graph [34]",
        builder=_graph_proxy(scale=13, edge_factor=14, seed=101),
        algorithms=("pagerank", "bfs", "triangle_counting"),
    ),
    "wikipedia": DatasetSpec(
        name="wikipedia", kind="graph",
        paper_vertices="3,566,908", paper_edges=84_751_827,
        description="Wikipedia link graph [14]",
        builder=_graph_proxy(scale=13, edge_factor=24, seed=102),
        algorithms=("pagerank", "bfs", "triangle_counting"),
    ),
    "livejournal": DatasetSpec(
        name="livejournal", kind="graph",
        paper_vertices="4,847,571", paper_edges=85_702_475,
        description="LiveJournal follower graph [14]",
        builder=_graph_proxy(scale=14, edge_factor=18, seed=103),
        algorithms=("pagerank", "bfs", "triangle_counting"),
    ),
    "twitter": DatasetSpec(
        name="twitter", kind="graph",
        paper_vertices="61,578,415", paper_edges=1_468_365_182,
        description="Twitter follower graph [20] (multi-node dataset)",
        builder=_graph_proxy(scale=16, edge_factor=24, seed=104),
        algorithms=("pagerank", "bfs", "triangle_counting"),
    ),
    "netflix": DatasetSpec(
        name="netflix", kind="ratings",
        paper_vertices="480,189 users x 17,770 movies", paper_edges=99_072_112,
        description="Netflix Prize ratings [9]",
        builder=_ratings_proxy(scale=13, num_items=290, edge_factor=24, seed=105),
        algorithms=("collaborative_filtering",),
    ),
    "yahoo_music": DatasetSpec(
        name="yahoo_music", kind="ratings",
        paper_vertices="1,000,990 users x 624,961 items", paper_edges=252_800_275,
        description="Yahoo! KDDCup 2011 music ratings [7] (multi-node dataset)",
        builder=_ratings_proxy(scale=14, num_items=2400, edge_factor=28, seed=106),
        algorithms=("collaborative_filtering",),
    ),
    "synthetic_graph500": DatasetSpec(
        name="synthetic_graph500", kind="graph",
        paper_vertices="536,870,912", paper_edges=8_589_926_431,
        description="Graph500 RMAT, largest weak-scaling point (Section 4)",
        builder=_graph_proxy(scale=15, edge_factor=16, seed=107),
        algorithms=("pagerank", "bfs"),
    ),
    "synthetic_collaborative": DatasetSpec(
        name="synthetic_collaborative", kind="ratings",
        paper_vertices="63,367,472 users x 1,342,176 items",
        paper_edges=16_742_847_256,
        description="Synthetic power-law ratings, largest weak-scaling point",
        builder=_ratings_proxy(scale=15, num_items=5000, edge_factor=24, seed=108),
        algorithms=("collaborative_filtering",),
    ),
    # Small, fast datasets used by unit tests and Table 1 characterization.
    "rmat_mini": DatasetSpec(
        name="rmat_mini", kind="graph",
        paper_vertices="-", paper_edges=0,
        description="Tiny RMAT graph for tests and algorithm characterization",
        builder=_graph_proxy(scale=10, edge_factor=8, seed=1),
        algorithms=("pagerank", "bfs"),
    ),
    "rmat_mini_triangles": DatasetSpec(
        name="rmat_mini_triangles", kind="graph",
        paper_vertices="-", paper_edges=0,
        description="Tiny id-oriented RMAT graph for triangle counting",
        builder=_triangle_proxy(scale=10, edge_factor=8, seed=2),
        algorithms=("triangle_counting",),
    ),
}

#: Datasets used for the Figure 3 single-node panels, per the paper.
SINGLE_NODE_GRAPHS = ("livejournal", "facebook", "wikipedia")
SINGLE_NODE_RATINGS = ("netflix",)


def dataset(name: str):
    """Build the named proxy dataset; raises ``KeyError`` for unknown names."""
    try:
        spec = CATALOG[name]
    except KeyError:
        known = ", ".join(sorted(CATALOG))
        raise KeyError(f"unknown dataset {name!r}; known: {known}") from None
    return spec.build()


def triangle_variant(name: str, scale_override: int = None) -> CSRGraph:
    """Triangle-counting version of a graph proxy: reduced-triangle RMAT
    parameters and id-orientation, as the paper prescribes."""
    spec = CATALOG[name]
    if spec.kind != "graph":
        raise ValueError(f"{name} is not a graph dataset")
    base = spec.builder()  # only to recover the configured size cheaply
    del base
    # Rebuild with the triangle-counting parameters at the same scale.
    recipe = {
        "facebook": (13, 14, 201), "wikipedia": (13, 24, 202),
        "livejournal": (14, 18, 203), "twitter": (16, 24, 204),
        "synthetic_graph500": (15, 16, 207), "rmat_mini": (10, 8, 21),
    }
    if name not in recipe:
        raise ValueError(f"no triangle variant configured for {name}")
    scale, edge_factor, seed = recipe[name]
    if scale_override is not None:
        scale = scale_override
    return rmat_triangle_graph(scale, edge_factor=edge_factor, seed=seed)


def bfs_variant(name: str) -> CSRGraph:
    """Undirected (symmetrized) version of a graph proxy for BFS."""
    spec = CATALOG[name]
    if spec.kind != "graph":
        raise ValueError(f"{name} is not a graph dataset")
    recipe = {
        "facebook": (13, 14, 101), "wikipedia": (13, 24, 102),
        "livejournal": (14, 18, 103), "twitter": (16, 24, 104),
        "synthetic_graph500": (15, 16, 107), "rmat_mini": (10, 8, 1),
    }
    scale, edge_factor, seed = recipe[name]
    return rmat_graph(scale, edge_factor=edge_factor, seed=seed, directed=False)
