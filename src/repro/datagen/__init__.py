"""Synthetic data generators and the dataset catalog (paper Section 4.1)."""

from .cache import (
    cache_enabled,
    cache_root,
    clear as clear_cache,
    code_version,
    disk_cached,
    entries as cache_entries,
    freeze_dataset,
    get_or_build,
    stats as cache_stats,
)
from .ratings import (
    filter_min_degree,
    fold_to_bipartite,
    netflix_like_ratings,
    uniform_ratings,
)
from .reference import (
    CATALOG,
    DOWNSCALE,
    SINGLE_NODE_GRAPHS,
    SINGLE_NODE_RATINGS,
    DatasetSpec,
    bfs_variant,
    dataset,
    triangle_variant,
)
from .rmat import (
    GRAPH500_PARAMS,
    RATINGS_PARAMS,
    TRIANGLE_PARAMS,
    RMATParams,
    rmat_edges,
    rmat_graph,
    rmat_triangle_graph,
)

__all__ = [
    "CATALOG",
    "DOWNSCALE",
    "cache_enabled",
    "cache_entries",
    "cache_root",
    "cache_stats",
    "clear_cache",
    "code_version",
    "disk_cached",
    "freeze_dataset",
    "get_or_build",
    "GRAPH500_PARAMS",
    "RATINGS_PARAMS",
    "SINGLE_NODE_GRAPHS",
    "SINGLE_NODE_RATINGS",
    "TRIANGLE_PARAMS",
    "DatasetSpec",
    "RMATParams",
    "bfs_variant",
    "dataset",
    "filter_min_degree",
    "fold_to_bipartite",
    "netflix_like_ratings",
    "rmat_edges",
    "rmat_graph",
    "rmat_triangle_graph",
    "triangle_variant",
    "uniform_ratings",
]
