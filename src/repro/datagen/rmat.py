"""Graph500 RMAT synthetic graph generator (paper Section 4.1.2).

The paper derives all of its synthetic graphs from the Graph500 RMAT
generator with three parameter sets:

* ``A=0.57, B=C=0.19`` — the Graph500 defaults, used for PageRank and BFS;
* ``A=0.45, B=C=0.15`` — fewer triangles, used for triangle counting;
* ``A=0.40, B=C=0.22`` — the starting point of the ratings generator,
  whose degree tail matches the Netflix dataset.

RMAT recursively subdivides the adjacency matrix into four quadrants and
drops each edge into quadrant A/B/C/D with the configured probabilities.
The implementation below is fully vectorized: all edges descend the
``scale`` recursion levels simultaneously, one NumPy pass per level, so
million-edge graphs generate in well under a second.
"""

from __future__ import annotations

import functools
import os
from dataclasses import dataclass

import numpy as np

from ..graph import CSRGraph, EdgeList, build_sharded_csr
from .cache import disk_cached, get_or_build_dir

#: When truthy, :func:`rmat_graph` / :func:`rmat_triangle_graph` build
#: through the streamed out-of-core pipeline instead of one in-memory
#: pass. Same seeds, same bytes (digest-tested) — only the storage and
#: the peak RSS differ, so it can be flipped under an existing sweep.
OUT_OF_CORE_ENV = "REPRO_OUT_OF_CORE"

GRAPH500_PARAMS = (0.57, 0.19, 0.19)
TRIANGLE_PARAMS = (0.45, 0.15, 0.15)
RATINGS_PARAMS = (0.40, 0.22, 0.22)


@dataclass(frozen=True)
class RMATParams:
    """Quadrant probabilities; D is implied as ``1 - A - B - C``."""

    a: float = 0.57
    b: float = 0.19
    c: float = 0.19

    def __post_init__(self):
        if min(self.a, self.b, self.c) < 0:
            raise ValueError("RMAT probabilities must be non-negative")
        if self.a + self.b + self.c >= 1.0:
            raise ValueError("A + B + C must be < 1 (D is the remainder)")

    @property
    def d(self) -> float:
        return 1.0 - self.a - self.b - self.c


def rmat_edges(scale: int, edge_factor: int = 16, params: RMATParams = None,
               seed: int = 0, noise: float = 0.1) -> EdgeList:
    """Raw RMAT edges: ``2**scale`` vertices, ``edge_factor * 2**scale`` edges.

    Mirrors the Graph500 reference generator: duplicate edges and self
    loops are *not* removed (Section 4.1.2: "The RMAT generator only
    generates a list of edges (with possible duplicates)"), and vertex
    ids are randomly permuted so vertex id does not correlate with degree.

    ``noise`` jitters the quadrant probabilities per recursion level
    (the Graph500 "smooth" tweak) to avoid artefactual degree spikes at
    powers of two.
    """
    if scale < 1:
        raise ValueError(f"scale must be >= 1, got {scale}")
    if edge_factor < 1:
        raise ValueError(f"edge_factor must be >= 1, got {edge_factor}")
    params = params or RMATParams()
    rng = np.random.default_rng(seed)
    num_vertices = 1 << scale
    num_edges = edge_factor * num_vertices

    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    for level in range(scale):
        # Jitter probabilities per level, renormalized to sum to 1.
        jitter = 1.0 + noise * (2.0 * rng.random(4) - 1.0)
        probs = np.array([params.a, params.b, params.c, params.d]) * jitter
        probs /= probs.sum()
        draw = rng.random(num_edges)
        quadrant = np.searchsorted(np.cumsum(probs)[:3], draw)
        bit = np.int64(1 << (scale - 1 - level))
        src += bit * (quadrant >= 2)          # quadrants C (2) and D (3)
        dst += bit * ((quadrant == 1) | (quadrant == 3))  # B and D

    permutation = rng.permutation(num_vertices)
    return EdgeList(num_vertices, permutation[src], permutation[dst])


def out_of_core_enabled() -> bool:
    return os.environ.get(OUT_OF_CORE_ENV, "").lower() \
        in ("1", "on", "true", "yes")


@disk_cached("rmat_graph")
def _rmat_graph_dense(scale: int, edge_factor: int = 16,
                      params: RMATParams = None, seed: int = 0,
                      directed: bool = True) -> CSRGraph:
    edges = rmat_edges(scale, edge_factor, params, seed)
    edges = edges.drop_self_loops().deduplicate()
    if not directed:
        edges = edges.symmetrize()
    return CSRGraph.from_edges(edges)


def rmat_graph(scale: int, edge_factor: int = 16, params: RMATParams = None,
               seed: int = 0, directed: bool = True):
    """Deduplicated, loop-free CSR graph from RMAT edges.

    ``directed=True`` keeps the generated direction (PageRank input);
    ``directed=False`` symmetrizes (BFS input). With
    ``REPRO_OUT_OF_CORE`` set, the same graph comes back as a
    byte-identical :class:`~repro.graph.ShardedCSRGraph` built through
    the streamed pipeline.
    """
    if out_of_core_enabled():
        return rmat_graph_sharded(scale, edge_factor, params, seed,
                                  directed=directed)
    return _rmat_graph_dense(scale, edge_factor, params, seed, directed)


rmat_graph.__wrapped__ = _rmat_graph_dense.__wrapped__


@disk_cached("rmat_triangle_graph")
def _rmat_triangle_graph_dense(scale: int, edge_factor: int = 16,
                               seed: int = 0) -> CSRGraph:
    edges = rmat_edges(scale, edge_factor, RMATParams(*TRIANGLE_PARAMS), seed)
    return CSRGraph.from_edges(edges.orient_by_id())


def rmat_triangle_graph(scale: int, edge_factor: int = 16, seed: int = 0):
    """Triangle-counting input exactly as the paper prepares it.

    Uses the reduced-triangle parameters (A=0.45, B=C=0.15) and assigns
    "a direction to edges going from the vertex with smaller id to one
    with larger id to avoid cycles" (Section 4.1.2).
    """
    if out_of_core_enabled():
        return rmat_triangle_graph_sharded(scale, edge_factor, seed)
    return _rmat_triangle_graph_dense(scale, edge_factor, seed)


rmat_triangle_graph.__wrapped__ = _rmat_triangle_graph_dense.__wrapped__


# -- streamed out-of-core builds ---------------------------------------------

@disk_cached("rmat_edge_shard", compress=True)
def rmat_edge_shard(scale: int, edge_factor: int = 16,
                    params: RMATParams = None, seed: int = 0,
                    chunk_edges: int = 1 << 18, chunk: int = 0) -> EdgeList:
    """One fixed-size block of the seeded R-MAT edge stream.

    Cache entries are per chunk *index*, so a miss regenerates one
    compressed shard, never the dataset; the bytes are the exact slice
    ``[chunk * chunk_edges, (chunk+1) * chunk_edges)`` of what
    :func:`rmat_edges` would produce (see ``repro.datagen.stream``).
    """
    stream = _stream_for(scale, edge_factor, params, seed)
    start = chunk * chunk_edges
    if not 0 <= start < stream.num_edges:
        raise ValueError(f"chunk {chunk} out of range for {stream!r}")
    return stream.chunk(start, min(start + chunk_edges, stream.num_edges))


@functools.lru_cache(maxsize=4)
def _stream_for(scale, edge_factor, params, seed):
    # Caches the stream (and with it the O(V) vertex permutation) across
    # the per-chunk shard builds of one dataset.
    from .stream import RMATStream

    return RMATStream(scale, edge_factor, params, seed)


def _derived_partitions(scale: int, edge_factor: int, symmetrized: bool) -> int:
    """Enough partitions that each holds ~8 MB of target ids.

    The finalize pass's transient (spill pairs + dedup keys + sort
    scratch) runs ~5x a partition's target bytes, so 8 MB of ids keeps
    the build's peak near 40 MB per partition regardless of scale.
    """
    approx_bytes = (edge_factor << scale) * 8 * (2 if symmetrized else 1)
    return int(max(1, min(1 << scale, -(-approx_bytes // (8 << 20)))))


def rmat_graph_sharded(scale: int, edge_factor: int = 16,
                       params: RMATParams = None, seed: int = 0,
                       directed: bool = True,
                       chunk_edges: int = 1 << 18,
                       num_partitions: int = None,
                       memory_budget_mb: float = None):
    """The :func:`rmat_graph` dataset as a partitioned on-disk CSR.

    Byte-identical to the dense build (same sorted unique adjacency),
    but peak memory is one edge chunk plus one partition's spill.
    ``memory_budget_mb`` is a runtime working-set knob on the returned
    handle, not part of the dataset identity.
    """
    params = params or RMATParams()
    if num_partitions is None:
        num_partitions = _derived_partitions(scale, edge_factor, not directed)
    key_params = {"scale": scale, "edge_factor": edge_factor,
                  "params": params, "seed": seed, "directed": directed,
                  "chunk_edges": chunk_edges,
                  "num_partitions": num_partitions}

    def build_into(tmp):
        stream = _stream_for(scale, edge_factor, params, seed)
        blocks = (rmat_edge_shard(scale, edge_factor, params, seed,
                                  chunk_edges=chunk_edges, chunk=index)
                  for index in range(stream.num_chunks(chunk_edges)))
        build_sharded_csr(blocks, stream.num_vertices, tmp,
                          num_partitions=num_partitions,
                          symmetrize=not directed)

    graph = get_or_build_dir("rmat_graph_sharded", key_params, build_into)
    if memory_budget_mb is not None:
        graph.memory_budget_mb = memory_budget_mb
    return graph


def rmat_triangle_graph_sharded(scale: int, edge_factor: int = 16,
                                seed: int = 0,
                                chunk_edges: int = 1 << 18,
                                num_partitions: int = None,
                                memory_budget_mb: float = None):
    """The :func:`rmat_triangle_graph` dataset as a sharded CSR."""
    params = RMATParams(*TRIANGLE_PARAMS)
    if num_partitions is None:
        num_partitions = _derived_partitions(scale, edge_factor, False)
    key_params = {"scale": scale, "edge_factor": edge_factor,
                  "seed": seed, "chunk_edges": chunk_edges,
                  "num_partitions": num_partitions}

    def build_into(tmp):
        stream = _stream_for(scale, edge_factor, params, seed)
        blocks = (rmat_edge_shard(scale, edge_factor, params, seed,
                                  chunk_edges=chunk_edges, chunk=index)
                  for index in range(stream.num_chunks(chunk_edges)))
        build_sharded_csr(blocks, stream.num_vertices, tmp,
                          num_partitions=num_partitions, orient_by_id=True)

    graph = get_or_build_dir("rmat_triangle_graph_sharded", key_params,
                             build_into)
    if memory_budget_mb is not None:
        graph.memory_budget_mb = memory_budget_mb
    return graph
