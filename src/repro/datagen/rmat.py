"""Graph500 RMAT synthetic graph generator (paper Section 4.1.2).

The paper derives all of its synthetic graphs from the Graph500 RMAT
generator with three parameter sets:

* ``A=0.57, B=C=0.19`` — the Graph500 defaults, used for PageRank and BFS;
* ``A=0.45, B=C=0.15`` — fewer triangles, used for triangle counting;
* ``A=0.40, B=C=0.22`` — the starting point of the ratings generator,
  whose degree tail matches the Netflix dataset.

RMAT recursively subdivides the adjacency matrix into four quadrants and
drops each edge into quadrant A/B/C/D with the configured probabilities.
The implementation below is fully vectorized: all edges descend the
``scale`` recursion levels simultaneously, one NumPy pass per level, so
million-edge graphs generate in well under a second.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..graph import CSRGraph, EdgeList
from .cache import disk_cached

GRAPH500_PARAMS = (0.57, 0.19, 0.19)
TRIANGLE_PARAMS = (0.45, 0.15, 0.15)
RATINGS_PARAMS = (0.40, 0.22, 0.22)


@dataclass(frozen=True)
class RMATParams:
    """Quadrant probabilities; D is implied as ``1 - A - B - C``."""

    a: float = 0.57
    b: float = 0.19
    c: float = 0.19

    def __post_init__(self):
        if min(self.a, self.b, self.c) < 0:
            raise ValueError("RMAT probabilities must be non-negative")
        if self.a + self.b + self.c >= 1.0:
            raise ValueError("A + B + C must be < 1 (D is the remainder)")

    @property
    def d(self) -> float:
        return 1.0 - self.a - self.b - self.c


def rmat_edges(scale: int, edge_factor: int = 16, params: RMATParams = None,
               seed: int = 0, noise: float = 0.1) -> EdgeList:
    """Raw RMAT edges: ``2**scale`` vertices, ``edge_factor * 2**scale`` edges.

    Mirrors the Graph500 reference generator: duplicate edges and self
    loops are *not* removed (Section 4.1.2: "The RMAT generator only
    generates a list of edges (with possible duplicates)"), and vertex
    ids are randomly permuted so vertex id does not correlate with degree.

    ``noise`` jitters the quadrant probabilities per recursion level
    (the Graph500 "smooth" tweak) to avoid artefactual degree spikes at
    powers of two.
    """
    if scale < 1:
        raise ValueError(f"scale must be >= 1, got {scale}")
    if edge_factor < 1:
        raise ValueError(f"edge_factor must be >= 1, got {edge_factor}")
    params = params or RMATParams()
    rng = np.random.default_rng(seed)
    num_vertices = 1 << scale
    num_edges = edge_factor * num_vertices

    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    for level in range(scale):
        # Jitter probabilities per level, renormalized to sum to 1.
        jitter = 1.0 + noise * (2.0 * rng.random(4) - 1.0)
        probs = np.array([params.a, params.b, params.c, params.d]) * jitter
        probs /= probs.sum()
        draw = rng.random(num_edges)
        quadrant = np.searchsorted(np.cumsum(probs)[:3], draw)
        bit = np.int64(1 << (scale - 1 - level))
        src += bit * (quadrant >= 2)          # quadrants C (2) and D (3)
        dst += bit * ((quadrant == 1) | (quadrant == 3))  # B and D

    permutation = rng.permutation(num_vertices)
    return EdgeList(num_vertices, permutation[src], permutation[dst])


@disk_cached("rmat_graph")
def rmat_graph(scale: int, edge_factor: int = 16, params: RMATParams = None,
               seed: int = 0, directed: bool = True) -> CSRGraph:
    """Deduplicated, loop-free CSR graph from RMAT edges.

    ``directed=True`` keeps the generated direction (PageRank input);
    ``directed=False`` symmetrizes (BFS input).
    """
    edges = rmat_edges(scale, edge_factor, params, seed)
    edges = edges.drop_self_loops().deduplicate()
    if not directed:
        edges = edges.symmetrize()
    return CSRGraph.from_edges(edges)


@disk_cached("rmat_triangle_graph")
def rmat_triangle_graph(scale: int, edge_factor: int = 16,
                        seed: int = 0) -> CSRGraph:
    """Triangle-counting input exactly as the paper prepares it.

    Uses the reduced-triangle parameters (A=0.45, B=C=0.15) and assigns
    "a direction to edges going from the vertex with smaller id to one
    with larger id to avoid cycles" (Section 4.1.2).
    """
    edges = rmat_edges(scale, edge_factor, RMATParams(*TRIANGLE_PARAMS), seed)
    return CSRGraph.from_edges(edges.orient_by_id())
