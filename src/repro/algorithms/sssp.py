"""Golden single-source shortest paths (Dijkstra) and the study weights.

The paper's datasets are unweighted, so the study derives weights
deterministically from the graph itself: a hash of each edge's
*unordered* endpoint pair, mapped to an integer in ``[1, 8]`` and
stored as float64. Unordered hashing means a symmetrized edge carries
the same weight in both directions, and integer-valued weights keep
every min-plus sum exact in float64 — which is why all five engine
families (and both kernel backends) reproduce bit-identical distances.
"""

from __future__ import annotations

import heapq

import numpy as np

from ..graph import CSRGraph

#: Distance of vertices the source cannot reach.
UNREACHED_DIST = np.inf

#: Weights are integers in [1, WEIGHT_LEVELS].
WEIGHT_LEVELS = 8


def edge_weights_for(graph: CSRGraph) -> np.ndarray:
    """Deterministic per-edge weights aligned with ``graph.targets``.

    Graphs that carry explicit ``edge_weights`` keep them; otherwise the
    unordered-pair hash above supplies them.
    """
    if graph.edge_weights is not None:
        return graph.edge_weights
    src = graph.sources().astype(np.uint64)
    dst = graph.targets.astype(np.uint64)
    lo = np.minimum(src, dst)
    hi = np.maximum(src, dst)
    mix = lo * np.uint64(2654435761) + hi * np.uint64(40503) + np.uint64(97)
    mix ^= mix >> np.uint64(13)
    return 1.0 + (mix % np.uint64(WEIGHT_LEVELS)).astype(np.float64)


def sssp_reference(graph: CSRGraph, source: int = 0,
                   weights: np.ndarray = None) -> np.ndarray:
    """Dijkstra over out-edges; ``inf`` marks unreachable vertices."""
    if not 0 <= source < graph.num_vertices:
        raise ValueError(f"source {source} out of range")
    if weights is None:
        weights = edge_weights_for(graph)
    distances = np.full(graph.num_vertices, UNREACHED_DIST, dtype=np.float64)
    distances[source] = 0.0
    heap = [(0.0, source)]
    offsets, targets = graph.offsets, graph.targets
    while heap:
        dist, vertex = heapq.heappop(heap)
        if dist > distances[vertex]:
            continue
        for slot in range(int(offsets[vertex]), int(offsets[vertex + 1])):
            neighbor = int(targets[slot])
            candidate = dist + float(weights[slot])
            if candidate < distances[neighbor]:
                distances[neighbor] = candidate
                heapq.heappush(heap, (candidate, neighbor))
    return distances


def validate_sssp(graph: CSRGraph, source: int, distances: np.ndarray,
                  weights: np.ndarray = None) -> bool:
    """Check the shortest-path invariants without recomputing Dijkstra.

    Every edge (u, v) must satisfy ``d(v) <= d(u) + w`` when u is
    reached, every reached non-source vertex needs a tight predecessor
    edge (``d(v) == d(u) + w``), and ``d(source)`` must be 0.
    """
    distances = np.asarray(distances)
    if distances[source] != 0.0:
        return False
    if weights is None:
        weights = edge_weights_for(graph)
    src, dst = graph.sources(), graph.targets
    reached_edge = np.isfinite(distances[src])
    if np.any(distances[dst[reached_edge]] >
              distances[src[reached_edge]] + weights[reached_edge]):
        return False
    tight = reached_edge & (distances[dst] == distances[src] + weights)
    has_pred = np.zeros(graph.num_vertices, dtype=bool)
    has_pred[dst[tight]] = True
    reached = np.isfinite(distances)
    reached[source] = False
    return bool(np.all(has_pred[reached]))
