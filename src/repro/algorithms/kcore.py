"""Golden k-core decomposition reference.

Classic ascending-k peeling: for k = 1, 2, ... repeatedly delete every
remaining vertex whose (out-)degree dropped below k; vertices deleted
while peeling toward level k have core number k - 1. Core numbers are a
graph invariant, so any correct engine produces the identical array
regardless of evaluation order. Run on symmetrized graphs, where
out-degree equals undirected degree.
"""

from __future__ import annotations

import numpy as np

from ..graph import CSRGraph


def kcore_reference(graph: CSRGraph) -> np.ndarray:
    """Per-vertex core number by pure-Python peeling."""
    n = graph.num_vertices
    degrees = graph.out_degrees().astype(np.int64).tolist()
    core = [0] * n
    alive = [True] * n
    remaining = n
    k = 1
    while remaining:
        changed = True
        while changed:
            changed = False
            for v in range(n):
                if alive[v] and degrees[v] < k:
                    alive[v] = False
                    core[v] = k - 1
                    remaining -= 1
                    changed = True
                    for u in graph.neighbors(v).tolist():
                        degrees[u] -= 1
        k += 1
    return np.array(core, dtype=np.int64)


def validate_kcore(graph: CSRGraph, core: np.ndarray) -> bool:
    """Check the coreness invariant: for every k, the subgraph induced
    by ``core >= k`` has minimum degree >= k (so each vertex's number is
    at least feasible), and no vertex can be promoted a level."""
    core = np.asarray(core)
    if core.shape != (graph.num_vertices,):
        return False
    src, dst = graph.sources(), graph.targets
    for k in range(1, int(core.max()) + 1 if core.size else 1):
        members = core >= k
        inside = members[src] & members[dst]
        degree_in = np.bincount(src[inside], minlength=graph.num_vertices)
        if np.any(members & (degree_in < k)):
            return False
    return True
