"""Dispatch table: (algorithm, framework) -> runner.

Every runner has the uniform signature
``runner(dataset, cluster, **params) -> AlgorithmResult`` where
``dataset`` is a :class:`~repro.graph.CSRGraph` for the graph workloads
or a :class:`~repro.graph.RatingsMatrix` for collaborative filtering.
This is what the experiment harness iterates over to regenerate the
paper's tables and figures.
"""

from __future__ import annotations

from ..errors import ExpressibilityError, ReproError
from ..frameworks import native
from ..frameworks.base import PROFILES, FrameworkProfile
from ..frameworks.datalog import socialite
from ..frameworks.matrix import combblas, kdt
from ..frameworks.task import galois
from ..frameworks.vertex import giraph, gps, graphlab, graphx

ALGORITHMS = ("pagerank", "bfs", "triangle_counting",
              "collaborative_filtering",
              "wcc", "sssp", "k_core", "label_propagation")
#: The paper's frameworks plus the Section 7 related-work systems.
FRAMEWORKS = ("native", "combblas", "graphlab", "socialite",
              "socialite-published", "giraph", "galois", "gps", "graphx", "kdt")


def _socialite_published(function):
    def runner(dataset, cluster, **params):
        return function(dataset, cluster, optimized=False, **params)
    return runner


_RUNNERS = {
    ("pagerank", "native"): native.pagerank,
    ("bfs", "native"): native.bfs,
    ("triangle_counting", "native"): native.triangle_count,
    ("collaborative_filtering", "native"): native.collaborative_filtering,

    ("pagerank", "combblas"): combblas.pagerank,
    ("bfs", "combblas"): combblas.bfs,
    ("triangle_counting", "combblas"): combblas.triangle_count,
    ("collaborative_filtering", "combblas"): combblas.collaborative_filtering,

    ("pagerank", "graphlab"): graphlab.pagerank,
    ("bfs", "graphlab"): graphlab.bfs,
    ("triangle_counting", "graphlab"): graphlab.triangle_count,
    ("collaborative_filtering", "graphlab"): graphlab.collaborative_filtering,

    ("pagerank", "socialite"): socialite.pagerank,
    ("bfs", "socialite"): socialite.bfs,
    ("triangle_counting", "socialite"): socialite.triangle_count,
    ("collaborative_filtering", "socialite"):
        socialite.collaborative_filtering,

    ("pagerank", "socialite-published"):
        _socialite_published(socialite.pagerank),
    ("bfs", "socialite-published"): _socialite_published(socialite.bfs),
    ("triangle_counting", "socialite-published"):
        _socialite_published(socialite.triangle_count),
    ("collaborative_filtering", "socialite-published"):
        _socialite_published(socialite.collaborative_filtering),

    ("pagerank", "giraph"): giraph.pagerank,
    ("bfs", "giraph"): giraph.bfs,
    ("triangle_counting", "giraph"): giraph.triangle_count,
    ("collaborative_filtering", "giraph"): giraph.collaborative_filtering,

    ("pagerank", "galois"): galois.pagerank,
    ("bfs", "galois"): galois.bfs,
    ("triangle_counting", "galois"): galois.triangle_count,
    ("collaborative_filtering", "galois"): galois.collaborative_filtering,

    ("pagerank", "gps"): gps.pagerank,
    ("bfs", "gps"): gps.bfs,
    ("triangle_counting", "gps"): gps.triangle_count,
    ("collaborative_filtering", "gps"): gps.collaborative_filtering,

    ("pagerank", "kdt"): kdt.pagerank,
    ("bfs", "kdt"): kdt.bfs,
    ("triangle_counting", "kdt"): kdt.triangle_count,
    ("collaborative_filtering", "kdt"): kdt.collaborative_filtering,

    ("pagerank", "graphx"): graphx.pagerank,
    ("bfs", "graphx"): graphx.bfs,
    ("triangle_counting", "graphx"): graphx.triangle_count,
    ("collaborative_filtering", "graphx"): graphx.collaborative_filtering,
}

# Second-generation workloads (WCC, SSSP, k-core, label propagation)
# across the same ten frameworks. SociaLite's k_core / label_propagation
# entries are registered stubs that raise ExpressibilityError when run:
# the combinations exist (so sweeps enumerate them as typed DNF cells)
# but the language cannot express them — see their docstrings.
_RUNNERS.update({
    ("wcc", "native"): native.wcc,
    ("sssp", "native"): native.sssp,
    ("k_core", "native"): native.kcore,
    ("label_propagation", "native"): native.label_propagation,

    ("wcc", "combblas"): combblas.wcc,
    ("sssp", "combblas"): combblas.sssp,
    ("k_core", "combblas"): combblas.k_core,
    ("label_propagation", "combblas"): combblas.label_propagation,

    ("wcc", "graphlab"): graphlab.wcc,
    ("sssp", "graphlab"): graphlab.sssp,
    ("k_core", "graphlab"): graphlab.k_core,
    ("label_propagation", "graphlab"): graphlab.label_propagation,

    ("wcc", "socialite"): socialite.wcc,
    ("sssp", "socialite"): socialite.sssp,
    ("k_core", "socialite"): socialite.k_core,
    ("label_propagation", "socialite"): socialite.label_propagation,

    ("wcc", "socialite-published"): _socialite_published(socialite.wcc),
    ("sssp", "socialite-published"): _socialite_published(socialite.sssp),
    ("k_core", "socialite-published"):
        _socialite_published(socialite.k_core),
    ("label_propagation", "socialite-published"):
        _socialite_published(socialite.label_propagation),

    ("wcc", "giraph"): giraph.wcc,
    ("sssp", "giraph"): giraph.sssp,
    ("k_core", "giraph"): giraph.k_core,
    ("label_propagation", "giraph"): giraph.label_propagation,

    ("wcc", "galois"): galois.wcc,
    ("sssp", "galois"): galois.sssp,
    ("k_core", "galois"): galois.k_core,
    ("label_propagation", "galois"): galois.label_propagation,

    ("wcc", "gps"): gps.wcc,
    ("sssp", "gps"): gps.sssp,
    ("k_core", "gps"): gps.k_core,
    ("label_propagation", "gps"): gps.label_propagation,

    ("wcc", "kdt"): kdt.wcc,
    ("sssp", "kdt"): kdt.sssp,
    ("k_core", "kdt"): kdt.k_core,
    ("label_propagation", "kdt"): kdt.label_propagation,

    ("wcc", "graphx"): graphx.wcc,
    ("sssp", "graphx"): graphx.sssp,
    ("k_core", "graphx"): graphx.k_core,
    ("label_propagation", "graphx"): graphx.label_propagation,
})


#: Profiles for the Section 7 systems, which live next to their engines
#: rather than in the base table. KDT executes through CombBLAS, so its
#: cluster-facing behaviour (including fault handling) is CombBLAS's.
_EXTRA_PROFILES = {
    "gps": gps.GPS,
    "graphx": graphx.GRAPHX,
    "kdt": PROFILES["combblas"],
}


def profile_for(framework: str) -> FrameworkProfile:
    """The :class:`FrameworkProfile` a registry framework runs under."""
    if framework in _EXTRA_PROFILES:
        return _EXTRA_PROFILES[framework]
    if framework in PROFILES:
        return PROFILES[framework]
    raise ReproError(
        f"unknown framework {framework!r}; known: {FRAMEWORKS}"
    )


def runner(algorithm: str, framework: str):
    """Look up the runner; raises for unknown or unsupported combos."""
    if algorithm not in ALGORITHMS:
        raise ReproError(
            f"unknown algorithm {algorithm!r}; known: {ALGORITHMS}"
        )
    if framework not in FRAMEWORKS:
        raise ReproError(
            f"unknown framework {framework!r}; known: {FRAMEWORKS}"
        )
    try:
        return _RUNNERS[(algorithm, framework)]
    except KeyError:
        raise ExpressibilityError(
            f"{framework} has no {algorithm} implementation"
        ) from None
