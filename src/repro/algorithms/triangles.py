"""Golden triangle-counting reference (equation 3 of the paper).

``N_triangles = sum_{i<j<k} E_ij & E_jk & E_ik`` — counted here by
per-edge sorted-set intersection on an id-oriented graph, the direct
transliteration of the paper's Algorithm 4. Quadratic-ish and intended
as a test oracle; the engines use faster equivalents.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphFormatError
from ..graph import CSRGraph


def require_oriented(graph: CSRGraph) -> None:
    """Raise unless every edge goes from a smaller to a larger id."""
    if graph.num_edges and not np.all(graph.sources() < graph.targets):
        raise GraphFormatError(
            "triangle counting expects an id-oriented graph "
            "(EdgeList.orient_by_id)"
        )


def triangle_count_fast(graph: CSRGraph) -> "tuple[int, object]":
    """Vectorized exact count via sparse algebra (shared by all engines).

    ``(A @ A) restricted to A`` gives, per oriented edge (u, v),
    |N(u) cap N(v)| — identical to per-edge intersection but computed in
    one sparse matrix product. Returns ``(count, overlap_matrix)``.
    """
    from scipy import sparse

    require_oriented(graph)
    n = graph.num_vertices
    adjacency = sparse.csr_matrix(
        (np.ones(graph.num_edges, dtype=np.float64),
         graph.targets.astype(np.int64), graph.offsets.astype(np.int64)),
        shape=(n, n),
    )
    paths = adjacency @ adjacency
    overlap = paths.multiply(adjacency)
    return int(overlap.sum()), overlap


def triangle_count_reference(graph: CSRGraph) -> int:
    """Exact triangle count of an id-oriented graph."""
    require_oriented(graph)
    total = 0
    for u in range(graph.num_vertices):
        neighbors_u = graph.neighbors(u)
        for v in neighbors_u:
            neighbors_v = graph.neighbors(int(v))
            total += int(np.intersect1d(neighbors_u, neighbors_v,
                                        assume_unique=True).size)
    return total


def per_vertex_triangles(graph: CSRGraph) -> np.ndarray:
    """Triangles each vertex closes as the smallest id (diagnostics)."""
    require_oriented(graph)
    counts = np.zeros(graph.num_vertices, dtype=np.int64)
    for u in range(graph.num_vertices):
        neighbors_u = graph.neighbors(u)
        for v in neighbors_u:
            neighbors_v = graph.neighbors(int(v))
            counts[u] += int(np.intersect1d(neighbors_u, neighbors_v,
                                            assume_unique=True).size)
    return counts
