"""Golden references and algorithm-level utilities for the workloads."""

from .bfs import UNREACHED, bfs_reference, validate_distances
from .collaborative import (
    predictions,
    regularized_loss,
    rmse,
    sgd_vs_gd_iterations,
)
from .kcore import kcore_reference, validate_kcore
from .labelprop import (
    initial_labels,
    label_propagation_reference,
    lp_step_reference,
)
from .pagerank import pagerank_matrix_form, pagerank_reference
from .sssp import (
    UNREACHED_DIST,
    edge_weights_for,
    sssp_reference,
    validate_sssp,
)
from .triangles import (
    per_vertex_triangles,
    require_oriented,
    triangle_count_reference,
)
from .wcc import validate_components, wcc_reference

__all__ = [
    "UNREACHED",
    "UNREACHED_DIST",
    "bfs_reference",
    "edge_weights_for",
    "initial_labels",
    "kcore_reference",
    "label_propagation_reference",
    "lp_step_reference",
    "pagerank_matrix_form",
    "pagerank_reference",
    "per_vertex_triangles",
    "predictions",
    "regularized_loss",
    "require_oriented",
    "rmse",
    "sgd_vs_gd_iterations",
    "sssp_reference",
    "triangle_count_reference",
    "validate_components",
    "validate_distances",
    "validate_kcore",
    "validate_sssp",
    "wcc_reference",
]
