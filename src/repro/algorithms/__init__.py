"""Golden references and algorithm-level utilities for the four workloads."""

from .bfs import UNREACHED, bfs_reference, validate_distances
from .collaborative import (
    predictions,
    regularized_loss,
    rmse,
    sgd_vs_gd_iterations,
)
from .pagerank import pagerank_matrix_form, pagerank_reference
from .triangles import (
    per_vertex_triangles,
    require_oriented,
    triangle_count_reference,
)

__all__ = [
    "UNREACHED",
    "bfs_reference",
    "pagerank_matrix_form",
    "pagerank_reference",
    "per_vertex_triangles",
    "predictions",
    "regularized_loss",
    "require_oriented",
    "rmse",
    "sgd_vs_gd_iterations",
    "triangle_count_reference",
    "validate_distances",
]
