"""Golden label-propagation community detection reference.

Seeded *synchronous* label propagation (the LDBC Graphalytics CDLP
variant): labels start as a seeded permutation of the vertex ids and
every round each vertex simultaneously adopts the most frequent label
among its in-neighbors, breaking frequency ties toward the smallest
label. The min tie-break makes each round a deterministic function of
the previous labels, so a fixed iteration count yields one canonical
answer for every engine and both kernel backends. Isolated vertices
keep their label.
"""

from __future__ import annotations

import numpy as np

from ..graph import CSRGraph


def initial_labels(num_vertices: int, seed: int = 0) -> np.ndarray:
    """The seeded starting labels: a permutation of the vertex ids."""
    rng = np.random.default_rng(seed)
    return rng.permutation(num_vertices).astype(np.int64)


def lp_step_reference(graph: CSRGraph, labels: np.ndarray) -> np.ndarray:
    """One synchronous round: most frequent neighbor label, min on ties."""
    new = np.asarray(labels, dtype=np.int64).copy()
    tallies = [{} for _ in range(graph.num_vertices)]
    for u, v in zip(graph.sources().tolist(), graph.targets.tolist()):
        tally = tallies[v]
        label = int(labels[u])
        tally[label] = tally.get(label, 0) + 1
    for v, tally in enumerate(tallies):
        if tally:
            best = max(tally.items(), key=lambda item: (item[1], -item[0]))
            new[v] = best[0]
    return new


def label_propagation_reference(graph: CSRGraph, iterations: int = 3,
                                seed: int = 0) -> np.ndarray:
    """Labels after ``iterations`` synchronous rounds from the seed."""
    labels = initial_labels(graph.num_vertices, seed)
    for _ in range(int(iterations)):
        labels = lp_step_reference(graph, labels)
    return labels
