"""Collaborative-filtering objective and convergence utilities.

The paper's objective (equation 4)::

    min_{p,q} sum_{(u,v) in R} (R_uv - p_u . q_v)^2
              + lambda_p ||p_u||^2 + lambda_q ||q_v||^2

This module provides the loss/RMSE oracles the engines are validated
against, and the SGD-vs-GD convergence study of Section 3.2 ("SGD
converges in about 40x fewer iterations than GD").
"""

from __future__ import annotations

import numpy as np

from ..graph import RatingsMatrix


def predictions(ratings: RatingsMatrix, p_factors: np.ndarray,
                q_factors: np.ndarray) -> np.ndarray:
    """Model scores for every observed (user, item) pair."""
    return np.einsum("ij,ij->i",
                     p_factors[ratings.users], q_factors[ratings.items])


def rmse(ratings: RatingsMatrix, p_factors: np.ndarray,
         q_factors: np.ndarray) -> float:
    """Root-mean-square error over the observed ratings."""
    residual = ratings.ratings - predictions(ratings, p_factors, q_factors)
    return float(np.sqrt(np.mean(residual ** 2)))


def regularized_loss(ratings: RatingsMatrix, p_factors: np.ndarray,
                     q_factors: np.ndarray, lambda_p: float = 0.05,
                     lambda_q: float = 0.05) -> float:
    """The full equation-(4) objective (per-rating regularization)."""
    residual = ratings.ratings - predictions(ratings, p_factors, q_factors)
    reg = (lambda_p * (p_factors[ratings.users] ** 2).sum(axis=1)
           + lambda_q * (q_factors[ratings.items] ** 2).sum(axis=1))
    return float((residual ** 2 + reg).sum())


def sgd_vs_gd_iterations(ratings: RatingsMatrix, target_rmse: float = None,
                         hidden_dim: int = 16, max_iterations: int = 400,
                         seed: int = 0) -> dict:
    """Iterations each method needs to reach a fixed RMSE target.

    If ``target_rmse`` is omitted, it is set to the RMSE SGD reaches
    after 3 iterations — a fixed, achievable criterion. Returns
    ``{"sgd": n_sgd, "gd": n_gd, "ratio": n_gd / n_sgd}``; the paper's
    ratio on Netflix is ~40x.
    """
    from ..cluster import Cluster, paper_cluster
    from ..frameworks.native.cf import collaborative_filtering, iterations_to_rmse

    if target_rmse is None:
        probe = collaborative_filtering(
            ratings, Cluster(paper_cluster(1), enforce_memory=False),
            hidden_dim=hidden_dim, iterations=3, method="sgd",
            gamma0=0.02, step_decay=0.99, seed=seed,
        )
        target_rmse = probe.extras["rmse_curve"][-1] * 1.001

    n_sgd = iterations_to_rmse(ratings, target_rmse, "sgd",
                               hidden_dim=hidden_dim,
                               max_iterations=max_iterations, seed=seed)
    n_gd = iterations_to_rmse(ratings, target_rmse, "gd",
                              hidden_dim=hidden_dim,
                              max_iterations=max_iterations, seed=seed)
    return {"sgd": n_sgd, "gd": n_gd, "ratio": n_gd / n_sgd,
            "target_rmse": target_rmse}
