"""Golden PageRank reference (equation 1 of the paper).

A direct, dependency-free NumPy statement of the update every engine in
this package must match::

    PR'(i) = r + (1 - r) * sum_{j : (j,i) in E} PR(j) / degree(j)

Unnormalized, r = 0.3, all ranks initialized to 1 — exactly the paper's
formulation.
"""

from __future__ import annotations

import numpy as np

from ..graph import CSRGraph


def pagerank_reference(graph: CSRGraph, iterations: int = 10,
                       damping: float = 0.3) -> np.ndarray:
    """Rank vector after ``iterations`` synchronous updates."""
    if iterations < 0:
        raise ValueError("iterations must be non-negative")
    out_degrees = graph.out_degrees()
    safe = np.maximum(out_degrees, 1)
    ranks = np.full(graph.num_vertices, 1.0)
    for _ in range(iterations):
        contributions = np.where(out_degrees > 0, ranks / safe, 0.0)
        per_edge = np.repeat(contributions, out_degrees)
        gathered = np.bincount(graph.targets, weights=per_edge,
                               minlength=graph.num_vertices)
        ranks = damping + (1.0 - damping) * gathered
    return ranks


def pagerank_matrix_form(graph: CSRGraph, iterations: int = 10,
                         damping: float = 0.3) -> np.ndarray:
    """The CombBLAS view (equation 9): ``p' = r 1 + (1-r) A^T p~``.

    Independent of :func:`pagerank_reference` (explicit dense matrix), so
    the two can cross-check each other in tests. Only for small graphs.
    """
    n = graph.num_vertices
    if n > 4096:
        raise ValueError("matrix form is a test oracle for small graphs only")
    adjacency = np.zeros((n, n))
    adjacency[graph.sources(), graph.targets] = 1.0
    out_degrees = adjacency.sum(axis=1)
    safe = np.maximum(out_degrees, 1.0)
    ranks = np.ones(n)
    for _ in range(iterations):
        scaled = np.where(out_degrees > 0, ranks / safe, 0.0)
        ranks = damping + (1.0 - damping) * adjacency.T @ scaled
    return ranks
