"""Golden BFS reference (equation 2 of the paper).

Plain queue-based breadth-first search producing minimum hop counts; the
oracle every engine's distances must match. ``INT32_MAX`` marks
unreachable vertices.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..graph import CSRGraph, iter_csr_blocks

UNREACHED = np.iinfo(np.int32).max


def bfs_reference(graph: CSRGraph, source: int = 0) -> np.ndarray:
    """Hop distances from ``source`` over out-edges."""
    if not 0 <= source < graph.num_vertices:
        raise ValueError(f"source {source} out of range")
    distances = np.full(graph.num_vertices, UNREACHED, dtype=np.int32)
    distances[source] = 0
    queue = deque([source])
    while queue:
        vertex = queue.popleft()
        next_distance = distances[vertex] + 1
        for neighbor in graph.neighbors(vertex):
            neighbor = int(neighbor)
            if distances[neighbor] == UNREACHED:
                distances[neighbor] = next_distance
                queue.append(neighbor)
    return distances


def validate_distances(graph: CSRGraph, source: int,
                       distances: np.ndarray) -> bool:
    """Check the BFS invariants without recomputing a reference.

    Every edge (u, v) must satisfy ``d(v) <= d(u) + 1`` when u is
    reached, every reached non-source vertex must have a predecessor at
    distance d-1, and d(source) must be 0. Used by property tests.
    """
    distances = np.asarray(distances)
    if distances[source] != 0:
        return False
    has_pred = np.zeros(graph.num_vertices, dtype=bool)
    # Block-at-a-time edge scan: one pass per CSR partition, so an
    # out-of-core graph validates inside its memory budget.
    for lo, hi, local_offsets, targets in iter_csr_blocks(graph):
        targets = np.asarray(targets)
        src_d = np.repeat(distances[lo:hi], np.diff(local_offsets))
        dst_d = distances[targets]
        reached_edge = src_d != UNREACHED
        if np.any(dst_d[reached_edge] > src_d[reached_edge] + 1):
            return False
        good = reached_edge & (dst_d == src_d + 1)
        has_pred[targets[good]] = True
    reached = distances != UNREACHED
    reached[source] = False
    return bool(np.all(has_pred[reached]))
