"""Golden weakly-connected-components reference.

Union-find over the raw edge list, ignoring edge direction, with each
component labelled by its minimum vertex id. That labelling is exactly
the fixpoint of min-propagation over a symmetrized graph, which is what
every engine computes — so the reference and the engines agree on the
same canonical array without any relabelling step.
"""

from __future__ import annotations

import numpy as np

from ..graph import CSRGraph


def wcc_reference(graph: CSRGraph) -> np.ndarray:
    """Per-vertex component label: the minimum vertex id of the weakly
    connected component (edge direction is ignored)."""
    parent = list(range(graph.num_vertices))

    def find(v: int) -> int:
        root = v
        while parent[root] != root:
            root = parent[root]
        while parent[v] != root:
            parent[v], v = root, parent[v]
        return root

    for u, v in zip(graph.sources().tolist(), graph.targets.tolist()):
        ru, rv = find(u), find(v)
        if ru == rv:
            continue
        # Union by min id keeps every root the component minimum.
        if ru < rv:
            parent[rv] = ru
        else:
            parent[ru] = rv
    return np.array([find(v) for v in range(graph.num_vertices)],
                    dtype=np.int64)


def validate_components(graph: CSRGraph, labels: np.ndarray) -> bool:
    """Check the min-id component invariants without a reference run.

    Every edge must join same-label endpoints, no label may exceed its
    vertex id (the component minimum is <= every member), and labels
    must be idempotent (the label vertex labels itself).
    """
    labels = np.asarray(labels)
    if labels.shape != (graph.num_vertices,):
        return False
    src, dst = graph.sources(), graph.targets
    if np.any(labels[src] != labels[dst]):
        return False
    if np.any(labels > np.arange(graph.num_vertices)):
        return False
    return bool(np.all(labels[labels] == labels))
