"""Communication layers and their achievable bandwidth (Table 2, Fig. 6).

"A major differentiator of the frameworks is the communication layer
between different hardware nodes" (Section 3). The paper measures, on the
same FDR InfiniBand fabric:

* **MPI** (native, CombBLAS) — over 5 GB/s peak, essentially the hardware
  limit of 5.5 GB/s;
* **TCP sockets over IPoIB** (GraphLab) — "2.5-3x lower bandwidth than
  MPI", i.e. ~20-25% of the link;
* **a single socket pair** (SociaLite as published) — "poor peak network
  performance of about 0.5 GBps";
* **multiple sockets per worker pair** (SociaLite after the authors'
  fix, Section 6.1.3) — "close to 2 GBps";
* **Netty on Hadoop** (Giraph) — "the lowest peak traffic rate of less
  than 0.5 GB/s" and under 10% network utilization.

A :class:`CommLayer` is that achievable-fraction plus fixed per-transfer
latency; :class:`Fabric` turns a per-node-pair traffic matrix into
per-node communication time and bookkeeping for the Figure 6 metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from ..observability import NULL_TRACER
from .hardware import NodeSpec


@dataclass(frozen=True)
class CommLayer:
    """A message-passing implementation on top of the fabric."""

    name: str
    #: Fraction of the hardware link bandwidth this layer can sustain.
    efficiency: float
    #: Fixed software latency per bulk transfer (connection handling,
    #: serialization setup); dominates when messages are tiny.
    latency_s: float = 20e-6
    #: Framing/serialization overhead added per transferred byte.
    byte_overhead: float = 0.0
    #: Sustained-average fraction of the peak rate over a whole exchange.
    #: Table 4 vs Figure 6 of the paper show exactly this split for MPI:
    #: sar sees >5 GB/s peaks while the run-average lands at ~2.3 GB/s —
    #: all-to-all phases, stragglers and synchronization eat the rest.
    #: Software-limited stacks (sockets, Netty) run flat-out whenever
    #: they transfer, so their sustained fraction is near 1.
    sustained_fraction: float = 1.0

    def __post_init__(self):
        if not 0 < self.efficiency <= 1.0:
            raise ValueError(f"efficiency must be in (0, 1], got {self.efficiency}")
        if self.latency_s < 0 or self.byte_overhead < 0:
            raise ValueError("latency and byte overhead must be non-negative")
        if not 0 < self.sustained_fraction <= 1.0:
            raise ValueError("sustained_fraction must be in (0, 1]")

    def effective_bandwidth(self, node: NodeSpec) -> float:
        """Peak bytes/second between one node pair under this layer."""
        return node.link_bandwidth * self.efficiency

    def sustained_bandwidth(self, node: NodeSpec) -> float:
        """Run-average bytes/second for time accounting."""
        return self.effective_bandwidth(node) * self.sustained_fraction

    def wire_bytes(self, payload_bytes: float) -> float:
        """Bytes on the wire for a payload, including framing overhead."""
        return payload_bytes * (1.0 + self.byte_overhead)


MPI = CommLayer("mpi", efficiency=0.95, latency_s=5e-6, byte_overhead=0.0,
                sustained_fraction=0.55)
TCP_SOCKETS = CommLayer("tcp-sockets", efficiency=0.22, latency_s=50e-6,
                        byte_overhead=0.05)
SINGLE_SOCKET = CommLayer("single-socket", efficiency=0.09, latency_s=80e-6,
                          byte_overhead=0.08)
MULTI_SOCKET = CommLayer("multi-socket", efficiency=0.36, latency_s=60e-6,
                         byte_overhead=0.08, sustained_fraction=0.85)
NETTY_HADOOP = CommLayer("netty-hadoop", efficiency=0.08, latency_s=500e-6,
                         byte_overhead=0.25)

LAYERS = {layer.name: layer for layer in
          (MPI, TCP_SOCKETS, SINGLE_SOCKET, MULTI_SOCKET, NETTY_HADOOP)}


@dataclass
class TrafficReport:
    """Network outcome of one superstep."""

    comm_times: np.ndarray          # seconds per node
    bytes_out: np.ndarray           # wire bytes sent per node
    bytes_in: np.ndarray            # wire bytes received per node
    peak_bandwidth: float           # bytes/s while transferring
    #: Fault counters from an injected LinkDisruption, None when clean.
    faults: dict = None

    @property
    def total_bytes(self) -> float:
        return float(self.bytes_out.sum())


class Fabric:
    """Converts traffic matrices into per-node communication time.

    ``traffic[i, j]`` is payload bytes node *i* sends node *j* in one
    superstep (the diagonal — node-local messages — never touches the
    wire and is ignored). The per-node time is the max of its send and
    receive totals over the layer's effective bandwidth, the standard
    LogGP-style bottleneck model for a full-duplex fat-tree fabric.
    """

    def __init__(self, node: NodeSpec, num_nodes: int, tracer=None):
        if num_nodes < 1:
            raise SimulationError(f"num_nodes must be >= 1, got {num_nodes}")
        self.node = node
        self.num_nodes = num_nodes
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def exchange(self, traffic: np.ndarray, layer: CommLayer,
                 disruption=None) -> TrafficReport:
        """One bulk exchange; ``disruption`` injects network faults.

        A :class:`~repro.chaos.LinkDisruption` (chaos runs only) may
        retransmit dropped/corrupted transfers (their wire bytes count
        twice), stall senders for retry backoff, and congest the layer —
        latency x factor, sustained bandwidth / factor — while a latency
        spike is active.
        """
        traffic = np.asarray(traffic, dtype=np.float64)
        if traffic.shape != (self.num_nodes, self.num_nodes):
            raise SimulationError(
                f"traffic matrix must be {self.num_nodes}x{self.num_nodes}, "
                f"got {traffic.shape}"
            )
        if (traffic < 0).any():
            raise SimulationError("traffic bytes must be non-negative")

        wire = layer.wire_bytes(traffic.copy())
        np.fill_diagonal(wire, 0.0)
        latency = layer.latency_s
        bandwidth = layer.sustained_bandwidth(self.node)
        peak_limit = layer.effective_bandwidth(self.node)
        stall = None
        fault_info = None
        if disruption is not None:
            wire, stall, fault_info = disruption.apply(wire)
            latency *= disruption.latency_factor
            bandwidth /= disruption.latency_factor
            peak_limit /= disruption.latency_factor
        bytes_out = wire.sum(axis=1)
        bytes_in = wire.sum(axis=0)
        volume = np.maximum(bytes_out, bytes_in)
        comm_times = np.where(volume > 0, volume / bandwidth + latency, 0.0)
        if stall is not None:
            comm_times = comm_times + stall
        peak = peak_limit if volume.max() > 0 else 0.0
        total = float(bytes_out.sum())
        if total > 0:
            self.tracer.count("bytes_sent", total)
        return TrafficReport(comm_times=comm_times, bytes_out=bytes_out,
                             bytes_in=bytes_in, peak_bandwidth=peak,
                             faults=fault_info)
