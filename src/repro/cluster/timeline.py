"""Superstep timeline analysis: where did the time go?

The paper's Section 5.4 methodology — explain runtimes from system
metrics — applied per superstep: break a run into compute, communication
and fixed-overhead components, render an ASCII timeline, and name the
dominant bottleneck with the paper's vocabulary (memory-bandwidth bound,
network bound, overhead bound, occupancy bound).
"""

from __future__ import annotations

from dataclasses import dataclass

from .metrics import RunMetrics, StepRecord


@dataclass
class BottleneckReport:
    """Decomposition of a run's critical path."""

    total_time_s: float
    compute_fraction: float
    comm_fraction: float
    overhead_fraction: float
    dominant: str
    cpu_utilization: float

    def recommendation(self) -> str:
        """The Section 6-style advice for this bottleneck."""
        advice = {
            "compute": "memory/CPU bound: improve data structures, add "
                       "software prefetching, raise per-core efficiency",
            "network": "network bound: use a faster communication layer, "
                       "compress messages, overlap compute with "
                       "communication",
            "overhead": "fixed-cost bound: reduce per-superstep scheduling "
                        "latency or batch supersteps together",
        }
        return advice[self.dominant]


def steps_from_trace(tracer) -> list:
    """Rebuild :class:`StepRecord` rows from a tracer's superstep spans.

    The flight recorder and the metrics monitor observe the same
    supersteps, so this is the bridge that lets every timeline renderer
    run off an exported trace instead of a live :class:`RunMetrics`.
    """
    records = []
    for span in tracer.spans_named("superstep"):
        if span.end_s is None:
            continue
        records.append(StepRecord(
            index=int(span.attrs.get("index", len(records))),
            time_s=span.duration_s,
            compute_s=float(span.attrs.get("compute_s", 0.0)),
            comm_s=float(span.attrs.get("comm_s", 0.0)),
            bytes_sent=float(span.attrs.get("bytes_sent", 0.0)),
            peak_bandwidth=float(span.attrs.get("peak_bandwidth", 0.0)),
        ))
    return records


def metrics_from_trace(tracer, num_nodes: int = 1) -> RunMetrics:
    """Minimal :class:`RunMetrics` reconstructed from a trace.

    Carries the superstep rows, critical-path decomposition and byte
    totals — everything :func:`analyze` and :func:`render_timeline`
    need; occupancy/memory fields (which need the cost model's view)
    stay zero.
    """
    steps = steps_from_trace(tracer)
    metrics = RunMetrics(num_nodes=num_nodes)
    metrics.steps = steps
    # Chaos runs charge checkpoint writes and crash recovery outside any
    # superstep span; both are zero-duration absent a fault schedule.
    metrics.total_time_s = (sum(step.time_s for step in steps)
                            + tracer.total_duration("tick")
                            + tracer.total_duration("checkpoint")
                            + tracer.total_duration("recovery"))
    metrics.compute_time_s = sum(step.compute_s for step in steps)
    metrics.comm_time_s = sum(step.comm_s for step in steps)
    metrics.bytes_sent_total = tracer.counters.get(
        "bytes_sent", sum(step.bytes_sent for step in steps))
    metrics.peak_network_bandwidth = max(
        (step.peak_bandwidth for step in steps), default=0.0)
    metrics.iteration_times = [
        float(span.attrs.get("time_s", 0.0))
        for span in tracer.spans_named("iteration-mark")
    ]
    return metrics


def analyze(metrics: RunMetrics) -> BottleneckReport:
    """Classify a finished run by its dominant cost."""
    compute = metrics.compute_time_s
    comm = metrics.comm_time_s
    accounted = sum(min(step.time_s, step.compute_s + step.comm_s)
                    for step in metrics.steps)
    overhead = max(metrics.total_time_s - accounted, 0.0)

    fractions = {
        "compute": compute / max(compute + comm + overhead, 1e-18),
        "network": comm / max(compute + comm + overhead, 1e-18),
        "overhead": overhead / max(compute + comm + overhead, 1e-18),
    }
    dominant = max(fractions, key=fractions.get)
    return BottleneckReport(
        total_time_s=metrics.total_time_s,
        compute_fraction=fractions["compute"],
        comm_fraction=fractions["network"],
        overhead_fraction=fractions["overhead"],
        dominant=dominant,
        cpu_utilization=metrics.cpu_utilization,
    )


def render_timeline(metrics: RunMetrics, width: int = 60,
                    max_rows: int = 20) -> str:
    """ASCII per-superstep timeline: '=' compute, '~' comm, '.' other."""
    steps = metrics.steps
    if not steps:
        return "(no supersteps recorded)"
    longest = max(step.time_s for step in steps)
    lines = [
        f"{len(steps)} supersteps, {metrics.total_time_s:.4g}s total "
        f"('=' compute, '~' network, '.' overhead; bar = step duration)"
    ]
    shown = steps if len(steps) <= max_rows else steps[:max_rows]
    for step in shown:
        bar_len = max(int(round(width * step.time_s / longest)), 1) \
            if longest > 0 else 1
        busy = step.compute_s + step.comm_s
        if busy > 0:
            compute_cells = int(round(bar_len * min(step.compute_s / busy,
                                                    1.0)))
        else:
            compute_cells = 0
        comm_cells = 0
        if busy > 0:
            comm_cells = bar_len - compute_cells
        overhead_cells = 0
        if step.time_s > busy and busy > 0:
            # Rescale: busy portion + overhead tail.
            busy_cells = max(int(round(bar_len * busy / step.time_s)), 1)
            overhead_cells = bar_len - busy_cells
            compute_cells = int(round(busy_cells * step.compute_s / busy))
            comm_cells = busy_cells - compute_cells
        bar = ("=" * compute_cells + "~" * comm_cells
               + "." * overhead_cells) or "."
        lines.append(f"  step {step.index:>4} {step.time_s:>10.4g}s  {bar}")
    if len(steps) > max_rows:
        lines.append(f"  ... {len(steps) - max_rows} more steps")
    report = analyze(metrics)
    lines.append(
        f"dominant: {report.dominant} "
        f"(compute {100 * report.compute_fraction:.0f}% / "
        f"network {100 * report.comm_fraction:.0f}% / "
        f"overhead {100 * report.overhead_fraction:.0f}%)"
    )
    lines.append(f"advice: {report.recommendation()}")
    return "\n".join(lines)
