"""Analytic cost model: counted work -> seconds on the paper's hardware.

The paper's Section 5.4 validates exactly this style of model: "network
bytes sent / peak network bandwidth" predicts framework slowdowns within
2.5x, and "bandwidth bound code will need to estimate the number of
reads/writes and scale it with the memory footprint". We apply the model
symmetrically:

* memory time = streamed bytes / streaming bandwidth
              + random bytes / random-access bandwidth,
* cpu time    = ops / (cores x frequency x IPC x efficiency),
* compute time = max(memory, cpu) — superscalar cores overlap the two,
* communication time comes from :class:`~repro.cluster.network.Fabric`,
* a superstep either overlaps compute with communication (max) or
  serializes them (sum), matching the paper's "Overlap of Computation
  and Communication" optimization (Section 6.1.1).

Software prefetching (Section 6.1.2, Figure 7) is modeled as raising the
effective random-access bandwidth: prefetches hide DRAM latency by
keeping more misses in flight, which is precisely why the paper's
PageRank gather of remote ranks speeds up.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .hardware import NodeSpec

#: Measured benefit of software prefetching on dependent random loads —
#: calibrated so the Figure 7 prefetch bars land in the paper's range.
PREFETCH_RANDOM_SPEEDUP = 3.0

#: DRAM moves whole cache lines: an 8-byte gather from a cold line still
#: costs 64 bytes of bandwidth. The paper's native PageRank rate
#: (640M edges/s/node at 78 GB/s, i.e. ~122 bytes per edge) only makes
#: sense under line-granular gather accounting, so every engine in this
#: package charges gathers at this granularity.
CACHE_LINE_BYTES = 64.0


@dataclass
class ComputeWork:
    """Counted compute work of one node in one superstep."""

    streamed_bytes: float = 0.0
    random_bytes: float = 0.0
    ops: float = 0.0
    #: Software efficiency vs tuned native code (framework profile).
    cpu_efficiency: float = 1.0
    #: Fraction of the node's cores doing work (e.g. Giraph: 4/24).
    cores_fraction: float = 1.0
    #: Whether this work issues software prefetches for random accesses.
    prefetch: bool = False
    #: Fraction of the node's memory parallelism available to this work.
    #: Few threads cannot keep enough misses in flight to saturate DRAM;
    #: bandwidth scales ~parallelism^0.7 at low thread counts. 1.0 for
    #: fully-threaded engines; Giraph's 4-of-24 workers set this low.
    memory_parallelism: float = 1.0

    def __post_init__(self):
        if min(self.streamed_bytes, self.random_bytes, self.ops) < 0:
            raise ValueError("work counters must be non-negative")

    def scaled(self, factor: float) -> "ComputeWork":
        """The same work at ``factor`` times the data size."""
        return ComputeWork(
            streamed_bytes=self.streamed_bytes * factor,
            random_bytes=self.random_bytes * factor,
            ops=self.ops * factor,
            cpu_efficiency=self.cpu_efficiency,
            cores_fraction=self.cores_fraction,
            prefetch=self.prefetch,
            memory_parallelism=self.memory_parallelism,
        )

    def merged(self, other: "ComputeWork") -> "ComputeWork":
        """Combine two pieces of work on the same node (same settings)."""
        return ComputeWork(
            streamed_bytes=self.streamed_bytes + other.streamed_bytes,
            random_bytes=self.random_bytes + other.random_bytes,
            ops=self.ops + other.ops,
            cpu_efficiency=min(self.cpu_efficiency, other.cpu_efficiency),
            cores_fraction=min(self.cores_fraction, other.cores_fraction),
            prefetch=self.prefetch and other.prefetch,
            memory_parallelism=min(self.memory_parallelism,
                                   other.memory_parallelism),
        )


@dataclass
class CostModel:
    """Node-level time accounting."""

    node: NodeSpec = field(default_factory=NodeSpec)

    def memory_time(self, work: ComputeWork) -> float:
        scale = work.memory_parallelism ** 0.7
        random_bw = self.node.random_bandwidth * scale
        if work.prefetch:
            random_bw = min(random_bw * PREFETCH_RANDOM_SPEEDUP,
                            self.node.stream_bandwidth * scale)
        streamed = work.streamed_bytes / (self.node.stream_bandwidth * scale)
        random = work.random_bytes / random_bw
        return streamed + random

    def cpu_time(self, work: ComputeWork) -> float:
        if work.ops == 0:
            return 0.0
        rate = self.node.compute_rate(work.cpu_efficiency, work.cores_fraction)
        return work.ops / rate

    def compute_time(self, work: ComputeWork) -> float:
        """Max of memory and CPU time: cores overlap loads with ALU work."""
        return max(self.memory_time(work), self.cpu_time(work))

    def bound_by(self, work: ComputeWork) -> str:
        """Which resource limits this work ('memory' or 'cpu')."""
        return "memory" if self.memory_time(work) >= self.cpu_time(work) else "cpu"

    # -- speed-of-light floors (repro.perf roofline) ------------------------
    #
    # Same formulas as memory_time/cpu_time but with every software knob
    # at its physical best: all cores, full efficiency and memory
    # parallelism, prefetch on. For any ComputeWork carrying these byte
    # and op counts, memory_time(work) >= memory_floor_s(...) and
    # cpu_time(work) >= cpu_floor_s(...) — the roofline ratio is >= 1 by
    # construction.

    def memory_floor_s(self, streamed_bytes: float,
                       random_bytes: float) -> float:
        """Minimum DRAM seconds to move the given bytes on one node."""
        best_random = min(self.node.random_bandwidth * PREFETCH_RANDOM_SPEEDUP,
                          self.node.stream_bandwidth)
        return (streamed_bytes / self.node.stream_bandwidth
                + random_bytes / best_random)

    def cpu_floor_s(self, ops: float) -> float:
        """Minimum ALU seconds for the given ops on one node."""
        if ops == 0:
            return 0.0
        return ops / self.node.compute_rate(1.0, 1.0)

    @staticmethod
    def step_time(compute_s: float, comm_s: float, overlap: bool) -> float:
        """Combine compute and communication for one node's superstep."""
        if compute_s < 0 or comm_s < 0:
            raise ValueError("times must be non-negative")
        return max(compute_s, comm_s) if overlap else compute_s + comm_s
