"""Run metrics: the quantities the paper measures with sar/sysstat.

Figure 6 characterizes every framework by four system-level metrics —
CPU utilization, peak achieved network bandwidth, memory footprint and
network bytes sent. :class:`RunMetrics` carries exactly those, plus the
runtime breakdown used for Tables 4-6, all extracted from the simulator's
per-superstep reports.

The counted-work totals (``ops_total``, ``streamed_bytes_total``,
``random_bytes_total``) and the fixed-cost split (``overhead_time_s``,
``tick_time_s``, ``charged_time_s``) exist for ``repro.perf``: the
roofline model derives speed-of-light lower bounds from the counted
work, and gap attribution needs the critical path decomposed into
compute, exposed communication and fixed overhead *exactly* (the three
components always sum to ``total_time_s``).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np


@dataclass
class StepRecord:
    """One superstep as observed by the monitor."""

    index: int
    time_s: float
    compute_s: float            # slowest node's compute time
    comm_s: float               # slowest node's communication time
    bytes_sent: float           # wire bytes, all nodes
    peak_bandwidth: float       # bytes/s while transferring (0 if no traffic)
    memory_s: float = 0.0       # slowest node's memory half of compute
    cpu_s: float = 0.0          # slowest node's ALU half of compute
    overhead_s: float = 0.0     # fixed framework barrier/scheduling cost
    overlap: bool = False       # whether comm hid under compute this step


@dataclass
class RunMetrics:
    """Aggregated observables of one run on the simulated cluster."""

    num_nodes: int
    total_time_s: float = 0.0
    busy_core_seconds: float = 0.0     # sum over nodes of busy time x cores used
    total_core_seconds: float = 0.0    # nodes x cores x elapsed
    bytes_sent_total: float = 0.0
    memory_bytes_total: float = 0.0    # DRAM bytes touched, all nodes
    peak_network_bandwidth: float = 0.0
    memory_footprint_bytes: float = 0.0    # max over nodes, extrapolated
    iteration_times: list = field(default_factory=list)
    steps: list = field(default_factory=list)
    compute_time_s: float = 0.0        # critical-path compute
    comm_time_s: float = 0.0           # critical-path communication
    # -- counted work (paper scale), inputs to the perf roofline ----------
    ops_total: float = 0.0             # scalar ops, all nodes
    streamed_bytes_total: float = 0.0  # sequential DRAM bytes, all nodes
    random_bytes_total: float = 0.0    # irregular DRAM bytes, all nodes
    # -- the same counters per node (np arrays, shape (num_nodes,)); the
    # -- roofline's critical-node floors come from these. None when the
    # -- metrics were reconstructed (e.g. from a trace) without them.
    node_streamed_bytes: object = None
    node_random_bytes: object = None
    node_ops: object = None
    node_bytes_sent: object = None
    # -- critical-path split of compute into its two halves ---------------
    memory_time_s: float = 0.0         # sum of per-step memory-time maxima
    cpu_time_s: float = 0.0            # sum of per-step ALU-time maxima
    # -- fixed (unscaled) costs, split by origin ---------------------------
    overhead_time_s: float = 0.0       # per-superstep barrier/scheduling
    tick_time_s: float = 0.0           # startup / I/O ticks
    charged_time_s: float = 0.0        # out-of-band charges (recovery)

    _over_busy_warned: bool = field(default=False, repr=False, compare=False)

    # -- Figure 6 metrics -------------------------------------------------

    @property
    def raw_cpu_utilization(self) -> float:
        """Busy/capacity core-seconds, unclamped.

        Can legitimately exceed 1.0 only when the accounting is wrong
        (busy time charged outside the elapsed window); exposing the raw
        ratio is what lets a test or a perf analysis *see* that instead
        of having it silently clamped away.
        """
        if self.total_core_seconds == 0:
            return 0.0
        return self.busy_core_seconds / self.total_core_seconds

    @property
    def cpu_utilization(self) -> float:
        """Fraction of cluster CPU capacity that was busy, in [0, 1].

        Reads over 100% utilization are an accounting bug, not a
        physical possibility — warn once per run (the raw ratio stays
        available as :attr:`raw_cpu_utilization`) and clamp.
        """
        raw = self.raw_cpu_utilization
        if raw > 1.0 + 1e-9 and not self._over_busy_warned:
            self._over_busy_warned = True
            warnings.warn(
                f"cpu accounting exceeds capacity: busy "
                f"{self.busy_core_seconds:.3g} core-seconds vs "
                f"{self.total_core_seconds:.3g} available "
                f"(raw utilization {raw:.3f}); reporting 1.0",
                RuntimeWarning, stacklevel=2,
            )
        return min(raw, 1.0)

    @property
    def bytes_sent_per_node(self) -> float:
        return self.bytes_sent_total / self.num_nodes

    @property
    def average_network_bandwidth(self) -> float:
        """Sustained send rate per node over the whole run (Table 4)."""
        if self.total_time_s == 0:
            return 0.0
        return self.bytes_sent_per_node / self.total_time_s

    @property
    def achieved_memory_bandwidth(self) -> float:
        """Sustained DRAM bytes/s per node over the whole run (Table 4)."""
        if self.total_time_s == 0:
            return 0.0
        return self.memory_bytes_total / self.num_nodes / self.total_time_s

    # -- runtime breakdown --------------------------------------------------

    @property
    def num_iterations(self) -> int:
        return len(self.iteration_times)

    @property
    def time_per_iteration_s(self) -> float:
        if not self.iteration_times:
            return self.total_time_s
        return float(np.mean(self.iteration_times))

    @property
    def network_fraction(self) -> float:
        """Share of the critical path spent communicating."""
        denominator = self.compute_time_s + self.comm_time_s
        if denominator == 0:
            return 0.0
        return self.comm_time_s / denominator

    # -- exact critical-path decomposition (repro.perf) ---------------------

    @property
    def fixed_time_s(self) -> float:
        """Data-size-independent seconds: barriers, startup, recovery."""
        return self.overhead_time_s + self.tick_time_s + self.charged_time_s

    @property
    def exposed_comm_time_s(self) -> float:
        """Communication seconds *not* hidden under computation.

        Exact by construction: every superstep contributes
        ``combined - compute_max`` where ``combined`` is ``max`` (overlap)
        or ``sum`` (serial) of the slowest node's compute and comm, so
        ``compute + exposed_comm + fixed == total_time_s``.
        """
        return max(self.total_time_s - self.compute_time_s
                   - self.fixed_time_s, 0.0)

    def bound_by(self) -> str:
        """'network' or 'memory': the dominant hardware limit (Table 4)."""
        return "network" if self.comm_time_s > self.compute_time_s else "memory"

    def summary(self) -> dict:
        """Plain-dict snapshot used by the report renderers."""
        return {
            "num_nodes": self.num_nodes,
            "total_time_s": self.total_time_s,
            "time_per_iteration_s": self.time_per_iteration_s,
            "num_iterations": self.num_iterations,
            "cpu_utilization": self.cpu_utilization,
            "peak_network_bandwidth": self.peak_network_bandwidth,
            "average_network_bandwidth": self.average_network_bandwidth,
            "bytes_sent_per_node": self.bytes_sent_per_node,
            "memory_footprint_bytes": self.memory_footprint_bytes,
            "network_fraction": self.network_fraction,
            "bound_by": self.bound_by(),
        }
