"""Run metrics: the quantities the paper measures with sar/sysstat.

Figure 6 characterizes every framework by four system-level metrics —
CPU utilization, peak achieved network bandwidth, memory footprint and
network bytes sent. :class:`RunMetrics` carries exactly those, plus the
runtime breakdown used for Tables 4-6, all extracted from the simulator's
per-superstep reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class StepRecord:
    """One superstep as observed by the monitor."""

    index: int
    time_s: float
    compute_s: float            # slowest node's compute time
    comm_s: float               # slowest node's communication time
    bytes_sent: float           # wire bytes, all nodes
    peak_bandwidth: float       # bytes/s while transferring (0 if no traffic)


@dataclass
class RunMetrics:
    """Aggregated observables of one run on the simulated cluster."""

    num_nodes: int
    total_time_s: float = 0.0
    busy_core_seconds: float = 0.0     # sum over nodes of busy time x cores used
    total_core_seconds: float = 0.0    # nodes x cores x elapsed
    bytes_sent_total: float = 0.0
    memory_bytes_total: float = 0.0    # DRAM bytes touched, all nodes
    peak_network_bandwidth: float = 0.0
    memory_footprint_bytes: float = 0.0    # max over nodes, extrapolated
    iteration_times: list = field(default_factory=list)
    steps: list = field(default_factory=list)
    compute_time_s: float = 0.0        # critical-path compute
    comm_time_s: float = 0.0           # critical-path communication

    # -- Figure 6 metrics -------------------------------------------------

    @property
    def cpu_utilization(self) -> float:
        """Fraction of cluster CPU capacity that was busy, in [0, 1]."""
        if self.total_core_seconds == 0:
            return 0.0
        return min(self.busy_core_seconds / self.total_core_seconds, 1.0)

    @property
    def bytes_sent_per_node(self) -> float:
        return self.bytes_sent_total / self.num_nodes

    @property
    def average_network_bandwidth(self) -> float:
        """Sustained send rate per node over the whole run (Table 4)."""
        if self.total_time_s == 0:
            return 0.0
        return self.bytes_sent_per_node / self.total_time_s

    @property
    def achieved_memory_bandwidth(self) -> float:
        """Sustained DRAM bytes/s per node over the whole run (Table 4)."""
        if self.total_time_s == 0:
            return 0.0
        return self.memory_bytes_total / self.num_nodes / self.total_time_s

    # -- runtime breakdown --------------------------------------------------

    @property
    def num_iterations(self) -> int:
        return len(self.iteration_times)

    @property
    def time_per_iteration_s(self) -> float:
        if not self.iteration_times:
            return self.total_time_s
        return float(np.mean(self.iteration_times))

    @property
    def network_fraction(self) -> float:
        """Share of the critical path spent communicating."""
        denominator = self.compute_time_s + self.comm_time_s
        if denominator == 0:
            return 0.0
        return self.comm_time_s / denominator

    def bound_by(self) -> str:
        """'network' or 'memory': the dominant hardware limit (Table 4)."""
        return "network" if self.comm_time_s > self.compute_time_s else "memory"

    def summary(self) -> dict:
        """Plain-dict snapshot used by the report renderers."""
        return {
            "num_nodes": self.num_nodes,
            "total_time_s": self.total_time_s,
            "time_per_iteration_s": self.time_per_iteration_s,
            "num_iterations": self.num_iterations,
            "cpu_utilization": self.cpu_utilization,
            "peak_network_bandwidth": self.peak_network_bandwidth,
            "average_network_bandwidth": self.average_network_bandwidth,
            "bytes_sent_per_node": self.bytes_sent_per_node,
            "memory_footprint_bytes": self.memory_footprint_bytes,
            "network_fraction": self.network_fraction,
            "bound_by": self.bound_by(),
        }
