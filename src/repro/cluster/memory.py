"""Per-node memory accounting for the simulated cluster.

Figure 6 of the paper reports memory footprint per node, and two of its
headline findings are out-of-memory failures: CombBLAS triangle counting
"ran out of memory for real-world inputs while computing the A^2 matrix
product" and Giraph's all-at-once message buffering (Section 6.1.3).
:class:`MemoryTracker` makes those failures reproducible: engines register
every major allocation (graph structures, message buffers, intermediates),
and exceeding the node's DRAM raises :class:`~repro.errors.CapacityError`.

Because experiments run on downscaled proxy datasets, allocations are
checked against capacity at *extrapolated* size: actual bytes multiplied
by the experiment's ``scale_factor`` (paper edges / proxy edges).
"""

from __future__ import annotations

from ..errors import CapacityError, SimulationError


class MemoryTracker:
    """Tracks labelled allocations on one simulated node."""

    def __init__(self, node_id: int, capacity_bytes: int,
                 scale_factor: float = 1.0, enforce: bool = True):
        if capacity_bytes <= 0:
            raise SimulationError("capacity must be positive")
        if scale_factor <= 0:
            raise SimulationError("scale_factor must be positive")
        self.node_id = node_id
        self.capacity_bytes = int(capacity_bytes)
        self.scale_factor = float(scale_factor)
        self.enforce = enforce
        self._allocations = {}
        self._peak_bytes = 0.0

    def allocate(self, label: str, nbytes: float) -> None:
        """Register ``nbytes`` (proxy-scale) under ``label``.

        Re-allocating an existing label replaces its size (engines resize
        buffers every superstep).
        """
        if nbytes < 0:
            raise SimulationError(f"allocation must be non-negative, got {nbytes}")
        self._allocations[label] = float(nbytes)
        used = self.used_bytes
        self._peak_bytes = max(self._peak_bytes, used)
        if self.enforce and used > self.capacity_bytes:
            raise CapacityError(self.node_id, used, self.capacity_bytes, what=label)

    def free(self, label: str) -> None:
        """Release an allocation; freeing an unknown label is an error."""
        try:
            del self._allocations[label]
        except KeyError:
            raise SimulationError(
                f"node {self.node_id}: free of unknown allocation {label!r}"
            ) from None

    @property
    def used_bytes(self) -> float:
        """Current extrapolated (paper-scale) usage."""
        return sum(self._allocations.values()) * self.scale_factor

    @property
    def peak_bytes(self) -> float:
        """High-water mark of extrapolated usage."""
        return self._peak_bytes

    def utilization(self) -> float:
        """Peak usage as a fraction of node DRAM (Figure 6 metric)."""
        return self.peak_bytes / self.capacity_bytes

    def breakdown(self) -> dict:
        """Current allocations by label, at proxy scale."""
        return dict(self._allocations)
