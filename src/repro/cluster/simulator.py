"""The simulated cluster: barriers, message exchange, byte counting.

Engines drive a :class:`Cluster` superstep by superstep: they hand over
per-node :class:`~repro.cluster.cost.ComputeWork` counters and a
node-to-node traffic matrix of *payload* bytes, and the cluster advances
a simulated wall clock using the cost model, the framework's
communication layer and (optionally) compute/communication overlap. All
Figure 6 observables accumulate as a side effect.

Scale extrapolation: experiments run on downscaled proxy datasets but
report paper-scale numbers. The cluster multiplies every counter (work,
traffic, memory) by ``scale_factor`` = paper size / proxy size at
accounting time, so the engines stay oblivious. Per-superstep *fixed*
costs (communication latency, framework barrier overhead) are *not*
scaled — that is what makes, e.g., Giraph's per-superstep Hadoop overhead
dominate BFS exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..chaos.recovery import FAIL_FAST, RecoveryStats
from ..errors import DeadlineExceeded, NodeFailure, SimulationError
from ..observability import NULL_TRACER, sample_peak_rss
from .cost import ComputeWork, CostModel
from .hardware import ClusterSpec
from .memory import MemoryTracker
from .metrics import RunMetrics, StepRecord
from .network import MPI, CommLayer, Fabric, TrafficReport


@dataclass
class StepReport:
    """Outcome of one superstep, visible to engines."""

    index: int
    time_s: float
    compute_times: np.ndarray
    comm_times: np.ndarray
    traffic: TrafficReport


class Cluster:
    """A running simulation on ``spec.num_nodes`` nodes."""

    def __init__(self, spec: ClusterSpec, comm_layer: CommLayer = MPI,
                 scale_factor: float = 1.0, enforce_memory: bool = True,
                 tracer=None, faults=None, recovery=None,
                 deadline_s: float = None):
        if scale_factor <= 0:
            raise SimulationError("scale_factor must be positive")
        if deadline_s is not None and deadline_s <= 0:
            raise SimulationError("deadline_s must be positive")
        self.spec = spec
        self.comm_layer = comm_layer
        self.scale_factor = float(scale_factor)
        self.cost = CostModel(spec.node)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.tracer.bind_clock(lambda: self._elapsed)
        self.fabric = Fabric(spec.node, spec.num_nodes, tracer=self.tracer)
        self._memory = [
            MemoryTracker(i, spec.node.dram_bytes, scale_factor, enforce_memory)
            for i in range(spec.num_nodes)
        ]
        self._elapsed = 0.0
        self._steps = 0
        # Per-run time budget on the simulated clock: the moment
        # ``_elapsed`` crosses it, the run stops with DeadlineExceeded —
        # the paper-style DNF for cells that would run "too long".
        self.deadline_s = deadline_s
        self._iteration_started_at = 0.0
        self._metrics = RunMetrics(
            num_nodes=spec.num_nodes,
            node_streamed_bytes=np.zeros(spec.num_nodes),
            node_random_bytes=np.zeros(spec.num_nodes),
            node_ops=np.zeros(spec.num_nodes),
            node_bytes_sent=np.zeros(spec.num_nodes),
        )
        # -- chaos: fault schedule + recovery protocol ---------------------
        # ``faults`` is a repro.chaos.FaultSchedule (or None: the happy
        # path, with zero chaos overhead). ``recovery`` is the framework's
        # RecoveryPolicy; with faults but no policy the cluster fails fast.
        self.faults = faults
        if recovery is None and faults is not None:
            recovery = FAIL_FAST
        self.recovery = recovery
        if faults is not None:
            faults.validate(spec.num_nodes)
        self._recovery_stats = RecoveryStats()
        self._since_checkpoint_s = 0.0
        self._checkpoint_state_bytes = 0.0   # per-node max, paper scale

    # -- basic accessors -----------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self.spec.num_nodes

    @property
    def elapsed_s(self) -> float:
        return self._elapsed

    def memory(self, node_id: int) -> MemoryTracker:
        return self._memory[node_id]

    # -- memory convenience ----------------------------------------------------

    def allocate(self, node_id: int, label: str, nbytes: float) -> None:
        self._memory[node_id].allocate(label, nbytes)

    def allocate_all(self, label: str, nbytes) -> None:
        """Allocate on every node; ``nbytes`` is scalar or per-node list."""
        sizes = np.broadcast_to(np.asarray(nbytes, dtype=np.float64),
                                (self.num_nodes,))
        for node_id, size in enumerate(sizes):
            self._memory[node_id].allocate(label, float(size))

    def free_all(self, label: str) -> None:
        for tracker in self._memory:
            tracker.free(label)

    # -- time advancement --------------------------------------------------------

    def _normalize_work(self, work) -> list:
        if work is None:
            return [ComputeWork() for _ in range(self.num_nodes)]
        if isinstance(work, ComputeWork):
            return [work] * self.num_nodes
        work = list(work)
        if len(work) != self.num_nodes:
            raise SimulationError(
                f"expected {self.num_nodes} work entries, got {len(work)}"
            )
        return work

    def superstep(self, work=None, traffic=None, overlap: bool = False,
                  layer: CommLayer = None, overhead_s: float = 0.0) -> StepReport:
        """Advance the cluster by one bulk-synchronous superstep.

        ``work`` — per-node :class:`ComputeWork` (or one shared instance);
        ``traffic`` — payload bytes, shape ``(P, P)``, ``traffic[i, j]``
        from node *i* to node *j*; ``overlap`` — hide communication under
        computation; ``overhead_s`` — unscaled fixed cost (framework
        barrier/scheduling). The step lasts as long as its slowest node
        (BSP barrier semantics).
        """
        if overhead_s < 0:
            raise SimulationError("overhead_s must be non-negative")
        layer = layer or self.comm_layer
        step_index = self._steps
        step_faults = None
        if self.faults is not None:
            retry = self.recovery.retry if self.recovery is not None else None
            step_faults = self.faults.at(step_index, self.num_nodes, retry)
        if self.recovery is not None \
                and self.recovery.checkpoint_due(step_index):
            self._write_checkpoint(step_index)
        work = self._normalize_work(work)
        scaled = [w.scaled(self.scale_factor) for w in work]
        memory_times = np.array([self.cost.memory_time(s) for s in scaled])
        cpu_times = np.array([self.cost.cpu_time(s) for s in scaled])
        compute_times = np.maximum(memory_times, cpu_times)
        if step_faults is not None and step_faults.compute_factors is not None:
            memory_times = memory_times * step_faults.compute_factors
            cpu_times = cpu_times * step_faults.compute_factors
            compute_times = compute_times * step_faults.compute_factors

        if traffic is None:
            traffic = np.zeros((self.num_nodes, self.num_nodes))
        report = self.fabric.exchange(
            np.asarray(traffic, dtype=np.float64) * self.scale_factor, layer,
            disruption=step_faults.disruption if step_faults is not None
            else None,
        )

        node_times = np.array([
            CostModel.step_time(compute_times[i], report.comm_times[i], overlap)
            for i in range(self.num_nodes)
        ])
        step_time = float(node_times.max()) + overhead_s

        # -- bookkeeping ----------------------------------------------------
        metrics = self._metrics
        metrics.total_time_s += step_time
        metrics.compute_time_s += float(compute_times.max())
        metrics.comm_time_s += float(report.comm_times.max())
        busy = sum(
            compute_times[i] * work[i].cores_fraction * self.spec.node.cores
            for i in range(self.num_nodes)
        )
        metrics.busy_core_seconds += busy
        metrics.total_core_seconds += step_time * self.num_nodes * self.spec.node.cores
        metrics.bytes_sent_total += report.total_bytes
        streamed_bytes = np.array([s.streamed_bytes for s in scaled])
        random_bytes = np.array([s.random_bytes for s in scaled])
        ops = np.array([s.ops for s in scaled])
        metrics.memory_bytes_total += float(streamed_bytes.sum()
                                            + random_bytes.sum())
        metrics.ops_total += float(ops.sum())
        metrics.streamed_bytes_total += float(streamed_bytes.sum())
        metrics.random_bytes_total += float(random_bytes.sum())
        metrics.node_streamed_bytes += streamed_bytes
        metrics.node_random_bytes += random_bytes
        metrics.node_ops += ops
        metrics.node_bytes_sent += np.asarray(report.bytes_out,
                                              dtype=np.float64)
        metrics.memory_time_s += float(memory_times.max())
        metrics.cpu_time_s += float(cpu_times.max())
        metrics.overhead_time_s += overhead_s
        metrics.peak_network_bandwidth = max(
            metrics.peak_network_bandwidth, report.peak_bandwidth
        )
        metrics.steps.append(StepRecord(
            index=self._steps, time_s=step_time,
            compute_s=float(compute_times.max()),
            comm_s=float(report.comm_times.max()),
            bytes_sent=report.total_bytes,
            peak_bandwidth=report.peak_bandwidth,
            memory_s=float(memory_times.max()),
            cpu_s=float(cpu_times.max()),
            overhead_s=overhead_s,
            overlap=overlap,
        ))

        tracer = self.tracer
        if tracer.enabled:
            start = self._elapsed
            with tracer.span("superstep", index=self._steps,
                             compute_s=float(compute_times.max()),
                             comm_s=float(report.comm_times.max()),
                             bytes_sent=report.total_bytes,
                             peak_bandwidth=report.peak_bandwidth,
                             overhead_s=overhead_s):
                for node in range(self.num_nodes):
                    if compute_times[node] > 0:
                        tracer.record("compute", start,
                                      float(compute_times[node]), node=node)
                    if report.comm_times[node] > 0:
                        # Overlapped communication hides under compute;
                        # otherwise it follows it (BSP phase order).
                        comm_start = start if overlap \
                            else start + float(compute_times[node])
                        tracer.record("comm", comm_start,
                                      float(report.comm_times[node]),
                                      node=node,
                                      bytes_out=float(report.bytes_out[node]))
                self._elapsed += step_time
            # Superstep boundaries are where working sets turn over
            # (frontier gathers, partition loads), so they are where the
            # out-of-core memory claims get *measured*.
            sample_peak_rss(tracer)
        else:
            self._elapsed += step_time
        self._steps += 1
        self._since_checkpoint_s += step_time
        self._check_deadline(f"superstep {step_index}")

        if step_faults is not None:
            self._apply_step_faults(step_index, step_faults, report)
        return StepReport(step_index, step_time, compute_times,
                          report.comm_times, report)

    def _check_deadline(self, what: str = "") -> None:
        """Stop the run once the simulated clock passes its budget."""
        if self.deadline_s is not None and self._elapsed > self.deadline_s:
            self.tracer.instant("deadline-exceeded",
                                budget_s=self.deadline_s,
                                elapsed_s=self._elapsed)
            raise DeadlineExceeded(self.deadline_s, self._elapsed, what)

    # -- fault injection and recovery ---------------------------------------

    def _charge(self, seconds: float) -> None:
        """Advance the clock by an already-recorded out-of-band cost."""
        self._elapsed += seconds
        self._metrics.total_time_s += seconds
        self._metrics.charged_time_s += seconds
        self._metrics.total_core_seconds += (
            seconds * self.num_nodes * self.spec.node.cores
        )
        self._check_deadline("recovery accounting")

    def _write_checkpoint(self, superstep: int) -> None:
        """Checkpoint every node's live state to simulated disk."""
        policy = self.recovery
        per_node = [tracker.used_bytes for tracker in self._memory]
        largest = max(per_node)
        write_s = largest / self.spec.node.disk_bandwidth \
            + policy.checkpoint_overhead_s
        self.tracer.record("checkpoint", self._elapsed, write_s,
                           superstep=superstep, bytes=float(sum(per_node)))
        self._charge(write_s)
        stats = self._recovery_stats
        stats.checkpoints_written += 1
        stats.checkpoint_bytes += float(sum(per_node))
        stats.checkpoint_time_s += write_s
        self._checkpoint_state_bytes = largest
        self._since_checkpoint_s = 0.0

    def _apply_step_faults(self, superstep: int, step_faults, report) -> None:
        """Book transient-fault costs, then resolve crashes."""
        stats = self._recovery_stats
        tracer = self.tracer
        for event in step_faults.events:
            stats.faults_injected += 1
            stats.events.append(dict(event))
            tracer.instant("fault", **event)
            tracer.count("faults")
        info = report.faults
        if info is not None and (info["messages_dropped"]
                                 or info["messages_corrupted"]
                                 or info["blocked_pairs"]):
            stats.faults_injected += 1
            stats.messages_dropped += info["messages_dropped"]
            stats.messages_corrupted += info["messages_corrupted"]
            stats.retransmitted_bytes += info["retransmitted_bytes"]
            stats.retry_time_s += info["stall_s"]
            event = {"kind": "network-faults", "superstep": superstep,
                     **{key: info[key] for key in
                        ("messages_dropped", "messages_corrupted",
                         "blocked_pairs") if info[key]}}
            stats.events.append(event)
            tracer.instant("fault", **event)
            tracer.count("faults")
            if info["messages_dropped"]:
                tracer.count("messages_dropped", info["messages_dropped"])
            if info["messages_corrupted"]:
                tracer.count("messages_corrupted", info["messages_corrupted"])
        for node in step_faults.crashes:
            self._handle_crash(node, superstep)

    def _handle_crash(self, node: int, superstep: int) -> None:
        """Kill ``node``: recover from checkpoint or fail fast."""
        stats = self._recovery_stats
        stats.faults_injected += 1
        stats.crashes += 1
        event = {"kind": "node-crash", "superstep": superstep, "node": node}
        stats.events.append(dict(event))
        self.tracer.instant("fault", **event)
        self.tracer.count("faults")
        policy = self.recovery
        if policy is None or not policy.recovers_crashes:
            raise NodeFailure(node, superstep)
        # The replacement node reloads the last checkpoint (sequential
        # disk read) and replays every superstep since; with no
        # checkpoint yet, the run restarts from superstep 0.
        restore_s = self._checkpoint_state_bytes \
            / self.spec.node.disk_bandwidth
        replay_s = self._since_checkpoint_s
        total_s = policy.detect_timeout_s + restore_s + replay_s
        self.tracer.record("recovery", self._elapsed, total_s, node=node,
                           superstep=superstep, restore_s=restore_s,
                           replay_s=replay_s,
                           detect_s=policy.detect_timeout_s)
        self._charge(total_s)
        stats.recoveries += 1
        stats.restore_time_s += restore_s
        stats.replay_time_s += replay_s
        stats.recovery_time_s += total_s
        stats.events.append({"kind": "recovery", "superstep": superstep,
                             "node": node, "time_s": total_s})

    def tick(self, seconds: float) -> None:
        """Advance wall clock by a fixed, unscaled amount (startup, I/O)."""
        if seconds < 0:
            raise SimulationError("tick must be non-negative")
        self.tracer.record("tick", self._elapsed, seconds)
        self._elapsed += seconds
        self._metrics.total_time_s += seconds
        self._metrics.tick_time_s += seconds
        self._metrics.total_core_seconds += (
            seconds * self.num_nodes * self.spec.node.cores
        )
        self._check_deadline("tick")

    def mark_iteration(self) -> float:
        """Close the current algorithm iteration; returns its duration."""
        duration = self._elapsed - self._iteration_started_at
        self._iteration_started_at = self._elapsed
        self._metrics.iteration_times.append(duration)
        self.tracer.instant("iteration-mark",
                            index=len(self._metrics.iteration_times) - 1,
                            time_s=duration)
        return duration

    def trace_span(self, name: str, **attrs):
        """Open an engine-level span on this cluster's tracer."""
        return self.tracer.span(name, **attrs)

    # -- results ------------------------------------------------------------

    def metrics(self) -> RunMetrics:
        """Snapshot of the metrics accumulated so far."""
        self._metrics.memory_footprint_bytes = max(
            tracker.peak_bytes for tracker in self._memory
        )
        return self._metrics

    def recovery_stats(self) -> RecoveryStats:
        """Fault/recovery accounting (all zeros on fault-free runs)."""
        return self._recovery_stats
