"""The simulated cluster: barriers, message exchange, byte counting.

Engines drive a :class:`Cluster` superstep by superstep: they hand over
per-node :class:`~repro.cluster.cost.ComputeWork` counters and a
node-to-node traffic matrix of *payload* bytes, and the cluster advances
a simulated wall clock using the cost model, the framework's
communication layer and (optionally) compute/communication overlap. All
Figure 6 observables accumulate as a side effect.

Scale extrapolation: experiments run on downscaled proxy datasets but
report paper-scale numbers. The cluster multiplies every counter (work,
traffic, memory) by ``scale_factor`` = paper size / proxy size at
accounting time, so the engines stay oblivious. Per-superstep *fixed*
costs (communication latency, framework barrier overhead) are *not*
scaled — that is what makes, e.g., Giraph's per-superstep Hadoop overhead
dominate BFS exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from ..observability import NULL_TRACER
from .cost import ComputeWork, CostModel
from .hardware import ClusterSpec
from .memory import MemoryTracker
from .metrics import RunMetrics, StepRecord
from .network import MPI, CommLayer, Fabric, TrafficReport


@dataclass
class StepReport:
    """Outcome of one superstep, visible to engines."""

    index: int
    time_s: float
    compute_times: np.ndarray
    comm_times: np.ndarray
    traffic: TrafficReport


class Cluster:
    """A running simulation on ``spec.num_nodes`` nodes."""

    def __init__(self, spec: ClusterSpec, comm_layer: CommLayer = MPI,
                 scale_factor: float = 1.0, enforce_memory: bool = True,
                 tracer=None):
        if scale_factor <= 0:
            raise SimulationError("scale_factor must be positive")
        self.spec = spec
        self.comm_layer = comm_layer
        self.scale_factor = float(scale_factor)
        self.cost = CostModel(spec.node)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.tracer.bind_clock(lambda: self._elapsed)
        self.fabric = Fabric(spec.node, spec.num_nodes, tracer=self.tracer)
        self._memory = [
            MemoryTracker(i, spec.node.dram_bytes, scale_factor, enforce_memory)
            for i in range(spec.num_nodes)
        ]
        self._elapsed = 0.0
        self._steps = 0
        self._iteration_started_at = 0.0
        self._metrics = RunMetrics(num_nodes=spec.num_nodes)

    # -- basic accessors -----------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self.spec.num_nodes

    @property
    def elapsed_s(self) -> float:
        return self._elapsed

    def memory(self, node_id: int) -> MemoryTracker:
        return self._memory[node_id]

    # -- memory convenience ----------------------------------------------------

    def allocate(self, node_id: int, label: str, nbytes: float) -> None:
        self._memory[node_id].allocate(label, nbytes)

    def allocate_all(self, label: str, nbytes) -> None:
        """Allocate on every node; ``nbytes`` is scalar or per-node list."""
        sizes = np.broadcast_to(np.asarray(nbytes, dtype=np.float64),
                                (self.num_nodes,))
        for node_id, size in enumerate(sizes):
            self._memory[node_id].allocate(label, float(size))

    def free_all(self, label: str) -> None:
        for tracker in self._memory:
            tracker.free(label)

    # -- time advancement --------------------------------------------------------

    def _normalize_work(self, work) -> list:
        if work is None:
            return [ComputeWork() for _ in range(self.num_nodes)]
        if isinstance(work, ComputeWork):
            return [work] * self.num_nodes
        work = list(work)
        if len(work) != self.num_nodes:
            raise SimulationError(
                f"expected {self.num_nodes} work entries, got {len(work)}"
            )
        return work

    def superstep(self, work=None, traffic=None, overlap: bool = False,
                  layer: CommLayer = None, overhead_s: float = 0.0) -> StepReport:
        """Advance the cluster by one bulk-synchronous superstep.

        ``work`` — per-node :class:`ComputeWork` (or one shared instance);
        ``traffic`` — payload bytes, shape ``(P, P)``, ``traffic[i, j]``
        from node *i* to node *j*; ``overlap`` — hide communication under
        computation; ``overhead_s`` — unscaled fixed cost (framework
        barrier/scheduling). The step lasts as long as its slowest node
        (BSP barrier semantics).
        """
        if overhead_s < 0:
            raise SimulationError("overhead_s must be non-negative")
        layer = layer or self.comm_layer
        work = self._normalize_work(work)
        compute_times = np.array(
            [self.cost.compute_time(w.scaled(self.scale_factor)) for w in work]
        )

        if traffic is None:
            traffic = np.zeros((self.num_nodes, self.num_nodes))
        report = self.fabric.exchange(
            np.asarray(traffic, dtype=np.float64) * self.scale_factor, layer
        )

        node_times = np.array([
            CostModel.step_time(compute_times[i], report.comm_times[i], overlap)
            for i in range(self.num_nodes)
        ])
        step_time = float(node_times.max()) + overhead_s

        # -- bookkeeping ----------------------------------------------------
        metrics = self._metrics
        metrics.total_time_s += step_time
        metrics.compute_time_s += float(compute_times.max())
        metrics.comm_time_s += float(report.comm_times.max())
        busy = sum(
            compute_times[i] * work[i].cores_fraction * self.spec.node.cores
            for i in range(self.num_nodes)
        )
        metrics.busy_core_seconds += busy
        metrics.total_core_seconds += step_time * self.num_nodes * self.spec.node.cores
        metrics.bytes_sent_total += report.total_bytes
        metrics.memory_bytes_total += sum(
            (w.streamed_bytes + w.random_bytes) * self.scale_factor
            for w in work
        )
        metrics.peak_network_bandwidth = max(
            metrics.peak_network_bandwidth, report.peak_bandwidth
        )
        metrics.steps.append(StepRecord(
            index=self._steps, time_s=step_time,
            compute_s=float(compute_times.max()),
            comm_s=float(report.comm_times.max()),
            bytes_sent=report.total_bytes,
            peak_bandwidth=report.peak_bandwidth,
        ))

        tracer = self.tracer
        if tracer.enabled:
            start = self._elapsed
            with tracer.span("superstep", index=self._steps,
                             compute_s=float(compute_times.max()),
                             comm_s=float(report.comm_times.max()),
                             bytes_sent=report.total_bytes,
                             peak_bandwidth=report.peak_bandwidth,
                             overhead_s=overhead_s):
                for node in range(self.num_nodes):
                    if compute_times[node] > 0:
                        tracer.record("compute", start,
                                      float(compute_times[node]), node=node)
                    if report.comm_times[node] > 0:
                        # Overlapped communication hides under compute;
                        # otherwise it follows it (BSP phase order).
                        comm_start = start if overlap \
                            else start + float(compute_times[node])
                        tracer.record("comm", comm_start,
                                      float(report.comm_times[node]),
                                      node=node,
                                      bytes_out=float(report.bytes_out[node]))
                self._elapsed += step_time
        else:
            self._elapsed += step_time
        self._steps += 1
        return StepReport(self._steps - 1, step_time, compute_times,
                          report.comm_times, report)

    def tick(self, seconds: float) -> None:
        """Advance wall clock by a fixed, unscaled amount (startup, I/O)."""
        if seconds < 0:
            raise SimulationError("tick must be non-negative")
        self.tracer.record("tick", self._elapsed, seconds)
        self._elapsed += seconds
        self._metrics.total_time_s += seconds
        self._metrics.total_core_seconds += (
            seconds * self.num_nodes * self.spec.node.cores
        )

    def mark_iteration(self) -> float:
        """Close the current algorithm iteration; returns its duration."""
        duration = self._elapsed - self._iteration_started_at
        self._iteration_started_at = self._elapsed
        self._metrics.iteration_times.append(duration)
        self.tracer.instant("iteration-mark",
                            index=len(self._metrics.iteration_times) - 1,
                            time_s=duration)
        return duration

    def trace_span(self, name: str, **attrs):
        """Open an engine-level span on this cluster's tracer."""
        return self.tracer.span(name, **attrs)

    # -- results ------------------------------------------------------------

    def metrics(self) -> RunMetrics:
        """Snapshot of the metrics accumulated so far."""
        self._metrics.memory_footprint_bytes = max(
            tracker.peak_bytes for tracker in self._memory
        )
        return self._metrics
