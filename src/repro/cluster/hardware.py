"""Hardware description of the paper's experimental platform (Section 4.3).

Each node is an Intel Xeon E5-2697-class dual-socket machine: 24 cores at
2.7 GHz with 2-way SMT, 64 GB of DRAM, connected by Mellanox FDR
InfiniBand. The bandwidth constants below are back-derived from the
paper's own efficiency numbers:

* Table 4 reports PageRank achieving 78 GB/s = 92% of the memory-bandwidth
  limit, implying a ~86 GB/s STREAM-class peak per node;
* Figure 6 normalizes peak network bandwidth to "5.5 GB/s/node (network
  limit)" for the FDR fabric.

These constants are the *only* hardware inputs to the simulation; every
runtime this package reports is counted work divided by them.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class NodeSpec:
    """One cluster node. Defaults model the paper's Xeon E5-2697 nodes."""

    cores: int = 24
    smt: int = 2
    frequency_ghz: float = 2.7
    #: Sustained instructions per cycle per core for tuned graph kernels.
    ipc: float = 1.6
    dram_bytes: int = 64 * 2**30
    #: Peak streaming (STREAM-like) memory bandwidth, bytes/second.
    stream_bandwidth: float = 86e9
    #: Effective bandwidth of dependent random 8-byte accesses. A random
    #: access drags a 64-byte line for 8 useful bytes and is
    #: latency-bound; ~10 GB/s of *useful* bytes matches measured
    #: pointer-chasing rates on this class of machine.
    random_bandwidth: float = 10e9
    #: Peak per-node injection bandwidth of the FDR InfiniBand fabric.
    link_bandwidth: float = 5.5e9
    #: Sequential bandwidth of the node's checkpoint disk (HDFS-class
    #: spinning storage of the paper's era). Only exercised by recovery
    #: protocols writing/restoring checkpoints (repro.chaos).
    disk_bandwidth: float = 200e6

    @property
    def hardware_threads(self) -> int:
        return self.cores * self.smt

    def compute_rate(self, cpu_efficiency: float = 1.0,
                     cores_fraction: float = 1.0) -> float:
        """Sustainable scalar-op throughput (ops/second).

        ``cpu_efficiency`` captures software overhead relative to tuned
        native code (JVM boxing, framework abstraction, ...);
        ``cores_fraction`` captures partial occupancy (e.g. Giraph's 4
        workers on a 24-core node).
        """
        if not 0 < cpu_efficiency <= 1.0:
            raise ValueError(f"cpu_efficiency must be in (0, 1], got {cpu_efficiency}")
        if not 0 < cores_fraction <= 1.0:
            raise ValueError(f"cores_fraction must be in (0, 1], got {cores_fraction}")
        return (self.cores * cores_fraction) * self.frequency_ghz * 1e9 \
            * self.ipc * cpu_efficiency


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster of :class:`NodeSpec` nodes."""

    num_nodes: int = 1
    node: NodeSpec = field(default_factory=NodeSpec)

    def __post_init__(self):
        if self.num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {self.num_nodes}")

    @property
    def total_memory(self) -> int:
        return self.num_nodes * self.node.dram_bytes


#: The exact platform of the paper, for convenience.
PAPER_NODE = NodeSpec()


def paper_cluster(num_nodes: int) -> ClusterSpec:
    """Cluster of the paper's nodes; the paper uses 1-64."""
    return ClusterSpec(num_nodes=num_nodes, node=PAPER_NODE)
