"""Simulated cluster: hardware model, network layers, cost model, metrics."""

from .cost import PREFETCH_RANDOM_SPEEDUP, ComputeWork, CostModel
from .hardware import PAPER_NODE, ClusterSpec, NodeSpec, paper_cluster
from .memory import MemoryTracker
from .metrics import RunMetrics, StepRecord
from .network import (
    LAYERS,
    MPI,
    MULTI_SOCKET,
    NETTY_HADOOP,
    SINGLE_SOCKET,
    TCP_SOCKETS,
    CommLayer,
    Fabric,
    TrafficReport,
)
from .simulator import Cluster, StepReport
from .timeline import (
    BottleneckReport,
    analyze,
    metrics_from_trace,
    render_timeline,
    steps_from_trace,
)

__all__ = [
    "BottleneckReport",
    "analyze",
    "metrics_from_trace",
    "render_timeline",
    "steps_from_trace",
    "LAYERS",
    "MPI",
    "MULTI_SOCKET",
    "NETTY_HADOOP",
    "PAPER_NODE",
    "PREFETCH_RANDOM_SPEEDUP",
    "SINGLE_SOCKET",
    "TCP_SOCKETS",
    "Cluster",
    "ClusterSpec",
    "CommLayer",
    "ComputeWork",
    "CostModel",
    "Fabric",
    "MemoryTracker",
    "NodeSpec",
    "RunMetrics",
    "StepRecord",
    "StepReport",
    "TrafficReport",
    "paper_cluster",
]
