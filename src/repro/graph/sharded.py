"""Partitioned on-disk CSR: graphs larger than RAM behind the CSRGraph API.

The monolithic :class:`~repro.graph.csr.CSRGraph` holds ``offsets`` and
``targets`` as one pair of in-memory arrays, so peak RSS caps the scale
any engine can touch. This module stores the same CSR as a *sharded*
directory::

    <root>/
      meta.json            # manifest: vertex ranges, edge counts, sha256s
      offsets.npy          # global offsets, num_vertices + 1 int64
      targets_0000.npy     # targets of partition 0 (vertex range [lo, hi))
      targets_0001.npy
      ...

Partitions are contiguous **vertex ranges** (R-MAT ids are permuted
uniformly, so equal ranges are balanced in expectation). Each
``targets_*.npy`` is opened lazily as a read-only ``np.memmap`` slice;
:class:`ShardedCSRGraph` keeps an LRU of open slices under a
``memory_budget_mb`` working-set cap and evicts clean mappings (madvise
``DONTNEED`` + munmap) between partitions, so the resident set of a
superstep is one partition plus O(vertices) state.

Bit-identity contract: :func:`build_sharded_csr` produces, per source
vertex, the sorted unique target list — exactly what
``CSRGraph.from_edges(edges.deduplicate())`` produces — so the
concatenated shards are byte-identical to the monolithic build
regardless of chunk size or partition count (:func:`graph_digests`
proves it).
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import shutil
import tempfile
from collections import OrderedDict

import numpy as np

from ..errors import GraphFormatError
from ..observability import NULL_TRACER
from .csr import CSRGraph
from .edgelist import EdgeList

MANIFEST_NAME = "meta.json"
OFFSETS_FILE = "offsets.npy"

#: The tracer shard load/evict/materialize instants land on; swapped per
#: cell alongside the dataset cache's tracer (see ``harness.sweep``).
_TRACER = NULL_TRACER


@contextlib.contextmanager
def use_tracer(tracer):
    """Route shard instants to ``tracer`` for the duration of the block."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer if tracer is not None else NULL_TRACER
    try:
        yield
    finally:
        _TRACER = previous


def partition_bounds(num_vertices: int, num_partitions: int) -> np.ndarray:
    """Vertex-range bounds: partition i owns ``[bounds[i], bounds[i+1])``."""
    if not 1 <= num_partitions <= num_vertices:
        raise GraphFormatError(
            f"num_partitions must be in [1, {num_vertices}], got {num_partitions}")
    return (np.arange(num_partitions + 1, dtype=np.int64)
            * num_vertices // num_partitions)


def targets_file(index: int) -> str:
    return f"targets_{index:04d}.npy"


def _sha256_of(array: np.ndarray) -> str:
    return hashlib.sha256(np.ascontiguousarray(array).data).hexdigest()


# ---------------------------------------------------------------------------
# Reading
# ---------------------------------------------------------------------------


class CSRPartition:
    """Handle to one vertex-range shard of a :class:`ShardedCSRGraph`.

    Lightweight: holds only the range metadata; ``targets`` maps the
    shard file on access (through the owner's budgeted LRU).
    """

    __slots__ = ("index", "lo", "hi", "num_edges", "_owner")

    def __init__(self, owner, index, lo, hi, num_edges):
        self._owner = owner
        self.index = int(index)
        self.lo = int(lo)
        self.hi = int(hi)
        self.num_edges = int(num_edges)

    @property
    def num_vertices(self) -> int:
        return self.hi - self.lo

    @property
    def targets(self) -> np.ndarray:
        return self._owner._targets_of(self.index)

    def local_offsets(self) -> np.ndarray:
        """Offsets into :attr:`targets` for rows ``lo..hi`` (starts at 0)."""
        span = np.asarray(self._owner.offsets[self.lo:self.hi + 1])
        return span - span[0]

    def out_degrees(self) -> np.ndarray:
        return np.diff(self._owner.offsets[self.lo:self.hi + 1])

    def sha256(self) -> str:
        return _sha256_of(self.targets)

    def release(self) -> None:
        self._owner.release(self.index)

    def __repr__(self) -> str:
        return (f"CSRPartition(index={self.index}, range=[{self.lo}, "
                f"{self.hi}), num_edges={self.num_edges})")


class ShardedCSRGraph:
    """Read-only partitioned CSR over mmap'd shard files.

    Quacks like :class:`CSRGraph` — ``offsets``/``targets``,
    ``neighbors``/``neighbors_of_many``/``out_degrees``/``has_edge``/
    ``sources``/``reverse`` — plus partition iteration under a working-set
    budget. Engines that only need partition-local access never fault in
    more than ``memory_budget_mb`` of target pages; legacy flat accesses
    (``.targets``, ``.sources()``) still work but materialize the whole
    edge array (announced with a ``sharded-materialize`` instant).
    """

    def __init__(self, root, memory_budget_mb: float = None):
        self.root = str(root)
        manifest_path = os.path.join(self.root, MANIFEST_NAME)
        with open(manifest_path, "r", encoding="utf-8") as handle:
            meta = json.load(handle)
        sharded = meta.get("sharded", meta)
        if sharded.get("kind", meta.get("kind")) != "sharded-csr":
            raise GraphFormatError(f"{manifest_path} is not a sharded-csr manifest")
        self.num_vertices = int(sharded["num_vertices"])
        self._num_edges = int(sharded["num_edges"])
        self._partition_meta = sharded["partitions"]
        self.bounds = np.array(
            [p["lo"] for p in self._partition_meta]
            + [self._partition_meta[-1]["hi"]], dtype=np.int64)
        self.offsets = np.load(os.path.join(self.root, OFFSETS_FILE),
                               mmap_mode="r")
        if self.offsets.shape != (self.num_vertices + 1,):
            raise GraphFormatError("offsets must have num_vertices + 1 entries")
        self.edge_weights = None
        self.memory_budget_mb = memory_budget_mb
        self._loaded = OrderedDict()  # partition index -> np.memmap
        self._flat_targets = None
        self._in_view = None

    # -- partition management ------------------------------------------------

    @property
    def num_partitions(self) -> int:
        return len(self._partition_meta)

    def partition(self, index: int) -> CSRPartition:
        meta = self._partition_meta[index]
        return CSRPartition(self, index, meta["lo"], meta["hi"], meta["edges"])

    def partitions(self):
        """Iterate partitions in vertex order (the superstep scan order)."""
        for index in range(self.num_partitions):
            yield self.partition(index)

    def partition_ids(self, vertices: np.ndarray) -> np.ndarray:
        """Owning partition index of each vertex."""
        return np.searchsorted(self.bounds, vertices, side="right") - 1

    def _budget_bytes(self):
        if self.memory_budget_mb is None:
            return None
        return int(self.memory_budget_mb * (1 << 20))

    def _targets_of(self, index: int) -> np.ndarray:
        loaded = self._loaded
        if index in loaded:
            loaded.move_to_end(index)
            return loaded[index]
        path = os.path.join(self.root, self._partition_meta[index]["file"])
        incoming = self._partition_meta[index]["edges"] * 8
        budget = self._budget_bytes()
        if budget is not None:
            while loaded and self.mapped_nbytes() + incoming > budget:
                self._evict(next(iter(loaded)))
        array = np.load(path, mmap_mode="r")
        loaded[index] = array
        _TRACER.instant("partition-load", partition=index,
                        nbytes=int(array.nbytes))
        return array

    def _evict(self, index: int) -> None:
        array = self._loaded.pop(index)
        nbytes = int(array.nbytes)
        # The mapping is clean (read-only), so DONTNEED releases the
        # resident pages immediately; dropping the last reference unmaps.
        base = array
        while getattr(base, "base", None) is not None:
            base = base.base
        with contextlib.suppress(AttributeError, BufferError, OSError):
            base.madvise(4)  # mmap.MADV_DONTNEED
        _TRACER.instant("partition-evict", partition=index, nbytes=nbytes)

    def release(self, index: int = None) -> None:
        """Drop open shard mappings (all of them when ``index`` is None)."""
        indices = list(self._loaded) if index is None else (
            [index] if index in self._loaded else [])
        for i in indices:
            self._evict(i)

    def mapped_nbytes(self) -> int:
        """Bytes of shard files currently mapped (the budgeted working set)."""
        return sum(int(a.nbytes) for a in self._loaded.values())

    # -- CSRGraph API ----------------------------------------------------------

    @property
    def num_edges(self) -> int:
        return self._num_edges

    def out_degrees(self) -> np.ndarray:
        return np.diff(self.offsets)

    def degree(self, v: int) -> int:
        v = int(v)
        return int(self.offsets[v + 1] - self.offsets[v])

    def neighbors(self, v: int) -> np.ndarray:
        v = int(v)
        if not 0 <= v < self.num_vertices:
            raise IndexError(f"vertex {v} out of range")
        pid = int(self.partition_ids(np.array([v], dtype=np.int64))[0])
        base = int(self.offsets[self.bounds[pid]])
        start = int(self.offsets[v]) - base
        stop = int(self.offsets[v + 1]) - base
        return self._targets_of(pid)[start:stop]

    def has_edge(self, u: int, v: int) -> bool:
        seg = self.neighbors(u)
        pos = np.searchsorted(seg, v)
        return bool(pos < seg.size and seg[pos] == v)

    def neighbors_of_many(self, vertices) -> "tuple[np.ndarray, np.ndarray]":
        """Concatenated adjacency in input order, gathered shard by shard.

        Identical output to ``CSRGraph.neighbors_of_many``; peak extra
        memory is one partition's gather plus the O(result) output.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size == 0:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        starts = np.asarray(self.offsets[vertices])
        lengths = np.asarray(self.offsets[vertices + 1]) - starts
        total = int(lengths.sum())
        out = np.empty(total, dtype=np.int64)
        if total == 0:
            return out, lengths
        out_starts = np.concatenate([[0], np.cumsum(lengths)[:-1]])
        pids = self.partition_ids(vertices)
        for pid in np.unique(pids):
            sel = pids == pid
            seg_lengths = lengths[sel]
            seg_total = int(seg_lengths.sum())
            if seg_total == 0:
                continue
            base = int(self.offsets[self.bounds[pid]])
            prefix = np.concatenate([[0], np.cumsum(seg_lengths)[:-1]])
            ramp = np.arange(seg_total, dtype=np.int64)
            flat = np.repeat(starts[sel] - base - prefix, seg_lengths) + ramp
            dest = np.repeat(out_starts[sel] - prefix, seg_lengths) + ramp
            out[dest] = self._targets_of(int(pid))[flat]
        return out, lengths

    def frontier_neighbors_unique(self, frontier) -> "tuple[np.ndarray, int]":
        """Sorted unique neighbors of ``frontier`` plus edges traversed.

        Equals ``np.unique(neighbors_of_many(frontier)[0])`` but holds
        only one partition's gather at a time (a running sorted union
        replaces the global O(frontier-edges) sort), which is what keeps
        BFS supersteps inside the memory budget.
        """
        frontier = np.asarray(frontier, dtype=np.int64)
        if frontier.size == 0:
            return np.zeros(0, dtype=np.int64), 0
        starts = np.asarray(self.offsets[frontier])
        lengths = np.asarray(self.offsets[frontier + 1]) - starts
        traversed = int(lengths.sum())
        pids = self.partition_ids(frontier)
        union = np.zeros(0, dtype=np.int64)
        for pid in np.unique(pids):
            sel = pids == pid
            seg_lengths = lengths[sel]
            seg_total = int(seg_lengths.sum())
            if seg_total == 0:
                continue
            base = int(self.offsets[self.bounds[pid]])
            prefix = np.concatenate([[0], np.cumsum(seg_lengths)[:-1]])
            flat = (np.repeat(starts[sel] - base - prefix, seg_lengths)
                    + np.arange(seg_total, dtype=np.int64))
            gathered = self._targets_of(int(pid))[flat]
            union = np.union1d(union, gathered)
        return union, traversed

    def sources(self) -> np.ndarray:
        """Per-edge source vertex — materializes O(num_edges) memory."""
        _TRACER.instant("sharded-materialize", what="sources",
                        nbytes=self._num_edges * 8)
        return np.repeat(np.arange(self.num_vertices, dtype=np.int64),
                         np.diff(self.offsets))

    @property
    def targets(self) -> np.ndarray:
        """Flat concatenated targets — compat escape hatch for engines
        that index the global edge array; materializes the whole thing
        (once; cached) and defeats the memory budget."""
        if self._flat_targets is None:
            _TRACER.instant("sharded-materialize", what="targets",
                            nbytes=self._num_edges * 8)
            parts = []
            for part in self.partitions():
                parts.append(np.asarray(part.targets))
                part.release()
            self._flat_targets = (np.concatenate(parts) if parts
                                  else np.zeros(0, dtype=np.int64))
        return self._flat_targets

    def reverse(self):
        """Sharded CSR of the transposed graph, built on disk next to
        this one (``<root>/reverse``, atomically published, reused on
        later calls)."""
        if self._in_view is None:
            reverse_root = os.path.join(self.root, "reverse")
            if not os.path.isdir(reverse_root):
                def transposed_blocks():
                    for part in self.partitions():
                        rows = np.repeat(
                            np.arange(part.lo, part.hi, dtype=np.int64),
                            part.out_degrees())
                        yield EdgeList(self.num_vertices,
                                       np.asarray(part.targets), rows)
                        part.release()
                staging = tempfile.mkdtemp(
                    prefix="reverse-", dir=self.root)
                try:
                    build_sharded_csr(
                        transposed_blocks(), self.num_vertices, staging,
                        num_partitions=self.num_partitions,
                        drop_self_loops=False)
                    os.replace(staging, reverse_root)
                except OSError:
                    # Lost a publish race (ENOTEMPTY) — reuse the winner.
                    shutil.rmtree(staging, ignore_errors=True)
                    if not os.path.isdir(reverse_root):
                        raise
            self._in_view = ShardedCSRGraph(
                reverse_root, memory_budget_mb=self.memory_budget_mb)
        return self._in_view

    def to_csr(self) -> CSRGraph:
        """Fully materialized monolithic copy (tests / small graphs)."""
        _TRACER.instant("sharded-materialize", what="csr",
                        nbytes=self.nbytes())
        return CSRGraph(self.num_vertices, np.asarray(self.offsets),
                        self.targets)

    # -- sizes and digests -----------------------------------------------------

    def nbytes(self) -> int:
        """Virtual size: every shard file plus the offsets map."""
        return (self.num_vertices + 1) * 8 + self._num_edges * 8

    def resident_nbytes(self) -> int:
        """Bytes of anonymous (actually held) memory: mmap-backed shards
        count zero; only materialized flat copies count."""
        total = 0
        if self._flat_targets is not None:
            total += int(self._flat_targets.nbytes)
        if self._in_view is not None:
            total += self._in_view.resident_nbytes()
        return total

    def digests(self) -> dict:
        """sha256 of the offsets array and of each partition's targets."""
        parts = []
        for part in self.partitions():
            parts.append(part.sha256())
            part.release()
        return {"offsets": _sha256_of(np.asarray(self.offsets)),
                "partitions": parts}

    def __repr__(self) -> str:
        return (f"ShardedCSRGraph(num_vertices={self.num_vertices}, "
                f"num_edges={self._num_edges}, "
                f"num_partitions={self.num_partitions}, "
                f"memory_budget_mb={self.memory_budget_mb})")


# ---------------------------------------------------------------------------
# Building (external partition/sort)
# ---------------------------------------------------------------------------


def build_sharded_csr(blocks, num_vertices: int, out_dir, *,
                      num_partitions: int = 8,
                      drop_self_loops: bool = True,
                      symmetrize: bool = False,
                      orient_by_id: bool = False) -> dict:
    """Two-pass external build: route edge blocks to per-partition spill
    files, then sort/dedup each partition independently.

    ``blocks`` is any iterable of :class:`EdgeList` chunks (duplicates
    and self loops welcome — this pass owns the paper's Section 4.1.2
    preprocessing, applied per block: ``drop_self_loops``, ``symmetrize``
    for BFS inputs, ``orient_by_id`` for triangle inputs). Peak memory is
    one block plus one partition's spill, never the whole edge list.

    The finalize pass encodes each partition's edges as
    ``(src - lo) * num_vertices + dst`` and runs one ``np.unique`` —
    yielding the sorted unique adjacency ``CSRGraph.from_edges`` would
    produce, so shard bytes are independent of block size, block order
    and partition count. Writes shard files plus ``meta.json`` into
    ``out_dir`` and returns the manifest dict.
    """
    if symmetrize and orient_by_id:
        raise GraphFormatError("symmetrize and orient_by_id are exclusive")
    if num_vertices * num_vertices >= 2 ** 63:
        raise GraphFormatError(
            f"num_vertices={num_vertices} overflows the int64 sort key")
    bounds = partition_bounds(num_vertices, num_partitions)
    os.makedirs(out_dir, exist_ok=True)
    spill_dir = os.path.join(out_dir, "spill")
    os.makedirs(spill_dir, exist_ok=True)
    spill_paths = [os.path.join(spill_dir, f"part_{i:04d}.bin")
                   for i in range(num_partitions)]
    spills = [open(path, "wb") for path in spill_paths]
    raw_edges = 0
    try:
        for block in blocks:
            src, dst = block.src, block.dst
            if getattr(block, "weights", None) is not None:
                raise GraphFormatError(
                    "sharded CSR does not support edge weights")
            raw_edges += src.size
            if orient_by_id:
                lo = np.minimum(src, dst)
                hi = np.maximum(src, dst)
                keep = lo != hi
                src, dst = lo[keep], hi[keep]
            elif drop_self_loops:
                keep = src != dst
                src, dst = src[keep], dst[keep]
            if symmetrize:
                src, dst = (np.concatenate([src, dst]),
                            np.concatenate([dst, src]))
            pids = np.searchsorted(bounds, src, side="right") - 1
            order = np.argsort(pids, kind="stable")
            cuts = np.searchsorted(pids[order], np.arange(num_partitions + 1))
            pairs = np.empty((src.size, 2), dtype=np.int64)
            pairs[:, 0] = src[order]
            pairs[:, 1] = dst[order]
            for pid in range(num_partitions):
                lo_cut, hi_cut = cuts[pid], cuts[pid + 1]
                if hi_cut > lo_cut:
                    spills[pid].write(pairs[lo_cut:hi_cut].tobytes())
    finally:
        for handle in spills:
            handle.close()

    degrees = np.zeros(num_vertices, dtype=np.int64)
    partitions = []
    for pid in range(num_partitions):
        lo, hi = int(bounds[pid]), int(bounds[pid + 1])
        pairs = np.fromfile(spill_paths[pid], dtype=np.int64).reshape(-1, 2)
        os.unlink(spill_paths[pid])
        keys = (pairs[:, 0] - lo) * np.int64(num_vertices) + pairs[:, 1]
        del pairs
        keys = np.unique(keys)
        local_src = keys // num_vertices
        targets = keys - local_src * num_vertices
        del keys
        np.add.at(degrees[lo:hi], local_src,
                  np.ones(local_src.size, dtype=np.int64))
        file_name = targets_file(pid)
        np.save(os.path.join(out_dir, file_name), targets)
        partitions.append({
            "index": pid, "lo": lo, "hi": hi,
            "edges": int(targets.size), "file": file_name,
            "sha256": _sha256_of(targets),
        })
    shutil.rmtree(spill_dir, ignore_errors=True)

    offsets = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(degrees, out=offsets[1:])
    np.save(os.path.join(out_dir, OFFSETS_FILE), offsets)
    manifest = {
        "kind": "sharded-csr",
        "num_vertices": int(num_vertices),
        "num_edges": int(offsets[-1]),
        "raw_edges": int(raw_edges),
        "offsets_sha256": _sha256_of(offsets),
        "partitions": partitions,
    }
    manifest_path = os.path.join(out_dir, MANIFEST_NAME)
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump({"kind": "sharded-csr", "sharded": manifest}, handle,
                  indent=2, sort_keys=True)
    return manifest


def iter_csr_blocks(graph):
    """Yield ``(lo, hi, local_offsets, targets)`` blocks of any CSR graph.

    For :class:`ShardedCSRGraph` each block is one partition (released
    after the consumer advances); for a monolithic :class:`CSRGraph` a
    single block spans the whole graph. Lets O(E) validation and scan
    passes run partition-at-a-time without caring about the storage.
    """
    if isinstance(graph, ShardedCSRGraph):
        for part in graph.partitions():
            yield part.lo, part.hi, part.local_offsets(), part.targets
            part.release()
    else:
        yield 0, graph.num_vertices, graph.offsets, graph.targets


def graph_digests(graph, num_partitions: int = None) -> dict:
    """Partition digests of any CSR graph, for cross-path equivalence.

    For a monolithic graph, ``num_partitions`` slices its flat targets
    at the same vertex-range bounds a sharded build would use, so the
    two storage layouts hash identically when (and only when) the bytes
    match.
    """
    if isinstance(graph, ShardedCSRGraph):
        return graph.digests()
    if num_partitions is None:
        num_partitions = 1
    bounds = partition_bounds(graph.num_vertices, num_partitions)
    parts = []
    for pid in range(num_partitions):
        lo = int(graph.offsets[bounds[pid]])
        hi = int(graph.offsets[bounds[pid + 1]])
        parts.append(_sha256_of(graph.targets[lo:hi]))
    return {"offsets": _sha256_of(np.asarray(graph.offsets, dtype=np.int64)),
            "partitions": parts}
