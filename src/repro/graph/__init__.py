"""Graph substrate: storage formats, partitioners and graph statistics."""

from .bipartite import RatingsMatrix
from .bitvector import BitVector
from .csr import CSRGraph
from .cuckoo import CuckooHashSet
from .edgelist import EdgeList
from .partition import (
    Partition1D,
    Partition2D,
    VertexCutPartition,
    partition_2d,
    partition_edges_1d,
    partition_vertex_cut,
    partition_vertices_1d,
)
from .sharded import (
    CSRPartition,
    ShardedCSRGraph,
    build_sharded_csr,
    graph_digests,
    iter_csr_blocks,
    partition_bounds,
)
from .properties import (
    PowerLawFit,
    count_triangles_exact,
    degree_histogram,
    fit_power_law,
    gini_coefficient,
    tail_distance,
)

__all__ = [
    "BitVector",
    "CSRGraph",
    "CSRPartition",
    "CuckooHashSet",
    "EdgeList",
    "ShardedCSRGraph",
    "build_sharded_csr",
    "graph_digests",
    "iter_csr_blocks",
    "partition_bounds",
    "Partition1D",
    "Partition2D",
    "PowerLawFit",
    "RatingsMatrix",
    "VertexCutPartition",
    "count_triangles_exact",
    "degree_histogram",
    "fit_power_law",
    "gini_coefficient",
    "partition_2d",
    "partition_edges_1d",
    "partition_vertex_cut",
    "partition_vertices_1d",
    "tail_distance",
]
