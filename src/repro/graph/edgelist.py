"""Edge-list representation and the preprocessing steps the paper applies.

The Graph500 RMAT generator "only generates a list of edges (with possible
duplicates)" (Section 4.1.2). Before an algorithm can run, the paper's
pipeline dedups those edges and then, per algorithm:

* PageRank — assign a direction to every generated edge;
* BFS — symmetrize (provide both directions of every edge);
* Triangle counting — orient every edge from the smaller to the larger
  vertex id, which removes cycles and makes every triangle counted once.

Those exact transformations are provided here as methods on
:class:`EdgeList`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import GraphFormatError


@dataclass
class EdgeList:
    """A bag of directed edges ``src[i] -> dst[i]`` with optional weights.

    ``num_vertices`` fixes the vertex-id universe ``[0, num_vertices)``;
    vertices with no incident edges are legal (real graphs have them).
    """

    num_vertices: int
    src: np.ndarray
    dst: np.ndarray
    weights: np.ndarray = field(default=None)

    def __post_init__(self):
        self.src = np.asarray(self.src, dtype=np.int64)
        self.dst = np.asarray(self.dst, dtype=np.int64)
        if self.src.shape != self.dst.shape or self.src.ndim != 1:
            raise GraphFormatError("src and dst must be 1-D arrays of equal length")
        if self.weights is not None:
            self.weights = np.asarray(self.weights, dtype=np.float64)
            if self.weights.shape != self.src.shape:
                raise GraphFormatError("weights must match the number of edges")
        if self.src.size:
            lo = min(int(self.src.min()), int(self.dst.min()))
            hi = max(int(self.src.max()), int(self.dst.max()))
            if lo < 0 or hi >= self.num_vertices:
                raise GraphFormatError(
                    f"edge endpoints [{lo}, {hi}] outside [0, {self.num_vertices})"
                )

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_pairs(cls, num_vertices: int, pairs, weights=None) -> "EdgeList":
        pairs = np.asarray(list(pairs), dtype=np.int64).reshape(-1, 2)
        return cls(num_vertices, pairs[:, 0], pairs[:, 1], weights)

    # -- basic properties ----------------------------------------------------

    @property
    def num_edges(self) -> int:
        return int(self.src.size)

    def __len__(self) -> int:
        return self.num_edges

    def pairs(self) -> np.ndarray:
        """``(E, 2)`` array of (src, dst)."""
        return np.stack([self.src, self.dst], axis=1)

    # -- preprocessing (paper Section 4.1.2) ---------------------------------

    def deduplicate(self) -> "EdgeList":
        """Drop duplicate (src, dst) pairs; keeps the first weight seen."""
        keys = self.src * np.int64(self.num_vertices) + self.dst
        _, first = np.unique(keys, return_index=True)
        first.sort()
        weights = None if self.weights is None else self.weights[first]
        return EdgeList(self.num_vertices, self.src[first], self.dst[first], weights)

    def drop_self_loops(self) -> "EdgeList":
        keep = self.src != self.dst
        weights = None if self.weights is None else self.weights[keep]
        return EdgeList(self.num_vertices, self.src[keep], self.dst[keep], weights)

    def symmetrize(self) -> "EdgeList":
        """Return both directions of every edge (BFS input), deduplicated."""
        src = np.concatenate([self.src, self.dst])
        dst = np.concatenate([self.dst, self.src])
        weights = None
        if self.weights is not None:
            weights = np.concatenate([self.weights, self.weights])
        return EdgeList(self.num_vertices, src, dst, weights).deduplicate()

    def orient_by_id(self) -> "EdgeList":
        """Orient edges from smaller to larger id (triangle-count input).

        Guarantees an acyclic digraph with at most one edge per vertex
        pair, which is the paper's preprocessing for triangle counting.
        """
        lo = np.minimum(self.src, self.dst)
        hi = np.maximum(self.src, self.dst)
        keep = lo != hi
        oriented = EdgeList(self.num_vertices, lo[keep], hi[keep])
        return oriented.deduplicate()

    def relabel_compact(self) -> "tuple[EdgeList, np.ndarray]":
        """Renumber vertices so only those with incident edges remain.

        Returns the compacted edge list and the array mapping new id ->
        old id. Used by the ratings generator after its degree filter.
        """
        used = np.unique(np.concatenate([self.src, self.dst]))
        remap = np.full(self.num_vertices, -1, dtype=np.int64)
        remap[used] = np.arange(used.size)
        compact = EdgeList(int(used.size), remap[self.src], remap[self.dst], self.weights)
        return compact, used

    def permuted(self, rng: np.random.Generator) -> "EdgeList":
        """Edges in a uniformly random order (SGD requires this)."""
        order = rng.permutation(self.num_edges)
        weights = None if self.weights is None else self.weights[order]
        return EdgeList(self.num_vertices, self.src[order], self.dst[order], weights)

    # -- statistics ----------------------------------------------------------

    def out_degrees(self) -> np.ndarray:
        return np.bincount(self.src, minlength=self.num_vertices).astype(np.int64)

    def in_degrees(self) -> np.ndarray:
        return np.bincount(self.dst, minlength=self.num_vertices).astype(np.int64)

    def nbytes(self) -> int:
        total = self.src.nbytes + self.dst.nbytes
        if self.weights is not None:
            total += self.weights.nbytes
        return total

    def resident_nbytes(self) -> int:
        """Bytes held as anonymous memory; mmap-backed arrays count zero."""
        from .csr import resident_nbytes_of

        return resident_nbytes_of(self.src, self.dst, self.weights)

    def __repr__(self) -> str:
        kind = "weighted" if self.weights is not None else "unweighted"
        return (
            f"EdgeList(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges}, {kind})"
        )
