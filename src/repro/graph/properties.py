"""Graph statistics: degree distributions and power-law tail fitting.

The paper's data-generation methodology (Section 4.1.2) hinges on matching
degree-distribution *tails*: the authors tuned RMAT parameters "through
experimentation" until the synthetic tail was "reasonably close to that of
the Netflix dataset". These helpers quantify that closeness so our
generators can be validated the same way.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def degree_histogram(degrees) -> "tuple[np.ndarray, np.ndarray]":
    """Return (degree values >= 1, counts) for the non-isolated vertices."""
    degrees = np.asarray(degrees, dtype=np.int64)
    degrees = degrees[degrees > 0]
    if degrees.size == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    values, counts = np.unique(degrees, return_counts=True)
    return values, counts


@dataclass
class PowerLawFit:
    """Result of a discrete power-law tail fit ``P(d) ~ d**(-alpha)``."""

    alpha: float
    xmin: int
    tail_fraction: float

    def __repr__(self) -> str:
        return (
            f"PowerLawFit(alpha={self.alpha:.3f}, xmin={self.xmin}, "
            f"tail_fraction={self.tail_fraction:.3f})"
        )


def fit_power_law(degrees, xmin: int = None) -> PowerLawFit:
    """Maximum-likelihood exponent of the degree tail (Clauset et al. MLE).

    ``alpha = 1 + n / sum(ln(d_i / (xmin - 0.5)))`` over degrees >= xmin.
    If ``xmin`` is omitted, the 90th percentile of positive degrees is
    used, which targets the tail the paper cares about.
    """
    degrees = np.asarray(degrees, dtype=np.float64)
    degrees = degrees[degrees > 0]
    if degrees.size == 0:
        raise ValueError("cannot fit a power law to an empty degree sequence")
    if xmin is None:
        xmin = max(int(np.percentile(degrees, 90)), 2)
    tail = degrees[degrees >= xmin]
    if tail.size < 2:
        raise ValueError(f"too few tail samples (got {tail.size}) for xmin={xmin}")
    alpha = 1.0 + tail.size / float(np.log(tail / (xmin - 0.5)).sum())
    return PowerLawFit(alpha=float(alpha),
                       xmin=int(xmin),
                       tail_fraction=float(tail.size / degrees.size))


def gini_coefficient(degrees) -> float:
    """Skewness of the degree distribution in [0, 1].

    0 means perfectly uniform degrees; social graphs sit near 0.6-0.8.
    Used by tests to check RMAT output is "highly skewed towards a few
    items" (abstract of the paper) while Erdos-Renyi-like data is not.
    """
    degrees = np.sort(np.asarray(degrees, dtype=np.float64))
    if degrees.size == 0 or degrees.sum() == 0:
        return 0.0
    n = degrees.size
    ranks = np.arange(1, n + 1)
    return float((2.0 * (ranks * degrees).sum() / (n * degrees.sum())) - (n + 1.0) / n)


def tail_distance(degrees_a, degrees_b, quantiles=None) -> float:
    """Log-space distance between two degree-distribution tails.

    Compares the upper quantiles (default 0.9 ... 0.999) of the two
    degree sequences; this is the "reasonably close tail" criterion of
    Section 4.1.2 made quantitative. Returns the mean absolute
    log10-ratio across quantiles (0 = identical tails).
    """
    if quantiles is None:
        quantiles = [0.90, 0.95, 0.99, 0.995, 0.999]
    a = np.asarray(degrees_a, dtype=np.float64)
    b = np.asarray(degrees_b, dtype=np.float64)
    a = a[a > 0]
    b = b[b > 0]
    if a.size == 0 or b.size == 0:
        raise ValueError("degree sequences must contain positive entries")
    qa = np.quantile(a, quantiles)
    qb = np.quantile(b, quantiles)
    return float(np.mean(np.abs(np.log10(np.maximum(qa, 1.0))
                                - np.log10(np.maximum(qb, 1.0)))))


def count_triangles_exact(graph) -> int:
    """Reference triangle count on an id-oriented CSR graph.

    Expects the ``orient_by_id`` preprocessing (every undirected edge
    stored once, from the smaller to the larger id), under which the sum
    of per-edge neighborhood intersections counts each triangle exactly
    once. Runs in O(sum of min-degree products); fine for test graphs.
    """
    total = 0
    for u in range(graph.num_vertices):
        nbrs_u = graph.neighbors(u)
        for v in nbrs_u:
            nbrs_v = graph.neighbors(int(v))
            total += int(np.intersect1d(nbrs_u, nbrs_v, assume_unique=True).size)
    return total
