"""Packed bit-vector used by the native BFS and triangle-counting kernels.

The paper (Section 6.1.1) credits bit-vectors with a >2x speedup for BFS
and triangle counting: they provide constant-time membership tests while
touching 64x fewer bytes than a byte-per-vertex array, which matters for
cache behaviour and for compressing the visited-set exchanged between
nodes.

The implementation is a thin, vectorized wrapper over a ``numpy.uint64``
word array so that bulk operations (set many bits, population count,
serialization for the wire) are NumPy-speed rather than per-bit Python.
"""

from __future__ import annotations

import numpy as np

_WORD_BITS = 64


class BitVector:
    """Fixed-size vector of bits addressed by integer index.

    Parameters
    ----------
    size:
        Number of addressable bits. Out-of-range indices raise
        ``IndexError`` just as a NumPy array would.
    """

    __slots__ = ("size", "_words")

    def __init__(self, size: int):
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        self.size = int(size)
        n_words = (self.size + _WORD_BITS - 1) // _WORD_BITS
        self._words = np.zeros(n_words, dtype=np.uint64)

    @classmethod
    def from_indices(cls, size: int, indices) -> "BitVector":
        """Build a vector of ``size`` bits with ``indices`` set."""
        vec = cls(size)
        vec.set_many(indices)
        return vec

    @classmethod
    def from_words(cls, size: int, words: np.ndarray) -> "BitVector":
        """Rehydrate a vector from its packed word array (wire format)."""
        vec = cls(size)
        words = np.asarray(words, dtype=np.uint64)
        if words.shape != vec._words.shape:
            raise ValueError(
                f"expected {vec._words.shape[0]} words for {size} bits, "
                f"got {words.shape[0]}"
            )
        vec._words = words.copy()
        return vec

    # -- scalar interface -------------------------------------------------

    def _check(self, index: int) -> int:
        index = int(index)
        if not 0 <= index < self.size:
            raise IndexError(f"bit index {index} out of range [0, {self.size})")
        return index

    def set(self, index: int) -> None:
        index = self._check(index)
        self._words[index >> 6] |= np.uint64(1) << np.uint64(index & 63)

    def clear(self, index: int) -> None:
        index = self._check(index)
        self._words[index >> 6] &= ~(np.uint64(1) << np.uint64(index & 63))

    def test(self, index: int) -> bool:
        index = self._check(index)
        word = self._words[index >> 6]
        return bool((word >> np.uint64(index & 63)) & np.uint64(1))

    __getitem__ = test

    def __setitem__(self, index: int, value) -> None:
        if value:
            self.set(index)
        else:
            self.clear(index)

    # -- bulk interface ---------------------------------------------------

    def set_many(self, indices) -> None:
        """Set all bits in ``indices`` (duplicates allowed)."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            return
        if indices.min() < 0 or indices.max() >= self.size:
            raise IndexError("bit index out of range in set_many")
        words = indices >> 6
        bits = (np.uint64(1) << (indices & 63).astype(np.uint64))
        np.bitwise_or.at(self._words, words, bits)

    def test_many(self, indices) -> np.ndarray:
        """Vectorized membership test; returns a boolean array."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            return np.zeros(0, dtype=bool)
        if indices.min() < 0 or indices.max() >= self.size:
            raise IndexError("bit index out of range in test_many")
        words = self._words[indices >> 6]
        return ((words >> (indices & 63).astype(np.uint64)) & np.uint64(1)).astype(bool)

    def to_indices(self) -> np.ndarray:
        """Return the sorted indices of all set bits."""
        set_word_idx = np.nonzero(self._words)[0]
        out = []
        for wi in set_word_idx:
            word = int(self._words[wi])
            base = int(wi) << 6
            while word:
                low = word & -word
                out.append(base + low.bit_length() - 1)
                word ^= low
        return np.asarray(out, dtype=np.int64)

    def count(self) -> int:
        """Population count (number of set bits)."""
        return int(np.unpackbits(self._words.view(np.uint8)).sum())

    def clear_all(self) -> None:
        self._words[:] = 0

    # -- set algebra ------------------------------------------------------

    def _binary(self, other: "BitVector", op) -> "BitVector":
        if self.size != other.size:
            raise ValueError(f"size mismatch: {self.size} vs {other.size}")
        result = BitVector(self.size)
        result._words = op(self._words, other._words)
        return result

    def __or__(self, other: "BitVector") -> "BitVector":
        return self._binary(other, np.bitwise_or)

    def __and__(self, other: "BitVector") -> "BitVector":
        return self._binary(other, np.bitwise_and)

    def __xor__(self, other: "BitVector") -> "BitVector":
        return self._binary(other, np.bitwise_xor)

    def intersect_count(self, other: "BitVector") -> int:
        """``popcount(self & other)`` without materializing the result."""
        if self.size != other.size:
            raise ValueError(f"size mismatch: {self.size} vs {other.size}")
        both = np.bitwise_and(self._words, other._words)
        return int(np.unpackbits(both.view(np.uint8)).sum())

    # -- wire format ------------------------------------------------------

    @property
    def words(self) -> np.ndarray:
        """Packed ``uint64`` word array (read-only view)."""
        view = self._words.view()
        view.flags.writeable = False
        return view

    def nbytes(self) -> int:
        """Bytes this vector occupies in memory / on the wire."""
        return self._words.nbytes

    def __len__(self) -> int:
        return self.size

    def __eq__(self, other) -> bool:
        if not isinstance(other, BitVector):
            return NotImplemented
        return self.size == other.size and bool(np.array_equal(self._words, other._words))

    __hash__ = None  # mutable; explicitly unhashable

    def __repr__(self) -> str:
        return f"BitVector(size={self.size}, set={self.count()})"
