"""Compressed Sparse Row graph storage.

The paper's native implementation stores the graph "in a Compressed-Sparse
Row (CSR) format [...] allow[ing] for the edges to be stored as a single,
contiguous array" so that edge scans are streaming accesses that the
hardware prefetcher can hide (Section 3.1). PageRank notably stores the
*incoming* edges in CSR, because each vertex reads the ranks of its
in-neighbors.

:class:`CSRGraph` provides both orientations on demand and the segment
helpers (``offsets``/``targets``) every engine in this package consumes.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphFormatError
from .edgelist import EdgeList


def resident_nbytes_of(*arrays) -> int:
    """Bytes of the given arrays actually backed by anonymous memory.

    Cache-loaded datasets are ``np.load(..., mmap_mode="r")`` views: the
    kernel faults their pages in and can discard them under pressure, so
    counting ``nbytes`` as held memory double-counts the page cache.
    An array whose base buffer is an ``mmap``/``np.memmap`` contributes
    zero here; everything else contributes its full ``nbytes``.
    """
    total = 0
    for array in arrays:
        if array is None:
            continue
        base = array
        while isinstance(base, np.ndarray) and base.base is not None:
            base = base.base
        if isinstance(base, np.memmap) or type(base).__name__ == "mmap":
            continue
        total += int(array.nbytes)
    return total


class CSRGraph:
    """Immutable directed graph in CSR form.

    ``offsets`` has length ``num_vertices + 1``; the out-neighbors of
    vertex ``v`` are ``targets[offsets[v]:offsets[v+1]]``, sorted
    ascending. ``edge_weights`` (optional) is aligned with ``targets``.
    """

    __slots__ = ("num_vertices", "offsets", "targets", "edge_weights", "_in_view")

    def __init__(self, num_vertices, offsets, targets, edge_weights=None):
        self.num_vertices = int(num_vertices)
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.targets = np.asarray(targets, dtype=np.int64)
        self.edge_weights = (
            None if edge_weights is None else np.asarray(edge_weights, dtype=np.float64)
        )
        self._in_view = None
        if self.offsets.shape != (self.num_vertices + 1,):
            raise GraphFormatError("offsets must have num_vertices + 1 entries")
        if self.offsets[0] != 0 or self.offsets[-1] != self.targets.size:
            raise GraphFormatError("offsets must start at 0 and end at num_edges")
        if np.any(np.diff(self.offsets) < 0):
            raise GraphFormatError("offsets must be non-decreasing")
        if self.targets.size and (
            self.targets.min() < 0 or self.targets.max() >= self.num_vertices
        ):
            raise GraphFormatError("target vertex id out of range")
        if self.edge_weights is not None and self.edge_weights.shape != self.targets.shape:
            raise GraphFormatError("edge_weights must align with targets")

    # -- constructors -------------------------------------------------------

    @classmethod
    def from_edges(cls, edges: EdgeList, sort_targets: bool = True) -> "CSRGraph":
        """Build out-edge CSR from an edge list (stable per-source order)."""
        degrees = np.bincount(edges.src, minlength=edges.num_vertices)
        offsets = np.zeros(edges.num_vertices + 1, dtype=np.int64)
        np.cumsum(degrees, out=offsets[1:])
        if sort_targets:
            # Sort by (src, dst) so each adjacency segment is ascending —
            # required by the linear-time set intersections in triangle
            # counting (paper Algorithm 4).
            order = np.lexsort((edges.dst, edges.src))
        else:
            order = np.argsort(edges.src, kind="stable")
        targets = edges.dst[order]
        weights = None if edges.weights is None else edges.weights[order]
        return cls(edges.num_vertices, offsets, targets, weights)

    # -- views ----------------------------------------------------------------

    def reverse(self) -> "CSRGraph":
        """CSR of the transposed graph (in-edges); cached after first call."""
        if self._in_view is None:
            edges = EdgeList(self.num_vertices, self.targets, self.sources(),
                             self.edge_weights)
            self._in_view = CSRGraph.from_edges(edges)
        return self._in_view

    def sources(self) -> np.ndarray:
        """Per-edge source vertex (the CSR row index, expanded)."""
        return np.repeat(np.arange(self.num_vertices, dtype=np.int64),
                         np.diff(self.offsets))

    # -- accessors --------------------------------------------------------------

    @property
    def num_edges(self) -> int:
        return int(self.targets.size)

    def neighbors(self, v: int) -> np.ndarray:
        v = int(v)
        if not 0 <= v < self.num_vertices:
            raise IndexError(f"vertex {v} out of range")
        return self.targets[self.offsets[v]:self.offsets[v + 1]]

    def neighbor_weights(self, v: int) -> np.ndarray:
        if self.edge_weights is None:
            raise GraphFormatError("graph has no edge weights")
        v = int(v)
        return self.edge_weights[self.offsets[v]:self.offsets[v + 1]]

    def degree(self, v: int) -> int:
        v = int(v)
        return int(self.offsets[v + 1] - self.offsets[v])

    def out_degrees(self) -> np.ndarray:
        return np.diff(self.offsets)

    def neighbors_of_many(self, vertices) -> "tuple[np.ndarray, np.ndarray]":
        """Concatenated adjacency of ``vertices`` (vectorized frontier gather).

        Returns ``(targets, segment_lengths)`` where ``targets`` is the
        concatenation of each vertex's neighbor list in input order. This
        is the hot gather of frontier-based BFS, implemented without a
        Python-level loop over the frontier.
        """
        vertices = np.asarray(vertices, dtype=np.int64)
        if vertices.size == 0:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
        starts = self.offsets[vertices]
        lengths = self.offsets[vertices + 1] - starts
        total = int(lengths.sum())
        if total == 0:
            return np.zeros(0, dtype=np.int64), lengths
        # Standard ragged-gather trick: cumulative segment offsets turned
        # into a flat index vector with one arange and two repeats.
        flat = np.repeat(starts - np.concatenate([[0], np.cumsum(lengths)[:-1]]),
                         lengths) + np.arange(total, dtype=np.int64)
        return self.targets[flat], lengths

    def has_edge(self, u: int, v: int) -> bool:
        """Binary search within u's sorted adjacency segment."""
        seg = self.neighbors(u)
        pos = np.searchsorted(seg, v)
        return bool(pos < seg.size and seg[pos] == v)

    def nbytes(self) -> int:
        """Virtual size of the graph's arrays (mmap-backed or not)."""
        total = self.offsets.nbytes + self.targets.nbytes
        if self.edge_weights is not None:
            total += self.edge_weights.nbytes
        return total

    def resident_nbytes(self) -> int:
        """Bytes held as anonymous memory; mmap-backed arrays count zero.

        A cache-loaded graph reports ~0 (its pages live in the page
        cache, reclaimable), while a freshly built one reports
        ``nbytes()`` — the distinction serve admission and the sweep
        supervisor budget against.
        """
        total = resident_nbytes_of(self.offsets, self.targets,
                                   self.edge_weights)
        if self._in_view is not None:
            total += self._in_view.resident_nbytes()
        return total

    def __repr__(self) -> str:
        return (
            f"CSRGraph(num_vertices={self.num_vertices}, "
            f"num_edges={self.num_edges})"
        )
