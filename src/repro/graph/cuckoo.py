"""Cuckoo hash set, the data structure GraphLab uses for triangle counting.

Section 5.3 of the paper attributes GraphLab's strong multi-node triangle
counting performance to "the cuckoo hash data structure that allows for a
fast union of neighbor lists". We implement the classic two-table cuckoo
scheme: every key lives in exactly one of two candidate buckets, so lookup
probes at most two slots — constant time with a very small constant, which
is the property the paper exploits for neighborhood intersection.
"""

from __future__ import annotations

import numpy as np

_EMPTY = -1
_MAX_KICKS = 500

# Two independent 64-bit mixers (splitmix64-style finalizers with distinct
# constants) so the two candidate positions of a key are uncorrelated.
_MIX1 = (0xBF58476D1CE4E5B9, 0x94D049BB133111EB)
_MIX2 = (0xC2B2AE3D27D4EB4F, 0x165667B19E3779F9)
_MASK = (1 << 64) - 1


def _mix(key: int, c1: int, c2: int) -> int:
    h = (key + 0x9E3779B97F4A7C15) & _MASK
    h = ((h ^ (h >> 30)) * c1) & _MASK
    h = ((h ^ (h >> 27)) * c2) & _MASK
    return h ^ (h >> 31)


class CuckooHashSet:
    """Set of non-negative integers with worst-case O(1) membership probes.

    Parameters
    ----------
    capacity_hint:
        Expected number of elements; tables are sized for a load factor of
        about 0.4, which keeps cuckoo insertion displacement chains short.
    """

    def __init__(self, capacity_hint: int = 16):
        capacity_hint = max(int(capacity_hint), 4)
        self._n_buckets = 1
        while self._n_buckets < capacity_hint * 5 // 4:
            self._n_buckets *= 2
        self._t1 = np.full(self._n_buckets, _EMPTY, dtype=np.int64)
        self._t2 = np.full(self._n_buckets, _EMPTY, dtype=np.int64)
        self._count = 0

    @classmethod
    def from_iterable(cls, keys) -> "CuckooHashSet":
        keys = list(keys)
        table = cls(capacity_hint=max(len(keys), 4))
        for key in keys:
            table.add(key)
        return table

    def _h1(self, key: int) -> int:
        return _mix(key, *_MIX1) & (self._n_buckets - 1)

    def _h2(self, key: int) -> int:
        return _mix(key, *_MIX2) & (self._n_buckets - 1)

    def __contains__(self, key) -> bool:
        key = int(key)
        if key < 0:
            raise ValueError("CuckooHashSet stores non-negative integers only")
        return self._t1[self._h1(key)] == key or self._t2[self._h2(key)] == key

    def add(self, key) -> bool:
        """Insert ``key``; returns True if it was newly added."""
        key = int(key)
        if key < 0:
            raise ValueError("CuckooHashSet stores non-negative integers only")
        if key in self:
            return False
        current = key
        for _ in range(_MAX_KICKS):
            slot = self._h1(current)
            current, self._t1[slot] = int(self._t1[slot]), current
            if current == _EMPTY:
                self._count += 1
                return True
            slot = self._h2(current)
            current, self._t2[slot] = int(self._t2[slot]), current
            if current == _EMPTY:
                self._count += 1
                return True
        # Displacement cycle: grow and retry (standard cuckoo rehash).
        self._grow(pending=current)
        self._count += 1
        return True

    def _grow(self, pending: int) -> None:
        old = [int(k) for k in self._t1 if k != _EMPTY]
        old.extend(int(k) for k in self._t2 if k != _EMPTY)
        old.append(pending)
        self._n_buckets *= 2
        self._t1 = np.full(self._n_buckets, _EMPTY, dtype=np.int64)
        self._t2 = np.full(self._n_buckets, _EMPTY, dtype=np.int64)
        self._count = 0
        for key in old:
            self.add(key)
        # add() above restored the correct count, including ``pending``;
        # the caller increments once more for the key that triggered the
        # grow, so compensate here.
        self._count -= 1

    def contains_many(self, keys) -> np.ndarray:
        """Vectorized membership test used by neighborhood intersection."""
        keys = np.asarray(keys, dtype=np.int64)
        if keys.size == 0:
            return np.zeros(0, dtype=bool)
        if keys.min() < 0:
            raise ValueError("CuckooHashSet stores non-negative integers only")
        hits = np.zeros(keys.shape, dtype=bool)
        for i, key in enumerate(keys):
            hits[i] = key in self
        return hits

    def intersect_count(self, keys) -> int:
        """Number of ``keys`` present in the set (triangle-count kernel)."""
        return int(self.contains_many(keys).sum())

    def __len__(self) -> int:
        return self._count

    def __iter__(self):
        for table in (self._t1, self._t2):
            for key in table:
                if key != _EMPTY:
                    yield int(key)

    def nbytes(self) -> int:
        return self._t1.nbytes + self._t2.nbytes

    def __repr__(self) -> str:
        return f"CuckooHashSet(len={self._count}, buckets={self._n_buckets})"
