"""Edge-list persistence: whitespace text (SNAP-style) and NPZ binary.

The real datasets the paper uses (LiveJournal, Twitter, Netflix, ...) ship
as whitespace-separated edge lists; this module reads and writes that
format, plus a compact ``.npz`` binary for cached synthetic datasets.
"""

from __future__ import annotations

import os

import numpy as np

from ..errors import GraphFormatError
from .bipartite import RatingsMatrix
from .edgelist import EdgeList


def save_edgelist_text(path, edges: EdgeList) -> None:
    """Write ``src dst [weight]`` lines with a header comment."""
    columns = [edges.src, edges.dst]
    fmt = "%d %d"
    if edges.weights is not None:
        columns.append(edges.weights)
        fmt = "%d %d %.17g"
    header = f"num_vertices={edges.num_vertices} num_edges={edges.num_edges}"
    np.savetxt(path, np.column_stack(columns), fmt=fmt, header=header)


def load_edgelist_text(path, num_vertices: int = None) -> EdgeList:
    """Read ``src dst [weight]`` lines; '#'-prefixed lines are comments.

    If the file carries the header written by :func:`save_edgelist_text`,
    ``num_vertices`` is recovered from it; otherwise it defaults to
    ``max id + 1`` unless given explicitly.
    """
    header_vertices = None
    with open(path) as handle:
        first = handle.readline()
    if first.startswith("#") and "num_vertices=" in first:
        try:
            header_vertices = int(first.split("num_vertices=")[1].split()[0])
        except (IndexError, ValueError) as exc:
            raise GraphFormatError(f"malformed header in {path}") from exc

    data = np.loadtxt(path, comments="#", ndmin=2)
    if data.size == 0:
        if num_vertices is None and header_vertices is None:
            raise GraphFormatError(f"{path} is empty and num_vertices unknown")
        n = num_vertices if num_vertices is not None else header_vertices
        return EdgeList(n, np.zeros(0, np.int64), np.zeros(0, np.int64))
    if data.shape[1] not in (2, 3):
        raise GraphFormatError(
            f"{path}: expected 2 or 3 columns, found {data.shape[1]}"
        )
    src = data[:, 0].astype(np.int64)
    dst = data[:, 1].astype(np.int64)
    weights = data[:, 2] if data.shape[1] == 3 else None
    if num_vertices is None:
        num_vertices = header_vertices
    if num_vertices is None:
        num_vertices = int(max(src.max(), dst.max())) + 1
    return EdgeList(num_vertices, src, dst, weights)


def save_edgelist_npz(path, edges: EdgeList) -> None:
    payload = {
        "num_vertices": np.int64(edges.num_vertices),
        "src": edges.src,
        "dst": edges.dst,
    }
    if edges.weights is not None:
        payload["weights"] = edges.weights
    np.savez_compressed(path, **payload)


def load_edgelist_npz(path) -> EdgeList:
    with np.load(path) as data:
        weights = data["weights"] if "weights" in data else None
        return EdgeList(int(data["num_vertices"]), data["src"], data["dst"], weights)


def save_ratings_npz(path, ratings: RatingsMatrix) -> None:
    np.savez_compressed(
        path,
        num_users=np.int64(ratings.num_users),
        num_items=np.int64(ratings.num_items),
        users=ratings.users,
        items=ratings.items,
        ratings=ratings.ratings,
    )


def load_ratings_npz(path) -> RatingsMatrix:
    with np.load(path) as data:
        return RatingsMatrix(
            int(data["num_users"]), int(data["num_items"]),
            data["users"], data["items"], data["ratings"],
        )


def cached(path, builder, loader, saver):
    """Load from ``path`` if present, else build, save and return.

    Small helper used by the experiment harness to avoid regenerating
    synthetic datasets on every run.
    """
    if os.path.exists(path):
        return loader(path)
    obj = builder()
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    saver(path, obj)
    return obj
