"""Graph partitioning schemes used by the frameworks in the paper.

Table 2 and Section 6.1.1 enumerate them:

* 1-D vertex partitioning (Giraph, SociaLite, GraphLab's basic mode) —
  each node owns a contiguous range of vertices and their edges;
* 1-D *edge-balanced* partitioning (the native code) — vertex ranges are
  chosen "so that each node has roughly the same number of edges";
* 2-D partitioning (CombBLAS) — the adjacency matrix is split into a
  sqrt(P) x sqrt(P) block grid and each processor owns one block of
  edges;
* vertex-cut with high-degree replication (GraphLab v2.2) — edges are
  distributed and high-degree vertices are mirrored on several nodes,
  which the paper credits with better load balance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..errors import PartitionError
from .csr import CSRGraph


def _ranges_from_bounds(bounds: np.ndarray):
    return [(int(bounds[p]), int(bounds[p + 1])) for p in range(bounds.size - 1)]


@dataclass
class Partition1D:
    """Contiguous vertex ranges; ``bounds`` has ``num_parts + 1`` entries."""

    num_vertices: int
    bounds: np.ndarray

    @property
    def num_parts(self) -> int:
        return int(self.bounds.size - 1)

    def owner(self, vertex: int) -> int:
        vertex = int(vertex)
        if not 0 <= vertex < self.num_vertices:
            raise IndexError(f"vertex {vertex} out of range")
        return int(np.searchsorted(self.bounds, vertex, side="right") - 1)

    def owner_of_many(self, vertices) -> np.ndarray:
        vertices = np.asarray(vertices, dtype=np.int64)
        return np.searchsorted(self.bounds, vertices, side="right") - 1

    def part_range(self, part: int):
        if not 0 <= part < self.num_parts:
            raise IndexError(f"part {part} out of range")
        return int(self.bounds[part]), int(self.bounds[part + 1])

    def part_sizes(self) -> np.ndarray:
        return np.diff(self.bounds)

    def ranges(self):
        return _ranges_from_bounds(self.bounds)


def partition_vertices_1d(num_vertices: int, num_parts: int) -> Partition1D:
    """Equal vertex counts per part (Giraph/SociaLite-style)."""
    if num_parts <= 0:
        raise PartitionError(f"num_parts must be positive, got {num_parts}")
    bounds = np.linspace(0, num_vertices, num_parts + 1).astype(np.int64)
    return Partition1D(num_vertices, bounds)


def partition_edges_1d(graph: CSRGraph, num_parts: int) -> Partition1D:
    """Contiguous vertex ranges balanced by edge count (native code).

    Splits the prefix-sum of degrees at multiples of ``E / P``, the
    approach the paper describes for the native PageRank (Section 3.1).
    """
    if num_parts <= 0:
        raise PartitionError(f"num_parts must be positive, got {num_parts}")
    offsets = graph.offsets
    total = graph.num_edges
    cut_points = (np.arange(1, num_parts) * total) // num_parts
    inner = np.searchsorted(offsets, cut_points, side="left")
    bounds = np.concatenate([[0], inner, [graph.num_vertices]]).astype(np.int64)
    bounds = np.maximum.accumulate(bounds)  # keep monotone for tiny graphs
    return Partition1D(graph.num_vertices, bounds)


@dataclass
class Partition2D:
    """CombBLAS-style block grid over the adjacency matrix.

    Processor ``(i, j)`` of a ``grid x grid`` layout owns edges whose
    source falls in row-band ``i`` and destination in column-band ``j``.
    Vectors are distributed along the diagonal.
    """

    num_vertices: int
    grid: int
    row_bounds: np.ndarray
    col_bounds: np.ndarray

    @property
    def num_parts(self) -> int:
        return self.grid * self.grid

    def part_of(self, src, dst) -> np.ndarray:
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        row = np.searchsorted(self.row_bounds, src, side="right") - 1
        col = np.searchsorted(self.col_bounds, dst, side="right") - 1
        return row * self.grid + col

    def row_of_part(self, part: int) -> int:
        return int(part) // self.grid

    def col_of_part(self, part: int) -> int:
        return int(part) % self.grid


def partition_2d(num_vertices: int, num_parts: int) -> Partition2D:
    """Build a square processor grid; ``num_parts`` must be a square.

    CombBLAS "requires the total number of processes to be a square"
    (Section 4.3); we enforce the same constraint.
    """
    grid = math.isqrt(num_parts)
    if grid * grid != num_parts:
        raise PartitionError(
            f"2-D partitioning requires a square part count, got {num_parts}"
        )
    bounds = np.linspace(0, num_vertices, grid + 1).astype(np.int64)
    return Partition2D(num_vertices, grid, bounds, bounds.copy())


@dataclass
class VertexCutPartition:
    """GraphLab-style vertex-cut: edges are placed, vertices are mirrored.

    ``edge_part`` assigns every edge to a part. A vertex is *mirrored* on
    every part that holds one of its edges; one replica (the hash-chosen
    master) owns the authoritative value. The replication factor drives
    both load balance and the gather/apply/scatter communication volume.
    """

    num_vertices: int
    num_parts: int
    edge_part: np.ndarray
    masters: np.ndarray
    mirror_counts: np.ndarray

    def replication_factor(self) -> float:
        """Average replicas per vertex that has at least one edge."""
        present = self.mirror_counts > 0
        if not present.any():
            return 0.0
        return float(self.mirror_counts[present].mean())

    def edges_per_part(self) -> np.ndarray:
        return np.bincount(self.edge_part, minlength=self.num_parts).astype(np.int64)


def partition_vertex_cut(graph: CSRGraph, num_parts: int,
                         seed: int = 0) -> VertexCutPartition:
    """Greedy-free hashed vertex-cut with degree-aware edge placement.

    Low-degree endpoints pin their edges to the endpoint's hash part
    (keeping most vertices on one node); edges between two high-degree
    vertices are spread by edge hash, mirroring the hubs — the behaviour
    the paper describes as "nodes with large degree are duplicated in
    multiple nodes to avoid problems of load imbalance" (Section 6.1.1).
    """
    if num_parts <= 0:
        raise PartitionError(f"num_parts must be positive, got {num_parts}")
    src = graph.sources()
    dst = graph.targets
    degrees = np.bincount(src, minlength=graph.num_vertices)
    degrees += np.bincount(dst, minlength=graph.num_vertices)
    threshold = max(float(np.percentile(degrees[degrees > 0], 99)), 64.0) \
        if graph.num_edges else 64.0

    rng = np.random.default_rng(seed)
    salt = rng.integers(1, 2**31 - 1)
    vhash = ((np.arange(graph.num_vertices, dtype=np.int64) * 2654435761 + salt)
             % np.int64(2**31)) % num_parts

    src_hot = degrees[src] > threshold
    dst_hot = degrees[dst] > threshold
    edge_ids = np.arange(graph.num_edges, dtype=np.int64)
    ehash = ((edge_ids * 40503 + salt) % np.int64(2**31)) % num_parts

    edge_part = np.where(~src_hot, vhash[src],
                         np.where(~dst_hot, vhash[dst], ehash)).astype(np.int64)

    mirror_counts = np.zeros(graph.num_vertices, dtype=np.int64)
    for endpoint in (src, dst):
        key = endpoint * np.int64(num_parts) + edge_part
        uniq = np.unique(key)
        np.add.at(mirror_counts, (uniq // num_parts).astype(np.int64), 1)

    masters = vhash.astype(np.int64)
    return VertexCutPartition(graph.num_vertices, num_parts, edge_part,
                              masters, mirror_counts)
