"""Bipartite ratings graph for collaborative filtering.

The paper treats the ratings matrix ``R`` as "edge weights of a bipartite
graph" between users and items (Figure 1). This module stores that graph in
both orientations (by-user CSR and by-item CSR) because gradient descent
aggregates over both sides, plus a flat COO triple view for SGD's
random-order edge sweep.
"""

from __future__ import annotations

import numpy as np

from ..errors import GraphFormatError
from .csr import CSRGraph
from .edgelist import EdgeList


class RatingsMatrix:
    """Sparse user x item ratings, the input to collaborative filtering."""

    def __init__(self, num_users, num_items, users, items, ratings):
        self.num_users = int(num_users)
        self.num_items = int(num_items)
        self.users = np.asarray(users, dtype=np.int64)
        self.items = np.asarray(items, dtype=np.int64)
        self.ratings = np.asarray(ratings, dtype=np.float64)
        if not (self.users.shape == self.items.shape == self.ratings.shape):
            raise GraphFormatError("users, items, ratings must be aligned 1-D arrays")
        if self.users.size:
            if self.users.min() < 0 or self.users.max() >= self.num_users:
                raise GraphFormatError("user id out of range")
            if self.items.min() < 0 or self.items.max() >= self.num_items:
                raise GraphFormatError("item id out of range")
        self._by_user = None
        self._by_item = None

    @classmethod
    def from_edgelist(cls, num_users, num_items, edges: EdgeList) -> "RatingsMatrix":
        """Interpret a weighted edge list as user->item ratings."""
        if edges.weights is None:
            raise GraphFormatError("ratings require a weighted edge list")
        return cls(num_users, num_items, edges.src, edges.dst, edges.weights)

    @property
    def num_ratings(self) -> int:
        return int(self.ratings.size)

    def by_user(self) -> CSRGraph:
        """CSR with one row per user; targets are item ids."""
        if self._by_user is None:
            # Users and items share no id space, so build a CSR over
            # max(num_users, num_items) rows; only user rows are populated.
            n = max(self.num_users, self.num_items)
            edges = EdgeList(n, self.users, self.items, self.ratings)
            self._by_user = CSRGraph.from_edges(edges)
        return self._by_user

    def by_item(self) -> CSRGraph:
        """CSR with one row per item; targets are user ids."""
        if self._by_item is None:
            n = max(self.num_users, self.num_items)
            edges = EdgeList(n, self.items, self.users, self.ratings)
            self._by_item = CSRGraph.from_edges(edges)
        return self._by_item

    def user_degrees(self) -> np.ndarray:
        return np.bincount(self.users, minlength=self.num_users).astype(np.int64)

    def item_degrees(self) -> np.ndarray:
        return np.bincount(self.items, minlength=self.num_items).astype(np.int64)

    def shuffled(self, rng: np.random.Generator) -> "RatingsMatrix":
        """Ratings in a uniformly random order (one SGD epoch's sweep)."""
        order = rng.permutation(self.num_ratings)
        return RatingsMatrix(
            self.num_users, self.num_items,
            self.users[order], self.items[order], self.ratings[order],
        )

    def split(self, rng: np.random.Generator, holdout_fraction: float = 0.1):
        """Train/validation split for measuring generalization RMSE."""
        if not 0.0 < holdout_fraction < 1.0:
            raise ValueError("holdout_fraction must be in (0, 1)")
        mask = rng.random(self.num_ratings) < holdout_fraction
        train = RatingsMatrix(
            self.num_users, self.num_items,
            self.users[~mask], self.items[~mask], self.ratings[~mask],
        )
        held = RatingsMatrix(
            self.num_users, self.num_items,
            self.users[mask], self.items[mask], self.ratings[mask],
        )
        return train, held

    def nbytes(self) -> int:
        return self.users.nbytes + self.items.nbytes + self.ratings.nbytes

    def resident_nbytes(self) -> int:
        """Bytes held as anonymous memory; mmap-backed arrays count zero."""
        from .csr import resident_nbytes_of

        return resident_nbytes_of(self.users, self.items, self.ratings)

    def __repr__(self) -> str:
        return (
            f"RatingsMatrix(num_users={self.num_users}, "
            f"num_items={self.num_items}, num_ratings={self.num_ratings})"
        )
