"""Per-component random-number streams for end-to-end reproducibility.

Every stochastic component of the package draws from its own
:class:`numpy.random.Generator`, derived from one experiment seed plus a
component label path. Streams are independent by construction
(:class:`numpy.random.SeedSequence` spawn keys), so adding a draw to one
component — say, enabling message corruption in a chaos run — never
perturbs the sequence another component sees. That property is what
makes a fault schedule's timeline bit-identical across runs and
insensitive to which *other* faults are configured.

The companion rule, enforced by ``tests/test_chaos.py``'s source audit,
is that no module may touch the legacy global state (``np.random.seed``,
module-level ``np.random.<dist>`` calls, or the stdlib ``random``
module): every generator must be an explicitly seeded
``default_rng``/:func:`derive` stream.
"""

from __future__ import annotations

import zlib

import numpy as np


def spawn_key(*labels) -> tuple:
    """Stable integer spawn key for a label path (order-sensitive)."""
    return tuple(zlib.crc32(str(label).encode("utf-8")) for label in labels)


def derive(seed: int, *labels) -> np.random.Generator:
    """A dedicated generator for component ``labels`` under ``seed``.

    ``derive(7, "chaos", "drop")`` always yields the same stream, and a
    different one from ``derive(7, "chaos", "corrupt")`` — per-component
    isolation with a single user-facing seed.
    """
    sequence = np.random.SeedSequence(entropy=int(seed),
                                      spawn_key=spawn_key(*labels))
    return np.random.default_rng(sequence)
