"""Recovery protocols: what a framework does when a fault fires.

The paper's fault-tolerance axis (Sections 5-6): Giraph inherits
Hadoop's checkpoint/superstep machinery and *survives* node loss — at
the price of periodic checkpoint writes and replay on recovery — while
the native baselines, GraphLab and Galois trade that away and simply
die. A :class:`RecoveryPolicy` encodes that choice per framework:

* ``mode="checkpoint"`` — every ``checkpoint_interval`` supersteps the
  cluster writes per-node state to simulated disk (measured write
  cost); a crashed node restores from the last checkpoint and the clock
  charges detection timeout + restore read + replay of every superstep
  since the checkpoint;
* ``mode="fail-fast"`` — a crash raises the typed
  :class:`~repro.errors.NodeFailure`;
* either mode retries *transient* faults (drops, corruption,
  partitions) with exponential backoff via :class:`RetryPolicy`.

:class:`RecoveryStats` is the measurable outcome — checkpoint, restore,
replay and retry seconds plus fault counts — surfaced on
``RunResult.recovery`` and mirrored as spans/counters in the trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff for transient faults."""

    max_attempts: int = 5
    base_backoff_s: float = 0.05
    multiplier: float = 2.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.base_backoff_s < 0 or self.multiplier < 1.0:
            raise ValueError("backoff must be >= 0 and multiplier >= 1")

    def backoff_s(self, attempt: int) -> float:
        """Sleep before retry ``attempt`` (1-based)."""
        return self.base_backoff_s * self.multiplier ** (attempt - 1)

    def total_backoff_s(self) -> float:
        """Worst-case stall: every attempt's backoff, summed."""
        return sum(self.backoff_s(attempt)
                   for attempt in range(1, self.max_attempts + 1))


@dataclass(frozen=True)
class RecoveryPolicy:
    """One framework's answer to faults."""

    mode: str = "fail-fast"            # "fail-fast" | "checkpoint"
    #: Supersteps between checkpoints (0 = never checkpoint; a crash
    #: under mode="checkpoint" then replays from the start).
    checkpoint_interval: int = 0
    #: Fixed cost per checkpoint (HDFS sync, job bookkeeping), seconds.
    checkpoint_overhead_s: float = 0.0
    #: Heartbeat timeout before a dead node is declared failed.
    detect_timeout_s: float = 1.0
    retry: RetryPolicy = field(default_factory=RetryPolicy)

    def __post_init__(self):
        if self.mode not in ("fail-fast", "checkpoint"):
            raise ValueError(f"unknown recovery mode {self.mode!r}")
        if self.checkpoint_interval < 0 or self.checkpoint_overhead_s < 0 \
                or self.detect_timeout_s < 0:
            raise ValueError("recovery costs must be non-negative")

    @property
    def recovers_crashes(self) -> bool:
        return self.mode == "checkpoint"

    def checkpoint_due(self, superstep: int) -> bool:
        """True when a checkpoint is written at this superstep's barrier."""
        return (self.checkpoint_interval > 0 and superstep > 0
                and superstep % self.checkpoint_interval == 0)


#: The native/GraphLab/Galois answer: no fault tolerance at all.
FAIL_FAST = RecoveryPolicy()


def checkpointing(interval: int = 2, overhead_s: float = 0.5,
                  detect_timeout_s: float = 1.0,
                  retry: RetryPolicy = None) -> RecoveryPolicy:
    """A Giraph/Hadoop-style every-N-supersteps checkpoint policy."""
    return RecoveryPolicy(mode="checkpoint", checkpoint_interval=interval,
                          checkpoint_overhead_s=overhead_s,
                          detect_timeout_s=detect_timeout_s,
                          retry=retry if retry is not None else RetryPolicy())


def policy_for_profile(profile) -> RecoveryPolicy:
    """The :class:`RecoveryPolicy` a framework profile opts into.

    Profiles carry ``fault_policy`` / ``checkpoint_interval`` /
    ``checkpoint_overhead_s`` fields (see
    :class:`repro.frameworks.base.FrameworkProfile`); unknown or
    profile-less frameworks default to fail-fast.
    """
    if profile is None or getattr(profile, "fault_policy",
                                  "fail-fast") != "checkpoint":
        return FAIL_FAST
    return checkpointing(interval=profile.checkpoint_interval,
                         overhead_s=profile.checkpoint_overhead_s)


@dataclass
class RecoveryStats:
    """What surviving the fault schedule cost one run."""

    faults_injected: int = 0
    crashes: int = 0
    recoveries: int = 0
    checkpoints_written: int = 0
    checkpoint_bytes: float = 0.0
    checkpoint_time_s: float = 0.0
    restore_time_s: float = 0.0
    replay_time_s: float = 0.0
    recovery_time_s: float = 0.0       # detect + restore + replay, total
    retry_time_s: float = 0.0          # transient-fault backoff stalls
    messages_dropped: int = 0
    messages_corrupted: int = 0
    retransmitted_bytes: float = 0.0
    events: list = field(default_factory=list)    # the fault timeline

    @property
    def total_overhead_s(self) -> float:
        """Every second the schedule (and surviving it) added."""
        return self.checkpoint_time_s + self.recovery_time_s \
            + self.retry_time_s

    def to_dict(self) -> dict:
        """JSON-safe summary (for ``RunResult.to_dict``)."""
        return {
            "faults_injected": self.faults_injected,
            "crashes": self.crashes,
            "recoveries": self.recoveries,
            "checkpoints_written": self.checkpoints_written,
            "checkpoint_bytes": self.checkpoint_bytes,
            "checkpoint_time_s": self.checkpoint_time_s,
            "restore_time_s": self.restore_time_s,
            "replay_time_s": self.replay_time_s,
            "recovery_time_s": self.recovery_time_s,
            "retry_time_s": self.retry_time_s,
            "total_overhead_s": self.total_overhead_s,
            "messages_dropped": self.messages_dropped,
            "messages_corrupted": self.messages_corrupted,
            "retransmitted_bytes": self.retransmitted_bytes,
            "events": list(self.events),
        }
