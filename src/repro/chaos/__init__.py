"""Deterministic fault injection + recovery protocols (``repro.chaos``).

The measurable fault-tolerance axis of the study: seeded
:class:`FaultSchedule` objects describe node crashes, stragglers,
latency spikes, partitions and probabilistic message loss; per-framework
:class:`RecoveryPolicy` objects describe what surviving them costs
(Giraph-style checkpoint/replay vs native fail-fast). The simulated
cluster consults both every superstep — same workload, fault schedule
on or off, recovery overhead read straight off the trace.

:mod:`repro.chaos.real` is the second, non-simulated axis: a
:class:`RealFaultPlan` makes chosen sweep cells actually kill, hang or
memory-balloon their **worker process**, so the supervised pool
(:mod:`repro.harness.supervisor`) can be proven to survive the faults
the simulator cannot raise.
"""

from .real import (
    BalloonMemory,
    HangCell,
    KillWorker,
    RealFaultPlan,
    resolve_real_chaos,
)
from .faults import (
    FaultSchedule,
    LatencySpike,
    LinkDisruption,
    MessageCorruption,
    MessageDrop,
    NetworkPartition,
    NodeCrash,
    StepFaults,
    StragglerNode,
)
from .recovery import (
    FAIL_FAST,
    RecoveryPolicy,
    RecoveryStats,
    RetryPolicy,
    checkpointing,
    policy_for_profile,
)

__all__ = [
    "BalloonMemory",
    "FAIL_FAST",
    "FaultSchedule",
    "HangCell",
    "KillWorker",
    "RealFaultPlan",
    "LatencySpike",
    "LinkDisruption",
    "MessageCorruption",
    "MessageDrop",
    "NetworkPartition",
    "NodeCrash",
    "RecoveryPolicy",
    "RecoveryStats",
    "RetryPolicy",
    "StepFaults",
    "StragglerNode",
    "checkpointing",
    "policy_for_profile",
    "resolve_real_chaos",
]
