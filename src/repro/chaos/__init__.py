"""Deterministic fault injection + recovery protocols (``repro.chaos``).

The measurable fault-tolerance axis of the study: seeded
:class:`FaultSchedule` objects describe node crashes, stragglers,
latency spikes, partitions and probabilistic message loss; per-framework
:class:`RecoveryPolicy` objects describe what surviving them costs
(Giraph-style checkpoint/replay vs native fail-fast). The simulated
cluster consults both every superstep — same workload, fault schedule
on or off, recovery overhead read straight off the trace.
"""

from .faults import (
    FaultSchedule,
    LatencySpike,
    LinkDisruption,
    MessageCorruption,
    MessageDrop,
    NetworkPartition,
    NodeCrash,
    StepFaults,
    StragglerNode,
)
from .recovery import (
    FAIL_FAST,
    RecoveryPolicy,
    RecoveryStats,
    RetryPolicy,
    checkpointing,
    policy_for_profile,
)

__all__ = [
    "FAIL_FAST",
    "FaultSchedule",
    "LatencySpike",
    "LinkDisruption",
    "MessageCorruption",
    "MessageDrop",
    "NetworkPartition",
    "NodeCrash",
    "RecoveryPolicy",
    "RecoveryStats",
    "RetryPolicy",
    "StepFaults",
    "StragglerNode",
    "checkpointing",
    "policy_for_profile",
]
