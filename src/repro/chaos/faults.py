"""Deterministic fault injection for the simulated cluster.

A :class:`FaultSchedule` is a seeded list of fault declarations the
cluster consults once per superstep. Faults come in two flavours:

* **scheduled** — fire at declared supersteps with declared parameters:
  :class:`NodeCrash`, :class:`StragglerNode`, :class:`LatencySpike`,
  :class:`NetworkPartition`;
* **probabilistic** — :class:`MessageDrop` and
  :class:`MessageCorruption` flip a coin per node-pair bulk transfer,
  each on its *own* :mod:`repro.rng` stream, so the drop timeline is
  bit-identical across runs with the same seed and unaffected by which
  other faults are configured.

Effects are expressed in the simulator's own currency — multipliers on
compute/communication time, retransmitted wire bytes, retry-backoff
stalls — so the algorithm answers stay exact (the recovery protocols of
:mod:`repro.chaos.recovery` replay/retransmit until the BSP step
completes) while the *cost* of surviving each fault lands on the clock
and in the trace.

Schedules parse from a compact spec string (the CLI's ``--faults``)::

    crash(node=2, superstep=3); drop(p=0.01, at=0:20); latency(factor=8, at=4:6)

Ranges are half-open ``start:stop`` supersteps (``at=3`` means step 3
only; omitting ``at`` means every superstep); ``partition`` takes the
isolated node group as ``nodes=0+1``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

import numpy as np

from ..errors import SimulationError
from ..rng import derive

#: A window of supersteps, half-open; ``stop=None`` means "forever".
Window = tuple


def _in_window(window: Window, superstep: int) -> bool:
    start, stop = window
    return superstep >= start and (stop is None or superstep < stop)


def _window_spec(window: Window) -> str:
    start, stop = window
    if stop is None:
        return "" if start == 0 else f", at={start}:"
    if stop == start + 1:
        return f", at={start}"
    return f", at={start}:{stop}"


# ---------------------------------------------------------------------------
# Fault declarations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NodeCrash:
    """Node ``node`` dies during superstep ``superstep`` (fail-stop)."""

    node: int
    superstep: int

    def spec(self) -> str:
        return f"crash(node={self.node}, superstep={self.superstep})"


@dataclass(frozen=True)
class StragglerNode:
    """One node computes ``factor``x slower over a superstep window."""

    node: int
    factor: float
    window: Window = (0, None)

    def spec(self) -> str:
        return (f"straggler(node={self.node}, factor={self.factor:g}"
                f"{_window_spec(self.window)})")


@dataclass(frozen=True)
class LatencySpike:
    """Fabric congestion: per-transfer latency x ``factor`` and
    sustained bandwidth / ``factor`` while the window is open."""

    factor: float
    window: Window = (0, None)

    def spec(self) -> str:
        return f"latency(factor={self.factor:g}{_window_spec(self.window)})"


@dataclass(frozen=True)
class NetworkPartition:
    """Transient partition isolating ``nodes`` from the rest.

    Cross-partition transfers stall for the full retry-backoff budget
    before the link heals within the superstep (BSP barriers cannot
    complete while the partition is up, so the whole step waits).
    """

    nodes: tuple
    window: Window = (0, None)

    def spec(self) -> str:
        group = "+".join(str(node) for node in self.nodes)
        return f"partition(nodes={group}{_window_spec(self.window)})"


@dataclass(frozen=True)
class MessageDrop:
    """Each node-pair bulk transfer is lost with ``probability`` and
    retransmitted after one retry timeout."""

    probability: float
    window: Window = (0, None)

    def spec(self) -> str:
        return f"drop(p={self.probability:g}{_window_spec(self.window)})"


@dataclass(frozen=True)
class MessageCorruption:
    """Checksum-detected corruption: like a drop, but counted apart."""

    probability: float
    window: Window = (0, None)

    def spec(self) -> str:
        return f"corrupt(p={self.probability:g}{_window_spec(self.window)})"


# ---------------------------------------------------------------------------
# Per-superstep resolution
# ---------------------------------------------------------------------------


class LinkDisruption:
    """Network faults resolved for one superstep, applied by the Fabric.

    ``apply`` perturbs the wire-byte matrix (retransmissions double the
    affected pair's volume) and returns per-node stall seconds (retry
    backoff) plus counters for the tracer; ``latency_factor`` scales the
    comm layer's latency and divides its sustained bandwidth.
    """

    def __init__(self, latency_factor: float = 1.0, drop_p: float = 0.0,
                 corrupt_p: float = 0.0, isolated: tuple = (),
                 retry=None, rngs: dict = None):
        self.latency_factor = float(latency_factor)
        self.drop_p = float(drop_p)
        self.corrupt_p = float(corrupt_p)
        self.isolated = tuple(isolated)
        self.retry = retry
        self._rngs = rngs or {}

    def apply(self, wire: np.ndarray):
        """Returns ``(wire', stall_s_per_node, info)``."""
        num_nodes = wire.shape[0]
        stall = np.zeros(num_nodes)
        info = {"messages_dropped": 0, "messages_corrupted": 0,
                "retransmitted_bytes": 0.0, "blocked_pairs": 0}
        timeout = self.retry.base_backoff_s if self.retry is not None else 0.0
        for kind, probability in (("drop", self.drop_p),
                                  ("corrupt", self.corrupt_p)):
            if probability <= 0:
                continue
            rng = self._rngs[kind]
            mask = (wire > 0) & (rng.random(wire.shape) < probability)
            if mask.any():
                key = ("messages_dropped" if kind == "drop"
                       else "messages_corrupted")
                info[key] += int(mask.sum())
                info["retransmitted_bytes"] += float(wire[mask].sum())
                # Sender waits one retransmit timeout per lost transfer.
                stall += mask.sum(axis=1) * timeout
                wire = wire + wire * mask
        if self.isolated:
            inside = np.zeros(num_nodes, dtype=bool)
            inside[list(self.isolated)] = True
            crossing = inside[:, None] != inside[None, :]
            blocked = crossing & (wire > 0)
            if blocked.any():
                info["blocked_pairs"] = int(blocked.sum())
                backoff = self.retry.total_backoff_s() \
                    if self.retry is not None else 0.0
                affected = blocked.any(axis=1) | blocked.any(axis=0)
                stall[affected] += backoff
        info["stall_s"] = float(stall.max()) if stall.size else 0.0
        return wire, stall, info


@dataclass
class StepFaults:
    """Everything the cluster must apply during one superstep."""

    crashes: list = field(default_factory=list)     # node ids that die
    compute_factors: np.ndarray = None              # per-node slowdowns
    disruption: LinkDisruption = None               # network-level faults
    events: list = field(default_factory=list)      # newly-opened faults

    def __bool__(self) -> bool:
        return bool(self.crashes or self.events
                    or self.compute_factors is not None
                    or self.disruption is not None)


# ---------------------------------------------------------------------------
# The schedule
# ---------------------------------------------------------------------------


_FAULT_KINDS = (NodeCrash, StragglerNode, LatencySpike, NetworkPartition,
                MessageDrop, MessageCorruption)


class FaultSchedule:
    """Seeded, deterministic fault plan for one simulated run.

    A schedule is single-use: probabilistic faults advance dedicated RNG
    streams as the run progresses. :meth:`fresh` returns an identically
    seeded copy, and :func:`~repro.harness.runner.run_experiment`
    freshens the schedule it is given, so repeated runs with the same
    schedule object see the same timeline.
    """

    def __init__(self, faults=(), seed: int = 0):
        faults = tuple(faults)
        for fault in faults:
            if not isinstance(fault, _FAULT_KINDS):
                raise SimulationError(
                    f"unknown fault type {type(fault).__name__!r}")
        self.faults = faults
        self.seed = int(seed)
        self._rngs = {"drop": derive(self.seed, "chaos", "drop"),
                      "corrupt": derive(self.seed, "chaos", "corrupt")}

    def __len__(self) -> int:
        return len(self.faults)

    def fresh(self) -> "FaultSchedule":
        """An unused copy with the same faults and seed."""
        return FaultSchedule(self.faults, self.seed)

    def spec(self) -> str:
        """The schedule as a ``--faults`` spec string (round-trips)."""
        return "; ".join(fault.spec() for fault in self.faults)

    def validate(self, num_nodes: int) -> None:
        """Reject node ids outside the cluster before the run starts."""
        for fault in self.faults:
            nodes = ()
            if isinstance(fault, (NodeCrash, StragglerNode)):
                nodes = (fault.node,)
            elif isinstance(fault, NetworkPartition):
                nodes = fault.nodes
            for node in nodes:
                if not 0 <= node < num_nodes:
                    raise SimulationError(
                        f"{fault.spec()} names node {node}, but the "
                        f"cluster has nodes 0..{num_nodes - 1}")

    def at(self, superstep: int, num_nodes: int, retry=None) -> StepFaults:
        """Resolve the faults active during ``superstep``."""
        step = StepFaults()
        latency_factor = 1.0
        drop_p = corrupt_p = 0.0
        isolated: tuple = ()
        for fault in self.faults:
            if isinstance(fault, NodeCrash):
                if fault.superstep == superstep:
                    step.crashes.append(fault.node)
                continue
            if not _in_window(fault.window, superstep):
                continue
            opened = superstep == max(fault.window[0], 0)
            if isinstance(fault, StragglerNode):
                if step.compute_factors is None:
                    step.compute_factors = np.ones(num_nodes)
                step.compute_factors[fault.node] *= fault.factor
                if opened:
                    step.events.append({"kind": "straggler",
                                        "superstep": superstep,
                                        "node": fault.node,
                                        "factor": fault.factor})
            elif isinstance(fault, LatencySpike):
                latency_factor *= fault.factor
                if opened:
                    step.events.append({"kind": "latency-spike",
                                        "superstep": superstep,
                                        "factor": fault.factor})
            elif isinstance(fault, NetworkPartition):
                isolated = tuple(set(isolated) | set(fault.nodes))
                if opened:
                    step.events.append({"kind": "partition",
                                        "superstep": superstep,
                                        "nodes": list(fault.nodes)})
            elif isinstance(fault, MessageDrop):
                drop_p = 1.0 - (1.0 - drop_p) * (1.0 - fault.probability)
            elif isinstance(fault, MessageCorruption):
                corrupt_p = 1.0 - (1.0 - corrupt_p) \
                    * (1.0 - fault.probability)
        if latency_factor != 1.0 or drop_p > 0 or corrupt_p > 0 or isolated:
            step.disruption = LinkDisruption(
                latency_factor=latency_factor, drop_p=drop_p,
                corrupt_p=corrupt_p, isolated=isolated, retry=retry,
                rngs=self._rngs,
            )
        return step

    # -- spec parsing --------------------------------------------------------

    @classmethod
    def from_spec(cls, spec: str, seed: int = 0) -> "FaultSchedule":
        """Parse a ``--faults`` spec string into a schedule."""
        faults = []
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            faults.append(_parse_clause(clause))
        return cls(faults, seed=seed)


_CLAUSE_RE = re.compile(r"^(\w+)\s*\(\s*(.*?)\s*\)$")


def _parse_window(text: str) -> Window:
    if ":" in text:
        start_text, stop_text = text.split(":", 1)
        start = int(start_text) if start_text else 0
        stop = int(stop_text) if stop_text else None
        if stop is not None and stop <= start:
            raise SimulationError(f"empty fault window {text!r}")
        return (start, stop)
    step = int(text)
    return (step, step + 1)


def _parse_clause(clause: str):
    match = _CLAUSE_RE.match(clause)
    if not match:
        raise SimulationError(
            f"cannot parse fault clause {clause!r}; expected "
            "name(key=value, ...)")
    name, body = match.group(1).lower(), match.group(2)
    kwargs = {}
    if body:
        for item in body.split(","):
            if "=" not in item:
                raise SimulationError(
                    f"cannot parse {item.strip()!r} in {clause!r}")
            key, value = item.split("=", 1)
            kwargs[key.strip().lower()] = value.strip()
    try:
        return _build_fault(name, kwargs)
    except (KeyError, ValueError) as error:
        raise SimulationError(
            f"bad fault clause {clause!r}: {error}") from None


def _build_fault(name: str, kwargs: dict):
    has_at = "at" in kwargs
    window = _parse_window(kwargs.pop("at")) if has_at else (0, None)
    if name == "crash":
        if "superstep" in kwargs:
            superstep = int(kwargs.pop("superstep"))
        elif has_at:
            superstep = window[0]
        else:
            raise KeyError("'superstep' (or at=) is required")
        fault = NodeCrash(node=int(kwargs.pop("node")), superstep=superstep)
    elif name == "straggler":
        fault = StragglerNode(node=int(kwargs.pop("node")),
                              factor=float(kwargs.pop("factor")),
                              window=window)
    elif name == "latency":
        fault = LatencySpike(factor=float(kwargs.pop("factor")),
                             window=window)
    elif name == "partition":
        nodes = tuple(int(part) for part in kwargs.pop("nodes").split("+"))
        fault = NetworkPartition(nodes=nodes, window=window)
    elif name in ("drop", "corrupt"):
        text = kwargs.pop("p", None)
        if text is None:
            text = kwargs.pop("probability")
        probability = float(text)
        if not 0.0 < probability <= 1.0:
            raise ValueError(f"p must be in (0, 1], got {probability}")
        cls = MessageDrop if name == "drop" else MessageCorruption
        fault = cls(probability=probability, window=window)
    else:
        raise SimulationError(
            f"unknown fault {name!r}; known: crash, straggler, latency, "
            "partition, drop, corrupt")
    if kwargs:
        raise SimulationError(
            f"unexpected keys {sorted(kwargs)} for fault {name!r}")
    return fault
