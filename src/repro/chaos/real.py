"""Real-fault injection for the supervised worker pool.

:mod:`repro.chaos.faults` injects faults into the *simulated* cluster —
the clock pays, the process survives. This module injects faults into
the **real** processes of a parallel sweep, the failure class Ammar &
Özsu report as dominant at scale (jobs that crash, hang or never
return): a :class:`RealFaultPlan` makes chosen cells actually SIGKILL
their worker, sleep past the wall-clock deadline, or balloon memory
until the worker's address-space cap fires. It is the differential
harness that *proves* the supervisor works — in tests and in the
``sweep-chaos-real`` CI job — and it deliberately shares the spec-string
idiom of the simulated schedules::

    kill(cell=3); kill(cell=5, times=99); hang(cell=7, seconds=300); oom(cell=2, mb=512)

``cell`` is the cell's **enumeration index** in the sweep (the order
:meth:`~repro.harness.sweep.Sweep.run` enumerates keys), so a plan is
scheduling-independent: the same cells fault no matter how many workers
run or which worker draws them.

* ``kill(cell=N[, times=K])`` — the worker SIGKILLs itself when it is
  handed cell ``N``, on the first ``K`` dispatches (default 1). With
  ``times`` below the supervisor's ``max_crashes`` the cell survives
  via re-dispatch; at or above it the cell is quarantined ``crashed``.
* ``hang(cell=N[, seconds=S])`` — the worker sleeps ``S`` real seconds
  (default 3600) before computing, so the cell blows any wall-clock
  deadline and records DNF ``timeout`` with ``wall_clock=true``.
* ``oom(cell=N[, mb=M])`` — the executor balloons ``M`` MB (default
  1024) of real memory before computing; under the supervisor's
  ``RLIMIT_AS`` cap this raises ``MemoryError``, which the sweep engine
  classifies as the existing ``out-of-memory`` DNF status.

Plans come from ``Sweep(real_chaos=...)``, ``repro sweep --real-chaos``
or the ``REPRO_CHAOS_REAL`` environment variable.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass

from ..errors import SimulationError

#: Default real-seconds a hung cell sleeps: far past any sane wall
#: deadline, so the supervisor (not the sleep ending) resolves the cell.
DEFAULT_HANG_SECONDS = 3600.0

#: Default real megabytes an ``oom`` fault balloons.
DEFAULT_BALLOON_MB = 1024


@dataclass(frozen=True)
class KillWorker:
    """Cell ``cell`` SIGKILLs its worker on its first ``times`` dispatches."""

    cell: int
    times: int = 1

    def spec(self) -> str:
        extra = f", times={self.times}" if self.times != 1 else ""
        return f"kill(cell={self.cell}{extra})"


@dataclass(frozen=True)
class HangCell:
    """Cell ``cell`` sleeps ``seconds`` real seconds before computing."""

    cell: int
    seconds: float = DEFAULT_HANG_SECONDS

    def spec(self) -> str:
        extra = f", seconds={self.seconds:g}" \
            if self.seconds != DEFAULT_HANG_SECONDS else ""
        return f"hang(cell={self.cell}{extra})"


@dataclass(frozen=True)
class BalloonMemory:
    """Cell ``cell`` allocates ``mb`` real megabytes before computing."""

    cell: int
    mb: int = DEFAULT_BALLOON_MB

    def spec(self) -> str:
        extra = f", mb={self.mb}" if self.mb != DEFAULT_BALLOON_MB else ""
        return f"oom(cell={self.cell}{extra})"


_REAL_FAULT_KINDS = (KillWorker, HangCell, BalloonMemory)


class RealFaultPlan:
    """A deterministic plan of real process faults for one sweep.

    Plain picklable value object: the supervisor ships it to every
    worker, and each worker consults it per dispatch — kill decisions
    depend only on ``(cell index, prior crash count)``, both of which
    the parent tracks, so the fault timeline is identical for any
    worker count.
    """

    def __init__(self, faults=()):
        faults = tuple(faults)
        for fault in faults:
            if not isinstance(fault, _REAL_FAULT_KINDS):
                raise SimulationError(
                    f"unknown real fault type {type(fault).__name__!r}")
        self.faults = faults

    def __len__(self) -> int:
        return len(self.faults)

    def __eq__(self, other) -> bool:
        return isinstance(other, RealFaultPlan) and \
            self.faults == other.faults

    def spec(self) -> str:
        """The plan as a ``--real-chaos`` spec string (round-trips)."""
        return "; ".join(fault.spec() for fault in self.faults)

    def validate(self, num_cells: int, memory_limited: bool) -> None:
        """Reject out-of-range cells and un-cappable balloons up front."""
        for fault in self.faults:
            if not 0 <= fault.cell < num_cells:
                raise SimulationError(
                    f"{fault.spec()} names cell {fault.cell}, but the "
                    f"sweep enumerates cells 0..{num_cells - 1}")
        if self.balloons() and not memory_limited:
            raise SimulationError(
                "oom(...) real faults balloon actual memory and need a "
                "worker address-space cap; pass memory_limit_mb= "
                "(--memory-limit-mb) so the balloon surfaces as "
                "MemoryError instead of taking down the machine")

    def balloons(self) -> tuple:
        return tuple(f for f in self.faults
                     if isinstance(f, BalloonMemory))

    # -- per-dispatch queries (worker side) ---------------------------------

    def kill_now(self, cell: int, crashes: int) -> bool:
        """Should the worker die on this dispatch of ``cell``?

        ``crashes`` is how many workers already died running the cell
        (parent-tracked), so ``times=K`` kills exactly the first K
        dispatches and then lets the cell through.
        """
        return any(fault.cell == cell and crashes < fault.times
                   for fault in self.faults
                   if isinstance(fault, KillWorker))

    def hang_seconds(self, cell: int):
        for fault in self.faults:
            if isinstance(fault, HangCell) and fault.cell == cell:
                return fault.seconds
        return None

    def balloon_mb(self, cell: int):
        for fault in self.faults:
            if isinstance(fault, BalloonMemory) and fault.cell == cell:
                return fault.mb
        return None

    # -- construction -------------------------------------------------------

    @classmethod
    def from_spec(cls, spec: str) -> "RealFaultPlan":
        """Parse a ``--real-chaos`` spec string into a plan."""
        faults = []
        for clause in spec.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            faults.append(_parse_clause(clause))
        return cls(faults)

    @classmethod
    def from_env(cls):
        """The plan in ``$REPRO_CHAOS_REAL``, or None when unset/empty."""
        spec = os.environ.get("REPRO_CHAOS_REAL", "").strip()
        return cls.from_spec(spec) if spec else None


def resolve_real_chaos(value):
    """Coerce ``Sweep(real_chaos=...)`` input into a plan (or None).

    Accepts an existing :class:`RealFaultPlan`, a spec string, or
    ``None`` — which falls back to ``$REPRO_CHAOS_REAL`` so chaos can be
    switched on without touching call sites.
    """
    if value is None:
        return RealFaultPlan.from_env()
    if isinstance(value, RealFaultPlan):
        return value
    if isinstance(value, str):
        return RealFaultPlan.from_spec(value)
    raise SimulationError(
        f"real_chaos must be a RealFaultPlan or spec string, "
        f"not {type(value).__name__}")


_CLAUSE_RE = re.compile(r"^(\w+)\s*\(\s*(.*?)\s*\)$")


def _parse_clause(clause: str):
    match = _CLAUSE_RE.match(clause)
    if not match:
        raise SimulationError(
            f"cannot parse real-fault clause {clause!r}; expected "
            "name(key=value, ...)")
    name, body = match.group(1).lower(), match.group(2)
    kwargs = {}
    if body:
        for item in body.split(","):
            if "=" not in item:
                raise SimulationError(
                    f"cannot parse {item.strip()!r} in {clause!r}")
            key, value = item.split("=", 1)
            kwargs[key.strip().lower()] = value.strip()
    try:
        return _build_fault(name, kwargs)
    except (KeyError, ValueError) as error:
        raise SimulationError(
            f"bad real-fault clause {clause!r}: {error}") from None


def _build_fault(name: str, kwargs: dict):
    cell = int(kwargs.pop("cell"))
    if cell < 0:
        raise ValueError(f"cell must be >= 0, got {cell}")
    if name == "kill":
        times = int(kwargs.pop("times", 1))
        if times < 1:
            raise ValueError(f"times must be >= 1, got {times}")
        fault = KillWorker(cell=cell, times=times)
    elif name == "hang":
        seconds = float(kwargs.pop("seconds", DEFAULT_HANG_SECONDS))
        if seconds <= 0:
            raise ValueError(f"seconds must be > 0, got {seconds}")
        fault = HangCell(cell=cell, seconds=seconds)
    elif name == "oom":
        mb = int(kwargs.pop("mb", DEFAULT_BALLOON_MB))
        if mb < 1:
            raise ValueError(f"mb must be >= 1, got {mb}")
        fault = BalloonMemory(cell=cell, mb=mb)
    else:
        raise SimulationError(
            f"unknown real fault {name!r}; known: kill, hang, oom")
    if kwargs:
        raise SimulationError(
            f"unexpected keys {sorted(kwargs)} for real fault {name!r}")
    return fault
