"""GPS front-end (related work, paper Section 7).

"Graph Partitioning System (GPS) [27] uses a vertex programming model
with Large Adjacency List Partitioning (LALP) i.e. vertex partitioning
except for the large degree vertices which are split among multiple
nodes. [27] showed that GPS with LALP achieves a 12x performance
improvement compared to Giraph, putting it at a performance level
comparable to that of the frameworks studied (but much slower than
native code)."

We model GPS as a leaner JVM BSP: proper thread occupancy (unlike
Giraph's 4 workers), pooled message objects, a tuned socket stack, and
LALP — hub adjacency lists mirrored so hub fan-out is combined per node,
which the engine's sender-side combining plus vertex-cut-style hub
replication capture.
"""

from __future__ import annotations

from dataclasses import replace

from ...cluster import Cluster
from ...cluster.network import CommLayer
from ...graph import CSRGraph, RatingsMatrix
from ..base import GIRAPH, FrameworkProfile
from ..results import AlgorithmResult
from .programs import (
    bfs_vertex,
    cf_gd_vertex,
    kcore_vertex,
    lp_vertex,
    pagerank_vertex,
    sssp_vertex,
    triangle_vertex,
    wcc_vertex,
)

#: GPS's custom sockets-over-Java stack: better than Hadoop/Netty but
#: below the C sockets of GraphLab.
GPS_SOCKETS = CommLayer("gps-sockets", efficiency=0.18, latency_s=80e-6,
                        byte_overhead=0.10)

GPS: FrameworkProfile = replace(
    GIRAPH,
    name="gps",
    display_name="GPS",
    partitioning="1-D + LALP (hub splitting)",
    comm_layer=GPS_SOCKETS,
    cores_fraction=1.0,            # proper threading, unlike Giraph
    cpu_efficiency=0.30,
    per_message_ops=40.0,          # pooled message objects
    per_byte_ops=2.0,
    message_overhead_factor=1.8,
    superstep_overhead_s=0.08,     # no Hadoop job scheduling
    buffers_all_messages=False,
    combines_messages=True,        # LALP merges hub fan-out per node
    # GPS keeps BSP checkpointing but writes straight to disk without
    # Hadoop's job-tracker barrier, so checkpoints are cheaper and rarer.
    fault_policy="checkpoint",
    checkpoint_interval=4,
    checkpoint_overhead_s=0.1,
    notes="Related work (Section 7): ~12x faster than Giraph, still far "
          "from native.",
)


def pagerank(graph: CSRGraph, cluster: Cluster, iterations: int = 10,
             damping: float = 0.3) -> AlgorithmResult:
    return pagerank_vertex(graph, cluster, GPS, iterations, damping,
                           partition_mode="vertex-cut")


def bfs(graph: CSRGraph, cluster: Cluster, source: int = 0) -> AlgorithmResult:
    return bfs_vertex(graph, cluster, GPS, source,
                      partition_mode="vertex-cut")


def triangle_count(graph: CSRGraph, cluster: Cluster) -> AlgorithmResult:
    return triangle_vertex(graph, cluster, GPS, partition_mode="vertex-cut",
                           superstep_splits=10)


def collaborative_filtering(ratings: RatingsMatrix, cluster: Cluster,
                            hidden_dim: int = 64, iterations: int = 10,
                            **kwargs) -> AlgorithmResult:
    return cf_gd_vertex(ratings, cluster, GPS, hidden_dim, iterations,
                        partition_mode="vertex-cut", superstep_splits=4,
                        **kwargs)


def wcc(graph: CSRGraph, cluster: Cluster) -> AlgorithmResult:
    return wcc_vertex(graph, cluster, GPS, partition_mode="vertex-cut")


def sssp(graph: CSRGraph, cluster: Cluster, source: int = 0) -> AlgorithmResult:
    return sssp_vertex(graph, cluster, GPS, source,
                       partition_mode="vertex-cut")


def k_core(graph: CSRGraph, cluster: Cluster) -> AlgorithmResult:
    return kcore_vertex(graph, cluster, GPS, partition_mode="vertex-cut")


def label_propagation(graph: CSRGraph, cluster: Cluster, iterations: int = 3,
                      seed: int = 0) -> AlgorithmResult:
    return lp_vertex(graph, cluster, GPS, iterations, seed,
                     partition_mode="vertex-cut")
