"""Vertex programs for the four workloads.

Contains both:

* literal per-vertex programs — transliterations of the paper's
  Algorithm 1 (PageRank) and Algorithm 2 (BFS), runnable on the
  :func:`~repro.frameworks.vertex.engine.run_vertex_program` interpreter
  and used as semantics oracles;
* vectorized drivers — the same algorithms executed at NumPy speed
  through :class:`~repro.frameworks.vertex.engine.BSPEngine`, which does
  the distributed accounting. These are what the GraphLab and Giraph
  front-ends call.
"""

from __future__ import annotations

import numpy as np

from ...algorithms.bfs import UNREACHED
from ...cluster import Cluster
from ...graph import CSRGraph, EdgeList, RatingsMatrix
from ...kernels import registry as kernel_registry
from ..base import FrameworkProfile
from ..results import AlgorithmResult
from .engine import BSPEngine, ExchangeStats, VertexProgram

# ---------------------------------------------------------------------------
# Literal vertex programs (paper Algorithms 1 and 2).
# ---------------------------------------------------------------------------


class PageRankVertexProgram(VertexProgram):
    """Algorithm 1: PR <- r; for msg: PR += (1-r) * msg; send PR/degree."""

    def __init__(self, damping: float = 0.3, iterations: int = 10):
        self.damping = damping
        self.iterations = iterations

    def initial_value(self, vertex: int) -> float:
        return 1.0

    def compute(self, ctx, messages) -> None:
        if ctx.superstep > 0:
            rank = self.damping
            for message in messages:
                rank += (1.0 - self.damping) * message
            ctx.value = rank
        if ctx.superstep < self.iterations:
            degree = max(len(ctx.out_neighbors), 1)
            ctx.send_to_all_neighbors(ctx.value / degree)
        else:
            ctx.vote_to_halt()


class BFSVertexProgram(VertexProgram):
    """Algorithm 2: Distance <- min(Distance, msg + 1); send Distance."""

    def __init__(self, source: int = 0):
        self.source = source

    def initial_value(self, vertex: int) -> int:
        return 0 if vertex == self.source else UNREACHED

    def initially_active(self, vertex: int) -> bool:
        return vertex == self.source

    def compute(self, ctx, messages) -> None:
        improved = ctx.superstep == 0 and ctx.vertex == self.source
        for message in messages:
            if message + 1 < ctx.value:
                ctx.value = message + 1
                improved = True
        if improved:
            ctx.send_to_all_neighbors(ctx.value)
        ctx.vote_to_halt()


# ---------------------------------------------------------------------------
# Vectorized drivers.
# ---------------------------------------------------------------------------

_PR_MESSAGE_BYTES = 8.0    # Table 1: PageRank sends a double per edge
_BFS_MESSAGE_BYTES = 4.0   # Table 1: BFS sends an int per edge


def pagerank_vertex(graph: CSRGraph, cluster: Cluster,
                    profile: FrameworkProfile, iterations: int = 10,
                    damping: float = 0.3,
                    partition_mode: str = "1d") -> AlgorithmResult:
    """PageRank as a vertex program: all vertices active every superstep."""
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    engine = BSPEngine(graph, cluster, profile, partition_mode)
    engine.allocate_graph(_PR_MESSAGE_BYTES)

    num_vertices = graph.num_vertices
    all_vertices = np.arange(num_vertices, dtype=np.int64)
    pull = kernel_registry.kernel("pagerank", "pull")(damping).prepare(graph)
    ranks = np.full(num_vertices, 1.0)

    edges_per_node = np.bincount(engine.vertex_owner[graph.sources()],
                                 minlength=cluster.num_nodes).astype(float)

    for iteration in range(iterations):
        with cluster.trace_span("iteration", index=iteration):
            if engine.vertex_cut is not None:
                traffic = engine.replication_sync_traffic(all_vertices,
                                                          _PR_MESSAGE_BYTES)
                stats = ExchangeStats(messages=float(traffic.sum() / 8.0),
                                      payload_bytes=float(traffic.sum()),
                                      traffic=traffic)
            else:
                stats = engine.edge_messages(all_vertices, _PR_MESSAGE_BYTES)

            ranks, _ = pull.step(ranks)

            engine.superstep(all_vertices, edges_per_node, stats,
                             _PR_MESSAGE_BYTES)
            cluster.mark_iteration()

    return AlgorithmResult(
        algorithm="pagerank", framework=profile.name, values=ranks,
        iterations=iterations, metrics=cluster.metrics(),
        extras={"partition_mode": partition_mode},
    )


def bfs_vertex(graph: CSRGraph, cluster: Cluster, profile: FrameworkProfile,
               source: int = 0, partition_mode: str = "1d") -> AlgorithmResult:
    """Level-synchronous BFS as a vertex program."""
    if not 0 <= source < graph.num_vertices:
        raise ValueError(f"source {source} out of range")
    engine = BSPEngine(graph, cluster, profile, partition_mode)
    engine.allocate_graph(_BFS_MESSAGE_BYTES)

    out_degrees = graph.out_degrees()
    expand = kernel_registry.kernel("bfs", "push")().prepare(graph)
    distances = np.full(graph.num_vertices, UNREACHED, dtype=np.int32)
    distances[source] = 0
    frontier = np.array([source], dtype=np.int64)
    frontier_sizes = [1]
    level = 0

    tracer = cluster.tracer
    tracer.count("frontier_size", 1)          # the source vertex
    while frontier.size:
        level += 1
        with cluster.trace_span("level", index=level,
                                frontier=int(frontier.size)):
            stats = engine.edge_messages(frontier, _BFS_MESSAGE_BYTES)
            if engine.vertex_cut is not None:
                # GAS: the wire carries mirror sync, not per-edge messages.
                local = np.diag(np.diag(stats.traffic))
                stats.traffic = local + engine.replication_sync_traffic(
                    frontier, _BFS_MESSAGE_BYTES
                )

            candidates, _ = expand.step(frontier)
            fresh = candidates[distances[candidates] == UNREACHED]
            distances[fresh] = level

            edges_per_node = np.bincount(
                engine.vertex_owner[frontier],
                weights=out_degrees[frontier].astype(float),
                minlength=cluster.num_nodes,
            )
            engine.superstep(frontier, edges_per_node, stats,
                             _BFS_MESSAGE_BYTES)
            cluster.mark_iteration()

        frontier = fresh
        frontier_sizes.append(int(fresh.size))
        if fresh.size:
            tracer.count("frontier_size", int(fresh.size))

    return AlgorithmResult(
        algorithm="bfs", framework=profile.name, values=distances,
        iterations=level, metrics=cluster.metrics(),
        extras={"frontier_sizes": frontier_sizes,
                "reached": int((distances != UNREACHED).sum())},
    )


def triangle_vertex(graph: CSRGraph, cluster: Cluster,
                    profile: FrameworkProfile, partition_mode: str = "1d",
                    superstep_splits: int = 1,
                    use_cuckoo: bool = False) -> AlgorithmResult:
    """Triangle counting: every vertex ships its neighbor list.

    ``superstep_splits`` is Giraph's memory fix ("breaking up each
    superstep into 100 smaller supersteps", Section 6.1.3);
    ``use_cuckoo`` marks GraphLab's cuckoo-hash membership structure,
    which costs a couple of extra ops per probe vs the native bit-vector
    but stays constant-time.
    """
    engine = BSPEngine(graph, cluster, profile, partition_mode)
    engine.allocate_graph(8.0)

    degrees = graph.out_degrees()
    senders = np.nonzero(degrees > 0)[0].astype(np.int64)
    stats = engine.edge_messages(senders, 8.0 * degrees[senders],
                                 serialization_factor=1.0)

    masked = kernel_registry.kernel("triangle_counting",
                                    "masked-spgemm")().prepare(graph)
    (count, _overlap), _ = masked.step()

    # Probe work: each received list N(u) is checked against N(v) on the
    # edge target's owner. The membership structure for the vertex under
    # test (cuckoo table / hash set) is small and cache-resident, so the
    # probes stream through the received lists — pass a small gather
    # granularity instead of the engine's cold-line default.
    dst_owner = engine.vertex_owner[graph.targets]
    probe_edges = np.zeros(cluster.num_nodes)
    np.add.at(probe_edges, dst_owner, degrees[graph.sources()].astype(float))
    ops_per_edge = 10.0 if use_cuckoo else 14.0

    with cluster.trace_span("neighborhood-exchange",
                            payload_bytes=stats.payload_bytes):
        engine.superstep(senders, probe_edges, stats, 8.0,
                         splits=superstep_splits, ops_per_edge=ops_per_edge,
                         gather_bytes_override=24.0)
        cluster.mark_iteration()

    return AlgorithmResult(
        algorithm="triangle_counting", framework=profile.name, values=count,
        iterations=1, metrics=cluster.metrics(),
        extras={"superstep_splits": superstep_splits,
                "message_payload_bytes": stats.payload_bytes},
    )


def bipartite_graph(ratings: RatingsMatrix) -> CSRGraph:
    """Unified bipartite CSR over a hashed id space.

    Users and items share one vertex universe, relabeled by a fixed
    random permutation. This emulates the hash partitioning real engines
    apply: with contiguous ids the (few, high-degree) item vertices
    would all land in one range partition and destroy load balance —
    a proxy artifact, not a property of the frameworks.
    """
    n = ratings.num_users + ratings.num_items
    relabel = np.random.default_rng(0xB17A).permutation(n)
    users = relabel[ratings.users]
    items = relabel[ratings.items + ratings.num_users]
    src = np.concatenate([users, items])
    dst = np.concatenate([items, users])
    return CSRGraph.from_edges(EdgeList(n, src, dst))


def cf_gd_vertex(ratings: RatingsMatrix, cluster: Cluster,
                 profile: FrameworkProfile, hidden_dim: int = 64,
                 iterations: int = 10, gamma0: float = 0.002,
                 step_decay: float = 0.95, lambda_reg: float = 0.05,
                 seed: int = 0, partition_mode: str = "1d",
                 superstep_splits: int = 1,
                 combine_messages: bool = None) -> AlgorithmResult:
    """Gradient-descent CF as a vertex program on the bipartite graph.

    One GD iteration = two message phases (users -> items with p_u, then
    items -> users with q_v), each carrying a K-vector of doubles —
    Table 1's "8K"-byte messages. ``superstep_splits`` staggers senders
    for Giraph's memory ceiling ("only 1/s vertices have to send
    messages in a given superstep", Section 3.2).
    """
    if iterations < 1 or hidden_dim < 1:
        raise ValueError("iterations and hidden_dim must be >= 1")
    from ..base import cf_density_correction

    graph = bipartite_graph(ratings)
    engine = BSPEngine(graph, cluster, profile, partition_mode)
    value_bytes = 8.0 * hidden_dim
    density = cf_density_correction(ratings)
    engine.allocate_graph(value_bytes, vertex_scale_correction=density)

    rng = np.random.default_rng(seed)
    scale = 1.0 / np.sqrt(hidden_dim)
    p_factors = rng.random((ratings.num_users, hidden_dim)) * scale
    q_factors = rng.random((ratings.num_items, hidden_dim)) * scale

    kern = kernel_registry.kernel("collaborative_filtering",
                                  "blocked-gd")().prepare(ratings)

    users = np.arange(ratings.num_users, dtype=np.int64)
    items = np.arange(ratings.num_items, dtype=np.int64) + ratings.num_users
    out_degrees = graph.out_degrees()

    def _phase(senders, direction):
        with cluster.trace_span("phase", direction=direction):
            _phase_body(senders)

    def _phase_body(senders):
        stats = engine.edge_messages(senders, value_bytes,
                                     combine=combine_messages)
        combining = combine_messages if combine_messages is not None \
            else profile.combines_messages
        if combining:
            # Combined messages are one-per-(node, target-vertex), i.e.
            # vertex-proportional — apply the density correction.
            stats.traffic = stats.traffic / density
        if engine.vertex_cut is not None:
            # GAS wire traffic is the mirror gather/scatter sync, not
            # per-edge messages (those stay local on the mirrors); keep
            # only node-local buffering volume from the edge stats.
            local = np.diag(np.diag(stats.traffic))
            stats.traffic = local + engine.replication_sync_traffic(
                senders, value_bytes
            ) / density
        edges_per_node = np.bincount(
            engine.vertex_owner[senders],
            weights=out_degrees[senders].astype(float),
            minlength=cluster.num_nodes,
        )
        engine.superstep(senders, edges_per_node, stats, value_bytes,
                         splits=superstep_splits,
                         ops_per_edge=8.0 * hidden_dim,
                         ops_per_vertex=4.0 * hidden_dim)

    rmse_curve = []
    gamma = gamma0
    for iteration in range(iterations):
        with cluster.trace_span("iteration", index=iteration):
            _phase(users, "users->items")
            _phase(items, "items->users")
            kern.step(p_factors, q_factors, gamma, lambda_reg, lambda_reg)
            gamma *= step_decay
            rmse_curve.append(kern.rmse(p_factors, q_factors))
            cluster.mark_iteration()

    return AlgorithmResult(
        algorithm="collaborative_filtering", framework=profile.name,
        values=(p_factors, q_factors), iterations=iterations,
        metrics=cluster.metrics(),
        extras={"rmse_curve": rmse_curve, "method": "gd",
                "hidden_dim": hidden_dim,
                "superstep_splits": superstep_splits},
    )


# ---------------------------------------------------------------------------
# Second-generation drivers (WCC, SSSP, k-core, label propagation).
# ---------------------------------------------------------------------------

_WCC_MESSAGE_BYTES = 8.0    # the pushed component label (long)
_SSSP_MESSAGE_BYTES = 8.0   # the pushed tentative distance (double)
_KCORE_MESSAGE_BYTES = 4.0  # a degree decrement (int)
_LP_MESSAGE_BYTES = 8.0     # the advertised label (long)


def wcc_vertex(graph: CSRGraph, cluster: Cluster, profile: FrameworkProfile,
               partition_mode: str = "1d") -> AlgorithmResult:
    """WCC as a vertex program: delta rounds of min-label flooding.

    Every vertex starts active with its own id; a round's senders are
    the vertices whose label shrank last round (HashMin / "connected
    components" in the survey literature). Run on symmetrized graphs.
    """
    engine = BSPEngine(graph, cluster, profile, partition_mode)
    engine.allocate_graph(_WCC_MESSAGE_BYTES)

    out_degrees = graph.out_degrees()
    push = kernel_registry.kernel("wcc", "propagate")().prepare(graph)
    labels = np.arange(graph.num_vertices, dtype=np.int64)
    frontier = np.arange(graph.num_vertices, dtype=np.int64)

    rounds = 0
    tracer = cluster.tracer
    while frontier.size:
        rounds += 1
        with cluster.trace_span("round", index=rounds,
                                frontier=int(frontier.size)):
            stats = engine.edge_messages(frontier, _WCC_MESSAGE_BYTES)
            if engine.vertex_cut is not None:
                local = np.diag(np.diag(stats.traffic))
                stats.traffic = local + engine.replication_sync_traffic(
                    frontier, _WCC_MESSAGE_BYTES
                )

            (labels, changed), _ = push.step(labels, frontier)

            edges_per_node = np.bincount(
                engine.vertex_owner[frontier],
                weights=out_degrees[frontier].astype(float),
                minlength=cluster.num_nodes,
            )
            engine.superstep(frontier, edges_per_node, stats,
                             _WCC_MESSAGE_BYTES)
            cluster.mark_iteration()

        frontier = changed
        tracer.count("frontier_size", int(changed.size))

    return AlgorithmResult(
        algorithm="wcc", framework=profile.name, values=labels,
        iterations=rounds, metrics=cluster.metrics(),
        extras={"partition_mode": partition_mode,
                "components": int(np.unique(labels).size)},
    )


def sssp_vertex(graph: CSRGraph, cluster: Cluster, profile: FrameworkProfile,
                source: int = 0,
                partition_mode: str = "1d") -> AlgorithmResult:
    """SSSP as a vertex program: Bellman-Ford delta rounds.

    BFS's Algorithm-2 shape with ``min(Distance, msg + w)`` instead of
    ``msg + 1``; only just-improved vertices send.
    """
    if not 0 <= source < graph.num_vertices:
        raise ValueError(f"source {source} out of range")
    engine = BSPEngine(graph, cluster, profile, partition_mode)
    engine.allocate_graph(_SSSP_MESSAGE_BYTES)

    out_degrees = graph.out_degrees()
    relax = kernel_registry.kernel("sssp", "relax")().prepare(graph)
    distances = np.full(graph.num_vertices, np.inf, dtype=np.float64)
    distances[source] = 0.0
    frontier = np.array([source], dtype=np.int64)

    rounds = 0
    tracer = cluster.tracer
    tracer.count("frontier_size", 1)
    while frontier.size:
        rounds += 1
        with cluster.trace_span("round", index=rounds,
                                frontier=int(frontier.size)):
            stats = engine.edge_messages(frontier, _SSSP_MESSAGE_BYTES)
            if engine.vertex_cut is not None:
                local = np.diag(np.diag(stats.traffic))
                stats.traffic = local + engine.replication_sync_traffic(
                    frontier, _SSSP_MESSAGE_BYTES
                )

            (distances, changed), _ = relax.step(distances, frontier)

            edges_per_node = np.bincount(
                engine.vertex_owner[frontier],
                weights=out_degrees[frontier].astype(float),
                minlength=cluster.num_nodes,
            )
            engine.superstep(frontier, edges_per_node, stats,
                             _SSSP_MESSAGE_BYTES)
            cluster.mark_iteration()

        frontier = changed
        if changed.size:
            tracer.count("frontier_size", int(changed.size))

    return AlgorithmResult(
        algorithm="sssp", framework=profile.name, values=distances,
        iterations=rounds, metrics=cluster.metrics(),
        extras={"frontier_rounds": rounds,
                "reached": int(np.isfinite(distances).sum())},
    )


def kcore_vertex(graph: CSRGraph, cluster: Cluster, profile: FrameworkProfile,
                 partition_mode: str = "1d") -> AlgorithmResult:
    """k-core as a vertex program: each cascade wave is one superstep.

    A removed vertex messages a decrement to every neighbor — the BSP
    transliteration of peeling, so a level with a deep cascade pays a
    superstep (and its per-superstep overhead) per wave, exactly the
    behaviour that separates the frameworks from batched native code.
    """
    engine = BSPEngine(graph, cluster, profile, partition_mode)
    engine.allocate_graph(_KCORE_MESSAGE_BYTES)

    out_degrees = graph.out_degrees()
    peel = kernel_registry.kernel("k_core", "peel")().prepare(graph)
    degrees = out_degrees.astype(np.int64)
    core = np.zeros(graph.num_vertices, dtype=np.int64)
    alive = np.ones(graph.num_vertices, dtype=bool)

    supersteps = 0
    k = 1
    while alive.any():
        while True:
            (removed, new_degrees), _ = peel.step(degrees, alive, k)
            if removed.size == 0:
                break
            supersteps += 1
            core[removed] = k - 1
            alive[removed] = False
            with cluster.trace_span("wave", k=k,
                                    removed=int(removed.size)):
                stats = engine.edge_messages(removed, _KCORE_MESSAGE_BYTES)
                if engine.vertex_cut is not None:
                    local = np.diag(np.diag(stats.traffic))
                    stats.traffic = local + engine.replication_sync_traffic(
                        removed, _KCORE_MESSAGE_BYTES
                    )
                edges_per_node = np.bincount(
                    engine.vertex_owner[removed],
                    weights=out_degrees[removed].astype(float),
                    minlength=cluster.num_nodes,
                )
                engine.superstep(removed, edges_per_node, stats,
                                 _KCORE_MESSAGE_BYTES)
                cluster.mark_iteration()
            degrees = new_degrees
        k += 1

    return AlgorithmResult(
        algorithm="k_core", framework=profile.name, values=core,
        iterations=supersteps, metrics=cluster.metrics(),
        extras={"partition_mode": partition_mode,
                "max_core": int(core.max()) if core.size else 0},
    )


def lp_vertex(graph: CSRGraph, cluster: Cluster, profile: FrameworkProfile,
              iterations: int = 3, seed: int = 0,
              partition_mode: str = "1d") -> AlgorithmResult:
    """Label propagation as a vertex program: dense synchronous rounds.

    PageRank's all-active shape — every vertex advertises its label on
    every out-edge each round and adopts the received mode (smallest
    label on frequency ties).
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    from ...algorithms.labelprop import initial_labels

    engine = BSPEngine(graph, cluster, profile, partition_mode)
    engine.allocate_graph(_LP_MESSAGE_BYTES)

    num_vertices = graph.num_vertices
    all_vertices = np.arange(num_vertices, dtype=np.int64)
    sync = kernel_registry.kernel("label_propagation",
                                  "sync")().prepare(graph)
    labels = initial_labels(num_vertices, seed)

    edges_per_node = np.bincount(engine.vertex_owner[graph.sources()],
                                 minlength=cluster.num_nodes).astype(float)

    for iteration in range(int(iterations)):
        with cluster.trace_span("iteration", index=iteration):
            if engine.vertex_cut is not None:
                traffic = engine.replication_sync_traffic(all_vertices,
                                                          _LP_MESSAGE_BYTES)
                stats = ExchangeStats(messages=float(traffic.sum() / 8.0),
                                      payload_bytes=float(traffic.sum()),
                                      traffic=traffic)
            else:
                stats = engine.edge_messages(all_vertices, _LP_MESSAGE_BYTES)

            labels, _ = sync.step(labels)

            # The per-edge tally insert costs a couple of ops beyond the
            # PageRank-style accumulate.
            engine.superstep(all_vertices, edges_per_node, stats,
                             _LP_MESSAGE_BYTES, ops_per_edge=10.0)
            cluster.mark_iteration()

    return AlgorithmResult(
        algorithm="label_propagation", framework=profile.name, values=labels,
        iterations=int(iterations), metrics=cluster.metrics(),
        extras={"partition_mode": partition_mode,
                "communities": int(np.unique(labels).size)},
    )
