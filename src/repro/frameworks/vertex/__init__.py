"""Vertex-programming engine and the GraphLab / Giraph front-ends."""

from . import giraph, gps, graphlab, graphx
from .async_engine import (
    AsyncScheduler,
    AsyncStats,
    pagerank_delta_async,
    pagerank_sync_to_tolerance,
)
from .engine import (
    BSPEngine,
    ExchangeStats,
    VertexContext,
    VertexProgram,
    run_vertex_program,
)
from .programs import (
    BFSVertexProgram,
    PageRankVertexProgram,
    bfs_vertex,
    bipartite_graph,
    cf_gd_vertex,
    pagerank_vertex,
    triangle_vertex,
)

__all__ = [
    "AsyncScheduler",
    "AsyncStats",
    "BFSVertexProgram",
    "BSPEngine",
    "gps",
    "graphx",
    "pagerank_delta_async",
    "pagerank_sync_to_tolerance",
    "ExchangeStats",
    "PageRankVertexProgram",
    "VertexContext",
    "VertexProgram",
    "bfs_vertex",
    "bipartite_graph",
    "cf_gd_vertex",
    "giraph",
    "graphlab",
    "pagerank_vertex",
    "run_vertex_program",
    "triangle_vertex",
]
