"""GraphLab front-end: vertex programs, vertex-cut, sockets, cuckoo TC.

The paper's GraphLab (v2.2) characteristics bound here:

* vertex-cut partitioning with high-degree replication (Section 6.1.1);
* TCP-socket communication achieving ~20-25% of the fabric (Section 6.2);
* computation/communication overlap via message blocking, which keeps
  its triangle-counting memory footprint low (Section 6.1.1);
* a cuckoo-hash neighbor structure for triangle counting that makes it
  one of the best multi-node TC performers (Section 5.3).
"""

from __future__ import annotations

from ...cluster import Cluster
from ...graph import CSRGraph, RatingsMatrix
from ..base import GRAPHLAB
from ..results import AlgorithmResult
from .programs import (
    bfs_vertex,
    cf_gd_vertex,
    kcore_vertex,
    lp_vertex,
    pagerank_vertex,
    sssp_vertex,
    triangle_vertex,
    wcc_vertex,
)


def pagerank(graph: CSRGraph, cluster: Cluster, iterations: int = 10,
             damping: float = 0.3) -> AlgorithmResult:
    return pagerank_vertex(graph, cluster, GRAPHLAB, iterations, damping,
                           partition_mode="vertex-cut")


def bfs(graph: CSRGraph, cluster: Cluster, source: int = 0) -> AlgorithmResult:
    return bfs_vertex(graph, cluster, GRAPHLAB, source,
                      partition_mode="vertex-cut")


def triangle_count(graph: CSRGraph, cluster: Cluster) -> AlgorithmResult:
    return triangle_vertex(graph, cluster, GRAPHLAB,
                           partition_mode="vertex-cut", use_cuckoo=True)


def collaborative_filtering(ratings: RatingsMatrix, cluster: Cluster,
                            hidden_dim: int = 64, iterations: int = 10,
                            **kwargs) -> AlgorithmResult:
    return cf_gd_vertex(ratings, cluster, GRAPHLAB, hidden_dim, iterations,
                        partition_mode="vertex-cut", **kwargs)


def wcc(graph: CSRGraph, cluster: Cluster) -> AlgorithmResult:
    return wcc_vertex(graph, cluster, GRAPHLAB, partition_mode="vertex-cut")


def sssp(graph: CSRGraph, cluster: Cluster, source: int = 0) -> AlgorithmResult:
    return sssp_vertex(graph, cluster, GRAPHLAB, source,
                       partition_mode="vertex-cut")


def k_core(graph: CSRGraph, cluster: Cluster) -> AlgorithmResult:
    return kcore_vertex(graph, cluster, GRAPHLAB, partition_mode="vertex-cut")


def label_propagation(graph: CSRGraph, cluster: Cluster, iterations: int = 3,
                      seed: int = 0) -> AlgorithmResult:
    return lp_vertex(graph, cluster, GRAPHLAB, iterations, seed,
                     partition_mode="vertex-cut")
