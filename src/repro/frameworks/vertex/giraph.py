"""Giraph front-end: BSP vertex programs on simulated Hadoop.

The paper's Giraph characteristics bound here:

* 1-D vertex partitioning, no sender-side combiner;
* Netty-on-Hadoop communication (<0.5 GB/s peak, <10% utilization);
* only 4 workers per 24-core node, capping CPU utilization near 16%
  (Section 5.4);
* buffering of *all* outgoing messages before sending — the behaviour
  that makes triangle counting run out of memory unless each superstep
  is split into ~100 smaller ones (Section 6.1.3). The split counts are
  exposed so the Section 6.1.3 experiment can sweep them.
"""

from __future__ import annotations

from ...cluster import Cluster
from ...graph import CSRGraph, RatingsMatrix
from ..base import GIRAPH
from ..results import AlgorithmResult
from .programs import (
    bfs_vertex,
    cf_gd_vertex,
    kcore_vertex,
    lp_vertex,
    pagerank_vertex,
    sssp_vertex,
    triangle_vertex,
    wcc_vertex,
)

#: "breaking up each superstep into 100 smaller supersteps" (Section 6.1.3).
TRIANGLE_SPLITS = 100
#: CF messages are staggered the same way (Section 3.2); the paper leaves
#: s unspecified — 10 keeps the buffer within the same budget.
CF_SPLITS = 10


def pagerank(graph: CSRGraph, cluster: Cluster, iterations: int = 10,
             damping: float = 0.3) -> AlgorithmResult:
    return pagerank_vertex(graph, cluster, GIRAPH, iterations, damping,
                           partition_mode="1d")


def bfs(graph: CSRGraph, cluster: Cluster, source: int = 0) -> AlgorithmResult:
    return bfs_vertex(graph, cluster, GIRAPH, source, partition_mode="1d")


def triangle_count(graph: CSRGraph, cluster: Cluster,
                   superstep_splits: int = TRIANGLE_SPLITS) -> AlgorithmResult:
    return triangle_vertex(graph, cluster, GIRAPH, partition_mode="1d",
                           superstep_splits=superstep_splits)


def collaborative_filtering(ratings: RatingsMatrix, cluster: Cluster,
                            hidden_dim: int = 64, iterations: int = 10,
                            superstep_splits: int = CF_SPLITS,
                            **kwargs) -> AlgorithmResult:
    # The paper's Giraph CF staggers senders in phases and deduplicates
    # the factor vector sent towards each node (Section 3.2) — i.e. a
    # combiner is installed for this program, unlike the defaults.
    return cf_gd_vertex(ratings, cluster, GIRAPH, hidden_dim, iterations,
                        partition_mode="1d",
                        superstep_splits=superstep_splits,
                        combine_messages=True, **kwargs)


def wcc(graph: CSRGraph, cluster: Cluster) -> AlgorithmResult:
    return wcc_vertex(graph, cluster, GIRAPH, partition_mode="1d")


def sssp(graph: CSRGraph, cluster: Cluster, source: int = 0) -> AlgorithmResult:
    return sssp_vertex(graph, cluster, GIRAPH, source,
                       partition_mode="1d")


def k_core(graph: CSRGraph, cluster: Cluster) -> AlgorithmResult:
    return kcore_vertex(graph, cluster, GIRAPH, partition_mode="1d")


def label_propagation(graph: CSRGraph, cluster: Cluster, iterations: int = 3,
                      seed: int = 0) -> AlgorithmResult:
    return lp_vertex(graph, cluster, GIRAPH, iterations, seed,
                     partition_mode="1d")
