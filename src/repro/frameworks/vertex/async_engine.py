"""Asynchronous vertex execution — GraphLab's native mode.

The paper describes GraphLab as "letting vertices read incoming
messages, update the values and send messages *asynchronously*"
(Section 3), and cites [24]'s bulk-synchronous-vs-autonomous comparison
as complementary work. This module implements the autonomous side:

* :class:`AsyncScheduler` — a priority scheduler over vertices: the
  vertex with the largest pending *residual* runs next, immediately
  observing its neighbors' freshest values (no superstep barrier);
* :func:`pagerank_delta_async` — the classic showcase: delta-PageRank,
  which converges with far fewer vertex updates than synchronous
  sweeps because work concentrates where rank is still moving.

The scheduler is a real executor (each update reads/writes live state),
so the update-count comparison against synchronous iteration is a
measured result, not a model.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ...graph import CSRGraph
from ...observability import NULL_TRACER


@dataclass
class AsyncStats:
    """What an asynchronous run did."""

    updates: int
    edge_operations: float
    max_residual: float

    def updates_per_vertex(self, num_vertices: int) -> float:
        return self.updates / max(num_vertices, 1)


class AsyncScheduler:
    """Priority-ordered vertex scheduler with lazy deletion.

    ``push(vertex, priority)`` schedules (or re-prioritizes) a vertex;
    ``pop()`` returns the currently highest-priority vertex. Stale heap
    entries are skipped on pop — the standard lazy-deletion pattern
    GraphLab's priority schedulers use.
    """

    def __init__(self):
        self._heap = []
        self._priority = {}
        self._counter = 0

    def push(self, vertex: int, priority: float) -> None:
        current = self._priority.get(vertex)
        if current is not None and current >= priority:
            return
        self._priority[vertex] = priority
        self._counter += 1
        heapq.heappush(self._heap, (-priority, self._counter, vertex))

    def pop(self):
        while self._heap:
            negative_priority, _, vertex = heapq.heappop(self._heap)
            if self._priority.get(vertex) == -negative_priority:
                del self._priority[vertex]
                return vertex, -negative_priority
        return None

    def __len__(self) -> int:
        return len(self._priority)

    def __bool__(self) -> bool:
        return bool(self._priority)


def pagerank_delta_async(graph: CSRGraph, damping: float = 0.3,
                         tolerance: float = 1e-4,
                         max_updates: int = None,
                         tracer=NULL_TRACER):
    """Asynchronous delta-PageRank to ``tolerance``.

    Returns ``(ranks, AsyncStats)``. Each vertex keeps its rank plus a
    pending residual; applying a vertex folds its residual into the rank
    and pushes ``(1 - r) * residual / degree`` to each out-neighbor's
    residual. Converges to the same fixpoint as the synchronous
    iteration (equation 1 run to convergence).
    """
    num_vertices = graph.num_vertices
    if max_updates is None:
        max_updates = 500 * max(num_vertices, 1)
    out_degrees = graph.out_degrees()

    ranks = np.full(num_vertices, damping)
    # Initial residual: the first-iteration inflow under PR(v)=r start.
    residuals = np.zeros(num_vertices)
    contributions = np.where(out_degrees > 0,
                             (1.0 - damping) * damping
                             / np.maximum(out_degrees, 1), 0.0)
    np.add.at(residuals, graph.targets,
              np.repeat(contributions, out_degrees))

    scheduler = AsyncScheduler()
    for vertex in np.nonzero(residuals > tolerance)[0]:
        scheduler.push(int(vertex), float(residuals[vertex]))

    updates = 0
    edge_operations = 0.0
    with tracer.span("async-pagerank", tolerance=tolerance):
        while scheduler and updates < max_updates:
            vertex, _ = scheduler.pop()
            delta = residuals[vertex]
            if delta <= tolerance:
                continue
            residuals[vertex] = 0.0
            ranks[vertex] += delta
            updates += 1
            tracer.advance(1.0)
            degree = int(out_degrees[vertex])
            if degree == 0:
                continue
            edge_operations += degree
            spread = (1.0 - damping) * delta / degree
            neighbors = graph.neighbors(vertex)
            residuals[neighbors] += spread
            for neighbor in neighbors:
                neighbor = int(neighbor)
                if residuals[neighbor] > tolerance:
                    scheduler.push(neighbor, float(residuals[neighbor]))
    if tracer.enabled:
        tracer.count("updates", updates)
        tracer.count("edge_operations", edge_operations)

    stats = AsyncStats(updates=updates, edge_operations=edge_operations,
                       max_residual=float(residuals.max(initial=0.0)))
    return ranks, stats


def pagerank_sync_to_tolerance(graph: CSRGraph, damping: float = 0.3,
                               tolerance: float = 1e-4,
                               max_iterations: int = 10_000):
    """Synchronous PageRank run until max |delta| < tolerance.

    Returns ``(ranks, iterations, vertex_updates)`` — the comparison
    baseline for the async scheduler (every vertex updates every sweep).
    """
    num_vertices = graph.num_vertices
    out_degrees = graph.out_degrees()
    safe = np.maximum(out_degrees, 1)
    ranks = np.full(num_vertices, 1.0)
    for iteration in range(1, max_iterations + 1):
        scaled = np.where(out_degrees > 0, ranks / safe, 0.0)
        gathered = np.bincount(graph.targets,
                               weights=np.repeat(scaled, out_degrees),
                               minlength=num_vertices)
        new_ranks = damping + (1.0 - damping) * gathered
        delta = float(np.abs(new_ranks - ranks).max())
        ranks = new_ranks
        if delta < tolerance:
            return ranks, iteration, iteration * num_vertices
    return ranks, max_iterations, max_iterations * num_vertices
