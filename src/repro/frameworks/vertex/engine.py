"""Bulk-synchronous vertex-programming engine (GraphLab / Giraph family).

Two layers:

* :class:`VertexProgram` + :func:`run_vertex_program` — a literal Pregel
  interpreter: per-vertex ``compute`` methods receiving messages, exactly
  the programming model of the paper's Algorithms 1 and 2. Pure Python,
  used as the *semantics oracle* and in examples.
* :class:`BSPEngine` — the performance-bearing engine the framework
  drivers use: algorithms execute vectorized, while the engine routes
  messages between simulated nodes, applies sender-side combining,
  accounts buffer memory (including Giraph's buffer-everything mode and
  the Section 6.1.3 superstep-splitting fix), and charges compute work
  through the framework's profile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...cluster import Cluster, ComputeWork
from ...cluster.cost import CACHE_LINE_BYTES
from ...errors import SimulationError
from ...graph import CSRGraph, partition_vertex_cut, partition_vertices_1d
from ...observability import NULL_TRACER
from ..base import FrameworkProfile

# ---------------------------------------------------------------------------
# Layer 1: the literal Pregel interpreter (semantics oracle).
# ---------------------------------------------------------------------------


class VertexContext:
    """What a vertex program may touch during ``compute``."""

    def __init__(self, vertex: int, value, out_neighbors, superstep: int):
        self.vertex = vertex
        self.value = value
        self.out_neighbors = out_neighbors
        self.superstep = superstep
        self._outbox = []
        self._halted = False

    def send_to_all_neighbors(self, message) -> None:
        for target in self.out_neighbors:
            self._outbox.append((int(target), message))

    def send(self, target: int, message) -> None:
        self._outbox.append((int(target), message))

    def vote_to_halt(self) -> None:
        self._halted = True


class VertexProgram:
    """Subclass and implement ``initial_value`` and ``compute``.

    ``compute(ctx, messages)`` runs once per active vertex per superstep;
    a vertex is active in superstep 0 (unless ``initially_active`` says
    otherwise) and thereafter whenever it has incoming messages. Setting
    ``ctx.value`` updates vertex state; ``ctx.vote_to_halt()`` plus an
    empty inbox deactivates the vertex — Giraph semantics (Section 3).
    """

    def initial_value(self, vertex: int):
        raise NotImplementedError

    def initially_active(self, vertex: int) -> bool:
        return True

    def compute(self, ctx: VertexContext, messages: list) -> None:
        raise NotImplementedError


def run_vertex_program(program: VertexProgram, graph: CSRGraph,
                       max_supersteps: int = 100,
                       collect_stats: bool = False,
                       tracer=NULL_TRACER):
    """Execute ``program`` to quiescence; returns (values, supersteps).

    With ``collect_stats=True`` returns ``(values, supersteps, stats)``
    where ``stats`` records per-superstep message and compute counts —
    the ground truth the vectorized :class:`BSPEngine` accounting is
    cross-validated against in the test suite.
    """
    values = [program.initial_value(v) for v in range(graph.num_vertices)]
    inbox = {v: [] for v in range(graph.num_vertices)}
    active = {v for v in range(graph.num_vertices) if program.initially_active(v)}
    superstep = 0
    stats = {"messages_per_superstep": [], "computes_per_superstep": []}
    while (active or any(inbox.values())) and superstep < max_supersteps:
        outbox = []
        compute_set = active | {v for v, msgs in inbox.items() if msgs}
        next_active = set()
        with tracer.span("interpreter-superstep", index=superstep):
            for vertex in sorted(compute_set):
                ctx = VertexContext(vertex, values[vertex],
                                    graph.neighbors(vertex), superstep)
                program.compute(ctx, inbox[vertex])
                values[vertex] = ctx.value
                outbox.extend(ctx._outbox)
                if not ctx._halted:
                    next_active.add(vertex)
        tracer.count("messages", len(outbox))
        tracer.advance(1.0)
        stats["messages_per_superstep"].append(len(outbox))
        stats["computes_per_superstep"].append(len(compute_set))
        inbox = {v: [] for v in range(graph.num_vertices)}
        for target, message in outbox:
            inbox[target].append(message)
        active = next_active
        superstep += 1
    if collect_stats:
        return values, superstep, stats
    return values, superstep


# ---------------------------------------------------------------------------
# Layer 2: the vectorized accounting engine.
# ---------------------------------------------------------------------------


@dataclass
class ExchangeStats:
    """What one message exchange cost."""

    messages: float            # message count after combining
    payload_bytes: float       # payload before serialization overhead
    traffic: np.ndarray        # wire bytes per node pair


class BSPEngine:
    """Message routing + cost accounting for one framework profile.

    ``partition_mode`` is ``"1d"`` (Giraph/SociaLite-style contiguous
    vertex ranges) or ``"vertex-cut"`` (GraphLab v2.2: edges placed,
    high-degree vertices mirrored).
    """

    def __init__(self, graph: CSRGraph, cluster: Cluster,
                 profile: FrameworkProfile, partition_mode: str = "1d"):
        if partition_mode not in ("1d", "vertex-cut"):
            raise SimulationError(f"unknown partition mode {partition_mode!r}")
        self.graph = graph
        self.cluster = cluster
        self.profile = profile
        self.partition_mode = partition_mode
        self.partition = partition_vertices_1d(graph.num_vertices,
                                               cluster.num_nodes)
        self.vertex_owner = self.partition.owner_of_many(
            np.arange(graph.num_vertices)
        )
        self._src = graph.sources()
        self._src_owner = self.vertex_owner[self._src]
        self._dst_owner = self.vertex_owner[graph.targets]
        if partition_mode == "vertex-cut":
            self.vertex_cut = partition_vertex_cut(graph, cluster.num_nodes)
        else:
            self.vertex_cut = None

    # -- static structures -------------------------------------------------

    def allocate_graph(self, value_bytes: float,
                       per_vertex_state_bytes: float = None,
                       vertex_scale_correction: float = 1.0) -> None:
        """Register the distributed graph + vertex values on every node.

        ``vertex_scale_correction`` (>= 1) divides vertex-proportional
        state when the experiment's scale factor is derived from edge
        counts but the proxy's vertices-per-edge ratio overshoots the
        paper's (collaborative filtering; see cf_density_correction).
        """
        state = per_vertex_state_bytes if per_vertex_state_bytes is not None \
            else value_bytes
        state /= vertex_scale_correction
        nodes = self.cluster.num_nodes
        edges_per_node = np.bincount(self._src_owner, minlength=nodes)
        verts_per_node = self.partition.part_sizes()
        if self.vertex_cut is not None:
            edges_per_node = self.vertex_cut.edges_per_part()
            # Mirrors replicate vertex state.
            mirrors = np.zeros(nodes)
            replication = self.vertex_cut.replication_factor()
            mirrors[:] = replication * self.graph.num_vertices / nodes
            verts_per_node = mirrors
        object_factor = self.profile.message_overhead_factor
        for node in range(nodes):
            self.cluster.allocate(
                node, "graph",
                (8 * float(edges_per_node[node])
                 + state * float(verts_per_node[node])) * object_factor,
            )

    # -- message exchange -----------------------------------------------------

    def edge_messages(self, senders: np.ndarray, message_bytes,
                      combine: bool = None,
                      serialization_factor: float = None) -> ExchangeStats:
        """Messages from ``senders`` along all their out-edges.

        ``message_bytes`` is a scalar or a per-sender array (triangle
        counting sends whole adjacency lists). Sender-side combining
        (profile.combines_messages, overridable per call for programs
        that install their own combiner) collapses messages from one
        node to one *target vertex* into a single message — the "local
        reductions" of Section 6.1.1.
        """
        senders = np.asarray(senders, dtype=np.int64)
        nodes = self.cluster.num_nodes
        traffic = np.zeros((nodes, nodes))
        if senders.size == 0:
            return ExchangeStats(0.0, 0.0, traffic)

        per_sender_bytes = np.broadcast_to(
            np.asarray(message_bytes, dtype=np.float64), senders.shape
        )
        targets, lengths = self.graph.neighbors_of_many(senders)
        if targets.size == 0:
            return ExchangeStats(0.0, 0.0, traffic)
        per_edge_bytes = np.repeat(per_sender_bytes, lengths)
        edge_src_owner = np.repeat(self.vertex_owner[senders], lengths)
        edge_dst_owner = self.vertex_owner[targets]

        if combine is None:
            combine = self.profile.combines_messages
        if combine:
            # One message per unique (source node, target vertex).
            keys = edge_src_owner * np.int64(self.graph.num_vertices) + targets
            order = np.argsort(keys, kind="stable")
            keys_sorted = keys[order]
            first = np.concatenate([[True], keys_sorted[1:] != keys_sorted[:-1]])
            kept = order[first]
            message_count = float(kept.size)
            payload = float(per_edge_bytes[kept].sum())
            np.add.at(traffic, (edge_src_owner[kept], edge_dst_owner[kept]),
                      per_edge_bytes[kept])
        else:
            message_count = float(targets.size)
            payload = float(per_edge_bytes.sum())
            np.add.at(traffic, (edge_src_owner, edge_dst_owner), per_edge_bytes)

        # Bulk array payloads (e.g. neighbor-id lists) serialize without
        # the per-object overhead of small boxed messages.
        if serialization_factor is None:
            serialization_factor = self.profile.message_overhead_factor
        traffic *= serialization_factor
        tracer = self.cluster.tracer
        if tracer.enabled:
            # Counters report paper scale, like the byte totals do.
            scale = self.cluster.scale_factor
            tracer.count("messages", message_count * scale)
            tracer.count("payload_bytes", payload * scale)
        return ExchangeStats(message_count, payload, traffic)

    def replication_sync_traffic(self, active: np.ndarray,
                                 value_bytes: float) -> np.ndarray:
        """Vertex-cut gather/scatter traffic (GraphLab).

        Each active vertex with m mirrors sends m-1 partial aggregates to
        its master and receives m-1 state updates back.
        """
        if self.vertex_cut is None:
            raise SimulationError("replication sync requires a vertex cut")
        nodes = self.cluster.num_nodes
        traffic = np.zeros((nodes, nodes))
        active = np.asarray(active, dtype=np.int64)
        if active.size == 0:
            return traffic
        mirrors = self.vertex_cut.mirror_counts[active]
        masters = self.vertex_cut.masters[active]
        extra = np.maximum(mirrors - 1, 0).astype(np.float64)
        # Mirrors are spread across nodes; model each vertex's mirror
        # traffic as uniformly sourced from non-master nodes.
        per_master = np.zeros(nodes)
        np.add.at(per_master, masters, extra * value_bytes)
        if nodes > 1:
            for master in range(nodes):
                share = per_master[master] / (nodes - 1)
                for other in range(nodes):
                    if other != master:
                        traffic[other, master] += share      # gather partials
                        traffic[master, other] += share      # scatter updates
        traffic *= self.profile.message_overhead_factor
        return traffic

    # -- superstep -----------------------------------------------------------

    def superstep(self, compute_vertices: np.ndarray, edges_processed,
                  stats: ExchangeStats, value_bytes: float,
                  splits: int = 1, ops_per_edge: float = 8.0,
                  ops_per_vertex: float = 16.0,
                  gather_bytes_override: float = None,
                  label: str = "message-buffers") -> None:
        """Charge one logical superstep (optionally split into phases).

        ``splits > 1`` is the Giraph fix of Section 6.1.3: the superstep
        is broken into ``splits`` smaller ones processing 1/splits of the
        vertices each, shrinking peak buffer memory by the same factor at
        the cost of per-superstep overhead.
        """
        if splits < 1:
            raise SimulationError("splits must be >= 1")
        profile = self.profile
        cluster = self.cluster
        nodes = cluster.num_nodes

        compute_vertices = np.asarray(compute_vertices, dtype=np.int64)
        per_node_vertices = np.bincount(
            self.vertex_owner[compute_vertices], minlength=nodes
        ).astype(np.float64)
        edges_processed = np.broadcast_to(
            np.asarray(edges_processed, dtype=np.float64), (nodes,)
        )

        # Buffering: Giraph keeps the whole (per-split) outgoing volume in
        # memory; streaming frameworks keep a bounded window.
        send_bytes_per_node = stats.traffic.sum(axis=1)
        recv_bytes_per_node = stats.traffic.sum(axis=0)
        for node in range(nodes):
            if profile.buffers_all_messages:
                buffered = (send_bytes_per_node[node]
                            + recv_bytes_per_node[node]) / splits
            else:
                # Streaming engines keep a bounded window (64 MB is a
                # physical buffer size, so express it at proxy scale).
                buffered = min(
                    send_bytes_per_node[node] + recv_bytes_per_node[node],
                    64 * 2**20 / cluster.scale_factor,
                )
            cluster.allocate(node, label, buffered)

        message_bytes_per_node = send_bytes_per_node + recv_bytes_per_node
        split_traffic = stats.traffic / splits
        # Vertex-cut engines execute the GAS decomposition; 1d engines a
        # plain exchange-then-apply phase. Either way the cluster-level
        # superstep spans nest underneath.
        phase = "gather/apply/scatter" if self.vertex_cut is not None \
            else "exchange-apply"
        with cluster.tracer.span(phase, splits=splits,
                                 messages=stats.messages,
                                 payload_bytes=stats.payload_bytes):
            for _ in range(splits):
                works = []
                # Per-edge gather granularity: small values pull part of a
                # cold line (denser state arrays -> more reuse), large
                # vector values stream after the first line.
                if gather_bytes_override is not None:
                    gather_bytes = gather_bytes_override
                elif value_bytes <= CACHE_LINE_BYTES:
                    gather_bytes = min(CACHE_LINE_BYTES, 8.0 * value_bytes)
                else:
                    gather_bytes = value_bytes
                ops_per_edge_total = (ops_per_edge + profile.per_message_ops
                                      + profile.per_byte_ops * value_bytes)
                for node in range(nodes):
                    vertices = per_node_vertices[node] / splits
                    edges = edges_processed[node] / splits
                    # Vertex programs materialize a message per edge (write
                    # into the outbox, read at the target) on top of the
                    # adjacency scan — the per-edge cost native code
                    # avoids.
                    touched = (8 * edges                   # adjacency scan
                               + 2 * value_bytes * edges   # msg write + read
                               + value_bytes * vertices    # state update
                               + 2 * message_bytes_per_node[node] / splits)
                    works.append(ComputeWork(
                        streamed_bytes=(touched
                                        * profile.message_overhead_factor),
                        # Per-edge gathers of neighbor state land on cold
                        # cache lines about half the time (graph order, not
                        # memory order).
                        random_bytes=0.5 * gather_bytes * edges,
                        ops=(ops_per_edge_total * edges
                             + ops_per_vertex * vertices),
                        cpu_efficiency=profile.cpu_efficiency,
                        cores_fraction=profile.cores_fraction,
                        prefetch=profile.prefetch,
                        memory_parallelism=profile.cores_fraction,
                    ))
                cluster.superstep(
                    works, split_traffic,
                    overlap=profile.overlaps_communication,
                    layer=profile.comm_layer,
                    overhead_s=profile.superstep_overhead_s,
                )
