"""GraphX front-end (related work, paper Section 7).

"GraphX [35] is a graph framework built on top of Spark [36] and uses
vertex programming. [35] showed that GraphX is about 7x slower than
GraphLab for pagerank (including file read). This would put GraphX at
the slower end of the spectrum of frameworks considered in this paper."

Modeled as vertex programming materialized through Spark's RDD
machinery: every superstep is a shuffle (immutable triplets re-built,
hash-partitioned exchange), with JVM serialization on each record and
Spark's per-stage scheduling latency.
"""

from __future__ import annotations

from dataclasses import replace

from ...cluster import Cluster
from ...cluster.network import CommLayer
from ...graph import CSRGraph, RatingsMatrix
from ..base import GRAPHLAB, FrameworkProfile
from ..results import AlgorithmResult
from .programs import (
    bfs_vertex,
    cf_gd_vertex,
    kcore_vertex,
    lp_vertex,
    pagerank_vertex,
    sssp_vertex,
    triangle_vertex,
    wcc_vertex,
)

#: Spark block-transfer service: netty-based shuffle, better tuned than
#: Hadoop RPC but with shuffle-file spill overheads.
SPARK_SHUFFLE = CommLayer("spark-shuffle", efficiency=0.15, latency_s=200e-6,
                          byte_overhead=0.30)

GRAPHX: FrameworkProfile = replace(
    GRAPHLAB,
    name="graphx",
    display_name="GraphX",
    language="Scala/JVM",
    partitioning="2-D hash (edge triplets)",
    comm_layer=SPARK_SHUFFLE,
    cpu_efficiency=0.10,           # RDD immutability: rebuild, don't update
    message_overhead_factor=2.5,   # serialized triplet records
    superstep_overhead_s=0.35,     # Spark stage scheduling per superstep
    overlaps_communication=False,  # shuffle barriers
    combines_messages=False,       # per-edge triplets materialize in the
                                   # shuffle before any reduceByKey
    prefetch=False,
    # Spark recovers lost partitions from RDD lineage; periodically
    # materialized RDDs play the checkpoint role, so a node loss costs a
    # restore + recomputation replay rather than the whole job.
    fault_policy="checkpoint",
    checkpoint_interval=4,
    checkpoint_overhead_s=0.2,
    notes="Related work (Section 7): ~7x slower than GraphLab on "
          "PageRank; slower end of the studied spectrum.",
)


def pagerank(graph: CSRGraph, cluster: Cluster, iterations: int = 10,
             damping: float = 0.3) -> AlgorithmResult:
    return pagerank_vertex(graph, cluster, GRAPHX, iterations, damping,
                           partition_mode="1d")


def bfs(graph: CSRGraph, cluster: Cluster, source: int = 0) -> AlgorithmResult:
    return bfs_vertex(graph, cluster, GRAPHX, source, partition_mode="1d")


def triangle_count(graph: CSRGraph, cluster: Cluster) -> AlgorithmResult:
    return triangle_vertex(graph, cluster, GRAPHX, partition_mode="1d",
                           superstep_splits=4)


def collaborative_filtering(ratings: RatingsMatrix, cluster: Cluster,
                            hidden_dim: int = 64, iterations: int = 10,
                            **kwargs) -> AlgorithmResult:
    return cf_gd_vertex(ratings, cluster, GRAPHX, hidden_dim, iterations,
                        partition_mode="1d", superstep_splits=4,
                        combine_messages=True, **kwargs)


def wcc(graph: CSRGraph, cluster: Cluster) -> AlgorithmResult:
    return wcc_vertex(graph, cluster, GRAPHX, partition_mode="1d")


def sssp(graph: CSRGraph, cluster: Cluster, source: int = 0) -> AlgorithmResult:
    return sssp_vertex(graph, cluster, GRAPHX, source,
                       partition_mode="1d")


def k_core(graph: CSRGraph, cluster: Cluster) -> AlgorithmResult:
    return kcore_vertex(graph, cluster, GRAPHX, partition_mode="1d")


def label_propagation(graph: CSRGraph, cluster: Cluster, iterations: int = 3,
                      seed: int = 0) -> AlgorithmResult:
    return lp_vertex(graph, cluster, GRAPHX, iterations, seed,
                     partition_mode="1d")
