"""Common result type returned by every (algorithm, framework) runner."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..cluster.metrics import RunMetrics


@dataclass
class AlgorithmResult:
    """Output values + measured behaviour of one algorithm run.

    ``values`` is algorithm-specific: the PageRank vector, the BFS
    distance array, the triangle count, or the ``(P, Q)`` factor pair for
    collaborative filtering. ``metrics`` carries the simulated runtime and
    the Figure 6 observables. ``extras`` holds per-algorithm diagnostics
    (frontier sizes, training error curve, compression ratios, ...).
    """

    algorithm: str
    framework: str
    values: Any
    iterations: int
    metrics: RunMetrics
    extras: dict = field(default_factory=dict)

    @property
    def total_time_s(self) -> float:
        return self.metrics.total_time_s

    @property
    def time_per_iteration_s(self) -> float:
        return self.metrics.time_per_iteration_s

    def runtime_for_comparison(self) -> float:
        """The number the paper compares across frameworks.

        PageRank and collaborative filtering compare *time per iteration*
        (Section 5.2: normalizes out convergence-detection and SGD-vs-GD
        differences); BFS and triangle counting compare total time.
        """
        if self.algorithm in ("pagerank", "collaborative_filtering"):
            return self.time_per_iteration_s
        return self.total_time_s

    def to_dict(self) -> dict:
        """JSON-safe summary: metrics and scalar diagnostics, not arrays.

        ``values`` can be a hundred-million-entry rank vector; JSON output
        summarizes it by shape instead of dumping it.
        """
        import numpy as np

        def _safe(value):
            if isinstance(value, np.ndarray):
                return {"shape": list(value.shape), "dtype": str(value.dtype)}
            if isinstance(value, np.integer):
                return int(value)
            if isinstance(value, np.floating):
                return float(value)
            if isinstance(value, np.bool_):
                return bool(value)
            if isinstance(value, dict):
                return {str(k): _safe(v) for k, v in value.items()}
            if isinstance(value, (list, tuple)):
                return [_safe(v) for v in value]
            return value

        metrics = dict(self.metrics.summary())
        metrics["compute_time_s"] = self.metrics.compute_time_s
        metrics["comm_time_s"] = self.metrics.comm_time_s
        metrics["bytes_sent_total"] = self.metrics.bytes_sent_total
        return {
            "algorithm": self.algorithm,
            "framework": self.framework,
            "iterations": self.iterations,
            "values": _safe(self.values),
            "metrics": _safe(metrics),
            "extras": _safe(self.extras),
        }
