"""Common result type returned by every (algorithm, framework) runner."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..cluster.metrics import RunMetrics


@dataclass
class AlgorithmResult:
    """Output values + measured behaviour of one algorithm run.

    ``values`` is algorithm-specific: the PageRank vector, the BFS
    distance array, the triangle count, or the ``(P, Q)`` factor pair for
    collaborative filtering. ``metrics`` carries the simulated runtime and
    the Figure 6 observables. ``extras`` holds per-algorithm diagnostics
    (frontier sizes, training error curve, compression ratios, ...).
    """

    algorithm: str
    framework: str
    values: Any
    iterations: int
    metrics: RunMetrics
    extras: dict = field(default_factory=dict)

    @property
    def total_time_s(self) -> float:
        return self.metrics.total_time_s

    @property
    def time_per_iteration_s(self) -> float:
        return self.metrics.time_per_iteration_s

    def runtime_for_comparison(self) -> float:
        """The number the paper compares across frameworks.

        PageRank and collaborative filtering compare *time per iteration*
        (Section 5.2: normalizes out convergence-detection and SGD-vs-GD
        differences); BFS and triangle counting compare total time.
        """
        if self.algorithm in ("pagerank", "collaborative_filtering"):
            return self.time_per_iteration_s
        return self.total_time_s
