"""Framework profiles: the calibrated constants of the study.

Every framework in the paper is characterized by (Table 2 and Sections
3/5/6): its programming model, implementation language, communication
layer, partitioning scheme, whether it runs multi-node, and a set of
implementation behaviours (does it buffer all messages before sending?
does it overlap computation with communication? how many workers occupy
a node?).

Two constants per profile are *calibrated* rather than structural, and
both are documented against the paper measurement they come from:

* ``cpu_efficiency`` — per-operation software efficiency relative to the
  tuned native kernels. C++ frameworks with tight loops sit near 1;
  JVM-based systems lose 3-5x to object headers, boxing and GC; Giraph
  loses far more to Hadoop serialization (the paper measures Giraph at
  ~9M edges/s/node vs 640M for native — a ~70x per-edge gap, of which
  ~6x is occupancy, leaving ~12x software inefficiency).
* ``message_overhead_factor`` — wire bytes per payload byte after the
  framework's serialization (Java object streams ~2-4x; C++ frameworks
  ~1x).

Everything else a framework run reports — traffic volume, buffer
footprints, superstep counts, load balance — is *counted* from real
execution of the algorithm in the framework's programming model.

The Kernel protocol
-------------------

The numeric hot loops every engine executes for real live in
:mod:`repro.kernels`, behind a three-method protocol
(:class:`repro.kernels.Kernel`):

* ``Kernel(*profile_args)`` — construct with the algorithm constants
  the engine parameterizes (damping factor, SGD batch size, ...);
* ``prepare(graph_or_ratings) -> self`` — bind the dataset once and
  cache derived arrays (degrees, CSR/CSC forms);
* ``step(...) -> (result, KernelWork)`` — one numeric step (a PageRank
  sweep, a BFS frontier expansion, a full triangle pass, an SGD/GD
  update). ``KernelWork`` carries *analytic* counts (edges, vertices,
  frontier sizes) derived from sizes and degrees, never from loop trip
  counts.

Engines look kernels up through :func:`repro.kernels.registry.kernel`
by ``(algorithm, direction)`` — e.g. ``("pagerank", "pull")`` or
``("collaborative_filtering", "blocked-gd")`` — and keep all accounting
(:class:`~repro.cluster.ComputeWork` construction, traffic matrices,
memory allocations) on their side, expressed with profile constants
from this module. That split is what lets the ``REPRO_KERNELS``
backend knob (vectorized numpy vs the interpreted pure-Python oracle)
change wall-clock time without moving a single simulated byte: counted
work is analytic either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.network import (
    MPI,
    MULTI_SOCKET,
    NETTY_HADOOP,
    SINGLE_SOCKET,
    TCP_SOCKETS,
    CommLayer,
)
from ..errors import ReproError


@dataclass(frozen=True)
class FrameworkProfile:
    """Static description + calibrated constants of one framework."""

    name: str
    display_name: str
    model: str                       # programming model (Table 2)
    language: str
    multinode: bool
    partitioning: str
    comm_layer: CommLayer
    cpu_efficiency: float = 1.0
    cores_fraction: float = 1.0
    #: Wire bytes per payload byte after serialization.
    message_overhead_factor: float = 1.0
    #: Fixed instruction overhead per message handled (object creation,
    #: writable deserialization, inbox dispatch). Dominates Giraph.
    per_message_ops: float = 0.0
    #: Instructions per payload byte for (de)serialization.
    per_byte_ops: float = 0.0
    #: Fixed per-superstep scheduling/barrier cost (unscaled seconds).
    superstep_overhead_s: float = 0.0
    #: Giraph "tries to buffer all outgoing messages in memory before
    #: sending any" (Section 6.1.3).
    buffers_all_messages: bool = False
    #: Overlap of computation and communication (Section 6.1.1).
    overlaps_communication: bool = False
    #: Issues software prefetches on irregular accesses.
    prefetch: bool = False
    #: Performs local combining of messages to the same target node
    #: ("local reductions to avoid repeated communication", Section 6.1.1).
    combines_messages: bool = True
    #: Compresses vertex-id message payloads (bit-vector / delta coding).
    compresses_messages: bool = False
    #: Crash response under fault injection (repro.chaos): "checkpoint"
    #: engines write periodic checkpoints and recover a killed node by
    #: restore + replay (Giraph inherits this from Hadoop's superstep
    #: machinery); "fail-fast" engines surface a typed NodeFailure —
    #: the trade the native baselines, GraphLab and Galois make.
    fault_policy: str = "fail-fast"
    #: Supersteps between checkpoints when fault_policy == "checkpoint".
    checkpoint_interval: int = 0
    #: Fixed per-checkpoint cost (HDFS sync, job bookkeeping), seconds.
    checkpoint_overhead_s: float = 0.0
    notes: str = ""

    def __post_init__(self):
        if not 0 < self.cpu_efficiency <= 1.0:
            raise ValueError("cpu_efficiency must be in (0, 1]")
        if not 0 < self.cores_fraction <= 1.0:
            raise ValueError("cores_fraction must be in (0, 1]")
        if self.message_overhead_factor < 1.0:
            raise ValueError("message_overhead_factor must be >= 1")
        if self.superstep_overhead_s < 0:
            raise ValueError("superstep_overhead_s must be >= 0")
        if self.fault_policy not in ("fail-fast", "checkpoint"):
            raise ValueError(f"unknown fault_policy {self.fault_policy!r}")
        if self.fault_policy == "checkpoint" and self.checkpoint_interval < 1:
            raise ValueError("checkpointing profiles need an interval >= 1")

    def recovery_policy(self):
        """The :class:`repro.chaos.RecoveryPolicy` this profile opts into."""
        from ..chaos.recovery import policy_for_profile

        return policy_for_profile(self)


NATIVE = FrameworkProfile(
    name="native", display_name="Native", model="hand-optimized",
    language="C/C++", multinode=True, partitioning="1-D (edge-balanced)",
    comm_layer=MPI,
    cpu_efficiency=1.0,
    overlaps_communication=True, prefetch=True, compresses_messages=True,
    notes="Reference point: within 2-2.5x of hardware limits (Table 4).",
)

COMBBLAS = FrameworkProfile(
    name="combblas", display_name="CombBLAS", model="sparse matrix",
    language="C++", multinode=True, partitioning="2-D",
    comm_layer=MPI,
    # Semiring SpMV with SPA accumulators keeps ~60% of tuned-kernel
    # per-op throughput; calibrated against Table 5's 1.9x PageRank gap
    # net of the extra vector traffic the 2-D algorithm itself counts.
    cpu_efficiency=0.60,
    superstep_overhead_s=1e-3,
    notes="Runs as pure MPI with 36 processes/node; requires a square "
          "process count (Section 4.3).",
)

GRAPHLAB = FrameworkProfile(
    name="graphlab", display_name="GraphLab", model="vertex program",
    language="C++", multinode=True, partitioning="vertex-cut (1-D family)",
    comm_layer=TCP_SOCKETS,
    # Gather/apply/scatter engine with dynamic scheduling overheads:
    # calibrated against the 3.6x single-node PageRank gap (Table 5),
    # net of the message materialization the vertex engine counts.
    cpu_efficiency=0.38,
    message_overhead_factor=1.3,
    superstep_overhead_s=5e-3,
    overlaps_communication=True,   # blocks large messages (Section 6.1.1)
    notes="Uses cuckoo-hash neighbor sets for triangle counting "
          "(Section 5.3); network-bound at scale on sockets.",
)

SOCIALITE = FrameworkProfile(
    name="socialite", display_name="SociaLite", model="datalog",
    language="Java", multinode=True, partitioning="1-D (sharded tables)",
    comm_layer=MULTI_SOCKET,
    # JVM + relational evaluation; calibrated against the 2.0x PageRank /
    # 4.7x triangle-counting single-node gaps (Table 5), net of the join
    # work the Datalog engine counts.
    cpu_efficiency=0.40,
    message_overhead_factor=1.5,
    superstep_overhead_s=5e-3,
    notes="This is the *optimized* SociaLite of Section 6.1.3 (multiple "
          "sockets per worker pair); see SOCIALITE_PUBLISHED for the "
          "original.",
)

SOCIALITE_PUBLISHED = FrameworkProfile(
    name="socialite-published", display_name="SociaLite (published)",
    model="datalog", language="Java", multinode=True,
    partitioning="1-D (sharded tables)",
    comm_layer=SINGLE_SOCKET,
    cpu_efficiency=0.40,
    message_overhead_factor=1.5,
    superstep_overhead_s=5e-3,
    notes="As published: one socket per worker pair, ~0.5 GB/s peak "
          "(Section 6.1.3, Table 7 'Before').",
)

GIRAPH = FrameworkProfile(
    name="giraph", display_name="Giraph", model="vertex program",
    language="Java", multinode=True, partitioning="1-D (vertex)",
    comm_layer=NETTY_HADOOP,
    # The JIT-compiled compute itself runs at JVM speed (~0.3 of tuned
    # C), but every message pays a fixed object/writable handling cost
    # plus per-byte serialization — together these reproduce the paper's
    # ~9M edges/s/node (vs 640M native) on the occupancy below.
    cpu_efficiency=0.30,
    cores_fraction=4.0 / 24.0,     # "we run 4 workers per node" (Section 4.3)
    per_message_ops=150.0,
    per_byte_ops=8.0,
    message_overhead_factor=3.0,
    superstep_overhead_s=0.9,      # Hadoop superstep scheduling latency
    buffers_all_messages=True,
    combines_messages=False,       # no sender-side combiner by default
    # Hadoop's superstep fault tolerance: periodic checkpoints to HDFS,
    # restore + replay on node loss. The cost only bites in chaos runs
    # (run_experiment(faults=...)); the paper's happy-path numbers are
    # measured with the schedule off.
    fault_policy="checkpoint",
    checkpoint_interval=2,
    checkpoint_overhead_s=0.5,     # HDFS write barrier on the job tracker
    notes="Buffers all outgoing messages before sending (Section 6.1.3); "
          "memory limits cap workers at 4 of 24 cores, i.e. ~16% CPU "
          "utilization (Section 5.4).",
)

GALOIS = FrameworkProfile(
    name="galois", display_name="Galois", model="task-based",
    language="C/C++", multinode=False, partitioning="none (shared memory)",
    comm_layer=MPI,                 # unused: single node only
    # "does implement optimizations such as prefetching, and as such is
    # one of the best performing single-node frameworks" (Section 6.2);
    # Table 5 shows 1.1-1.2x of native.
    cpu_efficiency=0.85,
    superstep_overhead_s=1e-4,
    prefetch=True,
    notes="Single-node only; work-item scheduling adds a small constant "
          "over native kernels.",
)

PROFILES = {
    profile.name: profile
    for profile in (NATIVE, COMBBLAS, GRAPHLAB, SOCIALITE,
                    SOCIALITE_PUBLISHED, GIRAPH, GALOIS)
}

#: The frameworks of the paper's headline comparison tables.
COMPARISON_FRAMEWORKS = ("native", "combblas", "graphlab", "socialite",
                         "giraph", "galois")


#: Ratings per user in the paper's collaborative-filtering workloads
#: (Netflix: 99M/480k = 206; the synthetic weak-scaling set: ~265).
PAPER_RATINGS_PER_USER = 230.0


def cf_density_correction(ratings) -> float:
    """Extrapolation correction for vertex-proportional CF quantities.

    Experiments extrapolate counted work by a *ratings*-based scale
    factor, but proxy ratings matrices are far sparser per user than the
    paper's (laptop-scale generation cannot reach 230 ratings/user), so
    anything proportional to the number of users/items — factor tables,
    per-vertex combined messages, replication state — would be
    over-extrapolated by this density ratio. CF engines divide those
    quantities by this correction (>= 1).
    """
    if ratings.num_ratings == 0:
        return 1.0
    proxy_density = ratings.num_ratings / max(ratings.num_users, 1)
    return max(1.0, PAPER_RATINGS_PER_USER / proxy_density)


def profile(name: str) -> FrameworkProfile:
    """Look up a profile by name; raises ReproError for unknown names."""
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise ReproError(f"unknown framework {name!r}; known: {known}") from None
