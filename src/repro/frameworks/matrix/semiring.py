"""User-defined semirings, CombBLAS's core abstraction.

"Graph computations are expressed as operations among sparse matrices and
vectors using arbitrary user-defined semirings" (Section 3). A semiring
supplies the (add, multiply, zero) triple; the classic instances used by
the paper's four algorithms:

* ``PLUS_TIMES`` — ordinary linear algebra: PageRank's rank propagation
  (equation 9) and the path-counting ``A @ A`` of triangle counting;
* ``MIN_PLUS`` — tropical semiring: BFS distance relaxation;
* ``OR_AND`` — boolean: reachability-style BFS frontiers (equation 10).

``semiring_spmv`` is a direct, vectorized y = A^T x over any semiring —
the reference CombBLAS kernel the engine's accounting is attached to.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ...graph import CSRGraph


@dataclass(frozen=True)
class Semiring:
    """(add, multiply, zero) with NumPy ufunc-style vector operations."""

    name: str
    add_reduce: Callable      # (values, segment_ids, n) -> per-segment fold
    multiply: Callable        # (a_values, x_values) -> combined values
    zero: float

    def __repr__(self) -> str:
        return f"Semiring({self.name})"


def _segment_sum(values, segments, n):
    return np.bincount(segments, weights=values, minlength=n)


def _segment_min(values, segments, n):
    out = np.full(n, np.inf)
    np.minimum.at(out, segments, values)
    return out


def _segment_or(values, segments, n):
    out = np.zeros(n)
    np.maximum.at(out, segments, (values != 0).astype(float))
    return out


PLUS_TIMES = Semiring(
    name="plus-times",
    add_reduce=_segment_sum,
    multiply=lambda a, x: a * x,
    zero=0.0,
)

MIN_PLUS = Semiring(
    name="min-plus",
    add_reduce=_segment_min,
    multiply=lambda a, x: a + x,
    zero=np.inf,
)

OR_AND = Semiring(
    name="or-and",
    add_reduce=_segment_or,
    multiply=lambda a, x: ((a != 0) & (x != 0)).astype(float),
    zero=0.0,
)

SEMIRINGS = {s.name: s for s in (PLUS_TIMES, MIN_PLUS, OR_AND)}


def semiring_spmv(graph: CSRGraph, x: np.ndarray,
                  semiring: Semiring = PLUS_TIMES,
                  edge_values: np.ndarray = None) -> np.ndarray:
    """``y = A^T (x)`` over the semiring, where A is the graph's adjacency.

    ``y[v] = add-reduce over edges (u, v) of multiply(A[u, v], x[u])``;
    entries with no incident edges get the semiring zero. ``edge_values``
    defaults to 1 for every edge (unweighted adjacency).

    The numeric work is delegated to :func:`repro.kernels.semiring_spmv`
    (imported lazily — ``repro.kernels`` must not be a hard import-time
    dependency of the semiring definitions it duck-types).
    """
    from ...kernels.spmv import semiring_spmv as _kernel_spmv

    return _kernel_spmv(graph, x, semiring, edge_values)
