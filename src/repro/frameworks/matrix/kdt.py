"""KDT front-end: the Python productivity layer over CombBLAS.

The paper's framework list opens with "CombBLAS/KDT" (Sections 1 and 3
cite [11, 22]): the Knowledge Discovery Toolbox exposes CombBLAS's
distributed semiring kernels to Python. Its published characteristic is
exactly the paper's "Ninja gap" in miniature — the heavy kernels run at
CombBLAS speed, but any *semiring callback crossing into Python* pays
interpreter cost per nonzero (the published KDT/CombBLAS gap is ~3-10x
for callback-bearing operations, and near-1x for built-in semirings).

The front-end delegates to the CombBLAS engine and adds the measured
Python-boundary costs:

* built-in semirings (PageRank's plus-times) — a small constant setup
  cost per kernel call;
* user-defined semiring callbacks (BFS's visited-filtering, triangle
  counting's masked ops) — per-nonzero interpreter overhead.
"""

from __future__ import annotations

from ...cluster import Cluster
from ...graph import CSRGraph, RatingsMatrix
from ..results import AlgorithmResult
from . import combblas

#: Per-nonzero cost of a user-defined semiring callback, per node.
#: Raw CPython dispatch would be ~100x worse; KDT's answer is SEJITS —
#: callbacks are specialized to C++ at first use — leaving a residual
#: ~0.5 G nnz/s/node (a few x below the built-in kernels), which is what
#: produces KDT's published 3-10x gap on callback-bearing operations.
CALLBACK_SECONDS_PER_NNZ = 2e-9
#: Fixed per-kernel-call overhead of the Python driver layer (seconds).
PYTHON_CALL_OVERHEAD_S = 2e-3


def _add_python_overhead(cluster: Cluster, callback_nnz: float,
                         kernel_calls: int) -> None:
    """Charge the Python-boundary cost on top of a CombBLAS run.

    Callback work is proxy-scale (counted nonzeros) and must be
    extrapolated; the per-kernel-call driver overhead is a fixed cost.
    """
    callback_seconds = (CALLBACK_SECONDS_PER_NNZ * callback_nnz
                        / cluster.num_nodes)
    cluster.tick(callback_seconds * cluster.scale_factor
                 + kernel_calls * PYTHON_CALL_OVERHEAD_S)


def _relabel(result: AlgorithmResult) -> AlgorithmResult:
    result.framework = "kdt"
    return result


def pagerank(graph: CSRGraph, cluster: Cluster, iterations: int = 10,
             damping: float = 0.3) -> AlgorithmResult:
    """Built-in plus-times semiring: near-CombBLAS speed."""
    result = combblas.pagerank(graph, cluster, iterations, damping)
    _add_python_overhead(cluster, callback_nnz=0.0,
                         kernel_calls=iterations)
    result.metrics = cluster.metrics()
    return _relabel(result)


def bfs(graph: CSRGraph, cluster: Cluster, source: int = 0) -> AlgorithmResult:
    """Frontier filtering runs as a Python callback per touched nonzero."""
    result = combblas.bfs(graph, cluster, source)
    # Only the nonzeros adjacent to ever-visited vertices cross the
    # Python boundary; approximate with the reached share of all edges.
    reached_fraction = result.extras["reached"] / max(graph.num_vertices, 1)
    _add_python_overhead(cluster,
                         callback_nnz=graph.num_edges * reached_fraction,
                         kernel_calls=result.iterations)
    result.metrics = cluster.metrics()
    return _relabel(result)


def triangle_count(graph: CSRGraph, cluster: Cluster) -> AlgorithmResult:
    """The masked-multiply filter is a per-multiply Python callback."""
    result = combblas.triangle_count(graph, cluster)
    _add_python_overhead(cluster,
                         callback_nnz=result.extras["spgemm_flops"] / 2.0,
                         kernel_calls=3)
    result.metrics = cluster.metrics()
    return _relabel(result)


def collaborative_filtering(ratings: RatingsMatrix, cluster: Cluster,
                            hidden_dim: int = 64, iterations: int = 10,
                            **kwargs) -> AlgorithmResult:
    """Dense-vector updates between SpMVs run in the Python driver."""
    result = combblas.collaborative_filtering(ratings, cluster, hidden_dim,
                                              iterations, **kwargs)
    _add_python_overhead(cluster, callback_nnz=0.0,
                         kernel_calls=iterations * hidden_dim)
    result.metrics = cluster.metrics()
    return _relabel(result)


def wcc(graph: CSRGraph, cluster: Cluster) -> AlgorithmResult:
    """Built-in min semiring: near-CombBLAS speed, driver cost per round."""
    result = combblas.wcc(graph, cluster)
    _add_python_overhead(cluster, callback_nnz=0.0,
                         kernel_calls=result.iterations)
    result.metrics = cluster.metrics()
    return _relabel(result)


def sssp(graph: CSRGraph, cluster: Cluster, source: int = 0) -> AlgorithmResult:
    """Built-in min-plus semiring: near-CombBLAS speed per round."""
    result = combblas.sssp(graph, cluster, source)
    _add_python_overhead(cluster, callback_nnz=0.0,
                         kernel_calls=result.iterations)
    result.metrics = cluster.metrics()
    return _relabel(result)


def k_core(graph: CSRGraph, cluster: Cluster) -> AlgorithmResult:
    """The liveness mask is a Python filter over every peeled nonzero."""
    result = combblas.k_core(graph, cluster)
    _add_python_overhead(cluster,
                         callback_nnz=result.extras["peeled_edges"],
                         kernel_calls=result.iterations)
    result.metrics = cluster.metrics()
    return _relabel(result)


def label_propagation(graph: CSRGraph, cluster: Cluster, iterations: int = 3,
                      seed: int = 0) -> AlgorithmResult:
    """The mode aggregation is a user-defined add: per-nnz callback."""
    result = combblas.label_propagation(graph, cluster, iterations, seed)
    _add_python_overhead(cluster,
                         callback_nnz=float(graph.num_edges) * iterations,
                         kernel_calls=iterations)
    result.metrics = cluster.metrics()
    return _relabel(result)
