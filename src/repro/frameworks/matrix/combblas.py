"""CombBLAS front-end: the four workloads as semiring linear algebra.

Algorithm mappings, per Section 3.2 of the paper:

* PageRank — ``p' = r 1 + (1-r) A^T p~`` (equation 9): one dense-vector
  SpMV per iteration;
* BFS — sparse-vector SpMV per level (equation 10), no bit-vector
  compression (the roadmap item of Section 6.2);
* Collaborative filtering — gradient descent as "K matrix-vector
  multiplications where K is the size of the hidden dimension", both
  directions, because "CombBLAS does not allow matrices with dimension
  < number of processors" (Section 3.2) — the expressibility penalty;
* Triangle counting — ``nnz(A .* A^2)``: the full ``A @ A`` product is
  materialized first, which both inflates flops and runs out of memory
  on large inputs (Sections 5.2, 5.3, 6.2).
"""

from __future__ import annotations

import numpy as np

from ...algorithms.bfs import UNREACHED
from ...cluster import Cluster, ComputeWork
from ...graph import CSRGraph, RatingsMatrix
from ...kernels import registry as kernel_registry
from ..base import COMBBLAS
from ..results import AlgorithmResult
from ..vertex.programs import bipartite_graph
from .semiring import MIN_PLUS, OR_AND, PLUS_TIMES
from .spmat import DistSpMat, ProcessGrid

_PROFILE = COMBBLAS


def _build(graph: CSRGraph, cluster: Cluster, bytes_per_nnz: float = 16.0):
    """Distribute the matrix and register its memory."""
    grid = ProcessGrid(cluster.num_nodes)
    dist = DistSpMat(graph, grid, tracer=cluster.tracer)
    nnz_per_node = dist.nnz_per_node()
    for node in range(cluster.num_nodes):
        cluster.allocate(node, "matrix",
                         bytes_per_nnz * float(nnz_per_node[node]))
    return dist, nnz_per_node


def _works(cluster: Cluster, nnz_per_node, flops_total: float,
           traffic: np.ndarray, vector_bytes_per_node: float = 0.0,
           touched_nnz: float = None, gather_random_bytes: float = 32.0):
    """Per-node ComputeWork for one matrix kernel invocation.

    ``touched_nnz`` restricts the streamed matrix bytes to the nonzeros a
    sparse operation actually visits (a masked SpMV over a BFS frontier
    does not scan the whole matrix); it defaults to all of them.
    ``gather_random_bytes`` is the irregular traffic per visited nonzero:
    a dense-vector gather touches a cold line about half the time (32 B),
    while sparse-vector kernels (SpMSpV) stream merge-style (~4 B).
    """
    total_nnz = max(float(np.sum(nnz_per_node)), 1.0)
    if touched_nnz is None:
        touched_nnz = total_nnz
    works = []
    for node in range(cluster.num_nodes):
        share = float(nnz_per_node[node]) / total_nnz
        node_nnz = touched_nnz * share
        message_bytes = traffic[node, :].sum() + traffic[:, node].sum()
        works.append(ComputeWork(
            # 16 B per visited nonzero (index + value) plus SPA re-reads.
            streamed_bytes=(24.0 * node_nnz
                            + vector_bytes_per_node
                            + 2.0 * message_bytes),
            random_bytes=gather_random_bytes * node_nnz,
            ops=flops_total * share,
            cpu_efficiency=_PROFILE.cpu_efficiency,
            cores_fraction=_PROFILE.cores_fraction,
            prefetch=True,   # tuned C++ SpMV kernels prefetch their SPA
        ))
    return works


def _step(cluster, nnz_per_node, flops, traffic, vector_bytes=0.0,
          touched_nnz=None, gather_random_bytes=32.0):
    cluster.superstep(
        _works(cluster, nnz_per_node, flops, traffic, vector_bytes,
               touched_nnz, gather_random_bytes),
        traffic, overlap=_PROFILE.overlaps_communication,
        layer=_PROFILE.comm_layer,
        overhead_s=_PROFILE.superstep_overhead_s,
    )


def pagerank(graph: CSRGraph, cluster: Cluster, iterations: int = 10,
             damping: float = 0.3) -> AlgorithmResult:
    """Equation 9, one dense SpMV per iteration."""
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    dist, nnz_per_node = _build(graph, cluster)
    num_vertices = graph.num_vertices
    cluster.allocate_all("vectors", 8.0 * 3 * num_vertices / cluster.num_nodes)

    out_degrees = graph.out_degrees()
    safe = np.maximum(out_degrees, 1)
    ranks = np.full(num_vertices, 1.0)
    for iteration in range(iterations):
        with cluster.trace_span("spmv", kind="dense", index=iteration):
            scaled = np.where(out_degrees > 0, ranks / safe, 0.0)
            y, flops, traffic = dist.spmv(scaled, PLUS_TIMES)
            ranks = damping + (1.0 - damping) * y
            _step(cluster, nnz_per_node, flops, traffic,
                  vector_bytes=8.0 * 3 * num_vertices / cluster.num_nodes)
            cluster.mark_iteration()

    return AlgorithmResult(
        algorithm="pagerank", framework="combblas", values=ranks,
        iterations=iterations, metrics=cluster.metrics(),
        extras={"grid": dist.grid.grid},
    )


def bfs(graph: CSRGraph, cluster: Cluster, source: int = 0) -> AlgorithmResult:
    """Equation 10: frontier = A^T frontier over the boolean semiring."""
    if not 0 <= source < graph.num_vertices:
        raise ValueError(f"source {source} out of range")
    dist, nnz_per_node = _build(graph, cluster)
    num_vertices = graph.num_vertices
    cluster.allocate_all("vectors", 8.0 * 2 * num_vertices / cluster.num_nodes)

    distances = np.full(num_vertices, UNREACHED, dtype=np.int32)
    distances[source] = 0
    frontier = np.zeros(num_vertices)
    frontier[source] = 1.0
    level = 0
    tracer = cluster.tracer
    tracer.count("frontier_size", 1)          # the source vertex
    while frontier.any():
        level += 1
        with cluster.trace_span("spmv", kind="sparse", level=level,
                                frontier=int(frontier.sum())):
            y, flops, traffic = dist.spmv(frontier, OR_AND, sparse_x=True)
            fresh = (y > 0) & (distances == UNREACHED)
            distances[fresh] = level
            _step(cluster, nnz_per_node, flops, traffic,
                  touched_nnz=flops / 2.0, gather_random_bytes=4.0)
            cluster.mark_iteration()
        frontier = fresh.astype(np.float64)
        if fresh.any():
            tracer.count("frontier_size", int(fresh.sum()))

    return AlgorithmResult(
        algorithm="bfs", framework="combblas", values=distances,
        iterations=level, metrics=cluster.metrics(),
        extras={"reached": int((distances != UNREACHED).sum())},
    )


def collaborative_filtering(ratings: RatingsMatrix, cluster: Cluster,
                            hidden_dim: int = 64, iterations: int = 10,
                            gamma0: float = 0.002, step_decay: float = 0.95,
                            lambda_reg: float = 0.05,
                            seed: int = 0) -> AlgorithmResult:
    """GD via 2K per-dimension SpMVs (the Section 3.2 mapping)."""
    if iterations < 1 or hidden_dim < 1:
        raise ValueError("iterations and hidden_dim must be >= 1")
    from ..base import cf_density_correction

    graph = bipartite_graph(ratings)
    dist, nnz_per_node = _build(graph, cluster)
    n = graph.num_vertices
    density = cf_density_correction(ratings)
    # n already covers both user and item vertices of the bipartite
    # graph; each node stores its band of the K factor columns.
    cluster.allocate_all(
        "factors", 8.0 * hidden_dim * n / cluster.num_nodes / density
    )

    rng = np.random.default_rng(seed)
    scale = 1.0 / np.sqrt(hidden_dim)
    p_factors = rng.random((ratings.num_users, hidden_dim)) * scale
    q_factors = rng.random((ratings.num_items, hidden_dim)) * scale

    kern = kernel_registry.kernel("collaborative_filtering",
                                  "blocked-gd")().prepare(ratings)

    # Traffic/flops template of one dense SpMV on this distribution; the
    # exchanged vectors are vertex-proportional (density-corrected).
    probe = np.ones(n)
    _, flops_one, traffic_one = dist.spmv(probe, PLUS_TIMES)
    traffic_one = traffic_one / density

    rmse_curve = []
    gamma = gamma0
    for iteration in range(iterations):
        with cluster.trace_span("iteration", index=iteration,
                                spmvs=hidden_dim):
            kern.step(p_factors, q_factors, gamma, lambda_reg, lambda_reg)
            gamma *= step_decay
            rmse_curve.append(kern.rmse(p_factors, q_factors))
            # K per-dimension SpMVs, each re-scanning R with one factor
            # column as the dense vector ("a single GD iteration consists
            # of K matrix-vector multiplications"). Gathering one 8-byte
            # column entry per nonzero has mild irregularity (columns are
            # dense).
            for _k in range(hidden_dim):
                with cluster.trace_span("spmv", kind="dense", index=_k):
                    _step(cluster, nnz_per_node, flops_one, traffic_one,
                          vector_bytes=8.0 * n / cluster.num_nodes / density,
                          gather_random_bytes=8.0)
            cluster.mark_iteration()

    return AlgorithmResult(
        algorithm="collaborative_filtering", framework="combblas",
        values=(p_factors, q_factors), iterations=iterations,
        metrics=cluster.metrics(),
        extras={"rmse_curve": rmse_curve, "method": "gd",
                "hidden_dim": hidden_dim, "spmvs_per_iteration": hidden_dim},
    )


def triangle_count(graph: CSRGraph, cluster: Cluster) -> AlgorithmResult:
    """``nnz-weighted (A .* A^2)`` with the full product materialized.

    Raises :class:`~repro.errors.CapacityError` when the A^2 blocks do
    not fit — the paper's Twitter failure (Section 5.3).
    """
    dist, nnz_per_node = _build(graph, cluster)

    with cluster.trace_span("spgemm") as spgemm_span:
        product, flops, traffic = dist.spgemm_aa()
        spgemm_span.set(flops=flops, product_nnz=int(product.nnz))
        # The product must live in memory before the elementwise mask;
        # its nonzeros distribute like the blocks do (roughly evenly).
        product_per_node = 16.0 * product.nnz / cluster.num_nodes
        cluster.allocate_all("a-squared", product_per_node)

        count, mult_flops = dist.ewise_mult_sum(product)
        # SpGEMM pays for far more than the multiplies: heap/hash
        # accumulator maintenance per multiply (irregular, ~log d deep),
        # expanded-triple materialization that is re-merged once per
        # SUMMA stage, and the full A^2 written out and re-read for the
        # mask — work the fused native intersection never does (Section
        # 6.2's "inter-operation optimization" roadmap item).
        multiplies = flops / 2.0
        stages = dist.grid.grid
        spa_random_bytes = 32.0 * multiplies / cluster.num_nodes
        expand_stream_bytes = (16.0 * min(stages, 8) * multiplies
                               / cluster.num_nodes)
        product_stream_bytes = 4.0 * product_per_node
        works = _works(cluster, nnz_per_node,
                       100.0 * multiplies + mult_flops, traffic)
        for work in works:
            work.random_bytes += spa_random_bytes
            work.streamed_bytes += product_stream_bytes + expand_stream_bytes
            work.prefetch = False   # pointer-chasing accumulators do not
        cluster.superstep(works, traffic,
                          overlap=_PROFILE.overlaps_communication,
                          layer=_PROFILE.comm_layer,
                          overhead_s=_PROFILE.superstep_overhead_s)
        cluster.mark_iteration()

    return AlgorithmResult(
        algorithm="triangle_counting", framework="combblas",
        values=int(count), iterations=1, metrics=cluster.metrics(),
        extras={"a_squared_nnz": int(product.nnz),
                "spgemm_flops": flops},
    )


# ---------------------------------------------------------------------------
# Second-generation workloads (WCC, SSSP, k-core, label propagation).
# ---------------------------------------------------------------------------


def wcc(graph: CSRGraph, cluster: Cluster) -> AlgorithmResult:
    """HashMin WCC: sparse min-SpMV rounds over component labels.

    The min semiring with 0-valued edges carries each present vertex's
    label to its out-neighbors (``multiply(0, x) = x``, min-reduce);
    only just-improved vertices stay present in the next round's sparse
    vector. Run on symmetrized graphs.
    """
    dist, nnz_per_node = _build(graph, cluster)
    num_vertices = graph.num_vertices
    cluster.allocate_all("vectors", 8.0 * 2 * num_vertices / cluster.num_nodes)

    carry = np.zeros(graph.num_edges)   # multiply(0, label) = label
    labels = np.arange(num_vertices, dtype=np.float64)
    x = labels.copy()                   # every vertex present at first
    rounds = 0
    while True:
        rounds += 1
        with cluster.trace_span("spmv", kind="sparse", round=rounds):
            y, flops, traffic = dist.spmv(x, MIN_PLUS, edge_values=carry,
                                          sparse_x=True)
            merged = np.minimum(labels, y)
            changed = merged < labels
            _step(cluster, nnz_per_node, flops, traffic,
                  touched_nnz=flops / 2.0, gather_random_bytes=4.0)
            cluster.mark_iteration()
        labels = merged
        if not changed.any():
            break
        x = np.where(changed, labels, np.inf)

    values = labels.astype(np.int64)
    return AlgorithmResult(
        algorithm="wcc", framework="combblas", values=values,
        iterations=rounds, metrics=cluster.metrics(),
        extras={"components": int(np.unique(values).size)},
    )


def sssp(graph: CSRGraph, cluster: Cluster, source: int = 0) -> AlgorithmResult:
    """Bellman-Ford over the tropical semiring: sparse min-plus SpMVs."""
    from ...algorithms.sssp import edge_weights_for

    if not 0 <= source < graph.num_vertices:
        raise ValueError(f"source {source} out of range")
    weights = edge_weights_for(graph)
    dist, nnz_per_node = _build(graph, cluster, bytes_per_nnz=24.0)
    num_vertices = graph.num_vertices
    cluster.allocate_all("vectors", 8.0 * 2 * num_vertices / cluster.num_nodes)

    distances = np.full(num_vertices, np.inf)
    distances[source] = 0.0
    x = np.full(num_vertices, np.inf)
    x[source] = 0.0
    rounds = 0
    relaxations = 0.0
    while True:
        rounds += 1
        with cluster.trace_span("spmv", kind="sparse", round=rounds):
            y, flops, traffic = dist.spmv(x, MIN_PLUS, edge_values=weights,
                                          sparse_x=True)
            relaxations += flops / 2.0
            merged = np.minimum(distances, y)
            changed = merged < distances
            _step(cluster, nnz_per_node, flops, traffic,
                  touched_nnz=flops / 2.0, gather_random_bytes=4.0)
            cluster.mark_iteration()
        distances = merged
        if not changed.any():
            break
        x = np.where(changed, distances, np.inf)

    return AlgorithmResult(
        algorithm="sssp", framework="combblas", values=distances,
        iterations=rounds, metrics=cluster.metrics(),
        extras={"relaxations": relaxations,
                "reached": int(np.isfinite(distances).sum())},
    )


def k_core(graph: CSRGraph, cluster: Cluster) -> AlgorithmResult:
    """Ascending-k peeling; each cascade wave is one counting SpMV.

    The removed-vertex indicator times the adjacency (plus-times,
    sparse) counts the degree decrements every surviving vertex
    receives — LAGraph's k-core shape.
    """
    dist, nnz_per_node = _build(graph, cluster)
    num_vertices = graph.num_vertices
    cluster.allocate_all("vectors", 8.0 * 3 * num_vertices / cluster.num_nodes)

    degrees = graph.out_degrees().astype(np.int64)
    core = np.zeros(num_vertices, dtype=np.int64)
    alive = np.ones(num_vertices, dtype=bool)
    peeled_edges = 0.0
    waves = 0
    k = 1
    while alive.any():
        with cluster.trace_span("peel-level", k=k, alive=int(alive.sum())):
            while True:
                removed = np.flatnonzero(alive & (degrees < k))
                if removed.size == 0:
                    break
                waves += 1
                x = np.zeros(num_vertices)
                x[removed] = 1.0
                core[removed] = k - 1
                alive[removed] = False
                with cluster.trace_span("spmv", kind="sparse", k=k,
                                        removed=int(removed.size)):
                    y, flops, traffic = dist.spmv(x, PLUS_TIMES,
                                                  sparse_x=True)
                    peeled_edges += flops / 2.0
                    degrees = degrees - np.rint(y).astype(np.int64)
                    _step(cluster, nnz_per_node, flops, traffic,
                          touched_nnz=flops / 2.0, gather_random_bytes=4.0)
            cluster.mark_iteration()
        k += 1

    return AlgorithmResult(
        algorithm="k_core", framework="combblas", values=core,
        iterations=waves, metrics=cluster.metrics(),
        extras={"max_core": int(core.max()) if core.size else 0,
                "peeled_edges": peeled_edges},
    )


def label_propagation(graph: CSRGraph, cluster: Cluster, iterations: int = 3,
                      seed: int = 0) -> AlgorithmResult:
    """CDLP: one dense label exchange per round, mode aggregation.

    The per-round exchange and matrix scan are exactly a dense SpMV on
    this distribution; the (max count, min label) mode runs as the
    semiring's user-defined add.
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    from ...algorithms.labelprop import initial_labels

    dist, nnz_per_node = _build(graph, cluster)
    num_vertices = graph.num_vertices
    cluster.allocate_all("vectors", 8.0 * 2 * num_vertices / cluster.num_nodes)

    sync = kernel_registry.kernel("label_propagation",
                                  "sync")().prepare(graph)
    labels = initial_labels(num_vertices, seed)

    # Flop/traffic template of one dense SpMV on this distribution.
    probe = np.ones(num_vertices)
    _, flops_one, traffic_one = dist.spmv(probe, PLUS_TIMES)

    for iteration in range(int(iterations)):
        with cluster.trace_span("spmv", kind="dense", index=iteration):
            labels, _ = sync.step(labels)
            # The mode "add" is a user-defined hash tally: each visited
            # nonzero pays the dense gather plus a 16 B probe.
            _step(cluster, nnz_per_node, flops_one, traffic_one,
                  vector_bytes=8.0 * 2 * num_vertices / cluster.num_nodes,
                  gather_random_bytes=48.0)
            cluster.mark_iteration()

    return AlgorithmResult(
        algorithm="label_propagation", framework="combblas", values=labels,
        iterations=int(iterations), metrics=cluster.metrics(),
        extras={"communities": int(np.unique(labels).size)},
    )
