"""Sparse-matrix semiring engine and the CombBLAS front-end."""

from . import combblas
from .semiring import (
    MIN_PLUS,
    OR_AND,
    PLUS_TIMES,
    SEMIRINGS,
    Semiring,
    semiring_spmv,
)
from .spmat import PROCS_PER_NODE, DistSpMat, ProcessGrid

__all__ = [
    "MIN_PLUS",
    "OR_AND",
    "PLUS_TIMES",
    "PROCS_PER_NODE",
    "SEMIRINGS",
    "DistSpMat",
    "ProcessGrid",
    "Semiring",
    "combblas",
    "semiring_spmv",
]
