"""2-D distributed sparse matrix with CombBLAS's process-grid layout.

CombBLAS "partitions the non-zeros of the matrix (edges in the graph)
across nodes ... the only framework that supports an edge-based
partitioning" (Section 3), runs "as a pure MPI program" with 36 processes
per node, and "requires the total number of processes to be a square"
(Section 4.3). :class:`ProcessGrid` reproduces that: a g x g grid of MPI
ranks mapped block-contiguously onto the cluster's nodes, with g chosen
as the largest square that 36/node allows.

:class:`DistSpMat` holds the block-distributed adjacency and provides the
three communication-bearing kernels the paper's algorithms need, each
returning both the numerical result (computed exactly) and the per-node
traffic matrix of the 2-D algorithm:

* ``spmv`` — column-band broadcast of x, local semiring multiply,
  row-band reduction of partial y (the classic 2-D SpMV);
* ``spgemm_aa`` — SUMMA-style A @ A with A broadcast along both grid
  dimensions, materializing the full product (the expressibility problem
  that makes triangle counting blow up: Sections 5.2/6.2);
* ``ewise_mult_sum`` — elementwise mask-and-sum against another matrix.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import sparse

from ...errors import PartitionError
from ...graph import CSRGraph
from ...observability import NULL_TRACER
from .semiring import PLUS_TIMES, Semiring, semiring_spmv

PROCS_PER_NODE = 36


class ProcessGrid:
    """Square grid of MPI ranks mapped contiguously onto nodes."""

    def __init__(self, num_nodes: int, procs_per_node: int = PROCS_PER_NODE):
        if num_nodes < 1:
            raise PartitionError("num_nodes must be >= 1")
        total = num_nodes * procs_per_node
        self.grid = max(math.isqrt(total), 1)
        self.num_nodes = num_nodes
        self.num_procs = self.grid * self.grid

    def node_of_rank(self, rank) -> np.ndarray:
        """Block-contiguous rank -> node mapping."""
        rank = np.asarray(rank, dtype=np.int64)
        return np.minimum(rank * self.num_nodes // self.num_procs,
                          self.num_nodes - 1)

    def rank_of(self, row: int, col: int) -> int:
        return int(row) * self.grid + int(col)

    def aggregate_to_nodes(self, proc_traffic: np.ndarray) -> np.ndarray:
        """Collapse a rank-pair traffic matrix to a node-pair matrix."""
        nodes = np.zeros((self.num_nodes, self.num_nodes))
        owner = self.node_of_rank(np.arange(self.num_procs))
        np.add.at(nodes, (owner[:, None].repeat(self.num_procs, axis=1),
                          owner[None, :].repeat(self.num_procs, axis=0)),
                  proc_traffic)
        return nodes


class DistSpMat:
    """The adjacency of ``graph`` distributed over a :class:`ProcessGrid`."""

    def __init__(self, graph: CSRGraph, grid: ProcessGrid, tracer=NULL_TRACER):
        self.graph = graph
        self.grid = grid
        self.tracer = tracer
        n = graph.num_vertices
        g = grid.grid
        # Band boundaries of the block distribution.
        self.bounds = np.linspace(0, n, g + 1).astype(np.int64)
        src = graph.sources()
        dst = graph.targets
        row_band = np.minimum(np.searchsorted(self.bounds, src, "right") - 1,
                              g - 1)
        col_band = np.minimum(np.searchsorted(self.bounds, dst, "right") - 1,
                              g - 1)
        self.block_nnz = np.zeros((g, g), dtype=np.int64)
        np.add.at(self.block_nnz, (row_band, col_band), 1)
        self.scipy = sparse.csr_matrix(
            (np.ones(graph.num_edges), dst, graph.offsets.astype(np.int64)),
            shape=(n, n),
        )

    @property
    def nnz(self) -> int:
        return self.graph.num_edges

    def band_sizes(self) -> np.ndarray:
        return np.diff(self.bounds)

    def nnz_per_node(self) -> np.ndarray:
        """Edges stored per cluster node (for memory accounting)."""
        ranks = np.arange(self.grid.num_procs)
        owner = self.grid.node_of_rank(ranks)
        per_node = np.zeros(self.grid.num_nodes)
        np.add.at(per_node, owner, self.block_nnz.reshape(-1)[ranks])
        return per_node

    # -- kernels -------------------------------------------------------------

    def spmv_traffic(self, x_entries_per_band: np.ndarray,
                     y_entries_per_band: np.ndarray,
                     value_bytes: float = 8.0) -> np.ndarray:
        """Node traffic of one 2-D SpMV.

        Stage 1: the diagonal rank of each column band broadcasts its x
        segment down the column (g-1 recipients). Stage 2: each rank
        sends its partial y segment to the diagonal rank of its row band
        (fold). Entry counts allow sparse vectors (BFS frontiers) — only
        present entries travel.
        """
        g = self.grid.grid
        nodes = self.grid.num_nodes
        node_traffic = np.zeros((nodes, nodes))
        rank_node = self.grid.node_of_rank(np.arange(self.grid.num_procs))
        for band in range(g):
            x_bytes = float(x_entries_per_band[band]) * value_bytes
            y_bytes = float(y_entries_per_band[band]) * value_bytes
            diag_node = int(rank_node[self.grid.rank_of(band, band)])
            # MPI collectives move each segment once per *node*: the
            # broadcast tree forwards within a node over shared memory.
            column_nodes = {
                int(rank_node[self.grid.rank_of(row, band)])
                for row in range(g)
            }
            for target in column_nodes:
                if target != diag_node:
                    node_traffic[diag_node, target] += x_bytes
            row_nodes = {
                int(rank_node[self.grid.rank_of(band, col)])
                for col in range(g)
            }
            for source in row_nodes:
                if source != diag_node:
                    node_traffic[source, diag_node] += y_bytes
        return node_traffic

    def _entries_per_band(self, vector: np.ndarray, zero: float) -> np.ndarray:
        if np.isinf(zero):
            present = np.nonzero(np.isfinite(vector))[0]
        else:
            present = np.nonzero(vector != zero)[0]
        return np.histogram(present, bins=self.bounds)[0].astype(np.float64)

    def spmv(self, x: np.ndarray, semiring: Semiring = PLUS_TIMES,
             edge_values: np.ndarray = None, sparse_x: bool = False,
             value_bytes: float = 8.0):
        """``y = A^T x`` plus (flops, traffic) of the 2-D algorithm."""
        y = semiring_spmv(self.graph, x, semiring, edge_values)
        if sparse_x:
            x_bands = self._entries_per_band(x, semiring.zero)
            y_bands = self._entries_per_band(y, semiring.zero)
            if np.isinf(semiring.zero):
                present = np.nonzero(np.isfinite(x))[0]
            else:
                present = np.nonzero(x != semiring.zero)[0]
            degrees = self.graph.out_degrees()
            flops = 2.0 * float(degrees[present].sum())
        else:
            x_bands = self.band_sizes().astype(np.float64)
            y_bands = x_bands
            flops = 2.0 * float(self.nnz)
        traffic = self.spmv_traffic(x_bands, y_bands, value_bytes)
        if self.tracer.enabled:
            self.tracer.count("flops", flops)
            self.tracer.instant("spmv-kernel", flops=flops,
                                sparse=bool(sparse_x))
        return y, flops, traffic

    def spgemm_aa(self):
        """``A @ A`` (path counts), with its flop count and traffic.

        SUMMA stages broadcast every A block along its row *and* column
        of the grid, so each rank's nnz crosses the wire ~2(g-1)/g x 16
        bytes; the result blocks stay put. The caller is responsible for
        registering the product's memory — that allocation is what kills
        CombBLAS triangle counting on big inputs.
        """
        from ...kernels.triangles import aa_product

        product = aa_product(self.scipy)
        degrees = np.asarray(self.scipy.sum(axis=1)).ravel()
        # Multiply count: for each nonzero (u, v), row v's nnz.
        flops = 2.0 * float(degrees[self.graph.targets].sum())

        g = self.grid.grid
        nodes = self.grid.num_nodes
        node_traffic = np.zeros((nodes, nodes))
        rank_node = self.grid.node_of_rank(np.arange(self.grid.num_procs))
        block_bytes = self.block_nnz * 16.0
        for row in range(g):
            for col in range(g):
                source = int(rank_node[self.grid.rank_of(row, col)])
                nbytes = float(block_bytes[row, col])
                row_targets = {int(rank_node[self.grid.rank_of(row, other)])
                               for other in range(g)}
                col_targets = {int(rank_node[self.grid.rank_of(other, col)])
                               for other in range(g)}
                for target in row_targets | col_targets:
                    if target != source:
                        node_traffic[source, target] += nbytes
        if self.tracer.enabled:
            self.tracer.count("flops", flops)
            self.tracer.instant("spgemm-kernel", flops=flops,
                                product_nnz=int(product.nnz))
        return product, flops, node_traffic

    def ewise_mult_sum(self, other) -> "tuple[float, float]":
        """``sum(A .* other)`` and its flop count (blocks are aligned)."""
        from ...kernels.triangles import masked_sum

        return masked_sum(self.scipy, other), 2.0 * float(self.scipy.nnz)
