"""Rule representation for the SociaLite engine.

A rule is ``HEAD(key, $AGG(value_expr)) :- atom, atom, ..., assignments``
— the exact shape of the paper's programs, e.g. (Section 3.1)::

    RANK[n](t+1, $SUM(v)) :- RANK[s](t, v0), OUTEDGE[s](n),
                             OUTDEG[s](d), v = (1-r) * v0 / d.

maps to::

    Rule(
        head=Head("rank_next", Var("n"), Var("v"), agg="sum"),
        body=[Atom("rank", Var("s"), Var("v0")),
              Atom("outedge", Var("s"), Var("n")),
              Atom("outdeg", Var("s"), Var("d"))],
        assigns=[Assign("v", lambda v0, d: (1 - R) * v0 / d, ("v0", "d"))],
    )
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ...errors import ReproError


@dataclass(frozen=True)
class Var:
    """A logic variable; equality is by name."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Atom:
    """A body literal: table name + terms (Var or int constant)."""

    table: str
    terms: tuple

    def __init__(self, table: str, *terms):
        object.__setattr__(self, "table", table)
        object.__setattr__(self, "terms", tuple(terms))

    def variables(self):
        return [t for t in self.terms if isinstance(t, Var)]

    def __repr__(self) -> str:
        inner = ", ".join(map(repr, self.terms))
        return f"{self.table}({inner})"


@dataclass(frozen=True)
class Assign:
    """``target = fn(*inputs)`` over bound columns (vectorized)."""

    target: str
    fn: Callable
    inputs: tuple


@dataclass(frozen=True)
class Head:
    """Head atom with aggregation: ``table(key, $AGG(value))``.

    ``key`` is a Var or an int constant (the triangle query's
    ``TRIANGLE(0, $INC(1))``); ``value`` is a Var, a float constant, or
    None for pure counting (``$INC``).
    """

    table: str
    key: object
    value: object = None
    agg: str = "sum"


@dataclass
class Rule:
    """One Datalog rule."""

    head: Head
    body: list
    assigns: list = field(default_factory=list)
    #: Variable whose shard determines where body evaluation runs; used
    #: for communication accounting. Defaults to the first variable of
    #: the first body atom.
    shard_var: str = None

    def __post_init__(self):
        if not self.body:
            raise ReproError("rule body must have at least one atom")
        if self.shard_var is None:
            first_vars = self.body[0].variables()
            if not first_vars:
                raise ReproError("first body atom needs a variable")
            self.shard_var = first_vars[0].name
