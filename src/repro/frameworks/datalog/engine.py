"""The SociaLite rule evaluator with distributed accounting.

Evaluation is left-to-right binding propagation, the standard strategy
for Datalog bodies:

* the first atom seeds the binding table (optionally restricted to a
  *delta* for semi-naive recursive evaluation, as in [31]);
* a tail-nested atom whose first term is bound expands the bindings
  (CSR-style lookup — SociaLite's join on a tail-nested table);
* an atom whose terms are all bound becomes a semi-join existence
  filter (the third EDGE atom of the triangle query);
* an aggregate-table atom with a bound key is a functional gather.

Every evaluation produces (key, value) head tuples that are folded into
the head's lattice aggregation, plus an :class:`EvalStats` with the
scanned bytes, join output size and the node-to-node tuple shipping the
sharding implies — which the SociaLite front-end charges to the cluster.

Supported subset: joins connect on a single shared variable (plus
arbitrary all-bound semi-joins); this covers every program in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...errors import ReproError
from ...observability import NULL_TRACER
from .rules import Head, Rule, Var
from .table import AggregateTable


@dataclass
class EvalStats:
    """Counted work of one rule evaluation."""

    scanned_bytes: float = 0.0
    join_output_rows: float = 0.0
    produced_tuples: float = 0.0
    ops: float = 0.0
    traffic: np.ndarray = None        # head-shipping bytes, (P, P)
    work_share: np.ndarray = None     # fraction of work per shard
    changed: np.ndarray = None        # head keys whose value changed


class SocialiteEngine:
    """Holds the database and evaluates rules over it."""

    def __init__(self, num_shards: int = 1, tuple_bytes: float = 16.0,
                 vertex_universe: int = 1, tracer=NULL_TRACER):
        self.num_shards = num_shards
        self.tuple_bytes = tuple_bytes
        self.tracer = tracer
        self.tables = {}
        from ...graph import partition_vertices_1d
        self.shard_partition = partition_vertices_1d(
            max(int(vertex_universe), 1), num_shards
        )

    # -- schema ----------------------------------------------------------

    def add(self, table) -> None:
        self.tables[table.name] = table

    def table(self, name: str):
        try:
            return self.tables[name]
        except KeyError:
            raise ReproError(f"unknown table {name!r}") from None

    # -- evaluation ----------------------------------------------------------

    def evaluate(self, rule: Rule, delta_keys: np.ndarray = None) -> EvalStats:
        """Evaluate one rule; fold results into the head table.

        ``delta_keys`` restricts the *first* body atom to rows whose key
        is in the delta (semi-naive evaluation of recursive rules).
        Returns the work/traffic statistics; the set of changed head
        keys is stored in ``stats.changed`` for recursion drivers.
        """
        stats = EvalStats(traffic=np.zeros((self.num_shards, self.num_shards)))
        bindings = self._seed(rule.body[0], delta_keys, stats)
        for atom in rule.body[1:]:
            bindings = self._extend(atom, bindings, stats)

        for assign in rule.assigns:
            inputs = [bindings[name] for name in assign.inputs]
            bindings[assign.target] = np.asarray(assign.fn(*inputs),
                                                 dtype=np.float64)

        stats.work_share = self._work_share(rule, bindings)
        stats.changed = self._fold_head(rule, bindings, stats)
        if self.tracer.enabled:
            self.tracer.count("tuples_produced", stats.produced_tuples)
            self.tracer.count("tuples_scanned_bytes", stats.scanned_bytes)
            self.tracer.instant("rule", head=rule.head.table,
                                produced=stats.produced_tuples,
                                join_rows=stats.join_output_rows)
        return stats

    def _work_share(self, rule: Rule, bindings: dict) -> np.ndarray:
        """How the rule's work spreads over shards (by the shard var)."""
        uniform = np.full(self.num_shards, 1.0 / self.num_shards)
        if rule.shard_var not in bindings:
            return uniform
        values = np.asarray(bindings[rule.shard_var], dtype=np.int64)
        if values.size == 0:
            return uniform
        values = np.clip(values, 0, self.shard_partition.num_vertices - 1)
        counts = np.bincount(self.shard_partition.owner_of_many(values),
                             minlength=self.num_shards).astype(np.float64)
        total = counts.sum()
        return counts / total if total else uniform

    # -- body handling ---------------------------------------------------------

    def _seed(self, atom, delta_keys, stats) -> dict:
        table = self.table(atom.table)
        bindings = {}
        if isinstance(table, AggregateTable):
            key_term, value_term = atom.terms
            keys = table.defined_keys() if delta_keys is None \
                else np.asarray(delta_keys, dtype=np.int64)
            stats.scanned_bytes += 16.0 * keys.size
            bindings[key_term.name] = keys
            if isinstance(value_term, Var):
                bindings[value_term.name] = table.values[keys]
            return bindings

        rows = np.arange(table.num_rows)
        if delta_keys is not None:
            mask = np.isin(table.columns[0], delta_keys)
            rows = rows[mask]
        stats.scanned_bytes += self.tuple_bytes * rows.size * table.arity / 2
        for position, term in enumerate(atom.terms):
            column = table.columns[position][rows]
            if isinstance(term, Var):
                bindings[term.name] = column
            else:
                keep = column == term
                for name in bindings:
                    bindings[name] = bindings[name][keep]
                rows = rows[keep]
        return bindings

    def _extend(self, atom, bindings, stats) -> dict:
        table = self.table(atom.table)
        terms = atom.terms
        bound = [isinstance(t, Var) and t.name in bindings or
                 not isinstance(t, Var) for t in terms]

        if isinstance(table, AggregateTable):
            key_term, value_term = terms
            if not bound[0]:
                raise ReproError(
                    f"aggregate atom {atom} needs its key bound"
                )
            keys = np.asarray(bindings[key_term.name], dtype=np.int64)
            present = table.present[keys]
            # Dense keyed array: one 8-byte value gather per probe.
            stats.scanned_bytes += 8.0 * keys.size
            new_bindings = {name: col[present] for name, col in bindings.items()}
            if isinstance(value_term, Var):
                new_bindings[value_term.name] = table.values[keys[present]]
            return new_bindings

        if all(bound):
            return self._semi_join(table, atom, bindings, stats)

        if not bound[0] or not isinstance(terms[0], Var):
            raise ReproError(
                f"atom {atom}: joins must bind the first column "
                "(tail-nested access)"
            )
        if not table.tail_nested:
            raise ReproError(
                f"table {table.name} must be tail-nested to join on"
            )
        keys = np.asarray(bindings[terms[0].name], dtype=np.int64)
        row_idx, match_counts = table.lookup(keys)
        stats.scanned_bytes += self.tuple_bytes * row_idx.size
        stats.join_output_rows += row_idx.size
        stats.ops += 4.0 * row_idx.size

        new_bindings = {
            name: np.repeat(col, match_counts) for name, col in bindings.items()
        }
        for position, term in enumerate(terms[1:], start=1):
            column = table.columns[position][row_idx]
            if isinstance(term, Var):
                if term.name in new_bindings:        # shared var: filter
                    keep = new_bindings[term.name] == column
                    new_bindings = {n: c[keep] for n, c in new_bindings.items()}
                    column = column[keep]
                else:
                    new_bindings[term.name] = column
            else:
                keep = column == term
                new_bindings = {n: c[keep] for n, c in new_bindings.items()}
        return new_bindings

    def _semi_join(self, table, atom, bindings, stats) -> dict:
        """Existence filter for an atom whose terms are all bound."""
        if table.arity != 2:
            raise ReproError("semi-joins support binary tables only")
        universe = np.int64(max(table.key_universe,
                                int(table.columns[1].max()) + 1
                                if table.num_rows else 1))
        have = np.sort(table.columns[0].astype(np.int64) * universe
                       + table.columns[1].astype(np.int64))

        def column_of(term):
            if isinstance(term, Var):
                return np.asarray(bindings[term.name], dtype=np.int64)
            first = next(iter(bindings.values()))
            return np.full(first.shape, term, dtype=np.int64)

        probe = column_of(atom.terms[0]) * universe + column_of(atom.terms[1])
        position = np.searchsorted(have, probe)
        position = np.minimum(position, max(have.size - 1, 0))
        hit = have.size > 0
        keep = (have[position] == probe) if hit else np.zeros(probe.shape, bool)
        stats.ops += 6.0 * probe.size
        stats.scanned_bytes += 8.0 * probe.size
        return {name: col[keep] for name, col in bindings.items()}

    # -- head -------------------------------------------------------------------

    def _fold_head(self, rule: Rule, bindings: dict, stats) -> np.ndarray:
        head: Head = rule.head
        table = self.table(head.table)
        if not isinstance(table, AggregateTable):
            raise ReproError("rule heads must target aggregate tables")
        if not bindings:
            return np.zeros(0, dtype=np.int64)
        first = next(iter(bindings.values()))
        if isinstance(head.key, Var):
            keys = np.asarray(bindings[head.key.name], dtype=np.int64)
        else:
            keys = np.full(first.shape, int(head.key), dtype=np.int64)
        if keys.size == 0:
            return np.zeros(0, dtype=np.int64)
        if head.value is None:
            values = np.ones(keys.shape)
        elif isinstance(head.value, Var):
            values = np.asarray(bindings[head.value.name], dtype=np.float64)
        else:
            values = np.full(keys.shape, float(head.value))

        stats.produced_tuples += keys.size
        stats.ops += 2.0 * keys.size

        # Shipping: tuples travel from the shard evaluating the body (the
        # shard_var binding, mapped through the engine's vertex sharding)
        # to the shard owning the head key. Updates headed from one shard
        # to the same key are batched into one transfer ("merging
        # communication data for batch processing", Section 6.1.3).
        if rule.shard_var in bindings:
            shard_values = np.asarray(bindings[rule.shard_var], dtype=np.int64)
            shard_values = np.clip(shard_values, 0,
                                   self.shard_partition.num_vertices - 1)
            producer = self.shard_partition.owner_of_many(shard_values)
        else:
            producer = np.zeros(keys.shape, dtype=np.int64)
        owner = table.partition.owner_of_many(keys)
        cross = producer != owner
        if cross.any():
            pair = (producer[cross] * np.int64(table.key_universe)
                    + keys[cross])
            unique_pairs = np.unique(pair)
            pair_producer = unique_pairs // table.key_universe
            pair_key = unique_pairs % table.key_universe
            pair_owner = table.partition.owner_of_many(pair_key)
            np.add.at(stats.traffic, (pair_producer, pair_owner),
                      self.tuple_bytes)
        return table.combine(keys, values)
