"""Parser for SociaLite's textual rule syntax.

Accepts the notation the paper prints (Sections 3.1/3.2), e.g.::

    RANK[n](t+1, $SUM(v)) :- RANK[s](t, v0), OUTEDGE[s](n),
                             OUTDEG[s](d), v = (1-r)*v0/d.

    BFS(t, $MIN(d)) :- BFS(s, d0), EDGE(s, t), d = d0 + 1.

    TRIANGLE(0, $INC(1)) :- EDGE(x, y), EDGE(y, z), EDGE(x, z).

and compiles it to :class:`~repro.frameworks.datalog.rules.Rule` objects
runnable on the engine. Conventions handled:

* ``TABLE[x](...)`` (sharded-table notation) is equivalent to
  ``TABLE(x, ...)`` — the bracketed first column is the shard key;
* iteration terms like ``t`` / ``t+1`` on RANK are bookkeeping in the
  paper (the engine double-buffers instead) and are dropped when the
  head table is declared iteration-indexed;
* aggregation heads ``$SUM(expr)`` / ``$MIN(expr)`` / ``$INC(expr)``;
* arithmetic assignments ``var = expression`` over bound variables with
  ``+ - * /``, parentheses, numeric literals and named constants
  supplied by the caller.

Arithmetic expressions are compiled with Python's ``ast`` module
restricted to those operators — no ``eval`` of arbitrary code.
"""

from __future__ import annotations

import ast
import re

import numpy as np

from ...errors import ReproError
from .rules import Assign, Atom, Head, Rule, Var

_AGGS = {"$SUM": "sum", "$MIN": "min", "$INC": "count"}

_ATOM_RE = re.compile(
    r"^\s*(?P<name>[A-Za-z_][A-Za-z0-9_]*)"
    r"(?:\[(?P<shard>[A-Za-z0-9_+]+)\])?"
    r"\((?P<args>.*)\)\s*$",
    re.DOTALL,
)


class RuleSyntaxError(ReproError):
    """The rule text does not parse."""


def _compile_expression(text: str, constants: dict):
    """Compile an arithmetic expression to a vectorized function.

    Returns ``(fn, input_variable_names)``. Only numeric literals, the
    caller's named constants, bound variables and ``+ - * / **`` with
    unary minus are allowed.
    """
    try:
        tree = ast.parse(text, mode="eval")
    except SyntaxError as error:
        raise RuleSyntaxError(f"bad expression {text!r}: {error}") from None

    allowed_binops = (ast.Add, ast.Sub, ast.Mult, ast.Div, ast.Pow)
    names = []

    def check(node):
        if isinstance(node, ast.Expression):
            check(node.body)
        elif isinstance(node, ast.BinOp):
            if not isinstance(node.op, allowed_binops):
                raise RuleSyntaxError(
                    f"operator {type(node.op).__name__} not allowed in "
                    f"{text!r}"
                )
            check(node.left)
            check(node.right)
        elif isinstance(node, ast.UnaryOp):
            if not isinstance(node.op, (ast.USub, ast.UAdd)):
                raise RuleSyntaxError(f"unary operator not allowed in {text!r}")
            check(node.operand)
        elif isinstance(node, ast.Constant):
            if not isinstance(node.value, (int, float)):
                raise RuleSyntaxError(f"literal {node.value!r} not numeric")
        elif isinstance(node, ast.Name):
            if node.id not in constants and node.id not in names:
                names.append(node.id)
        else:
            raise RuleSyntaxError(
                f"{type(node).__name__} not allowed in rule expression "
                f"{text!r}"
            )

    check(tree)
    variables = [n for n in names if n not in constants]
    code = compile(tree, "<rule>", "eval")

    def fn(*args):
        scope = dict(constants)
        scope.update(zip(variables, args))
        scope["np"] = np
        return eval(code, {"__builtins__": {}}, scope)  # noqa: S307 — AST-validated

    return fn, variables


def _parse_term(token: str):
    token = token.strip()
    if not token:
        raise RuleSyntaxError("empty term")
    if re.fullmatch(r"-?\d+", token):
        return int(token)
    if re.fullmatch(r"-?\d*\.\d+", token):
        return float(token)
    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", token):
        return Var(token)
    raise RuleSyntaxError(f"cannot parse term {token!r}")


def _split_top_level(text: str, separator: str = ",") -> list:
    """Split on commas not nested inside parentheses/brackets."""
    parts = []
    depth = 0
    current = []
    for char in text:
        if char in "([":
            depth += 1
        elif char in ")]":
            depth -= 1
        if char == separator and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        parts.append("".join(current))
    return [part.strip() for part in parts if part.strip()]


def _is_iteration_term(token: str) -> bool:
    """``t`` / ``t+1``-style iteration indices the engine double-buffers."""
    return bool(re.fullmatch(r"t(\s*\+\s*1)?", token.strip()))


def parse_rule(text: str, constants: dict = None,
               drop_iteration_terms: bool = True) -> Rule:
    """Parse one rule string into a :class:`Rule`.

    ``constants`` supplies named constants for arithmetic (e.g.
    ``{"r": 0.3}``). The trailing period is optional.
    """
    constants = constants or {}
    text = text.strip().rstrip(".")
    if ":-" not in text:
        raise RuleSyntaxError("rule needs a ':-'")
    head_text, body_text = text.split(":-", 1)

    # Iteration indices (t / t+1) only exist in iteration-indexed
    # programs, recognizable by a 't+1' somewhere in the rule; plain
    # variables named 't' (e.g. BFS's target vertex) are left alone.
    drop_iteration_terms = drop_iteration_terms and \
        bool(re.search(r"t\s*\+\s*1", text))

    # -- head ------------------------------------------------------------
    match = _ATOM_RE.match(head_text)
    if not match:
        raise RuleSyntaxError(f"cannot parse head {head_text!r}")
    head_args = _split_top_level(match.group("args"))
    if match.group("shard"):
        head_args = [match.group("shard")] + head_args
    if drop_iteration_terms:
        head_args = [a for a in head_args if not _is_iteration_term(a)]

    agg = None
    agg_payload = None
    plain_terms = []
    for arg in head_args:
        agg_match = re.match(r"^(\$[A-Z]+)\((.*)\)$", arg)
        if agg_match:
            if agg_match.group(1) not in _AGGS:
                raise RuleSyntaxError(
                    f"unknown aggregation {agg_match.group(1)}"
                )
            agg = _AGGS[agg_match.group(1)]
            agg_payload = agg_match.group(2).strip()
        else:
            plain_terms.append(_parse_term(arg))
    if agg is None:
        raise RuleSyntaxError("head needs a $SUM/$MIN/$INC aggregation")
    if len(plain_terms) != 1:
        raise RuleSyntaxError(
            f"head needs exactly one key term, got {plain_terms}"
        )

    assigns = []
    if agg == "count":
        value = None
    elif agg_payload in constants:
        value = float(constants[agg_payload])
    elif re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", agg_payload):
        value = Var(agg_payload)
    elif re.fullmatch(r"-?\d+(\.\d+)?", agg_payload):
        value = float(agg_payload)
    else:
        # Inline expression: hoist into an assignment.
        fn, inputs = _compile_expression(agg_payload, constants)
        assigns.append(Assign("__head_value", fn, tuple(inputs)))
        value = Var("__head_value")
    head = Head(match.group("name").lower(), plain_terms[0], value, agg=agg)

    # -- body ------------------------------------------------------------
    atoms = []
    for part in _split_top_level(body_text):
        atom_match = _ATOM_RE.match(part)
        if atom_match:
            args = _split_top_level(atom_match.group("args"))
            if atom_match.group("shard"):
                args = [atom_match.group("shard")] + args
            if drop_iteration_terms:
                args = [a for a in args if not _is_iteration_term(a)]
            atoms.append(Atom(atom_match.group("name").lower(),
                              *[_parse_term(a) for a in args]))
            continue
        if "=" in part:
            target, expression = part.split("=", 1)
            target = target.strip()
            if not re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", target):
                raise RuleSyntaxError(f"bad assignment target {target!r}")
            fn, inputs = _compile_expression(expression.strip(), constants)
            assigns.append(Assign(target, fn, tuple(inputs)))
            continue
        raise RuleSyntaxError(f"cannot parse body element {part!r}")
    if not atoms:
        raise RuleSyntaxError("rule body needs at least one table atom")

    return Rule(head=head, body=atoms, assigns=assigns)


def parse_program(text: str, constants: dict = None) -> list:
    """Parse a multi-rule program (rules separated by '.' at line ends)."""
    rules = []
    for chunk in re.split(r"\.\s*(?:\n|$)", text):
        chunk = chunk.strip()
        if chunk:
            rules.append(parse_rule(chunk, constants))
    return rules
