"""SociaLite tables: horizontally sharded tuple stores.

"In SociaLite, the graph and its meta data is stored in tables, and
declarative rules are written to implement graph algorithms. SociaLite
tables are horizontally partitioned, or sharded ... the runtime
partitions and distributes the tables accordingly" (Section 3). Two
table kinds cover the paper's programs:

* :class:`TupleTable` — a plain bag of rows (EDGE, OUTEDGE, INEDGE).
  Declared "tail-nested" tables are stored CSR-style: grouped and
  indexed by the first column, "effectively implementing a CSR format"
  (Section 3.1).
* :class:`AggregateTable` — a keyed table whose value column carries a
  lattice aggregation (``$SUM``, ``$MIN``, ``$INC``), e.g. ``RANK`` or
  ``BFS``. Stored densely over the key universe.
"""

from __future__ import annotations

import numpy as np

from ...errors import ReproError
from ...graph import partition_vertices_1d


class TupleTable:
    """Immutable bag of rows; optionally indexed (tail-nested) on col 0."""

    def __init__(self, name: str, columns, num_shards: int = 1,
                 key_universe: int = None, tail_nested: bool = False):
        self.name = name
        self.columns = [np.asarray(col) for col in columns]
        if not self.columns:
            raise ReproError(f"table {name} needs at least one column")
        length = self.columns[0].shape[0]
        if any(col.shape != (length,) for col in self.columns):
            raise ReproError(f"table {name}: ragged columns")
        self.num_rows = length
        self.tail_nested = tail_nested
        if key_universe is None:
            key_universe = int(self.columns[0].max()) + 1 if length else 1
        self.key_universe = key_universe
        self.partition = partition_vertices_1d(key_universe, num_shards)
        self._index = None
        if tail_nested:
            self._build_index()

    def _build_index(self):
        order = np.argsort(self.columns[0], kind="stable")
        self.columns = [col[order] for col in self.columns]
        counts = np.bincount(self.columns[0], minlength=self.key_universe)
        self._index = np.zeros(self.key_universe + 1, dtype=np.int64)
        np.cumsum(counts, out=self._index[1:])

    @property
    def arity(self) -> int:
        return len(self.columns)

    def shard_of_rows(self) -> np.ndarray:
        """Owning shard of every row (by the first column)."""
        return self.partition.owner_of_many(self.columns[0])

    def rows_per_shard(self) -> np.ndarray:
        return np.bincount(self.shard_of_rows(),
                           minlength=self.partition.num_parts)

    def lookup(self, keys: np.ndarray):
        """Tail-nested probe: rows whose first column matches each key.

        Returns ``(row_indices, match_counts)`` with rows grouped per
        input key, like a CSR adjacency gather.
        """
        if self._index is None:
            raise ReproError(f"table {self.name} is not tail-nested")
        keys = np.asarray(keys, dtype=np.int64)
        starts = self._index[keys]
        lengths = self._index[keys + 1] - starts
        total = int(lengths.sum())
        if total == 0:
            return np.zeros(0, dtype=np.int64), lengths
        flat = np.repeat(
            starts - np.concatenate([[0], np.cumsum(lengths)[:-1]]), lengths
        ) + np.arange(total, dtype=np.int64)
        return flat, lengths

    def nbytes(self) -> int:
        return int(sum(col.nbytes for col in self.columns))


class AggregateTable:
    """Dense keyed table with a lattice aggregation on its value column."""

    _AGGS = ("sum", "min", "count")

    def __init__(self, name: str, key_universe: int, agg: str,
                 num_shards: int = 1):
        if agg not in self._AGGS:
            raise ReproError(f"unknown aggregation {agg!r}; use {self._AGGS}")
        self.name = name
        self.agg = agg
        self.key_universe = int(key_universe)
        self.partition = partition_vertices_1d(self.key_universe, num_shards)
        identity = np.inf if agg == "min" else 0.0
        self.values = np.full(self.key_universe, identity)
        self.present = np.zeros(self.key_universe, dtype=bool)

    def combine(self, keys: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Fold (key, value) pairs in; returns the keys whose value changed.

        ``$SUM`` accumulates, ``$MIN`` keeps minima (the monotone lattice
        that makes recursive BFS converge), ``$INC`` counts.
        """
        keys = np.asarray(keys, dtype=np.int64)
        values = np.asarray(values, dtype=np.float64)
        if keys.shape != values.shape:
            raise ReproError("keys and values must align")
        if keys.size == 0:
            return keys
        before = self.values[keys].copy()
        if self.agg == "sum":
            np.add.at(self.values, keys, values)
        elif self.agg == "count":
            np.add.at(self.values, keys, 1.0)
        else:
            np.minimum.at(self.values, keys, values)
        self.present[keys] = True
        changed_mask = self.values[keys] != before
        return np.unique(keys[changed_mask])

    def reset(self) -> None:
        identity = np.inf if self.agg == "min" else 0.0
        self.values[:] = identity
        self.present[:] = False

    def defined_keys(self) -> np.ndarray:
        return np.nonzero(self.present)[0]

    def nbytes(self) -> int:
        return int(self.values.nbytes + self.present.nbytes)
