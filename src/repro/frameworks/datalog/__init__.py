"""Datalog engine and the SociaLite front-end."""

from . import socialite
from .engine import EvalStats, SocialiteEngine
from .parser import RuleSyntaxError, parse_program, parse_rule
from .rules import Assign, Atom, Head, Rule, Var
from .table import AggregateTable, TupleTable

__all__ = [
    "AggregateTable",
    "Assign",
    "Atom",
    "EvalStats",
    "Head",
    "Rule",
    "RuleSyntaxError",
    "SocialiteEngine",
    "TupleTable",
    "Var",
    "parse_program",
    "parse_rule",
    "socialite",
]
