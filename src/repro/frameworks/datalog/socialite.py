"""SociaLite front-end: the paper's Datalog programs, executed for real.

The rules below are the ones printed in the paper:

* PageRank (Section 3.1, distributed version)::

      RANK[n](t+1, $SUM(v)) :- v = r
                             :- RANK[s](t, v0), OUTEDGE[s](n),
                                OUTDEG[s](d), v = (1-r) v0 / d.

* BFS (Section 3.2), evaluated semi-naively as in [31]::

      BFS(t, $MIN(d)) :- t = SRC, d = 0
                      :- BFS(s, d0), EDGE(s, t), d = d0 + 1.

* Triangle counting (Section 3.2), a three-way join::

      TRIANGLE(0, $INC(1)) :- EDGE(x, y), EDGE(y, z), EDGE(x, z).

* Collaborative filtering: vector tables joined with the rating table;
  "it is helpful to transfer the tables to target machines in the
  beginning of each iteration, so that the rest of the computations do
  not involve any communication" (Section 3.2) — modeled as a bulk
  prefetch of the needed factor rows.

Two network stacks are provided (Section 6.1.3 / Table 7): the published
single-socket SociaLite and the optimized multi-socket version. Pass
``optimized=False`` for the former; the packaged default is the latter,
matching the paper ("the results in this paper correspond to the
optimized version").
"""

from __future__ import annotations

import numpy as np

from ...cluster import Cluster, ComputeWork
from ...errors import ExpressibilityError
from ...frameworks.base import SOCIALITE, SOCIALITE_PUBLISHED, FrameworkProfile
from ...graph import CSRGraph, RatingsMatrix
from ...kernels import registry as kernel_registry
from ..results import AlgorithmResult
from .engine import EvalStats, SocialiteEngine
from .rules import Assign, Atom, Head, Rule, Var
from .table import AggregateTable, TupleTable


def _profile(optimized: bool,
             override: FrameworkProfile = None) -> FrameworkProfile:
    if override is not None:
        return override
    return SOCIALITE if optimized else SOCIALITE_PUBLISHED


def _charge(cluster: Cluster, profile: FrameworkProfile, stats: EvalStats,
            extra_streamed: float = 0.0) -> None:
    """Convert one rule evaluation's stats into a cluster superstep."""
    share = stats.work_share if stats.work_share is not None else \
        np.full(cluster.num_nodes, 1.0 / cluster.num_nodes)
    traffic = stats.traffic * profile.message_overhead_factor
    span = cluster.trace_span("rule-eval",
                              scanned_bytes=stats.scanned_bytes,
                              join_rows=stats.join_output_rows,
                              produced=stats.produced_tuples)
    works = []
    for node in range(cluster.num_nodes):
        message_bytes = traffic[node, :].sum() + traffic[:, node].sum()
        works.append(ComputeWork(
            # Tail-nested tables are CSR-shaped, so scans stream; the
            # per-tuple head updates and dense-array probes are
            # irregular at cache-line granularity.
            streamed_bytes=(stats.scanned_bytes * share[node]
                            + extra_streamed / cluster.num_nodes
                            + 2.0 * message_bytes),
            random_bytes=0.5 * stats.scanned_bytes * share[node],
            ops=stats.ops * share[node],
            cpu_efficiency=profile.cpu_efficiency,
            cores_fraction=profile.cores_fraction,
            prefetch=profile.prefetch,
        ))
    with span:
        cluster.superstep(works, traffic,
                          overlap=profile.overlaps_communication,
                          layer=profile.comm_layer,
                          overhead_s=profile.superstep_overhead_s)


def _allocate_tables(cluster: Cluster, engine: SocialiteEngine) -> None:
    total = sum(table.nbytes() for table in engine.tables.values())
    cluster.allocate_all("tables", 1.5 * total / cluster.num_nodes)


def pagerank(graph: CSRGraph, cluster: Cluster, iterations: int = 10,
             damping: float = 0.3, optimized: bool = True,
             profile_override: FrameworkProfile = None) -> AlgorithmResult:
    """The paper's distributed PageRank rules, iterated."""
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    profile = _profile(optimized, profile_override)
    n = graph.num_vertices
    engine = SocialiteEngine(cluster.num_nodes, vertex_universe=n,
                             tracer=cluster.tracer)

    out_degrees = graph.out_degrees().astype(np.float64)
    engine.add(TupleTable("outedge", [graph.sources(), graph.targets],
                          cluster.num_nodes, key_universe=n,
                          tail_nested=True))
    outdeg = AggregateTable("outdeg", n, "sum", cluster.num_nodes)
    outdeg.combine(np.arange(n), out_degrees)
    engine.add(outdeg)
    rank = AggregateTable("rank", n, "sum", cluster.num_nodes)
    rank.combine(np.arange(n), np.ones(n))
    engine.add(rank)
    rank_next = AggregateTable("rank_next", n, "sum", cluster.num_nodes)
    engine.add(rank_next)
    _allocate_tables(cluster, engine)

    s, v0, d, v, node_var = Var("s"), Var("v0"), Var("d"), Var("v"), Var("n")
    main_rule = Rule(
        head=Head("rank_next", node_var, v, agg="sum"),
        body=[Atom("rank", s, v0), Atom("outedge", s, node_var),
              Atom("outdeg", s, d)],
        assigns=[Assign("v", lambda v0_, d_: (1.0 - damping) * v0_
                        / np.maximum(d_, 1.0), ("v0", "d"))],
    )
    const_rule = Rule(
        head=Head("rank_next", node_var, float(damping), agg="sum"),
        body=[Atom("outdeg", node_var, Var("_d"))],
    )

    for iteration in range(iterations):
        with cluster.trace_span("iteration", index=iteration):
            rank_next.reset()
            stats_const = engine.evaluate(const_rule)
            stats_main = engine.evaluate(main_rule)
            stats_main.scanned_bytes += stats_const.scanned_bytes
            stats_main.ops += stats_const.ops
            _charge(cluster, profile, stats_main)
            cluster.mark_iteration()
            rank.values[:] = rank_next.values
            rank.present[:] = True

    ranks = rank.values.copy()
    return AlgorithmResult(
        algorithm="pagerank", framework=profile.name, values=ranks,
        iterations=iterations, metrics=cluster.metrics(),
        extras={"optimized": optimized},
    )


def bfs(graph: CSRGraph, cluster: Cluster, source: int = 0,
        optimized: bool = True) -> AlgorithmResult:
    """The recursive BFS rule, evaluated semi-naively to fixpoint."""
    if not 0 <= source < graph.num_vertices:
        raise ValueError(f"source {source} out of range")
    profile = _profile(optimized)
    n = graph.num_vertices
    engine = SocialiteEngine(cluster.num_nodes, vertex_universe=n,
                             tracer=cluster.tracer)
    engine.add(TupleTable("edge", [graph.sources(), graph.targets],
                          cluster.num_nodes, key_universe=n,
                          tail_nested=True))
    bfs_table = AggregateTable("bfs", n, "min", cluster.num_nodes)
    engine.add(bfs_table)
    _allocate_tables(cluster, engine)

    s, t, d0 = Var("s"), Var("t"), Var("d0")
    rule = Rule(
        head=Head("bfs", t, Var("d"), agg="min"),
        body=[Atom("bfs", s, d0), Atom("edge", s, t)],
        assigns=[Assign("d", lambda d0_: d0_ + 1.0, ("d0",))],
    )

    changed = bfs_table.combine(np.array([source]), np.array([0.0]))
    tracer = cluster.tracer
    tracer.count("frontier_size", 1)          # the source vertex
    rounds = 0
    while changed.size:
        rounds += 1
        with cluster.trace_span("round", index=rounds,
                                delta=int(changed.size)):
            stats = engine.evaluate(rule, delta_keys=changed)
            _charge(cluster, profile, stats)
            cluster.mark_iteration()
        changed = stats.changed
        if changed.size:
            tracer.count("frontier_size", int(changed.size))

    from ...algorithms.bfs import UNREACHED
    distances = np.where(bfs_table.present,
                         bfs_table.values, UNREACHED).astype(np.int64)
    distances = np.where(distances == UNREACHED, UNREACHED, distances)
    return AlgorithmResult(
        algorithm="bfs", framework=profile.name,
        values=distances.astype(np.int32), iterations=rounds,
        metrics=cluster.metrics(),
        extras={"optimized": optimized,
                "reached": int(bfs_table.present.sum())},
    )


def triangle_count(graph: CSRGraph, cluster: Cluster,
                   optimized: bool = True) -> AlgorithmResult:
    """The three-way join TRIANGLE(0, $INC(1)) :- EDGE, EDGE, EDGE."""
    profile = _profile(optimized)
    n = graph.num_vertices
    engine = SocialiteEngine(cluster.num_nodes, vertex_universe=n,
                             tracer=cluster.tracer)
    engine.add(TupleTable("edge", [graph.sources(), graph.targets],
                          cluster.num_nodes, key_universe=n,
                          tail_nested=True))
    triangle = AggregateTable("triangle", 1, "count", cluster.num_nodes)
    engine.add(triangle)
    _allocate_tables(cluster, engine)

    x, y, z = Var("x"), Var("y"), Var("z")
    rule = Rule(
        head=Head("triangle", 0, None, agg="count"),
        body=[Atom("edge", x, y), Atom("edge", y, z), Atom("edge", x, z)],
    )
    stats = engine.evaluate(rule)

    # Distributed join shipping, which the local evaluator cannot see.
    # EDGE is sharded by its first column, so the (x, y) bindings and the
    # final EDGE(x, z) probe are both local to shard(x); what must move
    # is N(y) for every remote y in the middle atom — each unique
    # (y, requesting-shard) pair ships deg(y) ids. This is the same wire
    # pattern as the native/vertex neighborhood exchange, carried as
    # Java-serialized tuples (the profile's byte overhead applies in
    # ``_charge``), and it is what makes SociaLite's triangle counting
    # network-bound (Table 7) while staying best-in-class (Section 5.3).
    src = graph.sources()
    dst = graph.targets
    shard = engine.shard_partition
    src_shard = shard.owner_of_many(src)
    dst_shard = shard.owner_of_many(dst)
    out_degrees = graph.out_degrees().astype(np.float64)
    cross = src_shard != dst_shard
    if cross.any():
        pair_keys = dst[cross] * np.int64(cluster.num_nodes) + src_shard[cross]
        unique_pairs = np.unique(pair_keys)
        needed_vertex = unique_pairs // cluster.num_nodes
        requester = (unique_pairs % cluster.num_nodes).astype(np.int64)
        list_owner = shard.owner_of_many(needed_vertex)
        np.add.at(stats.traffic, (list_owner, requester),
                  8.0 * out_degrees[needed_vertex])

    # Each length-2-path binding is materialized as a fresh tuple before
    # the semi-join (allocation + copy + later scan): ~40 bytes of
    # traffic per path in the JVM heap.
    _charge(cluster, profile, stats,
            extra_streamed=40.0 * stats.join_output_rows)
    cluster.mark_iteration()

    return AlgorithmResult(
        algorithm="triangle_counting", framework=profile.name,
        values=int(triangle.values[0]), iterations=1,
        metrics=cluster.metrics(),
        extras={"optimized": optimized,
                "paths_materialized": stats.join_output_rows},
    )


def collaborative_filtering(ratings: RatingsMatrix, cluster: Cluster,
                            hidden_dim: int = 64, iterations: int = 10,
                            gamma0: float = 0.002, step_decay: float = 0.95,
                            lambda_reg: float = 0.05, seed: int = 0,
                            optimized: bool = True) -> AlgorithmResult:
    """Gradient descent with SociaLite's bulk table-transfer pattern.

    Each iteration prefetches the item-vector table rows that each user
    shard's ratings touch ("transfer the tables to target machines in
    the beginning of each iteration"), computes locally, then ships the
    updated item rows back.
    """
    if iterations < 1 or hidden_dim < 1:
        raise ValueError("iterations and hidden_dim must be >= 1")
    profile = _profile(optimized)
    nodes = cluster.num_nodes
    rng = np.random.default_rng(seed)
    scale = 1.0 / np.sqrt(hidden_dim)
    p_factors = rng.random((ratings.num_users, hidden_dim)) * scale
    q_factors = rng.random((ratings.num_items, hidden_dim)) * scale

    # Shard users; items are owned round-robin by range as well.
    from ...graph import partition_vertices_1d
    user_part = partition_vertices_1d(max(ratings.num_users, 1), nodes)
    item_part = partition_vertices_1d(max(ratings.num_items, 1), nodes)
    user_shard = user_part.owner_of_many(ratings.users)

    # Bulk transfer: unique (user-shard, item) pairs decide which q rows
    # each node prefetches; the same volume returns as updates.
    pair = user_shard * np.int64(ratings.num_items) + ratings.items
    unique_pairs = np.unique(pair)
    pair_node = (unique_pairs // ratings.num_items).astype(np.int64)
    pair_item_owner = item_part.owner_of_many(unique_pairs % ratings.num_items)
    from ..base import cf_density_correction

    density = cf_density_correction(ratings)
    row_bytes = 8.0 * hidden_dim
    traffic = np.zeros((nodes, nodes))
    cross = pair_node != pair_item_owner
    np.add.at(traffic, (pair_item_owner[cross], pair_node[cross]), row_bytes)
    # Bulk table transfers are per unique (shard, item) pair —
    # vertex-proportional, so density-corrected.
    traffic = (traffic + traffic.T) * profile.message_overhead_factor / density

    ratings_per_node = np.bincount(user_shard, minlength=nodes).astype(float)
    for node in range(nodes):
        cluster.allocate(node, "tables",
                         row_bytes * (ratings.num_users / nodes) / density
                         + row_bytes * (ratings.num_items / nodes) / density
                         + 24.0 * ratings_per_node[node])

    kern = kernel_registry.kernel("collaborative_filtering",
                                  "blocked-gd")().prepare(ratings)

    rmse_curve = []
    gamma = gamma0
    for iteration in range(iterations):
        with cluster.trace_span("iteration", index=iteration):
            kern.step(p_factors, q_factors, gamma, lambda_reg, lambda_reg)
            gamma *= step_decay
            rmse_curve.append(kern.rmse(p_factors, q_factors))

            works = []
            for node in range(nodes):
                count = ratings_per_node[node]
                # Vector payloads live in Java object arrays: the
                # profile's serialization factor inflates the touched
                # bytes and half of the row accesses are effectively
                # irregular.
                factor_bytes = (4.0 * row_bytes * count
                                * profile.message_overhead_factor)
                message_bytes = (traffic[node, :].sum()
                                 + traffic[:, node].sum())
                works.append(ComputeWork(
                    streamed_bytes=0.5 * factor_bytes + 24.0 * count
                    + 2.0 * message_bytes,
                    random_bytes=0.5 * factor_bytes,
                    ops=8.0 * hidden_dim * count,
                    cpu_efficiency=profile.cpu_efficiency,
                    cores_fraction=profile.cores_fraction,
                ))
            cluster.superstep(works, traffic,
                              overlap=profile.overlaps_communication,
                              layer=profile.comm_layer,
                              overhead_s=profile.superstep_overhead_s)
            cluster.mark_iteration()

    return AlgorithmResult(
        algorithm="collaborative_filtering", framework=profile.name,
        values=(p_factors, q_factors), iterations=iterations,
        metrics=cluster.metrics(),
        extras={"rmse_curve": rmse_curve, "method": "gd",
                "hidden_dim": hidden_dim, "optimized": optimized},
    )


# ---------------------------------------------------------------------------
# Second-generation workloads.
# ---------------------------------------------------------------------------


def wcc(graph: CSRGraph, cluster: Cluster,
        optimized: bool = True) -> AlgorithmResult:
    """Recursive min-component rule, evaluated semi-naively::

        COMP(t, $MIN(c)) :- t = c              (every vertex seeds itself)
                         :- COMP(s, c), EDGE(s, t).

    The $MIN lattice makes the recursion monotone, so the delta
    evaluation converges to the min-id labelling on symmetrized graphs.
    """
    profile = _profile(optimized)
    n = graph.num_vertices
    engine = SocialiteEngine(cluster.num_nodes, vertex_universe=n,
                             tracer=cluster.tracer)
    engine.add(TupleTable("edge", [graph.sources(), graph.targets],
                          cluster.num_nodes, key_universe=n,
                          tail_nested=True))
    comp = AggregateTable("comp", n, "min", cluster.num_nodes)
    engine.add(comp)
    _allocate_tables(cluster, engine)

    s, t, c0 = Var("s"), Var("t"), Var("c0")
    rule = Rule(
        head=Head("comp", t, c0, agg="min"),
        body=[Atom("comp", s, c0), Atom("edge", s, t)],
    )

    changed = comp.combine(np.arange(n), np.arange(n, dtype=np.float64))
    rounds = 0
    while changed.size:
        rounds += 1
        with cluster.trace_span("round", index=rounds,
                                delta=int(changed.size)):
            stats = engine.evaluate(rule, delta_keys=changed)
            _charge(cluster, profile, stats)
            cluster.mark_iteration()
        changed = stats.changed

    labels = comp.values.astype(np.int64)
    return AlgorithmResult(
        algorithm="wcc", framework=profile.name, values=labels,
        iterations=rounds, metrics=cluster.metrics(),
        extras={"optimized": optimized,
                "components": int(np.unique(labels).size)},
    )


def sssp(graph: CSRGraph, cluster: Cluster, source: int = 0,
         optimized: bool = True) -> AlgorithmResult:
    """The BFS rule with a weighted 3-column edge table::

        DIST(t, $MIN(d)) :- t = SRC, d = 0
                         :- DIST(s, d0), EDGE(s, t, w), d = d0 + w.
    """
    from ...algorithms.sssp import edge_weights_for

    if not 0 <= source < graph.num_vertices:
        raise ValueError(f"source {source} out of range")
    profile = _profile(optimized)
    n = graph.num_vertices
    engine = SocialiteEngine(cluster.num_nodes, vertex_universe=n,
                             tracer=cluster.tracer)
    engine.add(TupleTable(
        "edge", [graph.sources(), graph.targets, edge_weights_for(graph)],
        cluster.num_nodes, key_universe=n, tail_nested=True))
    dist = AggregateTable("dist", n, "min", cluster.num_nodes)
    engine.add(dist)
    _allocate_tables(cluster, engine)

    s, t, d0, w = Var("s"), Var("t"), Var("d0"), Var("w")
    rule = Rule(
        head=Head("dist", t, Var("d"), agg="min"),
        body=[Atom("dist", s, d0), Atom("edge", s, t, w)],
        assigns=[Assign("d", lambda d0_, w_: d0_ + w_, ("d0", "w"))],
    )

    changed = dist.combine(np.array([source]), np.array([0.0]))
    tracer = cluster.tracer
    tracer.count("frontier_size", 1)
    rounds = 0
    while changed.size:
        rounds += 1
        with cluster.trace_span("round", index=rounds,
                                delta=int(changed.size)):
            stats = engine.evaluate(rule, delta_keys=changed)
            _charge(cluster, profile, stats)
            cluster.mark_iteration()
        changed = stats.changed
        if changed.size:
            tracer.count("frontier_size", int(changed.size))

    distances = np.where(dist.present, dist.values, np.inf)
    return AlgorithmResult(
        algorithm="sssp", framework=profile.name, values=distances,
        iterations=rounds, metrics=cluster.metrics(),
        extras={"optimized": optimized,
                "reached": int(dist.present.sum())},
    )


def k_core(graph: CSRGraph, cluster: Cluster,
           optimized: bool = True) -> AlgorithmResult:
    """Unsupported: peeling retracts facts, which Datalog cannot express.

    k-core deletes vertices and *lowers* degrees as it runs — a
    non-monotone computation. SociaLite's recursion converges only for
    monotone lattice aggregations ($MIN/$SUM/$INC over a meet
    semi-lattice, Section 3.1); there is no retraction mechanism to
    un-derive a vertex's degree once peeling removes a neighbor, so the
    decomposition is outside the language's expressible fragment.
    """
    raise ExpressibilityError(
        "socialite cannot express k_core: peeling requires retracting "
        "derived degree facts (non-monotone deletion cascades), but "
        "SociaLite recursion only converges for monotone lattice "
        "aggregations like $MIN/$SUM"
    )


def label_propagation(graph: CSRGraph, cluster: Cluster, iterations: int = 3,
                      seed: int = 0,
                      optimized: bool = True) -> AlgorithmResult:
    """Unsupported: the mode (most frequent label) is not a lattice.

    Each round's winner is the *most frequent* neighbor label — an
    argmax over counts that is neither associative-idempotent nor
    monotone, so it cannot be an $AGG head: SociaLite offers $MIN/$MAX/
    $SUM/$INC style lattice folds only, and a frequency argmax cannot be
    decomposed into them without per-(vertex, label) group-by state the
    language does not provide.
    """
    raise ExpressibilityError(
        "socialite cannot express label_propagation: the per-round "
        "most-frequent-label update is an argmax over counts, not a "
        "monotone lattice aggregation, so it has no $AGG encoding"
    )
