"""Framework engines and profiles for the five systems of the paper."""

from .base import (
    COMBBLAS,
    COMPARISON_FRAMEWORKS,
    GALOIS,
    GIRAPH,
    GRAPHLAB,
    NATIVE,
    PROFILES,
    SOCIALITE,
    SOCIALITE_PUBLISHED,
    FrameworkProfile,
    profile,
)
from .results import AlgorithmResult
from .vertex.gps import GPS
from .vertex.graphx import GRAPHX

# Related-work systems (paper Section 7) join the profile registry.
PROFILES.setdefault("gps", GPS)
PROFILES.setdefault("graphx", GRAPHX)

__all__ = [
    "COMBBLAS",
    "COMPARISON_FRAMEWORKS",
    "GALOIS",
    "GIRAPH",
    "GRAPHLAB",
    "NATIVE",
    "PROFILES",
    "SOCIALITE",
    "SOCIALITE_PUBLISHED",
    "AlgorithmResult",
    "FrameworkProfile",
    "profile",
]
