"""The Section 6.2 roadmap, implemented: what-if framework variants.

The paper's final contribution is a set of concrete recommendations for
each framework, with predicted outcomes:

* **CombBLAS** — "needs to use data structures such as bitvectors for
  compression in order to improve BFS performance";
* **GraphLab** — "incorporating MPI, or at least ... multiple sockets",
  plus compression/prefetch/overlap, "should allow GraphLab to be within
  5x of native performance";
* **Giraph** — "boosting network bandwidth by 10x should make Giraph
  very competitive", plus "run more workers per node, thereby improving
  CPU utilization" once message buffers shrink;
* **SociaLite** — after the multi-socket fix, "fixing this [remaining
  3-4x bandwidth gap] along with the use of data compression (for BFS)
  will help SociaLite to achieve performance within 5x of native".

This module *applies* those recommendations: each ``improved_*`` profile
is the stock profile with exactly the recommended changes, and
:func:`roadmap_outcomes` measures how far each change closes the gap —
the quantitative check that the paper's roadmap is self-consistent.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from ..cluster import Cluster, paper_cluster
from ..cluster.network import MPI, CommLayer
from .base import COMBBLAS, GIRAPH, GRAPHLAB, SOCIALITE, FrameworkProfile

#: The recommended 10x-network Giraph stack: Netty tuned / RDMA-assisted.
NETTY_TUNED = CommLayer("netty-tuned", efficiency=0.8, latency_s=100e-6,
                        byte_overhead=0.10, sustained_fraction=0.9)

#: SociaLite's hypothetical final step: an MPI-class transport from Java.
JAVA_MPI = CommLayer("java-mpi", efficiency=0.85, latency_s=20e-6,
                     byte_overhead=0.02, sustained_fraction=0.6)


def improved_graphlab() -> FrameworkProfile:
    """GraphLab on MPI with prefetch + compression (Section 6.2)."""
    return replace(
        GRAPHLAB,
        name="graphlab-roadmap",
        display_name="GraphLab (roadmap)",
        comm_layer=MPI,
        prefetch=True,
        compresses_messages=True,
        notes="Section 6.2 applied: MPI transport, software prefetch, "
              "message compression.",
    )


def improved_giraph(workers_per_node: int = 16) -> FrameworkProfile:
    """Giraph with 10x network and more workers (Section 6.2).

    More workers become possible once message buffers shrink (the
    superstep-splitting fix), which is why the two recommendations are
    coupled in the paper.
    """
    return replace(
        GIRAPH,
        name="giraph-roadmap",
        display_name="Giraph (roadmap)",
        comm_layer=NETTY_TUNED,
        cores_fraction=workers_per_node / 24.0,
        per_message_ops=40.0,     # object pooling removes most per-message cost
        per_byte_ops=2.0,         # zero-copy serialization
        message_overhead_factor=1.5,
        superstep_overhead_s=0.2,  # lighter-weight superstep scheduling
        notes="Section 6.2 applied: 10x network, 16 workers/node, "
              "pooled message objects.",
    )


def improved_socialite() -> FrameworkProfile:
    """SociaLite with an MPI-class transport + compression (Section 6.2)."""
    return replace(
        SOCIALITE,
        name="socialite-roadmap",
        display_name="SociaLite (roadmap)",
        comm_layer=JAVA_MPI,
        compresses_messages=True,
        notes="Section 6.2 applied: MPI-class transport and BFS id "
              "compression on top of the multi-socket fix.",
    )


def improved_combblas() -> FrameworkProfile:
    """CombBLAS with bit-vector frontier compression (Section 6.2)."""
    return replace(
        COMBBLAS,
        name="combblas-roadmap",
        display_name="CombBLAS (roadmap)",
        compresses_messages=True,
        notes="Section 6.2 applied: bit-vector compression of sparse "
              "BFS frontiers.",
    )


ROADMAP_PROFILES = {
    "graphlab": improved_graphlab,
    "giraph": improved_giraph,
    "socialite": improved_socialite,
    "combblas": improved_combblas,
}

#: Paper-predicted post-roadmap gaps vs native ("within Nx of native").
PAPER_PREDICTED_GAP = {
    "graphlab": 5.0,
    "socialite": 5.0,
    # "very competitive with other frameworks" — read as within the
    # non-Giraph pack, i.e. single-digit multiples of native.
    "giraph": 12.0,
    "combblas": 4.0,
}


def _pagerank_with_profile(graph, cluster: Cluster,
                           profile: FrameworkProfile, iterations: int = 3):
    """PageRank through the vertex engine under an arbitrary profile."""
    from .vertex.programs import pagerank_vertex

    mode = "vertex-cut" if "vertex-cut" in profile.partitioning else "1d"
    return pagerank_vertex(graph, cluster, profile, iterations=iterations,
                           partition_mode=mode)


def _bfs_with_profile(graph, cluster: Cluster, profile: FrameworkProfile,
                      source: int = 0):
    from .vertex.programs import bfs_vertex

    mode = "vertex-cut" if "vertex-cut" in profile.partitioning else "1d"
    return bfs_vertex(graph, cluster, profile, source=source,
                      partition_mode=mode)


def roadmap_outcomes(nodes: int = 4) -> dict:
    """Measure the stock-vs-roadmap gap for each framework's PageRank.

    Returns ``{framework: {"stock": gap, "roadmap": gap, "predicted":
    paper bound}}`` where gaps are slowdowns vs native at ``nodes``
    nodes on the weak-scaling dataset. CombBLAS's recommendation targets
    BFS, so its row is measured on BFS.
    """
    from ..harness.datasets import weak_scaling_dataset
    from ..harness.runner import run_experiment
    from .base import PROFILES

    out = {}
    for framework, factory in ROADMAP_PROFILES.items():
        algorithm = "bfs" if framework == "combblas" else "pagerank"
        data, factor = weak_scaling_dataset(algorithm, nodes)
        params = {"iterations": 3} if algorithm == "pagerank" else \
            {"source": int(np.argmax(data.out_degrees()))}

        native = run_experiment(algorithm, "native", data, nodes=nodes,
                                scale_factor=factor, **params)
        stock = run_experiment(algorithm, framework, data, nodes=nodes,
                               scale_factor=factor, **params)

        improved_profile = factory()
        cluster = Cluster(paper_cluster(nodes), scale_factor=factor,
                          enforce_memory=False)
        if framework == "combblas":
            # The CombBLAS recommendation is data compression of BFS
            # frontiers: model it by shipping compressed ids through the
            # stock engine (the sparse SpMV's traffic shrinks ~4x, the
            # typical adaptive-encoder ratio on frontier sets).
            improved_runtime = _combblas_bfs_compressed(data, nodes, factor,
                                                        params["source"])
        elif framework == "socialite":
            # SociaLite must run through its own Datalog engine for a
            # like-for-like comparison with its stock run.
            from .datalog.socialite import pagerank as socialite_pagerank

            result = socialite_pagerank(data, cluster, iterations=3,
                                        profile_override=improved_profile)
            improved_runtime = result.runtime_for_comparison()
        else:
            if algorithm == "pagerank":
                result = _pagerank_with_profile(data, cluster,
                                                improved_profile,
                                                iterations=3)
            else:
                result = _bfs_with_profile(data, cluster, improved_profile,
                                           source=params["source"])
            improved_runtime = result.runtime_for_comparison()

        baseline = native.runtime()
        out[framework] = {
            "algorithm": algorithm,
            "stock": stock.runtime() / baseline,
            "roadmap": improved_runtime / baseline,
            "predicted": PAPER_PREDICTED_GAP[framework],
        }
    return out


def _combblas_bfs_compressed(graph, nodes: int, factor: float,
                             source: int) -> float:
    """CombBLAS BFS with bit-vector-compressed frontier exchanges."""
    from ..algorithms.bfs import UNREACHED
    from .matrix.combblas import _build, _step
    from .matrix.semiring import OR_AND

    cluster = Cluster(paper_cluster(nodes), scale_factor=factor,
                      enforce_memory=False)
    dist, nnz_per_node = _build(graph, cluster)
    distances = np.full(graph.num_vertices, UNREACHED, dtype=np.int32)
    distances[source] = 0
    frontier = np.zeros(graph.num_vertices)
    frontier[source] = 1.0
    while frontier.any():
        y, flops, traffic = dist.spmv(frontier, OR_AND, sparse_x=True)
        fresh = (y > 0) & (distances == UNREACHED)
        distances[fresh] = int(distances[frontier > 0].max()) + 1 \
            if (frontier > 0).any() else 1
        # Bit-vector compression: frontier ids ship at ~2 bytes/entry
        # instead of 8 (the adaptive-encoder ratio on dense frontiers).
        _step(cluster, nnz_per_node, flops, traffic * 0.25,
              touched_nnz=flops / 2.0, gather_random_bytes=4.0)
        cluster.mark_iteration()
        frontier = fresh.astype(np.float64)
    return cluster.metrics().total_time_s
