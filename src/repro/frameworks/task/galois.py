"""Galois front-end: single-node task-parallel versions of the workloads.

Paper characteristics bound here (Sections 3, 5.2, 6.2):

* single node only — multi-node clusters are rejected ("Galois is
  currently only a single node framework");
* within 1.1-1.2x of native for PageRank/BFS/CF and ~2.5x for triangle
  counting (Table 5): Galois prefetches and uses scalable data
  structures, but its triangle counting uses sorted-merge intersections
  (Algorithm 4) rather than the native bit-vector;
* Galois is the only framework implementing true SGD for collaborative
  filtering, "in a fashion similar to that of the native implementation"
  (Section 3.2).
"""

from __future__ import annotations

import numpy as np

from ...algorithms.bfs import UNREACHED
from ...cluster import Cluster, ComputeWork
from ...errors import ReproError
from ...graph import CSRGraph, RatingsMatrix
from ...kernels import registry as kernel_registry
from ..base import GALOIS
from ..native.cf import collaborative_filtering as _native_cf
from ..results import AlgorithmResult

_PROFILE = GALOIS


def _require_single_node(cluster: Cluster) -> None:
    if cluster.num_nodes != 1:
        raise ReproError(
            "Galois is a single-node framework (paper Section 3); "
            f"got a {cluster.num_nodes}-node cluster"
        )


def _work(streamed, random, ops) -> ComputeWork:
    return ComputeWork(
        streamed_bytes=streamed, random_bytes=random, ops=ops,
        cpu_efficiency=_PROFILE.cpu_efficiency,
        cores_fraction=_PROFILE.cores_fraction,
        prefetch=_PROFILE.prefetch,
    )


def pagerank(graph: CSRGraph, cluster: Cluster, iterations: int = 10,
             damping: float = 0.3) -> AlgorithmResult:
    """Per-vertex work items updating ranks, like GraphLab's but local."""
    _require_single_node(cluster)
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    num_vertices = graph.num_vertices
    num_edges = graph.num_edges
    cluster.allocate(0, "graph", 8.0 * num_edges + 8.0 * (num_vertices + 1))
    cluster.allocate(0, "ranks", 24.0 * num_vertices)

    pull = kernel_registry.kernel("pagerank", "pull")(damping).prepare(graph)
    ranks = np.full(num_vertices, 1.0)
    for iteration in range(iterations):
        with cluster.trace_span("iteration", index=iteration):
            ranks, _ = pull.step(ranks)
            # Same memory behaviour as the native kernel — per-edge rank
            # gathers at cache-line granularity, prefetched into streams —
            # plus Galois's small per-work-item scheduling cost.
            cluster.superstep(
                _work(streamed=(8.0 + 64.0) * num_edges + 16.0 * num_vertices,
                      random=0.05 * 64.0 * num_edges,
                      ops=5.0 * num_edges + 8.0 * num_vertices),
                overhead_s=_PROFILE.superstep_overhead_s,
            )
            cluster.mark_iteration()

    return AlgorithmResult(
        algorithm="pagerank", framework="galois", values=ranks,
        iterations=iterations, metrics=cluster.metrics(), extras={},
    )


def bfs(graph: CSRGraph, cluster: Cluster, source: int = 0) -> AlgorithmResult:
    """Algorithm 3: bulk-synchronous worklists, one round per level."""
    _require_single_node(cluster)
    if not 0 <= source < graph.num_vertices:
        raise ValueError(f"source {source} out of range")
    num_vertices = graph.num_vertices
    cluster.allocate(0, "graph",
                     8.0 * graph.num_edges + 8.0 * (num_vertices + 1))
    cluster.allocate(0, "levels+worklists", 12.0 * num_vertices)

    expand = kernel_registry.kernel("bfs", "push")().prepare(graph)
    distances = np.full(num_vertices, UNREACHED, dtype=np.int32)
    distances[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    frontier_sizes = [1]
    tracer = cluster.tracer
    tracer.count("frontier_size", 1)          # the source vertex
    while frontier.size:
        level += 1
        with cluster.trace_span("level", index=level,
                                frontier=int(frontier.size)):
            candidates, expand_work = expand.step(frontier)
            edges = expand_work.edges
            fresh = candidates[distances[candidates] == UNREACHED]
            distances[fresh] = level
            # Same per-edge traffic as the native kernel (scan + dedup
            # and scatter passes + visited probes), at Galois's slightly
            # lower per-op efficiency.
            cluster.superstep(
                _work(streamed=(8.0 + 12.0) * edges + 8.0 * frontier.size,
                      random=1.0 * edges + 4.0 * fresh.size,
                      ops=6.0 * edges),
                overhead_s=_PROFILE.superstep_overhead_s,
            )
            cluster.mark_iteration()
        frontier = fresh
        frontier_sizes.append(int(fresh.size))
        if fresh.size:
            tracer.count("frontier_size", int(fresh.size))

    return AlgorithmResult(
        algorithm="bfs", framework="galois", values=distances,
        iterations=level, metrics=cluster.metrics(),
        extras={"frontier_sizes": frontier_sizes,
                "reached": int((distances != UNREACHED).sum())},
    )


def triangle_count(graph: CSRGraph, cluster: Cluster) -> AlgorithmResult:
    """Algorithm 4: sorted-merge set intersections, one task per vertex.

    The sorted adjacency lists make each intersection linear in
    ``deg(u) + deg(v)`` — more element reads than the native bit-vector
    probes, which is where the paper's 2.5x gap comes from.
    """
    _require_single_node(cluster)
    cluster.allocate(0, "graph",
                     8.0 * graph.num_edges + 8.0 * (graph.num_vertices + 1))

    masked = kernel_registry.kernel("triangle_counting",
                                    "masked-spgemm")().prepare(graph)
    (count, _overlap), _ = masked.step()

    degrees = graph.out_degrees().astype(np.float64)
    probes = float(degrees[graph.sources()].sum())
    merge_reads = probes + float(degrees[graph.targets].sum())
    # Sorted-merge intersections: the second list's elements are pulled
    # from cold lines with partial reuse, costlier than the native
    # bit-vector probes (Table 5's 2.5x TC gap).
    with cluster.trace_span("sorted-merge-intersect",
                            merge_reads=merge_reads):
        cluster.superstep(
            _work(streamed=8.0 * merge_reads + 8.0 * graph.num_edges,
                  random=24.0 * probes,
                  ops=4.0 * merge_reads),
            overhead_s=_PROFILE.superstep_overhead_s,
        )
        cluster.mark_iteration()

    return AlgorithmResult(
        algorithm="triangle_counting", framework="galois", values=count,
        iterations=1, metrics=cluster.metrics(),
        extras={"merge_reads": merge_reads},
    )


def collaborative_filtering(ratings: RatingsMatrix, cluster: Cluster,
                            hidden_dim: int = 64, iterations: int = 10,
                            **kwargs) -> AlgorithmResult:
    """True SGD, one work item per rating edge (Section 3.2).

    "Each work-item in Galois performs the SGD update on a single edge
    (u, v) i.e. it updates both p_u and q_v" — identical math to the
    native SGD, so we run the native kernel under Galois's cost profile.
    """
    _require_single_node(cluster)
    shadow = Cluster(cluster.spec, comm_layer=cluster.comm_layer,
                     scale_factor=cluster.scale_factor, enforce_memory=False)
    native_result = _native_cf(ratings, shadow, hidden_dim=hidden_dim,
                               iterations=iterations, method="sgd", **kwargs)

    # Replay the native compute under the Galois profile (its per-op
    # efficiency and small scheduling overhead).
    from ..base import cf_density_correction

    count = float(ratings.num_ratings)
    factor_bytes = 4.0 * hidden_dim * 8.0 * count
    density = cf_density_correction(ratings)
    cluster.allocate(0, "factors+ratings",
                     8.0 * hidden_dim
                     * (ratings.num_users + ratings.num_items) / density
                     + 24.0 * count)
    for iteration in range(iterations):
        with cluster.trace_span("iteration", index=iteration,
                                method="sgd"):
            cluster.superstep(
                _work(streamed=0.75 * factor_bytes + 16.0 * count,
                      random=0.25 * factor_bytes,
                      ops=8.0 * hidden_dim * count),
                overhead_s=_PROFILE.superstep_overhead_s,
            )
            cluster.mark_iteration()

    return AlgorithmResult(
        algorithm="collaborative_filtering", framework="galois",
        values=native_result.values, iterations=iterations,
        metrics=cluster.metrics(),
        extras={"rmse_curve": native_result.extras["rmse_curve"],
                "method": "sgd", "hidden_dim": hidden_dim},
    )


def wcc(graph: CSRGraph, cluster: Cluster) -> AlgorithmResult:
    """Label-propagation WCC over bulk-synchronous worklists.

    Every vertex starts on the worklist with its own id; a round pushes
    the current label across each frontier vertex's out-edges and
    re-enqueues vertices whose label dropped.
    """
    _require_single_node(cluster)
    num_vertices = graph.num_vertices
    cluster.allocate(0, "graph",
                     8.0 * graph.num_edges + 8.0 * (num_vertices + 1))
    cluster.allocate(0, "labels+worklists", 16.0 * num_vertices)

    push = kernel_registry.kernel("wcc", "propagate")().prepare(graph)
    labels = np.arange(num_vertices, dtype=np.int64)
    frontier = np.arange(num_vertices, dtype=np.int64)
    rounds = 0
    while frontier.size:
        rounds += 1
        with cluster.trace_span("round", index=rounds,
                                frontier=int(frontier.size)):
            (labels, changed), work = push.step(labels, frontier)
            cluster.superstep(
                _work(streamed=(8.0 + 12.0) * work.edges
                      + 8.0 * frontier.size,
                      random=1.0 * work.edges + 8.0 * changed.size,
                      ops=4.0 * work.edges),
                overhead_s=_PROFILE.superstep_overhead_s,
            )
            cluster.mark_iteration()
        frontier = changed

    return AlgorithmResult(
        algorithm="wcc", framework="galois", values=labels,
        iterations=rounds, metrics=cluster.metrics(),
        extras={"components": int(np.unique(labels).size)},
    )


def sssp(graph: CSRGraph, cluster: Cluster, source: int = 0) -> AlgorithmResult:
    """Bellman-Ford rounds over the improved-distance worklist."""
    _require_single_node(cluster)
    if not 0 <= source < graph.num_vertices:
        raise ValueError(f"source {source} out of range")
    num_vertices = graph.num_vertices
    cluster.allocate(0, "graph",
                     16.0 * graph.num_edges + 8.0 * (num_vertices + 1))
    cluster.allocate(0, "distances+worklists", 16.0 * num_vertices)

    relax = kernel_registry.kernel("sssp", "relax")().prepare(graph)
    distances = np.full(num_vertices, np.inf, dtype=np.float64)
    distances[source] = 0.0
    frontier = np.array([source], dtype=np.int64)
    tracer = cluster.tracer
    tracer.count("frontier_size", 1)
    rounds = 0
    while frontier.size:
        rounds += 1
        with cluster.trace_span("round", index=rounds,
                                frontier=int(frontier.size)):
            (distances, changed), work = relax.step(distances, frontier)
            cluster.superstep(
                _work(streamed=(8.0 + 12.0 + 8.0) * work.edges
                      + 8.0 * frontier.size,
                      random=1.0 * work.edges + 8.0 * changed.size,
                      ops=5.0 * work.edges),
                overhead_s=_PROFILE.superstep_overhead_s,
            )
            cluster.mark_iteration()
        frontier = changed
        if changed.size:
            tracer.count("frontier_size", int(changed.size))

    return AlgorithmResult(
        algorithm="sssp", framework="galois", values=distances,
        iterations=rounds, metrics=cluster.metrics(),
        extras={"reached": int(np.isfinite(distances).sum())},
    )


def k_core(graph: CSRGraph, cluster: Cluster) -> AlgorithmResult:
    """Ascending-k cascade peel; one worklist round per cascade wave."""
    _require_single_node(cluster)
    num_vertices = graph.num_vertices
    cluster.allocate(0, "graph",
                     8.0 * graph.num_edges + 8.0 * (num_vertices + 1))
    cluster.allocate(0, "degrees+core", 16.0 * num_vertices)

    peel = kernel_registry.kernel("k_core", "peel")().prepare(graph)
    degrees = graph.out_degrees().astype(np.int64)
    core = np.zeros(num_vertices, dtype=np.int64)
    alive = np.ones(num_vertices, dtype=bool)
    levels = 0
    waves = 0
    k = 1
    while alive.any():
        levels += 1
        with cluster.trace_span("level", k=k, alive=int(alive.sum())):
            while True:
                (removed, degrees), work = peel.step(degrees, alive, k)
                if removed.size == 0:
                    break
                waves += 1
                core[removed] = k - 1
                alive[removed] = False
                cluster.superstep(
                    _work(streamed=(8.0 + 12.0) * work.edges
                          + 8.0 * removed.size,
                          random=8.0 * work.edges,
                          ops=2.0 * work.edges + float(num_vertices)),
                    overhead_s=_PROFILE.superstep_overhead_s,
                )
            # Per-level rescan of the live degrees for sub-threshold seeds.
            cluster.superstep(
                _work(streamed=8.0 * num_vertices, random=0.0,
                      ops=float(num_vertices)),
                overhead_s=_PROFILE.superstep_overhead_s,
            )
            cluster.mark_iteration()
        k += 1

    return AlgorithmResult(
        algorithm="k_core", framework="galois", values=core,
        iterations=levels, metrics=cluster.metrics(),
        extras={"max_core": int(core.max()) if core.size else 0,
                "cascade_waves": waves},
    )


def label_propagation(graph: CSRGraph, cluster: Cluster, iterations: int = 3,
                      seed: int = 0) -> AlgorithmResult:
    """Synchronous CDLP rounds, one tallying work item per vertex."""
    _require_single_node(cluster)
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    from ...algorithms.labelprop import initial_labels

    num_vertices = graph.num_vertices
    num_edges = graph.num_edges
    cluster.allocate(0, "graph",
                     8.0 * num_edges + 8.0 * (num_vertices + 1))
    cluster.allocate(0, "labels+tallies", 32.0 * num_vertices)

    sync = kernel_registry.kernel("label_propagation", "sync")().prepare(graph)
    labels = initial_labels(num_vertices, seed)
    for iteration in range(int(iterations)):
        with cluster.trace_span("iteration", index=iteration):
            labels, _ = sync.step(labels)
            cluster.superstep(
                _work(streamed=(8.0 + 64.0) * num_edges
                      + 16.0 * num_vertices,
                      random=0.05 * 64.0 * num_edges + 16.0 * num_edges,
                      ops=6.0 * num_edges + 4.0 * num_vertices),
                overhead_s=_PROFILE.superstep_overhead_s,
            )
            cluster.mark_iteration()

    return AlgorithmResult(
        algorithm="label_propagation", framework="galois", values=labels,
        iterations=int(iterations), metrics=cluster.metrics(),
        extras={"communities": int(np.unique(labels).size)},
    )
