"""Task/worklist engine and the Galois front-end."""

from . import galois
from .worklist import BulkSynchronousExecutor, parallel_for_each

__all__ = ["BulkSynchronousExecutor", "galois", "parallel_for_each"]
