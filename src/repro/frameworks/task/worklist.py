"""Galois-style worklist executors.

Galois "is a work-item based parallelization framework ... provides its
own schedulers and scalable data structures, but does not impose a
particular partitioning scheme" (Section 3). Two executors cover the
paper's programs:

* :class:`BulkSynchronousExecutor` — "the bulk-synchronous parallel
  executor provided by Galois, which maintains the work lists for each
  level behind the scenes, and processes each level in parallel"
  (Algorithm 3). Work items pushed during round *i* run in round *i+1*.
* :func:`parallel_for_each` — the unordered ``foreach ... in parallel``
  of Algorithm 4: one pass over a fixed item set.

Both run genuine Python work functions (the oracle path used in tests
and examples); the Galois front-end drives vectorized equivalents and
only uses these executors' round structure for accounting.
"""

from __future__ import annotations

from collections import deque

from ...errors import ReproError
from ...observability import NULL_TRACER


class BulkSynchronousExecutor:
    """Round-based worklist execution with deferred pushes.

    ``work_fn(item, push)`` processes one item and may call ``push`` to
    schedule items for the *next* round. Duplicate pushes within a round
    are kept (Galois semantics: the application deduplicates via its own
    state, as Algorithm 3's level check does).
    """

    def __init__(self, work_fn, tracer=NULL_TRACER):
        self.work_fn = work_fn
        self.tracer = tracer
        self.rounds_executed = 0
        self.items_processed = 0

    def run(self, initial_items, max_rounds: int = 1_000_000) -> int:
        """Execute to quiescence; returns the number of rounds."""
        tracer = self.tracer
        current = deque(initial_items)
        rounds = 0
        while current:
            if rounds >= max_rounds:
                raise ReproError(
                    f"worklist did not quiesce within {max_rounds} rounds"
                )
            next_round = deque()
            push = next_round.append
            with tracer.span("worklist-round", index=rounds,
                             items=len(current)):
                for item in current:
                    self.work_fn(item, push)
                    self.items_processed += 1
            tracer.count("work_items", len(current))
            tracer.advance(1.0)
            current = next_round
            rounds += 1
        self.rounds_executed = rounds
        return rounds


def parallel_for_each(items, work_fn, tracer=NULL_TRACER) -> int:
    """Unordered foreach over a fixed item set; returns items processed.

    Sequential under the hood (this is the semantics oracle); the
    Galois front-end accounts for 24-core parallel execution separately.
    """
    count = 0
    with tracer.span("parallel-for-each"):
        for item in items:
            work_fn(item)
            count += 1
    tracer.count("work_items", count)
    return count
