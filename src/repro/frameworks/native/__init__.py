"""Hand-optimized native implementations — the paper's reference point."""

from .bfs import bfs
from .cf import DEFAULT_K, collaborative_filtering, iterations_to_rmse
from .compression import (
    bitvector_decode,
    bitvector_encode,
    delta_varint_decode,
    delta_varint_encode,
    encode_id_set,
    encoded_size,
)
from .kcore import kcore
from .labelprop import label_propagation
from .options import FIGURE7_LADDER, NativeOptions
from .pagerank import DEFAULT_DAMPING, pagerank
from .sssp import sssp
from .triangle import triangle_count
from .wcc import wcc

__all__ = [
    "DEFAULT_DAMPING",
    "DEFAULT_K",
    "FIGURE7_LADDER",
    "NativeOptions",
    "bfs",
    "bitvector_decode",
    "bitvector_encode",
    "collaborative_filtering",
    "delta_varint_decode",
    "delta_varint_encode",
    "encode_id_set",
    "encoded_size",
    "iterations_to_rmse",
    "kcore",
    "label_propagation",
    "pagerank",
    "sssp",
    "triangle_count",
    "wcc",
]
