"""Hand-optimized native SSSP: frontier-delta min-plus relaxation.

Bellman-Ford with the paper's BFS machinery: each round the vertices
whose tentative distance just improved relax their out-edges (one
bucket of delta-stepping), remote improvements are routed to their
owners as compressed ``(id, distance)`` pairs, and the irregular
distance probes ride the software-prefetch path. Edge weights are the
study's deterministic unordered-pair hash (see
:mod:`repro.algorithms.sssp`), so distances are exact and bit-identical
across engines.
"""

from __future__ import annotations

import numpy as np

from ...cluster import Cluster, ComputeWork
from ...graph import CSRGraph, partition_edges_1d
from ...kernels import registry as kernel_registry
from ..results import AlgorithmResult
from .compression import encoded_size
from .options import NativeOptions

_VALUE_BYTES = 8.0  # the pushed tentative distance


def sssp(graph: CSRGraph, cluster: Cluster, source: int = 0,
         options: NativeOptions = None) -> AlgorithmResult:
    """Shortest-path distances from ``source``; ``inf`` = unreachable."""
    options = options or NativeOptions()
    num_vertices = graph.num_vertices
    if not 0 <= source < num_vertices:
        raise ValueError(f"source {source} out of range")

    part = partition_edges_1d(graph, cluster.num_nodes)
    edges_per_node = np.diff(graph.offsets[part.bounds]).astype(np.float64)
    verts_per_node = part.part_sizes().astype(np.float64)
    for node in range(cluster.num_nodes):
        cluster.allocate(node, "graph",
                         16 * edges_per_node[node]      # targets + weights
                         + 8 * (verts_per_node[node] + 1))
        cluster.allocate(node, "distances", 8 * verts_per_node[node])

    relax = kernel_registry.kernel("sssp", "relax")().prepare(graph)
    distances = np.full(num_vertices, np.inf, dtype=np.float64)
    distances[source] = 0.0
    frontier = np.array([source], dtype=np.int64)

    rounds = 0
    relaxations = 0.0
    raw_traffic_total = 0.0
    wire_traffic_total = 0.0
    while frontier.size:
        rounds += 1
        round_span = cluster.trace_span("round", index=rounds,
                                        frontier=int(frontier.size))
        frontier_owner = part.owner_of_many(frontier)
        traffic = np.zeros((cluster.num_nodes, cluster.num_nodes))
        works = []
        merged = None
        for node in range(cluster.num_nodes):
            mine = frontier[frontier_owner == node]
            (relaxed, improved), work = relax.step(distances, mine)
            merged = relaxed if merged is None else np.minimum(merged, relaxed)
            relaxations += work.edges

            improved_owner = part.owner_of_many(improved)
            for owner in np.unique(improved_owner):
                owner = int(owner)
                if owner == node:
                    continue
                ids = improved[improved_owner == owner]
                raw = (8.0 + _VALUE_BYTES) * ids.size
                raw_traffic_total += raw
                if options.compression:
                    lo, hi = part.part_range(owner)
                    nbytes = (float(encoded_size(ids - lo, hi - lo))
                              + _VALUE_BYTES * ids.size)
                else:
                    nbytes = raw
                traffic[node, owner] += nbytes
                wire_traffic_total += nbytes

            works.append(ComputeWork(
                streamed_bytes=(8 + 12 + 8) * work.edges + 8 * mine.size,
                # Distance probes batch like BFS's visited checks:
                # ~1 B/edge irregular after the sort pass.
                random_bytes=1.0 * work.edges + 8.0 * improved.size,
                ops=5 * work.edges,
                prefetch=options.prefetch,
            ))
        for node in range(cluster.num_nodes):
            incoming = traffic[:, node].sum()
            if options.overlap:
                incoming = min(incoming, 16 * 2**20 / cluster.scale_factor)
            cluster.allocate(node, "recv-buffers", incoming)

        with round_span:
            cluster.superstep(works, traffic, overlap=options.overlap)
            cluster.mark_iteration()

        changed = np.flatnonzero(merged < distances)
        distances = merged
        frontier = changed
        cluster.tracer.count("frontier_size", int(changed.size))

    metrics = cluster.metrics()
    return AlgorithmResult(
        algorithm="sssp", framework="native", values=distances,
        iterations=rounds, metrics=metrics,
        extras={
            "relaxations": relaxations,
            "reached": int(np.isfinite(distances).sum()),
            "compression_ratio": (raw_traffic_total / wire_traffic_total
                                  if wire_traffic_total > 0 else 1.0),
        },
    )
