"""Message compression used by the native kernels (Section 6.1.1).

"In many cases, the data communicated among nodes is the id's of
destination vertices of the edges traversed. Such data has been observed
to be compressible using techniques like bit-vectors and delta coding
[28]." The paper credits compression with 3.2x (BFS) and 2.2x (PageRank)
end-to-end speedups on network-bound runs.

Both schemes are *actually implemented* here — the byte counts fed to the
network simulator are the sizes of real encodings of the real id streams,
not assumed ratios:

* ``delta_varint`` — sort ids, delta-encode, LEB128-varint the gaps.
  Sorted vertex-id sets coming out of a partition are dense, so most
  gaps fit one byte.
* ``bitvector`` — one bit per vertex of the destination partition;
  superior once more than ~1/64 of the partition is addressed.

``encode_id_set`` picks whichever of the two is smaller, exactly the
adaptive choice of [28].
"""

from __future__ import annotations

import numpy as np

from ...graph.bitvector import BitVector


def delta_varint_encode(ids: np.ndarray) -> bytes:
    """LEB128 encoding of the gaps of a sorted id array."""
    ids = np.asarray(ids, dtype=np.int64)
    if ids.size == 0:
        return b""
    if ids.min() < 0:
        raise ValueError("ids must be non-negative")
    sorted_ids = np.sort(ids)
    gaps = np.diff(sorted_ids, prepend=np.int64(0))
    gaps[0] = sorted_ids[0]
    out = bytearray()
    for gap in gaps:
        gap = int(gap)
        while True:
            byte = gap & 0x7F
            gap >>= 7
            if gap:
                out.append(byte | 0x80)
            else:
                out.append(byte)
                break
    return bytes(out)


def delta_varint_decode(blob: bytes) -> np.ndarray:
    """Inverse of :func:`delta_varint_encode` (sorted unique ids)."""
    values = []
    current = 0
    shift = 0
    accumulator = 0
    for byte in blob:
        accumulator |= (byte & 0x7F) << shift
        if byte & 0x80:
            shift += 7
        else:
            current += accumulator
            values.append(current)
            accumulator = 0
            shift = 0
    if shift != 0:
        raise ValueError("truncated varint stream")
    return np.asarray(values, dtype=np.int64)


def bitvector_encode(ids: np.ndarray, universe: int) -> bytes:
    """Fixed-size bit-vector encoding over ``[0, universe)``."""
    vec = BitVector.from_indices(universe, ids)
    return vec.words.tobytes()


def bitvector_decode(blob: bytes, universe: int) -> np.ndarray:
    words = np.frombuffer(blob, dtype=np.uint64)
    return BitVector.from_words(universe, words).to_indices()


def encode_id_set(ids: np.ndarray, universe: int) -> "tuple[bytes, str]":
    """Adaptive encoding: whichever of delta-varint/bit-vector is smaller.

    Returns ``(blob, scheme)``. The caller charges ``len(blob)`` bytes to
    the network; a one-byte scheme tag is included in the size.
    """
    varint = delta_varint_encode(ids)
    bitvec_size = (universe + 63) // 64 * 8
    if len(varint) <= bitvec_size:
        return varint, "delta-varint"
    return bitvector_encode(ids, universe), "bitvector"


def encoded_size(ids: np.ndarray, universe: int) -> int:
    """Size in bytes of the adaptive encoding, plus the 1-byte tag."""
    varint_size = _varint_size(ids)
    bitvec_size = (universe + 63) // 64 * 8
    return min(varint_size, bitvec_size) + 1


def _varint_size(ids: np.ndarray) -> int:
    """Exact size of the delta-varint encoding, without materializing it."""
    ids = np.asarray(ids, dtype=np.int64)
    if ids.size == 0:
        return 0
    sorted_ids = np.sort(ids)
    gaps = np.diff(sorted_ids, prepend=np.int64(0))
    gaps[0] = sorted_ids[0]
    gaps = np.maximum(gaps, 1)  # varint of 0 still takes one byte
    return int(np.ceil((np.log2(gaps.astype(np.float64) + 1) + 1e-9) / 7.0)
               .clip(min=1).sum())


def uncompressed_id_bytes(count: int) -> int:
    """Wire size of a raw 8-byte-per-id message (the unoptimized path)."""
    return 8 * count
