"""Hand-optimized native PageRank (paper Sections 3.1 and 6.1).

The implementation mirrors the paper's native code:

* the graph is stored as *incoming* edges in CSR so the per-edge gather
  of neighbor ranks streams through one contiguous edge array;
* vertices are partitioned 1-D with *edge balancing* ("so that each node
  has roughly the same number of edges");
* each node packages the rank values of its owned vertices needed by
  remote nodes, optionally delta-varint-compressing the id stream and
  narrowing values to float32 (the Section 6.1.1 compression);
* software prefetching converts the latency-bound rank gather into a
  bandwidth-bound stream, and communication is overlapped with local
  update computation.

Rank update (equation 1), unnormalized as in the paper, with r = 0.3::

    PR'(i) = r + (1 - r) * sum_{j : (j,i) in E} PR(j) / degree(j)
"""

from __future__ import annotations

import numpy as np

from ...cluster import Cluster, ComputeWork
from ...graph import CSRGraph, partition_edges_1d
from ...kernels import registry as kernel_registry
from ..results import AlgorithmResult
from .compression import encoded_size
from .options import NativeOptions

#: Paper value: "the probability of a random jump (we use 0.3)".
DEFAULT_DAMPING = 0.3

_VALUE_BYTES_RAW = 8          # double per rank value; compression targets
_ID_BYTES_RAW = 8             # the id stream only (Section 6.1.1)


def _exchange_plan(in_csr: CSRGraph, part) -> dict:
    """Which remote rank values each node needs, as {(owner, consumer): ids}."""
    plan = {}
    for consumer in range(part.num_parts):
        lo, hi = part.part_range(consumer)
        sources = in_csr.targets[in_csr.offsets[lo]:in_csr.offsets[hi]]
        needed = np.unique(sources)
        owners = part.owner_of_many(needed)
        for owner in np.unique(owners):
            owner = int(owner)
            if owner == consumer:
                continue
            plan[(owner, consumer)] = needed[owners == owner]
    return plan


def _message_bytes(ids: np.ndarray, part, owner: int,
                   options: NativeOptions) -> float:
    """Wire size of one (ids, values) rank message."""
    count = ids.size
    if not options.compression:
        return count * (_ID_BYTES_RAW + _VALUE_BYTES_RAW)
    lo, hi = part.part_range(owner)
    return encoded_size(ids - lo, hi - lo) + count * _VALUE_BYTES_RAW


def pagerank(graph: CSRGraph, cluster: Cluster, iterations: int = 10,
             damping: float = DEFAULT_DAMPING,
             options: NativeOptions = None,
             tolerance: float = None) -> AlgorithmResult:
    """Run native PageRank on the simulated cluster.

    ``graph`` holds out-edges; ``iterations`` fixes the iteration count
    unless ``tolerance`` triggers early convergence on max |delta PR|.
    """
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    if not 0 < damping < 1:
        raise ValueError(f"damping must be in (0, 1), got {damping}")
    options = options or NativeOptions()

    num_vertices = graph.num_vertices
    in_csr = graph.reverse()
    part = partition_edges_1d(in_csr, cluster.num_nodes)
    plan = _exchange_plan(in_csr, part)

    # Per-node static counts.
    bounds = part.bounds
    edges_per_node = np.diff(in_csr.offsets[bounds]).astype(np.float64)
    verts_per_node = part.part_sizes().astype(np.float64)

    # Traffic matrix is iteration-invariant: same value sets every round.
    traffic = np.zeros((cluster.num_nodes, cluster.num_nodes))
    recv_entries = np.zeros(cluster.num_nodes)
    for (owner, consumer), ids in plan.items():
        traffic[owner, consumer] = _message_bytes(ids, part, owner, options)
        recv_entries[consumer] += ids.size
    raw_traffic = sum(
        ids.size * (_ID_BYTES_RAW + _VALUE_BYTES_RAW) for ids in plan.values()
    )

    # Memory: in-CSR share, three rank arrays, receive buffers, send
    # buffers (bounded when compute/communication overlap blocks them).
    for node in range(cluster.num_nodes):
        graph_bytes = 8 * edges_per_node[node] + 8 * (verts_per_node[node] + 1)
        cluster.allocate(node, "graph", graph_bytes)
        cluster.allocate(node, "ranks", 8 * 3 * verts_per_node[node])
        cluster.allocate(node, "recv-buffers", 8 * recv_entries[node])
        send_bytes = traffic[node, :].sum()
        if options.overlap:
            # 64 MB blocking window, expressed at proxy scale (the
            # tracker re-applies the extrapolation factor).
            send_bytes = min(send_bytes, 64 * 2**20 / cluster.scale_factor)
        cluster.allocate(node, "send-buffers", send_bytes)

    pull = kernel_registry.kernel("pagerank", "pull")(damping).prepare(graph)
    ranks = np.full(num_vertices, 1.0)

    # Each in-edge gathers a remote rank from a (mostly) cold cache line:
    # 64 bytes of DRAM traffic per edge. Software prefetching pipelines
    # those line fills into streams (the [28] technique); without it they
    # are latency-bound random accesses. This constant reproduces the
    # paper's ~122 bytes/edge (640M edges/s at 78 GB/s).
    from ...cluster.cost import CACHE_LINE_BYTES
    gather_bytes = CACHE_LINE_BYTES * edges_per_node
    works = []
    for node in range(cluster.num_nodes):
        message_bytes = traffic[node, :].sum() + traffic[:, node].sum()
        if options.prefetch:
            streamed_gather = gather_bytes[node]
            random_gather = 0.05 * gather_bytes[node]
        else:
            streamed_gather = 0.0
            random_gather = gather_bytes[node]
        works.append(ComputeWork(
            streamed_bytes=(8 * edges_per_node[node]        # edge array scan
                            + streamed_gather                # prefetched gather
                            + 16 * verts_per_node[node]      # rank read+write
                            + 2 * message_bytes),            # pack + unpack
            random_bytes=random_gather,
            ops=2 * edges_per_node[node] + 3 * verts_per_node[node],
            prefetch=options.prefetch,
        ))

    iterations_run = 0
    for iteration in range(iterations):
        with cluster.trace_span("iteration", index=iteration,
                                compressed=options.compression):
            new_ranks, _ = pull.step(ranks)

            cluster.superstep(works, traffic, overlap=options.overlap)
            cluster.mark_iteration()
        iterations_run += 1

        delta = float(np.abs(new_ranks - ranks).max())
        ranks = new_ranks
        if tolerance is not None and delta < tolerance:
            break

    metrics = cluster.metrics()
    compressed_traffic = float(traffic.sum())
    return AlgorithmResult(
        algorithm="pagerank", framework="native", values=ranks,
        iterations=iterations_run, metrics=metrics,
        extras={
            "traffic_bytes_per_iteration": compressed_traffic,
            "compression_ratio": (raw_traffic / compressed_traffic
                                  if compressed_traffic > 0 else 1.0),
            "edges_per_node": edges_per_node,
        },
    )
