"""Hand-optimized native label propagation (synchronous CDLP rounds).

Dense-iteration shape, mirroring native PageRank: every round each
node streams its in-edge share, gathers remote neighbor labels through
the software-prefetch path, and tallies per-vertex label frequencies.
The boundary-label exchange is iteration-invariant, so the traffic
matrix is computed once from the same exchange plan PageRank uses, with
the same id-stream compression.
"""

from __future__ import annotations

import numpy as np

from ...cluster import Cluster, ComputeWork
from ...cluster.cost import CACHE_LINE_BYTES
from ...graph import CSRGraph, partition_edges_1d
from ...kernels import registry as kernel_registry
from ..results import AlgorithmResult
from .options import NativeOptions
from .pagerank import _exchange_plan, _message_bytes


def label_propagation(graph: CSRGraph, cluster: Cluster, iterations: int = 3,
                      seed: int = 0,
                      options: NativeOptions = None) -> AlgorithmResult:
    """Seeded synchronous label propagation; int64 labels per vertex."""
    if iterations < 1:
        raise ValueError(f"iterations must be >= 1, got {iterations}")
    options = options or NativeOptions()
    from ...algorithms.labelprop import initial_labels

    in_csr = graph.reverse()
    part = partition_edges_1d(in_csr, cluster.num_nodes)
    plan = _exchange_plan(in_csr, part)
    edges_per_node = np.diff(in_csr.offsets[part.bounds]).astype(np.float64)
    verts_per_node = part.part_sizes().astype(np.float64)

    traffic = np.zeros((cluster.num_nodes, cluster.num_nodes))
    recv_entries = np.zeros(cluster.num_nodes)
    for (owner, consumer), ids in plan.items():
        traffic[owner, consumer] = _message_bytes(ids, part, owner, options)
        recv_entries[consumer] += ids.size

    for node in range(cluster.num_nodes):
        cluster.allocate(node, "graph",
                         8 * edges_per_node[node]
                         + 8 * (verts_per_node[node] + 1))
        cluster.allocate(node, "labels", 8 * 2 * verts_per_node[node])
        cluster.allocate(node, "tallies", 16 * verts_per_node[node])
        cluster.allocate(node, "recv-buffers", 8 * recv_entries[node])

    gather_bytes = CACHE_LINE_BYTES * edges_per_node
    works = []
    for node in range(cluster.num_nodes):
        message_bytes = traffic[node, :].sum() + traffic[:, node].sum()
        if options.prefetch:
            streamed_gather = gather_bytes[node]
            random_gather = 0.05 * gather_bytes[node]
        else:
            streamed_gather = 0.0
            random_gather = gather_bytes[node]
        works.append(ComputeWork(
            streamed_bytes=(8 * edges_per_node[node]
                            + streamed_gather
                            + 16 * verts_per_node[node]
                            + 2 * message_bytes),
            # The per-edge tally insert is a hash probe on top of the
            # label gather.
            random_bytes=random_gather + 16 * edges_per_node[node],
            ops=6 * edges_per_node[node] + 4 * verts_per_node[node],
            prefetch=options.prefetch,
        ))

    sync = kernel_registry.kernel("label_propagation", "sync")().prepare(graph)
    labels = initial_labels(graph.num_vertices, seed)
    for iteration in range(int(iterations)):
        with cluster.trace_span("iteration", index=iteration):
            labels, _ = sync.step(labels)
            cluster.superstep(works, traffic, overlap=options.overlap)
            cluster.mark_iteration()

    metrics = cluster.metrics()
    return AlgorithmResult(
        algorithm="label_propagation", framework="native", values=labels,
        iterations=int(iterations), metrics=metrics,
        extras={
            "communities": int(np.unique(labels).size),
            "traffic_bytes_per_iteration": float(traffic.sum()),
        },
    )
