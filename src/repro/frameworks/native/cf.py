"""Hand-optimized native collaborative filtering (paper Sections 2, 3.2, 6.1).

The native code implements **Stochastic Gradient Descent** with the
Gemulla et al. diagonal parallelization: "For n processors, the ratings
matrix is divided into n^2 2-D chunks. Each iteration involves n
sub-steps where a subset of the updates (on n chunks) are applied" —
blocks on a diagonal share no users or items, so nodes update lock-free.
Gradient Descent (the fallback the other frameworks are limited to) is
also provided, both for the framework engines and for the SGD-vs-GD
convergence comparison the paper reports (~40x fewer iterations on
Netflix).

The update math itself lives in :mod:`repro.kernels.sgd` (re-exported
here for compatibility): mini-batch vectorized sweeps rather than
rating-at-a-time Python (reads within a batch see slightly stale
factors, a standard Hogwild-style relaxation that preserves SGD's
convergence behaviour). DESIGN.md records this substitution; the
``REPRO_KERNELS=interpreted`` oracle runs the per-rating loops.
"""

from __future__ import annotations

import numpy as np

from ...cluster import Cluster, ComputeWork
from ...errors import ConvergenceError
from ...graph import RatingsMatrix
from ...kernels import registry as kernel_registry
from ...kernels.sgd import (  # noqa: F401  (re-exported compatibility names)
    _SGD_BATCH,
    gd_step,
    sgd_sweep,
    training_rmse,
)
from ..results import AlgorithmResult
from .options import NativeOptions

#: Default hidden dimension. The paper's message sizes (Table 1: 8 KB per
#: vertex message) imply K near 1000; we default far lower so proxy-scale
#: runs stay fast, and the Table 1 bench overrides it.
DEFAULT_K = 64


def collaborative_filtering(ratings: RatingsMatrix, cluster: Cluster,
                            hidden_dim: int = DEFAULT_K, iterations: int = 10,
                            method: str = "sgd", gamma0: float = 0.003,
                            step_decay: float = 0.95,
                            lambda_reg: float = 0.05, seed: int = 0,
                            options: NativeOptions = None) -> AlgorithmResult:
    """Factorize ``ratings`` into P (users) and Q (items) on the cluster.

    ``method`` is ``"sgd"`` (native default, Gemulla diagonal blocks) or
    ``"gd"`` (the frameworks' fallback). Returns ``(P, Q)`` in ``values``
    and the per-iteration training RMSE in ``extras["rmse_curve"]``.
    """
    if method not in ("sgd", "gd"):
        raise ValueError(f"method must be 'sgd' or 'gd', got {method!r}")
    if iterations < 1 or hidden_dim < 1:
        raise ValueError("iterations and hidden_dim must be >= 1")
    options = options or NativeOptions()
    rng = np.random.default_rng(seed)

    num_nodes = cluster.num_nodes
    k = hidden_dim
    scale = 1.0 / np.sqrt(k)
    p_factors = rng.random((ratings.num_users, k)) * scale
    q_factors = rng.random((ratings.num_items, k)) * scale

    # Gemulla grid: users and items each cut into ``num_nodes`` chunks.
    user_chunk = np.minimum(
        (ratings.users * num_nodes) // max(ratings.num_users, 1), num_nodes - 1
    )
    item_chunk = np.minimum(
        (ratings.items * num_nodes) // max(ratings.num_items, 1), num_nodes - 1
    )
    items_per_chunk = np.bincount(
        np.minimum(np.arange(ratings.num_items) * num_nodes
                   // max(ratings.num_items, 1), num_nodes - 1),
        minlength=num_nodes,
    )

    # Memory: each node holds its user-factor chunk, one item-factor
    # chunk at a time, and its ratings share. Vertex-proportional sizes
    # carry the density correction (see cf_density_correction).
    from ..base import cf_density_correction
    density = cf_density_correction(ratings)
    ratings_per_user_chunk = np.bincount(user_chunk, minlength=num_nodes)
    for node in range(num_nodes):
        cluster.allocate(node, "user-factors",
                         8 * k * ratings.num_users / num_nodes / density)
        cluster.allocate(node, "item-factors",
                         8 * k * items_per_chunk.max() / density)
        cluster.allocate(node, "ratings", 16 * ratings_per_user_chunk[node])

    direction = "blocked-sgd" if method == "sgd" else "blocked-gd"
    kern = kernel_registry.kernel("collaborative_filtering",
                                  direction)().prepare(ratings)

    order = rng.permutation(ratings.num_ratings)
    users = ratings.users[order]
    items = ratings.items[order]
    values = ratings.ratings[order]
    block_of = user_chunk[order] * num_nodes + item_chunk[order]

    rmse_curve = []
    gamma = gamma0
    factor_bytes_per_rating = 4.0 * k * 8.0   # read + write both rows

    def _work_for(num_ratings_node: float) -> ComputeWork:
        total = factor_bytes_per_rating * num_ratings_node
        return ComputeWork(
            streamed_bytes=0.75 * total + 16 * num_ratings_node,
            random_bytes=0.25 * total,
            ops=8.0 * k * num_ratings_node,
            prefetch=options.prefetch,
        )

    for iteration in range(iterations):
        with cluster.trace_span("iteration", index=iteration,
                                method=method):
            if method == "sgd":
                for sub in range(num_nodes):
                    works = []
                    traffic = np.zeros((num_nodes, num_nodes))
                    for node in range(num_nodes):
                        chunk = (node + sub) % num_nodes
                        mask = block_of == node * num_nodes + chunk
                        count = int(mask.sum())
                        if count:
                            kern.step(users[mask], items[mask], values[mask],
                                      p_factors, q_factors, gamma,
                                      lambda_reg, lambda_reg)
                        works.append(_work_for(count))
                        # Rotate the item chunk to the next diagonal owner
                        # (vertex-proportional: density-corrected).
                        if num_nodes > 1:
                            succ = (node - 1) % num_nodes
                            traffic[node, succ] = (8.0 * k
                                                   * items_per_chunk[chunk]
                                                   / density)
                    cluster.superstep(works, traffic,
                                      overlap=options.overlap)
            else:
                kern.step(p_factors, q_factors, gamma, lambda_reg, lambda_reg)
                works = [_work_for(ratings_per_user_chunk[node])
                         for node in range(num_nodes)]
                # GD: item factors are aggregated across every node that
                # rated the item — an all-to-all of the full Q matrix
                # (vertex-proportional: density-corrected).
                traffic = np.full((num_nodes, num_nodes),
                                  8.0 * k * ratings.num_items
                                  / max(num_nodes, 1) / density)
                np.fill_diagonal(traffic, 0.0)
                cluster.superstep(works, traffic, overlap=options.overlap)

            cluster.mark_iteration()
        gamma *= step_decay
        rmse = kern.rmse(p_factors, q_factors)
        rmse_curve.append(rmse)
        if not np.isfinite(rmse):
            raise ConvergenceError(
                f"{method} diverged at iteration {iteration}: lower gamma0"
            )

    metrics = cluster.metrics()
    return AlgorithmResult(
        algorithm="collaborative_filtering", framework="native",
        values=(p_factors, q_factors), iterations=iterations, metrics=metrics,
        extras={"rmse_curve": rmse_curve, "method": method, "hidden_dim": k},
    )


def iterations_to_rmse(ratings: RatingsMatrix, target_rmse: float,
                       method: str, hidden_dim: int = 16,
                       max_iterations: int = 400, gamma0: float = None,
                       seed: int = 0) -> int:
    """Iterations needed to reach ``target_rmse`` (SGD-vs-GD study).

    The paper: "given a fixed convergence criterion, SGD converges in
    about 40x fewer iterations than GD", after "a coarse sweep over
    these parameters to obtain best convergence" — we likewise pick
    per-method defaults tuned coarsely.
    """
    from ...cluster import paper_cluster

    if gamma0 is None:
        gamma0 = 0.02 if method == "sgd" else 0.002
    # A too-aggressive learning rate makes GD diverge on some datasets;
    # halve and retry — the coarse parameter sweep the paper describes.
    curve = None
    for _attempt in range(4):
        cluster = Cluster(paper_cluster(1), enforce_memory=False)
        try:
            result = collaborative_filtering(
                ratings, cluster, hidden_dim=hidden_dim,
                iterations=max_iterations, method=method, gamma0=gamma0,
                step_decay=0.99, seed=seed,
            )
        except ConvergenceError:
            gamma0 /= 2.0
            continue
        curve = result.extras["rmse_curve"]
        break
    if curve is None:
        raise ConvergenceError(f"{method} diverged even at gamma0={gamma0}")
    for i, rmse in enumerate(curve):
        if rmse <= target_rmse:
            return i + 1
    raise ConvergenceError(
        f"{method} did not reach RMSE {target_rmse} in {max_iterations} "
        f"iterations (best {min(curve):.4f})"
    )
