"""Hand-optimized native triangle counting (paper Sections 3.2 and 6.1).

"We calculate the neighborhood set of every vertex and send the set to
all its neighbors. Then, every vertex computes the intersection of the
received sets with their set of neighbors."

The graph is id-oriented (every undirected edge stored once, small id to
large id), so each triangle is counted exactly once. The key native
optimization is the **bit-vector** neighborhood membership structure
("quick constant time lookups to identify common neighbors", ~2.2x);
without it the kernel falls back to sorted-merge intersections. Because
the total message volume is O(sum of squared degrees) — far larger than
the graph — **overlap/blocking** of the neighborhood exchange is what
keeps the memory footprint bounded (Section 6.1.1).
"""

from __future__ import annotations

import numpy as np

from ...cluster import Cluster, ComputeWork
from ...graph import CSRGraph, partition_edges_1d
from ...kernels import registry as kernel_registry
from ..results import AlgorithmResult
from .options import NativeOptions


def triangle_count(graph: CSRGraph, cluster: Cluster,
                   options: NativeOptions = None) -> AlgorithmResult:
    """Count triangles of an id-oriented CSR graph on the cluster."""
    options = options or NativeOptions()
    num_vertices = graph.num_vertices
    part = partition_edges_1d(graph, cluster.num_nodes)
    bounds = part.bounds
    edges_per_node = np.diff(graph.offsets[bounds]).astype(np.float64)
    verts_per_node = part.part_sizes().astype(np.float64)

    degrees = graph.out_degrees().astype(np.float64)
    src = graph.sources()
    dst = graph.targets
    src_owner = part.owner_of_many(src)
    dst_owner = part.owner_of_many(dst)

    # -- communication: N(u) goes to every node owning a neighbor of u ----
    # Unique (u, destination-node) pairs among cross-node edges; each
    # costs |N(u)| ids. Ids compress with the adaptive encoder.
    traffic = np.zeros((cluster.num_nodes, cluster.num_nodes))
    raw_traffic = 0.0
    cross = src_owner != dst_owner
    if cross.any():
        pair_keys = src[cross] * np.int64(cluster.num_nodes) + dst_owner[cross]
        unique_pairs = np.unique(pair_keys)
        send_vertex = unique_pairs // cluster.num_nodes
        send_to = (unique_pairs % cluster.num_nodes).astype(np.int64)
        list_sizes = degrees[send_vertex]
        raw_bytes = 8.0 * list_sizes
        # The paper applies message compression to BFS and PageRank
        # (Section 6.1.2) but its native triangle counting ships raw
        # neighbor-id lists — it is the *data structure* (bit-vector)
        # that optimizes TC. We follow suit: no wire compression here.
        wire_bytes = raw_bytes
        from_node = part.owner_of_many(send_vertex)
        np.add.at(traffic, (from_node, send_to), wire_bytes)
        raw_traffic = float(raw_bytes.sum())

    # -- memory ------------------------------------------------------------
    message_volume_in = traffic.sum(axis=0)
    for node in range(cluster.num_nodes):
        cluster.allocate(node, "graph",
                         8 * edges_per_node[node] + 8 * (verts_per_node[node] + 1))
        member_bytes = (num_vertices / 8.0 if options.bitvector
                        else 16.0 * degrees.max())
        cluster.allocate(node, "membership", member_bytes)
        incoming = message_volume_in[node]
        if options.overlap:
            # Blocking large messages bounds buffer space (Section 6.1.1:
            # "leading to lower memory footprint for buffer storage").
            # 256 MB blocking window at paper scale (proxy-scale cap).
            incoming = min(incoming, 256 * 2**20 / cluster.scale_factor)
        cluster.allocate(node, "recv-buffers", incoming)

    # -- values (real execution) ---------------------------------------------
    masked = kernel_registry.kernel("triangle_counting",
                                    "masked-spgemm")().prepare(graph)
    (count, overlap_matrix), _ = masked.step()

    # -- compute counters -----------------------------------------------------
    # Each received list N(u) of size d is probed against N(v): with the
    # bit-vector, d constant-time probes; without, a sorted merge costs
    # d + deg(v) element reads. Work lands on the *destination* owner.
    probe_work = np.zeros(cluster.num_nodes)
    merge_work = np.zeros(cluster.num_nodes)
    np.add.at(probe_work, dst_owner, degrees[src])
    np.add.at(merge_work, dst_owner, degrees[src] + degrees[dst])
    build_work = np.zeros(cluster.num_nodes)
    np.add.at(build_work, dst_owner, degrees[dst])

    works = []
    for node in range(cluster.num_nodes):
        if options.bitvector:
            # Bit probes into a DRAM-resident bit-vector touch cache
            # lines; sorted adjacency gives partial line reuse (~16 B of
            # traffic per probe), prefetchable.
            random_bytes = 16.0 * probe_work[node] + build_work[node] / 8.0
            streamed = 8 * probe_work[node]
            ops = 2 * probe_work[node] + build_work[node]
        else:
            # Baseline structure: hash-set membership probes — a full
            # cold line per lookup half the time, plus bucket chasing.
            random_bytes = 32.0 * probe_work[node]
            streamed = 8 * probe_work[node]
            ops = 6 * probe_work[node] + build_work[node]
        message_bytes = traffic[node, :].sum() + traffic[:, node].sum()
        works.append(ComputeWork(
            streamed_bytes=streamed + 8 * edges_per_node[node] + 2 * message_bytes,
            random_bytes=random_bytes,
            ops=ops,
            prefetch=options.prefetch,
        ))

    tracer = cluster.tracer
    if tracer.enabled:
        # Successful membership probes = one per counted triangle.
        tracer.count("cache_hits", float(count))
    with cluster.trace_span("neighborhood-exchange",
                            bitvector=options.bitvector,
                            probe_edges=float(probe_work.sum())):
        cluster.superstep(works, traffic, overlap=options.overlap)
        cluster.mark_iteration()

    metrics = cluster.metrics()
    wire_traffic = float(traffic.sum())
    return AlgorithmResult(
        algorithm="triangle_counting", framework="native", values=count,
        iterations=1, metrics=metrics,
        extras={
            "traffic_bytes": wire_traffic,
            "compression_ratio": (raw_traffic / wire_traffic
                                  if wire_traffic > 0 else 1.0),
            "intersection_nnz": int(overlap_matrix.nnz),
        },
    )
