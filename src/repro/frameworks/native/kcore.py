"""Hand-optimized native k-core decomposition: bulk ascending-k peel.

Each k level runs the delete-cascade to fixpoint locally and charges
the cluster *one* superstep for the whole level — the native code
batches the cascade waves the way its BFS batches a level's discoveries
(local reductions before any exchange), so the network only sees each
level's aggregate degree-decrement traffic. Peeled vertex ids crossing
a partition boundary are compressed like every other native id stream.
Run on symmetrized graphs.
"""

from __future__ import annotations

import numpy as np

from ...cluster import Cluster, ComputeWork
from ...graph import CSRGraph, partition_edges_1d
from ...kernels import registry as kernel_registry
from ..results import AlgorithmResult
from .options import NativeOptions


def kcore(graph: CSRGraph, cluster: Cluster,
          options: NativeOptions = None) -> AlgorithmResult:
    """Per-vertex core numbers (int64) by ascending-k peeling."""
    options = options or NativeOptions()
    num_vertices = graph.num_vertices

    part = partition_edges_1d(graph, cluster.num_nodes)
    edges_per_node = np.diff(graph.offsets[part.bounds]).astype(np.float64)
    verts_per_node = part.part_sizes().astype(np.float64)
    for node in range(cluster.num_nodes):
        cluster.allocate(node, "graph",
                         8 * edges_per_node[node]
                         + 8 * (verts_per_node[node] + 1))
        cluster.allocate(node, "degrees", 8 * verts_per_node[node])
        cluster.allocate(node, "core", 8 * verts_per_node[node])

    peel = kernel_registry.kernel("k_core", "peel")().prepare(graph)
    degrees = graph.out_degrees().astype(np.int64)
    core = np.zeros(num_vertices, dtype=np.int64)
    alive = np.ones(num_vertices, dtype=bool)

    levels = 0
    waves_total = 0
    raw_traffic_total = 0.0
    wire_traffic_total = 0.0
    k = 1
    while alive.any():
        levels += 1
        level_span = cluster.trace_span("level", k=k,
                                        alive=int(alive.sum()))
        streamed = np.zeros(cluster.num_nodes)
        random = np.zeros(cluster.num_nodes)
        ops = np.zeros(cluster.num_nodes)
        traffic = np.zeros((cluster.num_nodes, cluster.num_nodes))
        # Run the cascade to fixpoint, accumulating per-node charges.
        while True:
            (removed, new_degrees), work = peel.step(degrees, alive, k)
            if removed.size == 0:
                break
            waves_total += 1
            core[removed] = k - 1
            alive[removed] = False
            removed_owner = part.owner_of_many(removed)
            removed_edges = np.bincount(
                removed_owner, weights=graph.out_degrees()[removed],
                minlength=cluster.num_nodes).astype(np.float64)
            removed_counts = np.bincount(
                removed_owner, minlength=cluster.num_nodes).astype(np.float64)
            streamed += (8 + 12) * removed_edges + 8 * removed_counts
            random += 8.0 * removed_edges
            ops += 2.0 * removed_edges

            # Cross-partition degree decrements: one id per remote edge.
            neighbors, lengths = graph.neighbors_of_many(removed)
            if neighbors.size:
                src_owner = np.repeat(removed_owner, lengths)
                dst_owner = part.owner_of_many(neighbors)
                remote = src_owner != dst_owner
                pair = (src_owner[remote] * cluster.num_nodes
                        + dst_owner[remote])
                counts = np.bincount(pair,
                                     minlength=cluster.num_nodes ** 2)
                raw = 8.0 * counts.reshape(cluster.num_nodes, -1)
                raw_traffic_total += raw.sum()
                wire = raw * (0.35 if options.compression else 1.0)
                traffic += wire
                wire_traffic_total += wire.sum()
            degrees = new_degrees

        works = [ComputeWork(
            # Every level also rescans the live degree array once to
            # find the sub-threshold seeds.
            streamed_bytes=streamed[node] + 8 * verts_per_node[node],
            random_bytes=random[node],
            ops=ops[node] + verts_per_node[node],
            prefetch=options.prefetch,
        ) for node in range(cluster.num_nodes)]
        for node in range(cluster.num_nodes):
            cluster.allocate(node, "recv-buffers", traffic[:, node].sum())
        with level_span:
            cluster.superstep(works, traffic, overlap=options.overlap)
            cluster.mark_iteration()
        k += 1

    metrics = cluster.metrics()
    return AlgorithmResult(
        algorithm="k_core", framework="native", values=core,
        iterations=levels, metrics=metrics,
        extras={
            "max_core": int(core.max()) if core.size else 0,
            "cascade_waves": waves_total,
            "compression_ratio": (raw_traffic_total / wire_traffic_total
                                  if wire_traffic_total > 0 else 1.0),
        },
    )
