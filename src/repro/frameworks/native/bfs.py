"""Hand-optimized native BFS (paper Sections 3.2 and 6.1, after [28]).

Level-synchronous frontier expansion with the paper's optimizations:

* a **bit-vector** visited set ("to compactly maintain the list of
  already visited vertices [12, 28]") — 1 bit per vertex instead of a
  byte, worth ~2x in the paper;
* **message compression** of the remotely-discovered vertex ids, using
  the adaptive bit-vector / delta-varint encoder (worth ~3.2x);
* **overlap** of frontier expansion with the id exchange;
* software **prefetching** of the irregular visited-set probes.

Each BFS level is one superstep: every node expands the frontier
vertices it owns, locally deduplicates discoveries (the paper's "local
reductions"), and sends remote discoveries to their owners.
"""

from __future__ import annotations

import numpy as np

from ...cluster import Cluster, ComputeWork
from ...graph import CSRGraph, partition_edges_1d
from ...kernels import registry as kernel_registry
from ..results import AlgorithmResult
from .compression import encoded_size
from .options import NativeOptions

_UNREACHED = np.iinfo(np.int32).max


def bfs(graph: CSRGraph, cluster: Cluster, source: int = 0,
        options: NativeOptions = None) -> AlgorithmResult:
    """Breadth-first search from ``source`` on an undirected CSR graph.

    Returns int32 distances (edges from the source), ``INT32_MAX`` for
    unreachable vertices, matching the paper's "Int (distance)" vertex
    property (Table 1).
    """
    options = options or NativeOptions()
    num_vertices = graph.num_vertices
    if not 0 <= source < num_vertices:
        raise ValueError(f"source {source} out of range")

    part = partition_edges_1d(graph, cluster.num_nodes)
    bounds = part.bounds
    edges_per_node = np.diff(graph.offsets[bounds]).astype(np.float64)
    verts_per_node = part.part_sizes().astype(np.float64)

    # Static allocations: CSR share, distances, visited structure.
    visited_bytes_per_vertex = 1.0 / 8.0 if options.bitvector else 1.0
    for node in range(cluster.num_nodes):
        cluster.allocate(node, "graph",
                         8 * edges_per_node[node] + 8 * (verts_per_node[node] + 1))
        cluster.allocate(node, "distances", 4 * verts_per_node[node])
        cluster.allocate(node, "visited",
                         visited_bytes_per_vertex * num_vertices)

    expand = kernel_registry.kernel("bfs", "push")().prepare(graph)
    distances = np.full(num_vertices, _UNREACHED, dtype=np.int32)
    distances[source] = 0
    visited = np.zeros(num_vertices, dtype=bool)
    visited[source] = True
    frontier = np.array([source], dtype=np.int64)

    level = 0
    frontier_sizes = [1]
    total_edges_examined = 0.0
    raw_traffic_total = 0.0
    wire_traffic_total = 0.0

    tracer = cluster.tracer
    tracer.count("frontier_size", 1)          # the source vertex
    while frontier.size:
        level += 1
        level_span = cluster.trace_span("level", index=level,
                                        frontier=int(frontier.size))
        frontier_owner = part.owner_of_many(frontier)
        traffic = np.zeros((cluster.num_nodes, cluster.num_nodes))
        works = []
        discovered_all = []

        for node in range(cluster.num_nodes):
            mine = frontier[frontier_owner == node]
            candidates, expand_work = expand.step(mine)
            edges_examined = expand_work.edges
            total_edges_examined += edges_examined

            # Local combine: dedup + drop already-visited before sending.
            fresh = candidates[~visited[candidates]]
            discovered_all.append(fresh)

            # Route remote discoveries to their owners.
            fresh_owner = part.owner_of_many(fresh)
            for owner in np.unique(fresh_owner):
                owner = int(owner)
                ids = fresh[fresh_owner == owner]
                raw = 8.0 * ids.size
                if owner == node:
                    continue
                raw_traffic_total += raw
                if options.compression:
                    lo, hi = part.part_range(owner)
                    nbytes = float(encoded_size(ids - lo, hi - lo))
                else:
                    nbytes = raw
                traffic[node, owner] += nbytes
                wire_traffic_total += nbytes

            # Work counters: adjacency scan streams, plus the dedup /
            # scatter passes over the discovered candidates (~2 extra
            # passes of the neighbor stream); the visited-set probes are
            # irregular (bit- or byte-granular at line cost) and the
            # distance writes touch each fresh vertex once.
            probe_bytes = 8.0 * visited_bytes_per_vertex * edges_examined
            works.append(ComputeWork(
                streamed_bytes=(8 + 12) * edges_examined + 8 * mine.size,
                random_bytes=probe_bytes + 4 * fresh.size,
                ops=4 * edges_examined,
                prefetch=options.prefetch,
            ))

        # Receive-side buffers sized by this level's incoming traffic.
        for node in range(cluster.num_nodes):
            incoming = traffic[:, node].sum()
            if options.overlap:
                # The 16 MB blocking window is a physical buffer size;
                # divide by the extrapolation factor since allocations
                # are scaled back up by the memory tracker.
                incoming = min(incoming, 16 * 2**20 / cluster.scale_factor)
            cluster.allocate(node, "recv-buffers", incoming)

        with level_span:
            cluster.superstep(works, traffic, overlap=options.overlap)
            cluster.mark_iteration()

        fresh = np.unique(np.concatenate(discovered_all)) if discovered_all \
            else np.zeros(0, dtype=np.int64)
        fresh = fresh[~visited[fresh]]
        visited[fresh] = True
        distances[fresh] = level
        frontier = fresh
        frontier_sizes.append(int(fresh.size))
        if fresh.size:
            tracer.count("frontier_size", int(fresh.size))

    metrics = cluster.metrics()
    return AlgorithmResult(
        algorithm="bfs", framework="native", values=distances,
        iterations=level, metrics=metrics,
        extras={
            "frontier_sizes": frontier_sizes,
            "edges_examined": total_edges_examined,
            "compression_ratio": (raw_traffic_total / wire_traffic_total
                                  if wire_traffic_total > 0 else 1.0),
            "reached": int(visited.sum()),
        },
    )
