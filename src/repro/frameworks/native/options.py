"""Optimization toggles of the native implementation (Section 6.1.1).

Figure 7 of the paper measures the cumulative effect of these exact
switches on PageRank and BFS; the triangle-counting bit-vector gives
~2.2x (Section 6.1.2) and the Gemulla diagonal partitioning enables
lock-free SGD for collaborative filtering.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class NativeOptions:
    """Which native optimizations are enabled.

    * ``prefetch`` — software prefetch instructions that "help hide the
      long latency of irregular memory accesses";
    * ``compression`` — delta-varint / bit-vector message compression;
    * ``overlap`` — overlap of computation and communication;
    * ``bitvector`` — bit-vector data structures for visited sets (BFS)
      and neighborhood membership (triangle counting).
    """

    prefetch: bool = True
    compression: bool = True
    overlap: bool = True
    bitvector: bool = True

    @classmethod
    def baseline(cls) -> "NativeOptions":
        """Everything off — the Figure 7 '1x' reference."""
        return cls(prefetch=False, compression=False, overlap=False,
                   bitvector=False)

    def with_(self, **flags) -> "NativeOptions":
        """Copy with the given flags changed (waterfall sweeps)."""
        return replace(self, **flags)


#: The cumulative optimization ladder of Figure 7, in paper order.
FIGURE7_LADDER = (
    ("baseline", NativeOptions.baseline()),
    ("+ s/w prefetching", NativeOptions.baseline().with_(prefetch=True)),
    ("+ compression", NativeOptions.baseline().with_(prefetch=True,
                                                     compression=True)),
    ("+ overlap comp. and comm.", NativeOptions.baseline().with_(
        prefetch=True, compression=True, overlap=True)),
    ("+ data structure opt.", NativeOptions()),
)
