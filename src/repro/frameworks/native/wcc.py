"""Hand-optimized native WCC: frontier-delta min-label propagation.

Shiloach-Vishkin-style label propagation specialized the way the
paper's native BFS is: level-synchronous supersteps over an
edge-balanced 1-D partition, where each round only the vertices whose
label just shrank push it to their neighbors. Remotely-improved
``(id, label)`` pairs are routed to their owners with the same adaptive
id-stream compression as BFS, and the irregular label probes ride the
software-prefetch path. Run on symmetrized graphs; labels converge to
the minimum vertex id of each component.
"""

from __future__ import annotations

import numpy as np

from ...cluster import Cluster, ComputeWork
from ...graph import CSRGraph, partition_edges_1d
from ...kernels import registry as kernel_registry
from ..results import AlgorithmResult
from .compression import encoded_size
from .options import NativeOptions

_VALUE_BYTES = 8.0  # the pushed label


def wcc(graph: CSRGraph, cluster: Cluster,
        options: NativeOptions = None) -> AlgorithmResult:
    """Weakly connected components; int64 min-id labels per vertex."""
    options = options or NativeOptions()
    num_vertices = graph.num_vertices

    part = partition_edges_1d(graph, cluster.num_nodes)
    edges_per_node = np.diff(graph.offsets[part.bounds]).astype(np.float64)
    verts_per_node = part.part_sizes().astype(np.float64)
    for node in range(cluster.num_nodes):
        cluster.allocate(node, "graph",
                         8 * edges_per_node[node]
                         + 8 * (verts_per_node[node] + 1))
        cluster.allocate(node, "labels", 8 * verts_per_node[node])

    push = kernel_registry.kernel("wcc", "propagate")().prepare(graph)
    labels = np.arange(num_vertices, dtype=np.int64)
    frontier = np.arange(num_vertices, dtype=np.int64)

    rounds = 0
    raw_traffic_total = 0.0
    wire_traffic_total = 0.0
    while frontier.size:
        rounds += 1
        round_span = cluster.trace_span("round", index=rounds,
                                        frontier=int(frontier.size))
        frontier_owner = part.owner_of_many(frontier)
        traffic = np.zeros((cluster.num_nodes, cluster.num_nodes))
        works = []
        merged = None
        for node in range(cluster.num_nodes):
            mine = frontier[frontier_owner == node]
            (pushed, improved), work = push.step(labels, mine)
            merged = pushed if merged is None else np.minimum(merged, pushed)

            # Route remotely-improved (id, label) pairs to their owners.
            improved_owner = part.owner_of_many(improved)
            for owner in np.unique(improved_owner):
                owner = int(owner)
                if owner == node:
                    continue
                ids = improved[improved_owner == owner]
                raw = (8.0 + _VALUE_BYTES) * ids.size
                raw_traffic_total += raw
                if options.compression:
                    lo, hi = part.part_range(owner)
                    nbytes = (float(encoded_size(ids - lo, hi - lo))
                              + _VALUE_BYTES * ids.size)
                else:
                    nbytes = raw
                traffic[node, owner] += nbytes
                wire_traffic_total += nbytes

            works.append(ComputeWork(
                streamed_bytes=(8 + 12) * work.edges + 8 * mine.size,
                # Like native BFS: label scatters are sorted into
                # near-streaming runs, so only ~1 B/edge stays irregular.
                random_bytes=1.0 * work.edges + 8.0 * improved.size,
                ops=4 * work.edges,
                prefetch=options.prefetch,
            ))
        for node in range(cluster.num_nodes):
            incoming = traffic[:, node].sum()
            if options.overlap:
                incoming = min(incoming, 16 * 2**20 / cluster.scale_factor)
            cluster.allocate(node, "recv-buffers", incoming)

        with round_span:
            cluster.superstep(works, traffic, overlap=options.overlap)
            cluster.mark_iteration()

        changed = np.flatnonzero(merged < labels)
        labels = merged
        frontier = changed
        cluster.tracer.count("frontier_size", int(changed.size))

    metrics = cluster.metrics()
    return AlgorithmResult(
        algorithm="wcc", framework="native", values=labels,
        iterations=rounds, metrics=metrics,
        extras={
            "components": int(np.unique(labels).size),
            "compression_ratio": (raw_traffic_total / wire_traffic_total
                                  if wire_traffic_total > 0 else 1.0),
        },
    )
