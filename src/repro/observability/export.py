"""Trace exporters: Chrome ``trace_event`` JSON, flat CSV, summary tree.

* :func:`chrome_trace` — the Trace Event Format consumed by
  ``chrome://tracing`` and https://ui.perfetto.dev: complete (``"X"``)
  events for spans, counter (``"C"``) tracks for counters, instant
  (``"i"``) events for markers, plus metadata naming the lanes. The
  simulated cluster maps to one process; tid 0 is the driver/critical
  path and tid ``n + 1`` is simulated node *n*.
* :func:`steps_csv` — one row per ``superstep`` span, the flat record
  the paper's per-superstep analysis plots from.
* :func:`render_summary_tree` — terminal tree of span names aggregated
  by call path, with counts, total simulated seconds and counters.
"""

from __future__ import annotations

import io
import json

from .tracer import Span, Tracer

_US = 1e6     # trace_event timestamps are microseconds


def _tid(span: Span) -> int:
    return 0 if span.node is None else span.node + 1


def chrome_trace(tracer: Tracer, process_name: str = "repro-sim") -> dict:
    """The tracer's contents as a Trace Event Format dict."""
    events = [{
        "name": "process_name", "ph": "M", "pid": 0, "tid": 0,
        "args": {"name": process_name},
    }, {
        "name": "thread_name", "ph": "M", "pid": 0, "tid": 0,
        "args": {"name": "driver (critical path)"},
    }]
    named_nodes = sorted({span.node for span in tracer.spans
                          if span.node is not None})
    for node in named_nodes:
        events.append({
            "name": "thread_name", "ph": "M", "pid": 0, "tid": node + 1,
            "args": {"name": f"node {node}"},
        })

    for span in tracer.spans:
        if span.end_s is None:
            continue
        if span.duration_s == 0.0 and not span.attrs.get("_span", False):
            events.append({
                "name": span.name, "ph": "i", "s": "t",
                "ts": span.start_s * _US, "pid": 0, "tid": _tid(span),
                "args": dict(span.attrs),
            })
        else:
            events.append({
                "name": span.name, "ph": "X",
                "ts": span.start_s * _US, "dur": span.duration_s * _US,
                "pid": 0, "tid": _tid(span),
                "args": dict(span.attrs),
            })

    for timestamp, name, total in tracer.counter_samples:
        events.append({
            "name": name, "ph": "C", "ts": timestamp * _US,
            "pid": 0, "tid": 0, "args": {name: total},
        })

    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "simulated-seconds",
                      "counters": dict(tracer.counters)},
    }


def write_chrome_trace(tracer: Tracer, path,
                       process_name: str = "repro-sim") -> None:
    """Serialize :func:`chrome_trace` to ``path`` as JSON."""
    with open(path, "w") as handle:
        json.dump(chrome_trace(tracer, process_name), handle)


def steps_csv(tracer: Tracer) -> str:
    """Flat CSV of per-superstep records extracted from the trace."""
    columns = ("index", "start_s", "time_s", "compute_s", "comm_s",
               "bytes_sent", "peak_bandwidth", "overhead_s")
    out = io.StringIO()
    out.write(",".join(columns) + "\n")
    for span in tracer.spans_named("superstep"):
        if span.end_s is None:
            continue
        attrs = span.attrs
        row = (attrs.get("index", ""), f"{span.start_s:.9g}",
               f"{span.duration_s:.9g}",
               f"{attrs.get('compute_s', 0.0):.9g}",
               f"{attrs.get('comm_s', 0.0):.9g}",
               f"{attrs.get('bytes_sent', 0.0):.9g}",
               f"{attrs.get('peak_bandwidth', 0.0):.9g}",
               f"{attrs.get('overhead_s', 0.0):.9g}")
        out.write(",".join(str(cell) for cell in row) + "\n")
    return out.getvalue()


def _format_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds * 1e6:.1f}us"


def render_summary_tree(tracer: Tracer, max_depth: int = None) -> str:
    """Aggregate spans by call path into an indented terminal tree.

    Spans sharing the same path of names fold into one line with a call
    count and total simulated duration; counters print at the bottom.
    """
    paths: dict[tuple, list] = {}     # name path -> [count, total_s]
    span_paths: list[tuple] = []
    for span in tracer.spans:
        parent_path = span_paths[span.parent] if span.parent is not None \
            else ()
        path = parent_path + (span.name,)
        span_paths.append(path)
        if span.end_s is None:
            continue
        entry = paths.setdefault(path, [0, 0.0])
        entry[0] += 1
        entry[1] += span.duration_s

    if not paths and not tracer.counters:
        return "(empty trace)"

    # Depth-first over the path trie, in first-seen order at each level.
    order = list(paths)
    lines = []
    name_width = max((2 * (len(p) - 1) + len(p[-1]) for p in paths),
                     default=4) + 2

    def _walk(prefix: tuple) -> None:
        seen = []
        for path in order:
            if len(path) == len(prefix) + 1 and path[:-1] == prefix \
                    and path not in seen:
                seen.append(path)
        for path in seen:
            if max_depth is not None and len(path) > max_depth:
                continue
            count, total = paths[path]
            indent = "  " * (len(path) - 1)
            label = f"{indent}{path[-1]}"
            lines.append(f"{label:<{name_width}} x{count:<6} "
                         f"{_format_seconds(total):>10}")
            _walk(path)

    _walk(())
    if tracer.counters:
        lines.append("counters:")
        for name in sorted(tracer.counters):
            value = tracer.counters[name]
            rendered = f"{value:,.0f}" if value == int(value) \
                else f"{value:,.3f}"
            lines.append(f"  {name:<24} {rendered}")
    return "\n".join(lines)
