"""Process-memory probes: measured RSS instead of asserted budgets.

The out-of-core pipeline's whole claim is "bounded peak RSS", so the
bound has to come from the kernel's accounting, not from summing our
own arrays. Two stdlib-only probes:

* :func:`peak_rss_bytes` — the process high-water mark
  (``ru_maxrss``), sampled at superstep boundaries into the tracer's
  ``peak-rss`` gauge and reported by ``/stats`` and the out-of-core
  demo journal;
* :func:`current_rss_bytes` — the instantaneous resident set from
  ``/proc/self/statm`` (0 where /proc is unavailable).

Note ``ru_maxrss`` includes resident *file* pages, so a run that maps
shard files counts the pages it actually touched — which is exactly the
working set ``memory_budget_mb`` promises to cap.
"""

from __future__ import annotations

import os
import resource
import sys


def peak_rss_bytes() -> int:
    """High-water resident set size of this process, in bytes.

    Prefers ``VmHWM`` from ``/proc/self/status`` because (unlike
    ``ru_maxrss``) it honors :func:`reset_peak_rss`, so long-lived sweep
    workers can report a *per-cell* peak instead of carrying the largest
    earlier cell's spike forever.
    """
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except (OSError, IndexError, ValueError):
        pass
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports kilobytes, macOS reports bytes.
    return int(peak) if sys.platform == "darwin" else int(peak) * 1024


def reset_peak_rss() -> bool:
    """Reset the kernel's peak-RSS counter; True when it took effect.

    Writing ``5`` to ``/proc/self/clear_refs`` rewinds ``VmHWM`` to the
    current resident set (Linux >= 4.0). Elsewhere this is a no-op and
    :func:`peak_rss_bytes` keeps its process-lifetime meaning.
    """
    try:
        with open("/proc/self/clear_refs", "w", encoding="ascii") as handle:
            handle.write("5")
        return True
    except OSError:
        return False


def current_rss_bytes() -> int:
    """Instantaneous resident set size, 0 where /proc is unavailable."""
    try:
        with open("/proc/self/statm", "r", encoding="ascii") as handle:
            fields = handle.read().split()
        return int(fields[1]) * os.sysconf("SC_PAGE_SIZE")
    except (OSError, IndexError, ValueError):
        return 0


def sample_peak_rss(tracer) -> int:
    """Record the current peak into ``tracer``'s ``peak-rss`` gauge."""
    peak = peak_rss_bytes()
    tracer.gauge_max("peak-rss", peak)
    return peak
