"""Span-based flight recorder on the simulator's clock.

A :class:`Tracer` records three kinds of events:

* **spans** — named intervals with attributes, nested via a stack
  (``with tracer.span("superstep", index=3): ...``). Timestamps come
  from a bound clock — the simulated cluster binds its own elapsed-time
  clock, so span durations are *simulated* seconds, directly comparable
  to :class:`~repro.cluster.metrics.RunMetrics` aggregates;
* **counters** — monotone named totals (``bytes_sent``, ``messages``,
  ``frontier_size``), each bump also recorded as a timestamped sample
  so exporters can plot counter tracks;
* **instants** — zero-duration markers for discrete facts (a rule
  fired, a frontier level closed).

The default at every instrumented call site is :data:`NULL_TRACER`, a
shared :class:`NullTracer` whose methods do nothing and allocate
nothing — the zero-overhead-off path.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Span:
    """One recorded interval (or instant, when ``end_s == start_s``)."""

    name: str
    start_s: float
    end_s: float = None          # None while the span is still open
    node: int = None             # simulated node id, None = driver-level
    parent: int = None           # index of the enclosing span, None = root
    depth: int = 0
    attrs: dict = field(default_factory=dict)

    @property
    def duration_s(self) -> float:
        return (self.end_s if self.end_s is not None else self.start_s) \
            - self.start_s


class _NullSpanHandle:
    """Reusable no-op context manager returned by the null tracer."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False

    def set(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpanHandle()


class NullTracer:
    """Does nothing, costs (almost) nothing; the default everywhere."""

    enabled = False

    def bind_clock(self, clock) -> None:
        pass

    def span(self, name: str, node: int = None, **attrs):
        return _NULL_SPAN

    def record(self, name: str, start_s: float, duration_s: float,
               node: int = None, **attrs) -> None:
        pass

    def instant(self, name: str, node: int = None, **attrs) -> None:
        pass

    def count(self, name: str, value: float = 1.0) -> None:
        pass

    def gauge_max(self, name: str, value: float) -> None:
        pass

    def advance(self, seconds: float) -> None:
        pass

    def merge_spans(self, spans, worker=None) -> None:
        pass


NULL_TRACER = NullTracer()


class _SpanHandle:
    """Context manager that opens/closes one span on a tracer."""

    __slots__ = ("_tracer", "_index")

    def __init__(self, tracer: "Tracer", index: int):
        self._tracer = tracer
        self._index = index

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self._tracer._close(self._index)
        return False

    def set(self, **attrs) -> None:
        """Attach attributes to the span while it is open."""
        self._tracer.spans[self._index].attrs.update(attrs)


class Tracer(NullTracer):
    """Recording tracer: collects spans, counters and instants.

    One tracer observes one run. The clock starts as a manual step
    counter; the simulated cluster binds its elapsed-seconds clock on
    construction, after which all timestamps are simulated seconds.
    """

    enabled = True

    def __init__(self):
        self.spans: list[Span] = []
        self.counters: dict[str, float] = {}
        self.counter_samples: list[tuple[float, str, float]] = []
        self._stack: list[int] = []
        self._clock = None
        self._manual = 0.0

    # -- clock -------------------------------------------------------------

    def bind_clock(self, clock) -> None:
        """Use ``clock()`` (e.g. the cluster's elapsed seconds) for time."""
        self._clock = clock

    def now(self) -> float:
        return self._clock() if self._clock is not None else self._manual

    def advance(self, seconds: float) -> None:
        """Step the manual clock (only used when no clock is bound)."""
        self._manual += seconds

    # -- spans -------------------------------------------------------------

    def span(self, name: str, node: int = None, **attrs) -> _SpanHandle:
        """Open a nested span; close it by exiting the context manager."""
        parent = self._stack[-1] if self._stack else None
        depth = self.spans[parent].depth + 1 if parent is not None else 0
        self.spans.append(Span(name=name, start_s=self.now(), node=node,
                               parent=parent, depth=depth, attrs=attrs))
        index = len(self.spans) - 1
        self._stack.append(index)
        return _SpanHandle(self, index)

    def _close(self, index: int) -> None:
        self.spans[index].end_s = self.now()
        while self._stack and self._stack[-1] >= index:
            self._stack.pop()

    def record(self, name: str, start_s: float, duration_s: float,
               node: int = None, **attrs) -> None:
        """Add an already-timed span (children of the open span)."""
        parent = self._stack[-1] if self._stack else None
        depth = self.spans[parent].depth + 1 if parent is not None else 0
        self.spans.append(Span(name=name, start_s=start_s,
                               end_s=start_s + duration_s, node=node,
                               parent=parent, depth=depth, attrs=attrs))

    def instant(self, name: str, node: int = None, **attrs) -> None:
        """Zero-duration marker at the current clock."""
        self.record(name, self.now(), 0.0, node=node, **attrs)

    def merge_spans(self, spans, worker=None) -> None:
        """Graft another tracer's spans under the currently open span.

        The parallel sweep executor runs one tracer per worker cell and
        ships the spans back; merging re-parents each worker tree onto
        this tracer's open span (usually ``sweep``), preserves internal
        parent/child structure via index offsetting, and stamps every
        span with ``worker=`` so a merged timeline still says who ran
        what.
        """
        offset = len(self.spans)
        graft_parent = self._stack[-1] if self._stack else None
        graft_depth = self.spans[graft_parent].depth + 1 \
            if graft_parent is not None else 0
        for span in spans:
            attrs = dict(span.attrs)
            if worker is not None:
                attrs["worker"] = worker
            parent = span.parent + offset if span.parent is not None \
                else graft_parent
            self.spans.append(Span(
                name=span.name, start_s=span.start_s, end_s=span.end_s,
                node=span.node, parent=parent,
                depth=span.depth + graft_depth, attrs=attrs))

    # -- counters ----------------------------------------------------------

    def count(self, name: str, value: float = 1.0) -> None:
        """Bump a named monotone counter and sample it at the clock."""
        total = self.counters.get(name, 0.0) + value
        self.counters[name] = total
        self.counter_samples.append((self.now(), name, total))

    def gauge_max(self, name: str, value: float) -> None:
        """Raise a named high-water mark (still monotone, so it exports
        like a counter). Used for ``peak-rss`` samples at superstep
        boundaries — the value is a level, not an increment, so ``count``
        would be wrong."""
        value = float(value)
        total = self.counters.get(name, 0.0)
        if value > total:
            self.counters[name] = value
            self.counter_samples.append((self.now(), name, value))

    # -- introspection -----------------------------------------------------

    def open_spans(self) -> list:
        """Spans not yet closed (should be empty after a finished run)."""
        return [span for span in self.spans if span.end_s is None]

    def spans_named(self, name: str) -> list:
        return [span for span in self.spans if span.name == name]

    def total_duration(self, name: str) -> float:
        """Summed duration of all *closed* spans with ``name``."""
        return sum(span.duration_s for span in self.spans
                   if span.name == name and span.end_s is not None)

    def children_of(self, index: int) -> list:
        return [span for span in self.spans if span.parent == index]
