"""Flight-recorder observability: spans, counters and trace exporters.

The paper's methodology (Section 5.4) explains end-to-end runtimes from
system-level observables. This package is the substrate that records
those observables *as they happen* instead of only as end-of-run
aggregates: a :class:`Tracer` collects nestable spans (``superstep``,
``compute``, ``comm``, ``gather/apply/scatter``, ``spmv``,
``rule-eval``) and named counters (``bytes_sent``, ``messages``,
``frontier_size``) on the simulator's clock, and the exporters turn a
recorded run into Chrome ``trace_event`` JSON (``chrome://tracing`` /
Perfetto), a flat per-superstep CSV, or a terminal summary tree.

Tracing is zero-overhead by default: every instrumented call site holds
a :data:`NULL_TRACER` whose methods are no-ops; passing
``run_experiment(..., trace=Tracer())`` swaps in the recording one.
"""

from .export import (
    chrome_trace,
    render_summary_tree,
    steps_csv,
    write_chrome_trace,
)
from .memory import (
    current_rss_bytes,
    peak_rss_bytes,
    reset_peak_rss,
    sample_peak_rss,
)
from .tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "chrome_trace",
    "current_rss_bytes",
    "peak_rss_bytes",
    "render_summary_tree",
    "reset_peak_rss",
    "sample_peak_rss",
    "steps_csv",
    "write_chrome_trace",
]
