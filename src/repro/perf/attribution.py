"""Gap attribution: decompose a framework's slowdown into factors.

Section 5.4 of the paper explains Giraph's ~560x BFS gap as a *product*:
low network utilization x 4-of-24 worker occupancy x JVM object
overhead. This module computes that style of breakdown for any
(framework, native) pair of runs, and makes it *exact*: the simulator
decomposes every run's critical path into

``total = compute + exposed_comm + fixed``

(:class:`~repro.cluster.metrics.RunMetrics` — compute is the per-step
compute maxima, exposed_comm the communication not hidden under it,
fixed the data-size-independent barrier/startup/recovery seconds), so
the gap telescopes into three multiplicative factors by swapping one
component at a time from the framework's value to native's:

* **superstep-overhead** — fixed seconds (Hadoop barriers vs MPI),
* **network** — exposed communication (volume x rate x overlap),
* **compute** — compute seconds (occupancy x software efficiency x
  instruction inflation).

The factors multiply out to ``framework_time / native_time`` to
floating-point precision, by construction — no fitted residual. Each
factor carries an informational sub-breakdown (bytes ratios, occupancy,
utilizations) read from the run metrics and the framework profiles.

Every run is also classified by what *binds* it: ``latency`` when fixed
overhead is at least half the runtime (Giraph BFS), else ``network``
when exposed communication beats compute, else ``memory``/``compute``
by which half of the cost model's max() dominates.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.hardware import PAPER_NODE
from ..frameworks.base import profile

#: Guard for ratios of simulated times (all >= 0; zero only on empty runs).
_TINY = 1e-30


def classify(metrics) -> str:
    """compute- / memory- / network- / latency-bound, from one run."""
    if metrics.total_time_s <= 0:
        return "compute"
    if metrics.fixed_time_s >= 0.5 * metrics.total_time_s:
        return "latency"
    if metrics.exposed_comm_time_s >= metrics.compute_time_s:
        return "network"
    if metrics.memory_time_s >= metrics.cpu_time_s:
        return "memory"
    return "compute"


@dataclass(frozen=True)
class GapFactor:
    """One multiplicative slice of the gap."""

    name: str
    factor: float
    #: Informational sub-breakdown; does not participate in the product.
    detail: dict

    def to_dict(self) -> dict:
        return {"name": self.name, "factor": self.factor,
                "detail": dict(self.detail)}


@dataclass(frozen=True)
class GapAttribution:
    """The full decomposition of one framework run against native."""

    algorithm: str
    framework: str
    nodes: int
    framework_time_s: float
    native_time_s: float
    binding: str                 # what binds the framework run
    native_binding: str
    factors: tuple               # GapFactor, product == gap

    @property
    def gap(self) -> float:
        return self.framework_time_s / max(self.native_time_s, _TINY)

    def product(self) -> float:
        out = 1.0
        for factor in self.factors:
            out *= factor.factor
        return out

    def to_dict(self) -> dict:
        return {
            "algorithm": self.algorithm,
            "framework": self.framework,
            "nodes": self.nodes,
            "framework_time_s": self.framework_time_s,
            "native_time_s": self.native_time_s,
            "gap": self.gap,
            "binding": self.binding,
            "native_binding": self.native_binding,
            "factors": [factor.to_dict() for factor in self.factors],
        }


def attribute(framework_run, native_run) -> GapAttribution:
    """Decompose ``framework_run``'s gap over ``native_run``.

    Both must be completed :class:`~repro.harness.runner.RunResult`
    cells of the same (algorithm, dataset, nodes). If the framework run
    carries a tracer, the attribution lands in the trace as
    ``perf-attribution`` / ``perf-factor`` instants.
    """
    m_f, m_n = framework_run.metrics(), native_run.metrics()
    node = PAPER_NODE
    prof_f = profile(framework_run.framework)
    prof_n = profile(native_run.framework)

    compute_f, compute_n = m_f.compute_time_s, m_n.compute_time_s
    exposed_f, exposed_n = m_f.exposed_comm_time_s, m_n.exposed_comm_time_s
    fixed_f, fixed_n = m_f.fixed_time_s, m_n.fixed_time_s

    # Telescoping swap, framework -> native one component at a time. Each
    # hybrid is a legal runtime, so each factor is the slowdown that one
    # component alone is responsible for, and the product is exact.
    h0 = compute_f + exposed_f + fixed_f
    h1 = compute_f + exposed_f + fixed_n
    h2 = compute_f + exposed_n + fixed_n
    h3 = compute_n + exposed_n + fixed_n

    overhead_factor = h0 / max(h1, _TINY)
    network_factor = h1 / max(h2, _TINY)
    compute_factor = h2 / max(h3, _TINY)

    link = node.link_bandwidth
    occupancy = prof_n.cores_fraction / prof_f.cores_fraction
    sw_efficiency = prof_n.cpu_efficiency / prof_f.cpu_efficiency
    ops_inflation = m_f.ops_total / max(m_n.ops_total, _TINY)
    factors = (
        GapFactor("superstep-overhead", overhead_factor, {
            "framework_fixed_s": fixed_f,
            "native_fixed_s": fixed_n,
            "per_superstep_s": prof_f.superstep_overhead_s,
            "supersteps": len(m_f.steps),
        }),
        GapFactor("network", network_factor, {
            "framework_exposed_s": exposed_f,
            "native_exposed_s": exposed_n,
            # Per-edge overhead bytes: serialization + no compression.
            "wire_bytes_ratio":
                m_f.bytes_sent_total / max(m_n.bytes_sent_total, _TINY),
            "framework_network_utilization":
                m_f.average_network_bandwidth / link,
            "native_network_utilization":
                m_n.average_network_bandwidth / link,
            "overlaps_communication": prof_f.overlaps_communication,
        }),
        GapFactor("compute", compute_factor, {
            "framework_compute_s": compute_f,
            "native_compute_s": compute_n,
            # Occupancy: the paper's 4-of-24 workers -> 6x for Giraph.
            "occupancy": occupancy,
            "software_efficiency": sw_efficiency,
            "ops_inflation": ops_inflation,
            # What occupancy x sw-efficiency x op-count inflation leaves
            # unexplained (memory-boundness, load imbalance).
            "residual": compute_factor
                / max(occupancy * sw_efficiency * ops_inflation, _TINY),
            "framework_cpu_utilization": m_f.cpu_utilization,
            "native_cpu_utilization": m_n.cpu_utilization,
        }),
    )

    out = GapAttribution(
        algorithm=framework_run.algorithm,
        framework=framework_run.framework,
        nodes=framework_run.nodes,
        framework_time_s=m_f.total_time_s,
        native_time_s=m_n.total_time_s,
        binding=classify(m_f),
        native_binding=classify(m_n),
        factors=factors,
    )

    tracer = framework_run.trace
    if tracer is not None and tracer.enabled:
        tracer.instant("perf-attribution", framework=out.framework,
                       algorithm=out.algorithm, gap=out.gap,
                       binding=out.binding)
        for factor in factors:
            tracer.instant("perf-factor", factor_name=factor.name,
                           factor=factor.factor)
    return out


def attribute_cell(algorithm: str, framework: str, nodes: int = 4,
                   trace=None) -> GapAttribution:
    """Run one weak-scaling cell and its native twin, then attribute."""
    from ..harness.datasets import weak_scaling_dataset
    from ..harness.runner import run_experiment

    data, factor = weak_scaling_dataset(algorithm, nodes)
    framework_run = run_experiment(algorithm, framework, data, nodes=nodes,
                                   scale_factor=factor, trace=trace)
    native_run = run_experiment(algorithm, "native", data, nodes=nodes,
                                scale_factor=factor)
    return attribute(framework_run, native_run)
