"""Text renderers for the perf subsystem (CLI and CI output)."""

from __future__ import annotations


def _fmt_seconds(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, str):
        return value
    return f"{value:.4g} s"


def render_roofline(table: dict, title: str = "Roofline") -> str:
    """Table-4-form achieved-vs-bound report."""
    lines = [title, "=" * len(title), "",
             f"{'workload':<26} {'nodes':>5} {'binding':<8} "
             f"{'bound':>10} {'achieved':>10} {'ratio':>7}"]
    for algorithm, per_nodes in table.items():
        for nodes, cell in per_nodes.items():
            if "ratio" not in cell:
                lines.append(f"{algorithm:<26} {nodes:>5} "
                             f"{cell.get('status', '?'):<8}")
                continue
            lines.append(
                f"{algorithm:<26} {nodes:>5} {cell['binding']:<8} "
                f"{cell['bound_s']:>8.4g} s {cell['achieved_s']:>8.4g} s "
                f"{cell['ratio']:>6.2f}x")
    lines.append("")
    lines.append("ratio = achieved time / speed-of-light bound "
                 "(paper's native kernels: 2-2.5x)")
    return "\n".join(lines)


def render_attribution(attribution) -> str:
    """The paper-style multiplicative gap breakdown."""
    a = attribution
    lines = [
        f"{a.framework} {a.algorithm} on {a.nodes} node(s): "
        f"{a.gap:.1f}x native",
        f"  framework: {a.framework_time_s:.4g} s ({a.binding}-bound)   "
        f"native: {a.native_time_s:.4g} s ({a.native_binding}-bound)",
        "",
        f"  {'factor':<20} {'x':>8}  detail",
    ]
    for factor in a.factors:
        detail = factor.detail
        if factor.name == "superstep-overhead":
            note = (f"{detail['framework_fixed_s']:.4g} s fixed over "
                    f"{detail['supersteps']} supersteps "
                    f"(vs {detail['native_fixed_s']:.4g} s native)")
        elif factor.name == "network":
            note = (f"{detail['wire_bytes_ratio']:.1f}x wire bytes, "
                    f"{100 * detail['framework_network_utilization']:.1f}% "
                    f"link utilization "
                    f"(native "
                    f"{100 * detail['native_network_utilization']:.1f}%)")
        else:
            note = (f"occupancy {detail['occupancy']:.1f}x, "
                    f"sw efficiency {detail['software_efficiency']:.1f}x, "
                    f"op inflation {detail['ops_inflation']:.1f}x")
        lines.append(f"  {factor.name:<20} {factor.factor:>7.2f}x  {note}")
    lines.append("")
    lines.append(f"  product of factors = {a.product():.1f}x "
                 f"(measured gap {a.gap:.1f}x; exact by construction)")
    return "\n".join(lines)


def render_advice(advice_list, algorithm: str = "") -> str:
    """Ranked what-if table."""
    head = f"Optimization advisor{': ' + algorithm if algorithm else ''}"
    lines = [head, "-" * len(head),
             f"{'option':<14} {'speedup':>8}  rationale"]
    for advice in advice_list:
        lines.append(f"{advice.option:<14} {advice.speedup:>7.2f}x  "
                     f"{advice.rationale}")
    return "\n".join(lines)


def render_parallel(entry: dict) -> str:
    """One-line pool-overhead/speedup advisory for the parallel sweep."""
    return (f"parallel  sweep jobs={entry['jobs']}: "
            f"{entry['serial_s']:.2f} s serial -> "
            f"{entry['parallel_s']:.2f} s "
            f"({entry['speedup']:.2f}x, pool overhead "
            f"{entry['pool_overhead_s']:.2f} s for {entry['cells']} "
            f"no-op cells; advisory)")


def render_serve(entry: dict) -> str:
    """One-line serving-layer load summary (loadgen + warm/cold)."""
    load = entry.get("loadgen", {})
    parts = [f"serve     loadgen: {load.get('completed', 0)}/"
             f"{load.get('requests', 0)} ok at "
             f"{load.get('throughput_rps', 0.0):.1f} req/s"]
    latency = load.get("latency_s")
    if latency:
        parts.append(f"p50 {1e3 * latency['p50_s']:.1f} ms / "
                     f"p99 {1e3 * latency['p99_s']:.1f} ms")
    warm_cold = entry.get("warm_cold", {})
    if warm_cold:
        parts.append(f"warm/cold {warm_cold.get('min_speedup', 0.0):.1f}x "
                     f"({warm_cold.get('cache_hits', {}).get('pinned', 0)} "
                     f"pinned cache hits)")
    return ", ".join(parts) + " (advisory)"


def render_outofcore(entry: dict) -> str:
    """One-line out-of-core ingest summary (digests + throughput)."""
    status = "identical" if entry.get("identical") else "MISMATCHED"
    return (f"outofcore scale {entry.get('scale')}: digests {status}, "
            f"streamed {entry.get('streamed_eps', 0.0):.2e} edges/s vs "
            f"in-memory {entry.get('in_memory_eps', 0.0):.2e} edges/s "
            f"({entry.get('ratio', 0.0):.2f}x; advisory)")


def render_gate(report) -> str:
    """Pass/fail summary naming every out-of-tolerance cell."""
    lines = [f"perf gate vs {report.path} "
             f"(tolerance {100 * report.tolerance:.0f}%): "
             f"{len(report.checks)} cells checked"]
    if report.injected:
        inject = ", ".join(f"{pattern} x{factor:g}"
                           for pattern, factor in report.injected.items())
        lines.append(f"  injected slowdowns: {inject}")
    for check in report.regressions:
        if check.kind == "status-change":
            lines.append(f"  REGRESSED {check.cell}: status "
                         f"{check.baseline} -> {check.current}")
        else:
            lines.append(f"  REGRESSED {check.cell}: "
                         f"{_fmt_seconds(check.baseline)} -> "
                         f"{_fmt_seconds(check.current)} "
                         f"({check.ratio:.2f}x)")
    for check in report.improvements:
        lines.append(f"  improved  {check.cell}: "
                     f"{_fmt_seconds(check.baseline)} -> "
                     f"{_fmt_seconds(check.current)} ({check.ratio:.2f}x; "
                     f"re-record to lock in)")
    for name, entry in report.wall_clock.items():
        lines.append(f"  wall      {name}: {entry['baseline_s']:.2f} s -> "
                     f"{entry['current_s']:.2f} s (advisory)")
    if report.parallel:
        lines.append("  " + render_parallel(report.parallel))
    if report.serve:
        lines.append("  " + render_serve(report.serve))
    if getattr(report, "outofcore", None):
        lines.append("  " + render_outofcore(report.outofcore))
    lines.append("PASS: no cell regressed" if report.ok else
                 f"FAIL: {len(report.regressions)} cell(s) regressed")
    return "\n".join(lines)
