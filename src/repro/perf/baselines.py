"""Perf-regression gate: record per-cell baselines, fail on slowdowns.

A reproduction study defends its numbers over time or loses them to
drift: a cost-model tweak that silently doubles Giraph's BFS time is as
much a regression as a broken test. This module records the simulated
runtime of every gate cell (algorithm x framework x nodes on the
standard weak-scaling datasets) to a ``BENCH_*.json`` baseline, and
compares later runs against it with a configurable tolerance.

Two classes of entries:

* **cells** — simulated runtimes. Deterministic by construction (the
  simulator has no wall-clock inputs), so an unchanged tree reproduces
  the baseline *byte-for-byte* and any drift is a real model change.
  These gate.
* **wall_clock** — elapsed seconds of registered harness benchmarks
  (the ``benchmarks/`` registry). Machine- and load-dependent, so they
  are recorded for trend-watching but never fail the gate on their own.

``inject`` multiplies matching current cells by a factor before
comparison — the CI self-test that proves the gate actually fires.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..errors import PerfRegression, ReproError
from ..harness.persistence import atomic_write_text

#: Default baseline file, at the repo root by convention.
DEFAULT_BASELINE = "BENCH_perf.json"

#: Allowed relative slowdown before a cell fails the gate.
DEFAULT_TOLERANCE = 0.05

#: The gate's framework suite: the native yardstick plus one framework
#: per engine family that completes every workload.
GATE_FRAMEWORKS = ("native", "combblas", "graphlab", "giraph")
GATE_NODE_COUNTS = (1, 4)

_BASELINE_KIND = "perf-baseline"


def cell_key(algorithm: str, framework: str, nodes: int) -> str:
    return f"{algorithm}/{framework}/{nodes}"


def measure_cells(algorithms=None, frameworks=GATE_FRAMEWORKS,
                  node_counts=GATE_NODE_COUNTS) -> dict:
    """Simulated runtime (or DNF status) of every gate cell."""
    from ..algorithms.registry import ALGORITHMS
    from ..harness.datasets import weak_scaling_dataset
    from ..harness.runner import run_experiment

    algorithms = tuple(algorithms) if algorithms else ALGORITHMS
    cells = {}
    for algorithm in algorithms:
        for framework in frameworks:
            for nodes in node_counts:
                data, factor = weak_scaling_dataset(algorithm, nodes)
                run = run_experiment(algorithm, framework, data, nodes=nodes,
                                     scale_factor=factor)
                cells[cell_key(algorithm, framework, nodes)] = {
                    "status": run.status,
                    "runtime_s": run.runtime_or_none(),
                }
    return cells


def measure_wall_clock(names=()) -> dict:
    """Elapsed seconds of registered ``benchmarks/`` producers.

    Resolves ``names`` through the benchmark registry
    (``benchmarks.conftest``); ``names=("all",)`` times every registered
    benchmark. Advisory: wall time depends on the machine.
    """
    if not names:
        return {}
    try:
        from benchmarks.conftest import load_benchmarks
    except ImportError as error:
        raise ReproError(
            "wall-clock benchmarks need the repo's benchmarks/ package "
            f"on sys.path (run from the repo root): {error}"
        ) from None
    registry = load_benchmarks()
    if "all" in names:
        names = tuple(sorted(registry))
    out = {}
    for name in names:
        if name not in registry:
            known = ", ".join(sorted(registry))
            raise ReproError(f"unknown benchmark {name!r}; known: {known}")
        bench = registry[name]
        start = time.perf_counter()
        bench.producer()
        out[name] = {
            "seconds": time.perf_counter() - start,
            "artifact": bench.artifact,
            "advisory": True,
        }
    return out


#: Sweep subset the pool-overhead/speedup report times. Small enough to
#: finish in seconds, large enough (12 cells) that per-cell work
#: dominates IPC.
PARALLEL_REPORT_SUBSET = {
    "algorithms": ("pagerank", "bfs"),
    "frameworks": ("galois", "combblas"),
}


def _noop_cell(key, budget_s=None):
    """Picklable do-nothing executor for pool-overhead measurement."""
    return {"cell": key["cell"]}


def measure_parallel_sweep(jobs: int = 0, subset=None) -> dict:
    """Advisory pool-overhead/speedup report for the parallel executor.

    Times a warm-cache table5 subset serially and with ``jobs`` workers
    (``0`` = all cores), plus the pool's fixed overhead (spawn + IPC for
    the same number of do-nothing cells). Wall-clock and machine-
    dependent by nature, so the numbers are advisory — recorded so the
    parallel win is *measured*, never asserted — and they never gate.
    """
    from ..harness.parallel import run_cells_parallel
    from ..harness.sweep import CellPolicy, Sweep
    from ..harness.tables import table5

    jobs = jobs or os.cpu_count() or 1
    subset = subset or PARALLEL_REPORT_SUBSET
    # Cells per table5 run: every algorithm x its 4 single-node datasets
    # x (requested frameworks + the native baseline).
    cells = len(subset["algorithms"]) * 4 * (len(subset["frameworks"]) + 1)

    # Warm both cache layers so the comparison times execution, not
    # dataset generation.
    table5(sweep=Sweep("table5"), **subset)

    start = time.perf_counter()
    table5(sweep=Sweep("table5", jobs=1), **subset)
    serial_s = time.perf_counter() - start

    start = time.perf_counter()
    table5(sweep=Sweep("table5", jobs=jobs), **subset)
    parallel_s = time.perf_counter() - start

    pending = [(i, {"cell": i}, str(i)) for i in range(cells)]
    start = time.perf_counter()
    for _ in run_cells_parallel(pending, _noop_cell, CellPolicy(), jobs):
        pass
    pool_overhead_s = time.perf_counter() - start

    return {
        "jobs": jobs,
        "cells": cells,
        "serial_s": serial_s,
        "parallel_s": parallel_s,
        "speedup": serial_s / max(parallel_s, 1e-9),
        "pool_overhead_s": pool_overhead_s,
        "advisory": True,
    }


#: Subset the kernel-backend report runs: every algorithm on the two
#: pure-kernel engine families, at both gate node counts. CF dominates
#: the wall clock, which is exactly where the interpreted oracle is
#: slowest, so the measured speedup is a conservative lower bound for
#: kernel-heavy sweeps.
KERNEL_REPORT_SUBSET = {
    "algorithms": None,                  # all of ALGORITHMS
    "frameworks": ("native", "galois"),
    "node_counts": GATE_NODE_COUNTS,
}


def measure_kernel_backends(subset=None) -> dict:
    """Differential + speedup report for the ``REPRO_KERNELS`` backends.

    Runs the subset cells under both backends and reports (a) whether
    the recorded cell payloads (status + simulated runtime) are
    identical — they must be, counted work is analytic — and (b) the
    wall-clock speedup of the vectorized kernels over the interpreted
    oracle. The identity half is exact; the speedup half is wall-clock
    and machine-dependent, so gates on it use a generous threshold.
    """
    from ..kernels import INTERPRETED, VECTORIZED, use_backend

    subset = dict(KERNEL_REPORT_SUBSET if subset is None else subset)
    # Warm the dataset caches so both timed passes measure execution.
    measure_cells(**subset)
    payloads, elapsed = {}, {}
    for backend in (VECTORIZED, INTERPRETED):
        with use_backend(backend):
            start = time.perf_counter()
            payloads[backend] = measure_cells(**subset)
            elapsed[backend] = time.perf_counter() - start
    mismatched = sorted(
        key for key in payloads[VECTORIZED]
        if payloads[VECTORIZED][key] != payloads[INTERPRETED].get(key)
    )
    return {
        "cells": len(payloads[VECTORIZED]),
        "vectorized_s": elapsed[VECTORIZED],
        "interpreted_s": elapsed[INTERPRETED],
        "speedup": elapsed[INTERPRETED] / max(elapsed[VECTORIZED], 1e-9),
        "identical": not mismatched,
        "mismatched": mismatched,
    }


def check_kernel_backends(min_speedup: float = 2.0, subset=None) -> dict:
    """Run :func:`measure_kernel_backends` and gate on the result.

    Raises :class:`~repro.errors.PerfRegression` when the backends
    disagree on any cell payload (a correctness bug in a kernel's
    vectorized/interpreted pair) or when the vectorized speedup falls
    below ``min_speedup``.
    """
    report = measure_kernel_backends(subset)
    if not report["identical"]:
        cells = ", ".join(report["mismatched"])
        raise PerfRegression(
            f"kernel backends disagree on {len(report['mismatched'])} "
            f"cell(s): {cells} — vectorized and interpreted must produce "
            f"identical simulated results"
        )
    if report["speedup"] < min_speedup:
        raise PerfRegression(
            f"vectorized kernels are only {report['speedup']:.2f}x faster "
            f"than the interpreted oracle (required: {min_speedup:.2f}x)"
        )
    return report


def render_kernel_report(report: dict) -> str:
    """One-paragraph human rendering of a kernel-backend report."""
    status = "identical" if report["identical"] else (
        f"MISMATCHED ({', '.join(report['mismatched'])})")
    return (f"kernel backends over {report['cells']} cells: payloads "
            f"{status}; vectorized {report['vectorized_s']:.2f}s vs "
            f"interpreted {report['interpreted_s']:.2f}s "
            f"({report['speedup']:.1f}x speedup)")


#: Default baseline file for the out-of-core ingest gate.
OUTOFCORE_BASELINE = "BENCH_outofcore.json"

#: Minimum streamed/in-memory ingest throughput ratio the gate accepts.
OUTOFCORE_MIN_RATIO = 0.5

#: Ingest-gate workload: big enough that build work dominates process
#: overheads, small enough for CI (a few seconds per path).
OUTOFCORE_SUBSET = {"scale": 15, "edge_factor": 16, "seed": 1,
                    "chunk_edges": 1 << 17}

_OUTOFCORE_KIND = "outofcore-baseline"


def measure_outofcore(subset=None) -> dict:
    """Cold-build throughput of both ingest paths, plus digest identity.

    Builds the same symmetrized R-MAT graph twice from scratch — the
    monolithic in-memory path (generate, dedup, CSR in RAM) and the
    streamed path (chunked generation into a sharded on-disk CSR,
    bypassing the dataset cache so the build itself is timed) — and
    reports edges/second for each. The ``identical`` half is exact: the
    partition digests of the sharded build must equal the dense CSR
    sliced at the same bounds. The throughput half is wall-clock and
    machine-dependent; gates on it use a generous threshold.
    """
    import shutil
    import tempfile

    from ..datagen import RMATStream, rmat_graph
    from ..graph import ShardedCSRGraph, build_sharded_csr, graph_digests

    subset = dict(OUTOFCORE_SUBSET if subset is None else subset)
    scale = subset["scale"]
    edge_factor = subset.get("edge_factor", 16)
    seed = subset.get("seed", 1)
    chunk_edges = subset.get("chunk_edges", 1 << 17)

    start = time.perf_counter()
    dense = rmat_graph.__wrapped__(scale, edge_factor=edge_factor,
                                   seed=seed, directed=False)
    in_memory_s = time.perf_counter() - start

    stream = RMATStream(scale, edge_factor=edge_factor, seed=seed)
    tmp = tempfile.mkdtemp(prefix="repro-perf-ooc-")
    try:
        start = time.perf_counter()
        build_sharded_csr(
            (block for _, block in stream.chunks(chunk_edges)),
            stream.num_vertices, tmp, symmetrize=True)
        streamed_s = time.perf_counter() - start
        sharded = ShardedCSRGraph(tmp)
        identical = sharded.digests() == graph_digests(
            dense, num_partitions=len(sharded.bounds) - 1)
        partitions = len(sharded.bounds) - 1
    finally:
        shutil.rmtree(tmp, ignore_errors=True)

    edges = dense.num_edges
    in_memory_eps = edges / max(in_memory_s, 1e-9)
    streamed_eps = edges / max(streamed_s, 1e-9)
    return {
        "scale": scale,
        "edge_factor": edge_factor,
        "chunk_edges": chunk_edges,
        "partitions": partitions,
        "edges": edges,
        "in_memory_s": in_memory_s,
        "streamed_s": streamed_s,
        "in_memory_eps": in_memory_eps,
        "streamed_eps": streamed_eps,
        "ratio": streamed_eps / max(in_memory_eps, 1e-9),
        "identical": identical,
    }


def check_outofcore(min_ratio: float = OUTOFCORE_MIN_RATIO,
                    subset=None) -> dict:
    """Run :func:`measure_outofcore` and gate on the result.

    Raises :class:`~repro.errors.PerfRegression` when the sharded build
    is not byte-identical to the dense CSR (a correctness bug, never
    tolerable) or when streamed ingest throughput falls below
    ``min_ratio`` of the in-memory path.
    """
    report = measure_outofcore(subset)
    if not report["identical"]:
        raise PerfRegression(
            f"sharded build at scale {report['scale']} is not "
            f"byte-identical to the in-memory CSR — the out-of-core "
            f"pipeline must reproduce the dense graph exactly"
        )
    if report["ratio"] < min_ratio:
        raise PerfRegression(
            f"streamed ingest runs at {report['ratio']:.2f}x the "
            f"in-memory path ({report['streamed_eps']:.2e} vs "
            f"{report['in_memory_eps']:.2e} edges/s; required: "
            f"{min_ratio:.2f}x)"
        )
    return report


def render_outofcore_report(report: dict) -> str:
    """One-paragraph human rendering of an out-of-core ingest report."""
    status = "identical" if report["identical"] else "MISMATCHED"
    return (f"out-of-core ingest at scale {report['scale']} "
            f"({report['edges']} edges, {report['partitions']} "
            f"partitions): digests {status}; streamed "
            f"{report['streamed_eps']:.2e} edges/s vs in-memory "
            f"{report['in_memory_eps']:.2e} edges/s "
            f"({report['ratio']:.2f}x)")


def record_outofcore(path=OUTOFCORE_BASELINE, subset=None) -> dict:
    """Measure the ingest paths and write ``BENCH_outofcore.json``.

    The digest-identity half is deterministic; the throughput half is
    wall-clock, recorded for trend-watching (the gate re-measures).
    """
    payload = {
        "kind": _OUTOFCORE_KIND,
        "version": 1,
        "report": measure_outofcore(subset),
    }
    atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True)
                      + "\n")
    return payload


def record(path=DEFAULT_BASELINE, algorithms=None,
           frameworks=GATE_FRAMEWORKS, node_counts=GATE_NODE_COUNTS,
           benchmarks=(), parallel_jobs=None, serve=None,
           outofcore=None) -> dict:
    """Measure every gate cell and write the baseline file.

    The ``cells`` section is deterministic, so recording twice on an
    unchanged tree produces byte-identical data; ``benchmarks`` names
    add advisory wall-clock entries (nondeterministic by nature).
    ``serve`` attaches a serving-layer load report (from
    :func:`repro.serve.loadgen.run_loadgen` plus the warm/cold
    comparison) as another advisory section — checked runs pass it
    through verbatim rather than re-driving a server.
    """
    from ..algorithms.registry import ALGORITHMS

    algorithms = tuple(algorithms) if algorithms else ALGORITHMS
    payload = {
        "kind": _BASELINE_KIND,
        "version": 1,
        "config": {
            "algorithms": list(algorithms),
            "frameworks": list(frameworks),
            "node_counts": list(node_counts),
        },
        "cells": measure_cells(algorithms, frameworks, node_counts),
        "wall_clock": measure_wall_clock(benchmarks),
    }
    if parallel_jobs is not None:        # 0 means "all cores"
        payload["parallel"] = measure_parallel_sweep(parallel_jobs)
    if serve is not None:
        payload["serve"] = serve
    if outofcore is not None:
        # An already-measured ingest report (repro perf outofcore),
        # passed through verbatim like the serve load report.
        payload["outofcore"] = outofcore
    atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True)
                      + "\n")
    return payload


def load_baseline(path=DEFAULT_BASELINE) -> dict:
    path = Path(path)
    if not path.exists():
        raise ReproError(f"no perf baseline at {path}; record one with "
                         f"'repro perf baseline record --out {path}'")
    payload = json.loads(path.read_text())
    if payload.get("kind") != _BASELINE_KIND:
        raise ReproError(f"{path} is not a perf baseline file")
    return payload


def parse_injection(spec) -> dict:
    """``"pattern=factor"`` (``;``-separated) -> ``{pattern: factor}``."""
    if not spec:
        return {}
    if isinstance(spec, dict):
        return {str(key): float(value) for key, value in spec.items()}
    out = {}
    for part in str(spec).split(";"):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ReproError(
                f"bad injection {part!r}; expected 'pattern=factor', e.g. "
                "'bfs/giraph=2.0'")
        pattern, factor = part.rsplit("=", 1)
        out[pattern.strip()] = float(factor)
    return out


@dataclass(frozen=True)
class CellCheck:
    """One gate cell's comparison against its baseline."""

    cell: str
    kind: str              # ok | regression | improvement | status-change
    baseline: object       # seconds, or a status string
    current: object
    ratio: float = 1.0     # current / baseline seconds (1.0 for statuses)

    def to_dict(self) -> dict:
        return {"cell": self.cell, "kind": self.kind,
                "baseline": self.baseline, "current": self.current,
                "ratio": self.ratio}


@dataclass
class GateReport:
    """Typed outcome of one gate check."""

    path: str
    tolerance: float
    checks: list = field(default_factory=list)
    wall_clock: dict = field(default_factory=dict)
    parallel: dict = field(default_factory=dict)
    serve: dict = field(default_factory=dict)
    outofcore: dict = field(default_factory=dict)
    injected: dict = field(default_factory=dict)

    @property
    def regressions(self) -> list:
        return [check for check in self.checks
                if check.kind in ("regression", "status-change")]

    @property
    def improvements(self) -> list:
        return [check for check in self.checks if check.kind == "improvement"]

    @property
    def ok(self) -> bool:
        return not self.regressions

    def raise_if_failed(self) -> "GateReport":
        if not self.ok:
            raise PerfRegression(self)
        return self

    def to_dict(self) -> dict:
        return {
            "path": str(self.path),
            "tolerance": self.tolerance,
            "ok": self.ok,
            "checked": len(self.checks),
            "regressions": [check.to_dict() for check in self.regressions],
            "improvements": [check.to_dict() for check in self.improvements],
            "wall_clock": self.wall_clock,
            "parallel": self.parallel,
            "serve": self.serve,
            "outofcore": self.outofcore,
            "injected": self.injected,
        }


def check(path=DEFAULT_BASELINE, tolerance: float = DEFAULT_TOLERANCE,
          inject=None) -> GateReport:
    """Re-measure every baselined cell and compare against the file.

    A cell regresses when its simulated runtime grows by more than
    ``tolerance`` (relative), or when its DNF status changes at all
    (an OOM cell that starts completing is as suspicious as the
    reverse). Cells faster by more than the tolerance are reported as
    improvements — worth re-recording, but not failures. Wall-clock
    entries are re-timed and reported, never gated.
    """
    baseline = load_baseline(path)
    config = baseline.get("config", {})
    injections = parse_injection(inject)
    current = measure_cells(config.get("algorithms") or None,
                            tuple(config.get("frameworks",
                                             GATE_FRAMEWORKS)),
                            tuple(config.get("node_counts",
                                             GATE_NODE_COUNTS)))

    report = GateReport(path=str(path), tolerance=tolerance,
                        injected=injections)
    for cell, recorded in sorted(baseline["cells"].items()):
        measured = current.get(cell)
        if measured is None:
            report.checks.append(CellCheck(
                cell, "status-change", recorded["status"], "missing"))
            continue
        runtime = measured["runtime_s"]
        for pattern, factor in injections.items():
            if pattern in cell and runtime is not None:
                runtime = runtime * factor
        if recorded["status"] != measured["status"]:
            report.checks.append(CellCheck(
                cell, "status-change", recorded["status"],
                measured["status"]))
            continue
        if recorded["runtime_s"] is None:
            report.checks.append(CellCheck(
                cell, "ok", recorded["status"], measured["status"]))
            continue
        ratio = runtime / recorded["runtime_s"]
        if ratio > 1.0 + tolerance:
            kind = "regression"
        elif ratio < 1.0 - tolerance:
            kind = "improvement"
        else:
            kind = "ok"
        report.checks.append(CellCheck(cell, kind, recorded["runtime_s"],
                                       runtime, ratio))

    recorded_wall = baseline.get("wall_clock", {})
    if recorded_wall:
        remeasured = measure_wall_clock(tuple(sorted(recorded_wall)))
        report.wall_clock = {
            name: {"baseline_s": recorded_wall[name]["seconds"],
                   "current_s": remeasured[name]["seconds"],
                   "advisory": True}
            for name in sorted(recorded_wall)
        }
    # Recorded pool-overhead/speedup and serving-layer load reports,
    # passed through verbatim: wall-clock numbers from record time,
    # advisory by definition.
    report.parallel = baseline.get("parallel", {})
    report.serve = baseline.get("serve", {})
    report.outofcore = baseline.get("outofcore", {})
    return report
