"""Roofline model: speed-of-light lower bounds for any experiment cell.

The paper's Table 4 argues the native kernels are *good enough to be a
yardstick* by comparing their achieved bandwidth against the hardware
limits: every workload lands within 2-2.5x of the binding resource. This
module generalizes that argument to any (workload, dataset, framework,
nodes) cell: from the run's counted work (bytes moved, ops executed,
wire bytes sent — all accumulated in :class:`~repro.cluster.metrics.
RunMetrics`) and the cluster's hardware constants it derives three
floors —

* **memory floor** — counted DRAM traffic at full streaming bandwidth
  (random bytes at the prefetch-ideal random rate),
* **flop floor** — counted ops at every core's peak sustained rate,
* **wire floor** — counted wire bytes at the fabric's injection limit —

and reports achieved time against the binding (largest) floor. Floors
are *critical-node* bounds: each is the slowest node's counted totals
at ideal rates, because no schedule of this partitioned execution can
beat the node that owns the most data. The ratio is >= 1 by
construction: the floors use the same formulas as the cost model with
every software knob at its physical best, and summing per-superstep
maxima (what the simulator charges) never beats the max of per-node
sums. The gap between the critical-node bound and the
perfectly-balanced one is reported separately as ``imbalance`` — the
partitioning's skew, a software property, not a hardware one.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.cost import CostModel
from ..cluster.hardware import PAPER_NODE, NodeSpec


@dataclass(frozen=True)
class Roofline:
    """Lower bounds vs achieved time for one completed run."""

    memory_floor_s: float
    cpu_floor_s: float
    wire_floor_s: float
    achieved_s: float
    #: Critical-node bound / perfectly-balanced bound (>= 1; 1.0 means
    #: the partitioning spread the counted work evenly).
    imbalance: float = 1.0

    @property
    def bound_s(self) -> float:
        """The binding lower bound: no run can beat all three floors."""
        return max(self.memory_floor_s, self.cpu_floor_s, self.wire_floor_s)

    @property
    def binding(self) -> str:
        """Which hardware resource sets the bound."""
        floors = {"memory": self.memory_floor_s, "cpu": self.cpu_floor_s,
                  "network": self.wire_floor_s}
        return max(floors, key=floors.get)

    @property
    def ratio(self) -> float:
        """Achieved / bound — Table 4's 'within 2-2.5x' number."""
        if self.bound_s == 0:
            return float("inf") if self.achieved_s > 0 else 1.0
        return self.achieved_s / self.bound_s

    def to_dict(self) -> dict:
        return {
            "memory_floor_s": self.memory_floor_s,
            "cpu_floor_s": self.cpu_floor_s,
            "wire_floor_s": self.wire_floor_s,
            "bound_s": self.bound_s,
            "binding": self.binding,
            "achieved_s": self.achieved_s,
            "ratio": self.ratio,
            "imbalance": self.imbalance,
        }


def roofline_of(metrics, node: NodeSpec = PAPER_NODE) -> Roofline:
    """Roofline for one run's :class:`~repro.cluster.metrics.RunMetrics`.

    Uses the per-node counted totals when the metrics carry them
    (critical-node floors + imbalance); falls back to perfect-balance
    floors for metrics reconstructed without per-node counters.
    """
    cost = CostModel(node)
    nodes = metrics.num_nodes
    balanced_memory = cost.memory_floor_s(
        metrics.streamed_bytes_total / nodes,
        metrics.random_bytes_total / nodes)
    balanced_cpu = cost.cpu_floor_s(metrics.ops_total / nodes)
    balanced_wire = metrics.bytes_sent_total / nodes / node.link_bandwidth
    if metrics.node_streamed_bytes is None:
        return Roofline(memory_floor_s=balanced_memory,
                        cpu_floor_s=balanced_cpu,
                        wire_floor_s=balanced_wire,
                        achieved_s=metrics.total_time_s)
    memory_floor = max(
        cost.memory_floor_s(streamed, random) for streamed, random in
        zip(metrics.node_streamed_bytes, metrics.node_random_bytes))
    cpu_floor = max(cost.cpu_floor_s(ops) for ops in metrics.node_ops)
    wire_floor = float(max(metrics.node_bytes_sent)) / node.link_bandwidth
    bound = max(memory_floor, cpu_floor, wire_floor)
    balanced_bound = max(balanced_memory, balanced_cpu, balanced_wire)
    return Roofline(
        memory_floor_s=memory_floor,
        cpu_floor_s=cpu_floor,
        wire_floor_s=wire_floor,
        achieved_s=metrics.total_time_s,
        imbalance=bound / balanced_bound if balanced_bound > 0 else 1.0,
    )


def roofline_of_run(run, node: NodeSpec = PAPER_NODE) -> Roofline:
    """Roofline for a :class:`~repro.harness.runner.RunResult`."""
    return roofline_of(run.metrics(), node=node)


def roofline_table(framework: str = "native", algorithms=None,
                   node_counts=(1, 4)) -> dict:
    """Achieved-vs-bound efficiency in Table-4 form.

    Runs the weak-scaling cell for every (algorithm, nodes) point and
    returns ``{algorithm: {nodes: roofline dict}}``; cells that do not
    complete carry ``{"status": ...}`` instead, like the paper's dashes.
    """
    from ..algorithms.registry import ALGORITHMS
    from ..harness.datasets import weak_scaling_dataset
    from ..harness.runner import run_experiment

    algorithms = tuple(algorithms) if algorithms else ALGORITHMS
    out = {}
    for algorithm in algorithms:
        out[algorithm] = {}
        for nodes in node_counts:
            data, factor = weak_scaling_dataset(algorithm, nodes)
            run = run_experiment(algorithm, framework, data, nodes=nodes,
                                 scale_factor=factor)
            if not run.ok:
                out[algorithm][nodes] = {"status": run.status,
                                         "failure": run.failure}
                continue
            cell = roofline_of(run.metrics()).to_dict()
            cell["status"] = run.status
            out[algorithm][nodes] = cell
    return out
