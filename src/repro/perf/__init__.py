"""Performance subsystem: rooflines, gap attribution, advice, gating.

Four parts, all built on the run metrics and calibrated constants the
rest of the package already measures:

* :mod:`~repro.perf.model` — speed-of-light lower bounds per cell and
  achieved-vs-bound ratios (the paper's Table 4 argument, generalized);
* :mod:`~repro.perf.attribution` — exact multiplicative decomposition
  of a framework's gap over native (the Section 5.4 Giraph breakdown);
* :mod:`~repro.perf.advisor` — simulate the Figure 7 what-ifs and rank
  them by predicted speedup;
* :mod:`~repro.perf.baselines` — record deterministic per-cell runtimes
  to ``BENCH_*.json`` and fail on regressions (``repro perf baseline``).
"""

from .advisor import WHAT_IFS, Advice, advise, advise_cell
from .attribution import GapAttribution, GapFactor, attribute, \
    attribute_cell, classify
from .baselines import (
    DEFAULT_BASELINE,
    DEFAULT_TOLERANCE,
    GATE_FRAMEWORKS,
    GATE_NODE_COUNTS,
    KERNEL_REPORT_SUBSET,
    OUTOFCORE_BASELINE,
    OUTOFCORE_MIN_RATIO,
    OUTOFCORE_SUBSET,
    CellCheck,
    GateReport,
    cell_key,
    check,
    check_kernel_backends,
    check_outofcore,
    load_baseline,
    measure_cells,
    measure_kernel_backends,
    measure_outofcore,
    measure_parallel_sweep,
    measure_wall_clock,
    parse_injection,
    record,
    record_outofcore,
    render_kernel_report,
    render_outofcore_report,
)
from .model import Roofline, roofline_of, roofline_of_run, roofline_table
from .report import (
    render_advice,
    render_attribution,
    render_gate,
    render_outofcore,
    render_parallel,
    render_serve,
    render_roofline,
)

__all__ = [
    "Advice",
    "CellCheck",
    "DEFAULT_BASELINE",
    "DEFAULT_TOLERANCE",
    "GATE_FRAMEWORKS",
    "GATE_NODE_COUNTS",
    "GapAttribution",
    "GapFactor",
    "GateReport",
    "KERNEL_REPORT_SUBSET",
    "OUTOFCORE_BASELINE",
    "OUTOFCORE_MIN_RATIO",
    "OUTOFCORE_SUBSET",
    "Roofline",
    "WHAT_IFS",
    "advise",
    "advise_cell",
    "attribute",
    "attribute_cell",
    "cell_key",
    "check",
    "check_kernel_backends",
    "check_outofcore",
    "classify",
    "load_baseline",
    "measure_cells",
    "measure_kernel_backends",
    "measure_outofcore",
    "measure_parallel_sweep",
    "measure_wall_clock",
    "parse_injection",
    "record",
    "record_outofcore",
    "render_advice",
    "render_attribution",
    "render_gate",
    "render_kernel_report",
    "render_outofcore",
    "render_outofcore_report",
    "render_parallel",
    "render_serve",
    "render_roofline",
    "roofline_of",
    "roofline_of_run",
    "roofline_table",
]
