"""Optimization advisor: rank the Figure 7 what-ifs for one workload.

The paper's Section 6.1 optimizations are real switches on the native
kernels (:class:`~repro.frameworks.native.options.NativeOptions`):
software prefetching, message compression, compute/communication
overlap and bit-vector data structures. The advisor *simulates* each
what-if — it re-runs the cell from the all-off baseline with exactly one
optimization enabled — and ranks them by predicted speedup, with a
rationale tied to what actually binds the baseline run (a prefetch
recommendation is only interesting if random DRAM traffic is the
bottleneck, compression only if wire volume is).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..frameworks.native.options import NativeOptions
from .attribution import classify

#: The individually toggleable what-ifs, in Figure 7 order.
WHAT_IFS = ("prefetch", "compression", "overlap", "bitvector")


@dataclass(frozen=True)
class Advice:
    """One ranked what-if."""

    option: str
    speedup: float          # baseline_s / predicted_s
    baseline_s: float
    predicted_s: float
    rationale: str

    def to_dict(self) -> dict:
        return {"option": self.option, "speedup": self.speedup,
                "baseline_s": self.baseline_s,
                "predicted_s": self.predicted_s,
                "rationale": self.rationale}


def _rationale(option: str, metrics, binding: str) -> str:
    """Tie the recommendation to the baseline's measured bottleneck."""
    dram = metrics.streamed_bytes_total + metrics.random_bytes_total
    random_share = metrics.random_bytes_total / dram if dram else 0.0
    exposed_share = metrics.exposed_comm_time_s / metrics.total_time_s \
        if metrics.total_time_s else 0.0
    if option == "prefetch":
        return (f"{100 * random_share:.0f}% of DRAM traffic is random; "
                f"prefetching raises the effective random-access rate "
                f"(baseline is {binding}-bound)")
    if option == "compression":
        return (f"compresses the {metrics.bytes_sent_per_node / 1e6:.1f} "
                f"MB/node of wire traffic (baseline is {binding}-bound)")
    if option == "overlap":
        return (f"{100 * exposed_share:.0f}% of the runtime is exposed "
                f"communication that overlap can hide under compute")
    if option == "bitvector":
        return ("bit-vector visited/membership sets shrink the random "
                "probe traffic and the memory footprint")
    return f"baseline is {binding}-bound"


def advise(algorithm: str, dataset, nodes: int = 1,
           scale_factor: float = 1.0, **params) -> list:
    """Rank the native optimizations for one cell by predicted speedup.

    Returns ``[Advice, ...]`` sorted fastest-first: each single what-if
    from the all-off baseline, plus the combined ``all`` setting (the
    Figure 7 end state, usually better than any single switch).
    """
    from ..harness.runner import run_experiment

    def _run(options):
        return run_experiment(algorithm, "native", dataset, nodes=nodes,
                              scale_factor=scale_factor, options=options,
                              **params)

    baseline_run = _run(NativeOptions.baseline())
    baseline_s = baseline_run.runtime()
    metrics = baseline_run.metrics()
    binding = classify(metrics)

    advice = []
    for option in WHAT_IFS:
        predicted_s = _run(NativeOptions.baseline().with_(
            **{option: True})).runtime()
        advice.append(Advice(
            option=option,
            speedup=baseline_s / predicted_s,
            baseline_s=baseline_s,
            predicted_s=predicted_s,
            rationale=_rationale(option, metrics, binding),
        ))
    all_s = _run(NativeOptions()).runtime()
    advice.append(Advice(
        option="all", speedup=baseline_s / all_s,
        baseline_s=baseline_s, predicted_s=all_s,
        rationale="every Section 6.1 optimization together "
                  "(the Figure 7 end state)",
    ))
    return sorted(advice, key=lambda item: item.speedup, reverse=True)


def advise_cell(algorithm: str, nodes: int = 4) -> list:
    """:func:`advise` on the standard weak-scaling cell."""
    from ..harness.datasets import weak_scaling_dataset

    data, factor = weak_scaling_dataset(algorithm, nodes)
    return advise(algorithm, data, nodes=nodes, scale_factor=factor)
