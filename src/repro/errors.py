"""Exception hierarchy for the repro package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch the library's failures without
also swallowing programming mistakes such as ``TypeError``.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphFormatError(ReproError):
    """An edge list or graph file violates the expected format."""


class PartitionError(ReproError):
    """A graph partitioning request cannot be satisfied."""


class CapacityError(ReproError):
    """A simulated node ran out of memory.

    This mirrors the out-of-memory failures the paper reports for
    CombBLAS triangle counting on the Twitter dataset and for Giraph on
    large message volumes (Sections 5.2, 5.3 and 6.1.3).
    """

    def __init__(self, node, needed_bytes, capacity_bytes, what=""):
        self.node = node
        self.needed_bytes = int(needed_bytes)
        self.capacity_bytes = int(capacity_bytes)
        self.what = what
        detail = f" while allocating {what}" if what else ""
        super().__init__(
            f"node {node} out of memory{detail}: "
            f"needs {self.needed_bytes:,} B of {self.capacity_bytes:,} B"
        )


class ExpressibilityError(ReproError):
    """An algorithm cannot be expressed in a framework's programming model.

    The paper highlights such gaps: most frameworks cannot express SGD
    (Section 3.2) and CombBLAS cannot fuse the ``A**2`` computation with
    the intersection for triangle counting (Section 6.2).
    """


class ConvergenceError(ReproError):
    """An iterative algorithm failed to converge within its budget."""


class NodeFailure(ReproError):
    """A simulated node crashed and the framework cannot recover it.

    Raised by fail-fast engines (native, GraphLab, Galois, ...) when a
    chaos schedule kills a node: the paper's native baselines trade
    fault tolerance away entirely, so a node loss ends the run. Carries
    the failing node and the superstep at which it died so harness
    layers and tests never have to parse the message.
    """

    def __init__(self, node, superstep, what=""):
        self.node = int(node)
        self.superstep = int(superstep)
        self.what = what
        detail = f" during {what}" if what else ""
        super().__init__(
            f"node {self.node} crashed at superstep {self.superstep}"
            f"{detail}; no checkpoint/recovery policy is active (fail-fast)"
        )


class SimulationError(ReproError):
    """The cluster simulator was used inconsistently."""
