"""Exception hierarchy for the repro package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch the library's failures without
also swallowing programming mistakes such as ``TypeError``.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class GraphFormatError(ReproError):
    """An edge list or graph file violates the expected format."""


class PartitionError(ReproError):
    """A graph partitioning request cannot be satisfied."""


class CapacityError(ReproError):
    """A simulated node ran out of memory.

    This mirrors the out-of-memory failures the paper reports for
    CombBLAS triangle counting on the Twitter dataset and for Giraph on
    large message volumes (Sections 5.2, 5.3 and 6.1.3).
    """

    def __init__(self, node, needed_bytes, capacity_bytes, what=""):
        self.node = node
        self.needed_bytes = int(needed_bytes)
        self.capacity_bytes = int(capacity_bytes)
        self.what = what
        detail = f" while allocating {what}" if what else ""
        super().__init__(
            f"node {node} out of memory{detail}: "
            f"needs {self.needed_bytes:,} B of {self.capacity_bytes:,} B"
        )


class ExpressibilityError(ReproError):
    """An algorithm cannot be expressed in a framework's programming model.

    The paper highlights such gaps: most frameworks cannot express SGD
    (Section 3.2) and CombBLAS cannot fuse the ``A**2`` computation with
    the intersection for triangle counting (Section 6.2).
    """


class ConvergenceError(ReproError):
    """An iterative algorithm failed to converge within its budget."""


class DeadlineExceeded(ReproError):
    """Simulated time passed the cell's execution budget.

    Raised by the :class:`~repro.cluster.simulator.Cluster` the moment
    its simulated clock crosses ``deadline_s``. The sweep engine
    classifies it as a ``timeout`` (DNF) cell — the equivalent of the
    dashes benchmarking papers print for runs that exceeded their time
    budget — so a hung convergence loop becomes a result instead of a
    wedged sweep. Carries the budget and the elapsed time at which it
    fired so reports never parse the message.
    """

    def __init__(self, budget_s, elapsed_s, what=""):
        self.budget_s = float(budget_s)
        self.elapsed_s = float(elapsed_s)
        self.what = what
        detail = f" during {what}" if what else ""
        super().__init__(
            f"simulated deadline exceeded{detail}: "
            f"{self.elapsed_s:.4f} s elapsed of a {self.budget_s:.4f} s budget"
        )


class NodeFailure(ReproError):
    """A simulated node crashed and the framework cannot recover it.

    Raised by fail-fast engines (native, GraphLab, Galois, ...) when a
    chaos schedule kills a node: the paper's native baselines trade
    fault tolerance away entirely, so a node loss ends the run. Carries
    the failing node and the superstep at which it died so harness
    layers and tests never have to parse the message.
    """

    def __init__(self, node, superstep, what=""):
        self.node = int(node)
        self.superstep = int(superstep)
        self.what = what
        detail = f" during {what}" if what else ""
        super().__init__(
            f"node {self.node} crashed at superstep {self.superstep}"
            f"{detail}; no checkpoint/recovery policy is active (fail-fast)"
        )


class SweepInterrupted(ReproError):
    """A sweep drained after SIGINT/SIGTERM instead of finishing.

    Raised by the supervised worker pool once the journal is flushed:
    every merged cell is durable, in-flight cells are back to pending,
    and re-running with ``--resume`` continues byte-identically. The
    CLI maps it to its own documented exit code so scripts can tell a
    clean drain from a failure.
    """

    def __init__(self, signum, pending):
        import signal as _signal

        self.signum = int(signum)
        self.pending = int(pending)
        try:
            name = _signal.Signals(self.signum).name
        except ValueError:
            name = f"signal {self.signum}"
        super().__init__(
            f"sweep drained on {name}: journal flushed, "
            f"{self.pending} cell(s) still pending; re-run with --resume "
            "to finish them"
        )


class SimulationError(ReproError):
    """The cluster simulator was used inconsistently."""


class SpecError(ReproError):
    """An :class:`~repro.harness.ExperimentSpec` is invalid.

    Raised at spec *construction* time — unknown algorithm parameters,
    bad field values, unserializable datasets — so typos surface where
    they are written instead of being silently threaded into a run's
    merged parameter dict. The message names the valid choices.
    """


class KernelError(ReproError):
    """A kernel backend or registry lookup request cannot be satisfied.

    Raised for unknown ``REPRO_KERNELS`` backend names and for
    ``(algorithm, direction)`` pairs the kernel registry does not carry.
    """


class PerfRegression(ReproError):
    """The perf gate found cells slower than the recorded baseline.

    Raised by :meth:`repro.perf.baselines.GateReport.raise_if_failed`;
    carries the full typed report so CI logs and tooling can name the
    regressed cells without parsing the message.
    """

    def __init__(self, report):
        if isinstance(report, str):
            # Gates without a GateReport (e.g. the kernel-backend
            # check) raise with a ready-made message.
            self.report = None
            super().__init__(report)
            return
        self.report = report
        cells = ", ".join(check.cell for check in report.regressions)
        super().__init__(
            f"{len(report.regressions)} cell(s) regressed beyond "
            f"{100 * report.tolerance:.0f}% tolerance: {cells}"
        )
