"""Shared vectorized kernels behind a unified ``Kernel`` protocol.

The numeric hot loops of the four workloads — semiring SpMV/SpMSpV for
PageRank and BFS, masked ``nnz(A ∘ A²)`` for triangles, blocked SGD/GD
updates for CF — implemented once and parameterized by every framework
family's profile constants instead of being re-implemented per engine.

Backends (``REPRO_KERNELS=vectorized|interpreted``, see
:mod:`repro.kernels.backend`): the vectorized numpy/scipy fast path, and
a pure-Python interpreted oracle kept for differential testing. Counted
work is analytic either way, so simulated runtimes and baselines are
byte-identical across backends.

Engines resolve kernels through :mod:`repro.kernels.registry` by
``(algorithm, direction)``; the protocol itself is documented in
:mod:`repro.frameworks.base`.
"""

from . import registry
from .backend import (
    BACKENDS,
    ENV_VAR,
    INTERPRETED,
    VECTORIZED,
    active_backend,
    set_backend,
    use_backend,
)
from .base import Kernel, KernelWork
from .registry import kernel
from .sgd import gd_step, sgd_sweep, training_rmse
from .spmv import semiring_spmv
from .triangles import aa_product, masked_sum

__all__ = [
    "BACKENDS",
    "ENV_VAR",
    "INTERPRETED",
    "Kernel",
    "KernelWork",
    "VECTORIZED",
    "aa_product",
    "active_backend",
    "gd_step",
    "kernel",
    "masked_sum",
    "registry",
    "semiring_spmv",
    "set_backend",
    "sgd_sweep",
    "training_rmse",
    "use_backend",
]
