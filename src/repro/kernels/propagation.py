"""Second-generation propagation kernels: WCC, SSSP, k-core, LP.

Four more numeric hot loops shared by every engine family, following
the PR-6 contract: the vectorized backend is numpy segment algebra, the
interpreted backend replays the same accumulation in pure Python, and
the two agree bit-for-bit because every reduction here is
order-independent (min over exact integers/integer-valued floats, and
integer tallies with a min tie-break). Counted work stays analytic —
sizes and degree sums, never loop trip counts.
"""

from __future__ import annotations

import numpy as np

from .backend import interpreted
from .base import Kernel, KernelWork


def _edge_slots(graph, vertices):
    """Flat CSR edge indices of ``vertices``'s out-edges, plus lengths.

    Same ragged-gather trick as ``CSRGraph.neighbors_of_many``, but
    returning the slot indices so callers can gather per-edge weights.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    if vertices.size == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    starts = graph.offsets[vertices]
    lengths = graph.offsets[vertices + 1] - starts
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64), lengths
    flat = np.repeat(starts - np.concatenate([[0], np.cumsum(lengths)[:-1]]),
                     lengths) + np.arange(total, dtype=np.int64)
    return flat, lengths


class WCCPropagate(Kernel):
    """WCC min-label push: frontier vertices offer their label out-edge.

    ``step(labels, frontier)`` returns ``(new_labels, changed)`` where
    ``changed`` is the sorted vertices whose label shrank — the next
    frontier of the delta fixpoint. Min over int64 ids is
    order-independent, so both backends agree exactly.
    """

    algorithm = "wcc"
    direction = "propagate"

    def prepare(self, graph):
        self.graph = graph
        self.out_degrees = graph.out_degrees()
        return self

    def step(self, labels, frontier):
        work = KernelWork(edges=float(self.out_degrees[frontier].sum()),
                          vertices=float(labels.size),
                          frontier=float(frontier.size))
        if interpreted():
            new = self._push_interpreted(labels, frontier)
        else:
            neighbors, lengths = self.graph.neighbors_of_many(frontier)
            new = labels.copy()
            np.minimum.at(new, neighbors, np.repeat(labels[frontier], lengths))
        changed = np.flatnonzero(new < labels)
        return (new, changed), work

    def _push_interpreted(self, labels, frontier):
        offsets = self.graph.offsets.tolist()
        targets = self.graph.targets.tolist()
        new = labels.copy()
        for u in frontier.tolist():
            label = labels[u]
            for e in range(offsets[u], offsets[u + 1]):
                t = targets[e]
                if label < new[t]:
                    new[t] = label
        return new


class SSSPRelax(Kernel):
    """Min-plus frontier relaxation (Bellman-Ford delta rounds).

    ``step(distances, frontier)`` relaxes every out-edge of the frontier
    and returns ``(new_distances, changed)``. Weights bind at
    ``prepare`` (the study's unordered-pair hash unless the graph
    carries explicit weights); integer-valued weights keep the float64
    sums exact, so min is order-independent across backends.
    """

    algorithm = "sssp"
    direction = "relax"

    def __init__(self, weights=None):
        self.weights = weights

    def prepare(self, graph):
        from ..algorithms.sssp import edge_weights_for

        self.graph = graph
        self.out_degrees = graph.out_degrees()
        if self.weights is None:
            self.weights = edge_weights_for(graph)
        return self

    def step(self, distances, frontier):
        work = KernelWork(edges=float(self.out_degrees[frontier].sum()),
                          vertices=float(distances.size),
                          frontier=float(frontier.size))
        if interpreted():
            new = self._relax_interpreted(distances, frontier)
        else:
            slots, lengths = _edge_slots(self.graph, frontier)
            new = distances.copy()
            candidates = (np.repeat(distances[frontier], lengths)
                          + self.weights[slots])
            np.minimum.at(new, self.graph.targets[slots], candidates)
        changed = np.flatnonzero(new < distances)
        return (new, changed), work

    def _relax_interpreted(self, distances, frontier):
        offsets = self.graph.offsets.tolist()
        targets = self.graph.targets.tolist()
        weights = self.weights.tolist()
        new = distances.copy()
        for u in frontier.tolist():
            base = distances[u]
            for e in range(offsets[u], offsets[u + 1]):
                candidate = base + weights[e]
                t = targets[e]
                if candidate < new[t]:
                    new[t] = candidate
        return new


class KCorePeel(Kernel):
    """One k-core cascade wave: delete live vertices under degree k.

    ``step(degrees, alive, k)`` returns ``(removed, new_degrees)`` —
    the vertices peeled this wave (sorted) and the degrees after
    decrementing their neighbors. Integer decrements commute, so both
    backends agree exactly. Dead neighbors are decremented too; they are
    never re-examined, and doing so keeps the numerics branch-free.
    """

    algorithm = "k_core"
    direction = "peel"

    def prepare(self, graph):
        self.graph = graph
        self.out_degrees = graph.out_degrees()
        return self

    def step(self, degrees, alive, k):
        removed = np.flatnonzero(alive & (degrees < k))
        work = KernelWork(edges=float(self.out_degrees[removed].sum()),
                          vertices=float(alive.sum()),
                          frontier=float(removed.size))
        if removed.size == 0:
            return (removed, degrees), work
        if interpreted():
            new = self._peel_interpreted(degrees, removed)
        else:
            neighbors, _ = self.graph.neighbors_of_many(removed)
            new = degrees - np.bincount(neighbors, minlength=degrees.size)
        return (removed, new), work

    def _peel_interpreted(self, degrees, removed):
        offsets = self.graph.offsets.tolist()
        targets = self.graph.targets.tolist()
        new = degrees.copy()
        for u in removed.tolist():
            for e in range(offsets[u], offsets[u + 1]):
                new[targets[e]] -= 1
        return new


class LPSync(Kernel):
    """One synchronous label-propagation round over all edges.

    ``step(labels)`` returns the new labels: each vertex with incoming
    edges adopts the most frequent in-neighbor label, frequency ties
    broken toward the smallest label; isolated vertices keep theirs.
    The (max count, min label) mode is a set function of the incoming
    multiset — evaluation order cannot move it.
    """

    algorithm = "label_propagation"
    direction = "sync"

    def prepare(self, graph):
        self.graph = graph
        self.src = graph.sources()
        return self

    def step(self, labels):
        n = labels.size
        work = KernelWork(edges=float(self.graph.num_edges),
                          vertices=float(n))
        if interpreted():
            return self._mode_interpreted(labels), work
        # Tally (target, label) pairs with one unique over packed keys,
        # then pick per target the max-count key, min label on ties.
        key = self.graph.targets * np.int64(n) + labels[self.src]
        packed, counts = np.unique(key, return_counts=True)
        tallied_target = packed // n
        tallied_label = packed % n
        order = np.lexsort((tallied_label, -counts, tallied_target))
        winners_target = tallied_target[order]
        first = np.ones(winners_target.size, dtype=bool)
        first[1:] = winners_target[1:] != winners_target[:-1]
        new = labels.copy()
        new[winners_target[first]] = tallied_label[order][first]
        return new, work

    def _mode_interpreted(self, labels):
        offsets = self.graph.offsets.tolist()
        targets = self.graph.targets.tolist()
        values = labels.tolist()
        tallies = [None] * labels.size
        for u in range(labels.size):
            label = values[u]
            for e in range(offsets[u], offsets[u + 1]):
                t = targets[e]
                tally = tallies[t]
                if tally is None:
                    tally = tallies[t] = {}
                tally[label] = tally.get(label, 0) + 1
        new = labels.copy()
        for v, tally in enumerate(tallies):
            if tally:
                new[v] = max(tally.items(),
                             key=lambda item: (item[1], -item[0]))[0]
        return new
