"""Semiring SpMV / SpMSpV kernels: PageRank pull and BFS frontier push.

These are the two hot loops the paper's iterative workloads share across
every framework family. The vectorized backend is numpy segment algebra
(``np.repeat`` + ``np.bincount`` is y = A^T x over plus-times); the
interpreted backend replays the same accumulation *order* edge by edge
in pure Python, so the two agree bit-for-bit on the outputs (``bincount``
folds weights in input order, which the Python loop replicates exactly).
"""

from __future__ import annotations

import numpy as np

from .backend import interpreted
from .base import Kernel, KernelWork


class PageRankPull(Kernel):
    """One pull-direction PageRank iteration: ``r' = d + (1-d) A^T (r/deg)``.

    The unnormalized equation-1 update every engine runs (paper r=0.3),
    expressed as a plus-times SpMV over degree-scaled ranks.
    """

    algorithm = "pagerank"
    direction = "pull"

    def __init__(self, damping: float = 0.3):
        self.damping = damping

    def prepare(self, graph):
        self.graph = graph
        self.out_degrees = graph.out_degrees()
        self.safe = np.maximum(self.out_degrees, 1)
        return self

    def step(self, ranks):
        graph = self.graph
        n = graph.num_vertices
        if interpreted():
            gathered = self._gather_interpreted(ranks)
        else:
            contributions = np.where(self.out_degrees > 0,
                                     ranks / self.safe, 0.0)
            if hasattr(graph, "partitions"):
                gathered = self._gather_sharded(graph, contributions, n)
            else:
                per_edge = np.repeat(contributions, self.out_degrees)
                gathered = np.bincount(graph.targets, weights=per_edge,
                                       minlength=n)
        new_ranks = self.damping + (1.0 - self.damping) * gathered
        work = KernelWork(edges=float(graph.num_edges), vertices=float(n))
        return new_ranks, work

    @staticmethod
    def _gather_sharded(graph, contributions, n):
        """Partition-at-a-time gather over an out-of-core graph.

        ``np.add.at`` into one shared accumulator replays ``bincount``'s
        edge-order accumulation exactly (both fold float64 addends in
        ascending edge index), so sharded PageRank is bit-identical to
        the dense path while touching one partition's targets at a time.
        """
        gathered = np.zeros(n, dtype=np.float64)
        for part in graph.partitions():
            per_edge = np.repeat(contributions[part.lo:part.hi],
                                 part.out_degrees())
            np.add.at(gathered, part.targets, per_edge)
        return gathered

    def _gather_interpreted(self, ranks):
        """Edge-at-a-time oracle, in ``bincount``'s accumulation order."""
        graph = self.graph
        n = graph.num_vertices
        offsets = graph.offsets.tolist()
        targets = graph.targets.tolist()
        gathered = [0.0] * n
        for u in range(n):
            start, end = offsets[u], offsets[u + 1]
            if end == start:
                continue
            contribution = float(ranks[u]) / (end - start)
            for e in range(start, end):
                gathered[targets[e]] += contribution
        return np.array(gathered, dtype=np.float64)


class BFSPush(Kernel):
    """BFS frontier expansion: the boolean SpMSpV of equation 10.

    ``step(frontier)`` returns the sorted unique neighbor candidates of
    the frontier; the caller masks them against its visited structure
    (dense distances array, bit-vector, ...), which is engine policy,
    not kernel numerics.
    """

    algorithm = "bfs"
    direction = "push"

    def prepare(self, graph):
        self.graph = graph
        self.out_degrees = graph.out_degrees()
        return self

    def step(self, frontier):
        work = KernelWork(edges=float(self.out_degrees[frontier].sum()),
                          frontier=float(frontier.size))
        if interpreted():
            candidates = self._expand_interpreted(frontier)
        elif hasattr(self.graph, "frontier_neighbors_unique"):
            # Out-of-core path: running sorted union per partition, so
            # the expansion never holds the whole frontier gather.
            candidates, _ = self.graph.frontier_neighbors_unique(frontier)
        else:
            neighbors, _ = self.graph.neighbors_of_many(frontier)
            candidates = np.unique(neighbors)
        return candidates, work

    def _expand_interpreted(self, frontier):
        offsets = self.graph.offsets.tolist()
        targets = self.graph.targets.tolist()
        seen = set()
        for u in frontier.tolist():
            for e in range(offsets[u], offsets[u + 1]):
                seen.add(targets[e])
        return np.array(sorted(seen), dtype=np.int64)


def semiring_spmv(graph, x, semiring, edge_values=None):
    """``y = A^T x`` over an arbitrary ``(add, multiply, zero)`` semiring.

    The CombBLAS primitive (matrix family): plus-times carries PageRank,
    min-plus relaxes BFS distances, or-and expands boolean frontiers.
    The interpreted oracle covers those three named semirings with
    scalar loops; other (user-defined) semirings always run vectorized,
    because their ``add_reduce`` is a segment callable the oracle cannot
    replay element-wise.
    """
    x = np.asarray(x, dtype=np.float64)
    if x.shape != (graph.num_vertices,):
        raise ValueError(
            f"x must have {graph.num_vertices} entries, got {x.shape}"
        )
    if edge_values is None:
        edge_values = np.ones(graph.num_edges)
    else:
        edge_values = np.asarray(edge_values, dtype=np.float64)
        if edge_values.shape != (graph.num_edges,):
            raise ValueError("edge_values must have one entry per edge")
    if interpreted() and semiring.name in ("plus-times", "min-plus", "or-and"):
        return _semiring_spmv_interpreted(graph, x, semiring, edge_values)
    sources = graph.sources()
    combined = semiring.multiply(edge_values, x[sources])
    reduced = semiring.add_reduce(combined, graph.targets, graph.num_vertices)
    # Positions never reduced into hold the additive identity.
    touched = np.zeros(graph.num_vertices, dtype=bool)
    touched[graph.targets] = True
    return np.where(touched, reduced, semiring.zero)


def _semiring_spmv_interpreted(graph, x, semiring, edge_values):
    """Scalar edge loop for the three paper semirings, order-matched."""
    n = graph.num_vertices
    offsets = graph.offsets.tolist()
    targets = graph.targets.tolist()
    values = edge_values.tolist()
    zero = float(semiring.zero)
    out = [zero] * n
    touched = [False] * n
    name = semiring.name
    for u in range(n):
        xu = float(x[u])
        for e in range(offsets[u], offsets[u + 1]):
            t = targets[e]
            a = values[e]
            if name == "plus-times":
                combined = a * xu
                out[t] = combined if not touched[t] else out[t] + combined
            elif name == "min-plus":
                combined = a + xu
                out[t] = combined if not touched[t] else min(out[t], combined)
            else:  # or-and
                combined = 1.0 if (a != 0.0 and xu != 0.0) else 0.0
                out[t] = combined if not touched[t] else max(out[t], combined)
            touched[t] = True
    return np.array(out, dtype=np.float64)
