"""Kernel backend selection: vectorized fast path vs interpreted oracle.

Every numeric primitive in :mod:`repro.kernels` has two implementations:

* ``vectorized`` — numpy/scipy-CSR bulk operations, the production fast
  path (GraphMat's lesson: vertex programs compiled down to SpMV close
  most of the gap to native);
* ``interpreted`` — pure-Python edge-at-a-time loops that replicate the
  vectorized accumulation *order*, kept as a differential-testing
  oracle. Deliberately slow; its only job is to agree bit-for-bit.

The active backend is process-global: the ``REPRO_KERNELS`` environment
variable sets the default, :func:`set_backend` overrides it, and
:func:`use_backend` scopes an override to a ``with`` block. Counted
work, traffic and memory are analytic (derived from sizes and degrees,
never from loop trip counts), so the backend choice can change wall
clock only — simulated runtimes, BENCH baselines and sweep journals are
byte-identical under either.
"""

from __future__ import annotations

import os
from contextlib import contextmanager

from ..errors import KernelError

#: Environment variable consulted when no explicit override is set.
ENV_VAR = "REPRO_KERNELS"

VECTORIZED = "vectorized"
INTERPRETED = "interpreted"
BACKENDS = (VECTORIZED, INTERPRETED)

_override = None


def _validate(name: str) -> str:
    if name not in BACKENDS:
        raise KernelError(
            f"unknown kernel backend {name!r}; known: {', '.join(BACKENDS)}"
        )
    return name


def active_backend() -> str:
    """The backend every kernel primitive dispatches on right now."""
    if _override is not None:
        return _override
    env = os.environ.get(ENV_VAR)
    if env:
        return _validate(env)
    return VECTORIZED


def set_backend(name) -> None:
    """Set (or with ``None`` clear) the process-wide backend override."""
    global _override
    _override = None if name is None else _validate(name)


@contextmanager
def use_backend(name):
    """Scope a backend override to a ``with`` block (re-entrant)."""
    global _override
    previous = _override
    _override = None if name is None else _validate(name)
    try:
        yield
    finally:
        _override = previous


def interpreted() -> bool:
    """True when the slow differential-oracle backend is active."""
    return active_backend() == INTERPRETED
