"""Blocked SGD / GD factor-update kernels for collaborative filtering.

The numeric core every CF runner shares: equations (5)-(8) as mini-batch
SGD sweeps and equations (11)-(12) as full gradient-descent steps.
Moved here from ``frameworks/native/cf.py`` (which re-exports them) so
the matrix, vertex, datalog and task front-ends all parameterize one
kernel instead of re-implementing the update math.

The interpreted backend processes the same mini-batches rating by
rating with scalar loops. It preserves the vectorized accumulation
order for the gather/scatter structure, but per-rating K-vector dot
products round differently at the last ulp than ``einsum``, so CF
factors agree to ~1e-12 rather than bit-for-bit; counted work depends
only on rating counts and degrees, which is why simulated metrics stay
byte-identical anyway.
"""

from __future__ import annotations

import numpy as np

from .backend import interpreted
from .base import Kernel, KernelWork

_SGD_BATCH = 1024


def training_rmse(ratings, p_factors, q_factors) -> float:
    """RMSE over the observed ratings; inf when training has diverged."""
    if interpreted():
        total = 0.0
        users = ratings.users.tolist()
        items = ratings.items.tolist()
        values = ratings.ratings.tolist()
        for i in range(len(values)):
            predicted = float(np.dot(p_factors[users[i]],
                                     q_factors[items[i]]))
            error = values[i] - predicted
            total += error * error
        return float(np.sqrt(total / max(len(values), 1)))
    with np.errstate(over="ignore", invalid="ignore"):
        predicted = np.einsum(
            "ij,ij->i", p_factors[ratings.users], q_factors[ratings.items]
        )
        return float(np.sqrt(np.mean((ratings.ratings - predicted) ** 2)))


def sgd_sweep(users, items, values, p_factors, q_factors, gamma,
              lambda_p, lambda_q, batch=_SGD_BATCH):
    """One pass over the given ratings in order, mini-batch vectorized.

    Implements equations (5)-(8): e = R - p.q; p += gamma(e q - lp p);
    q += gamma(e p - lq q), with both updates applied per rating.
    Within a batch, reads see the factors from before the batch (a
    Hogwild-style staleness both backends share).
    """
    if interpreted():
        _sgd_sweep_interpreted(users, items, values, p_factors, q_factors,
                               gamma, lambda_p, lambda_q, batch)
        return
    for start in range(0, users.size, batch):
        u = users[start:start + batch]
        v = items[start:start + batch]
        r = values[start:start + batch]
        pu = p_factors[u]
        qv = q_factors[v]
        err = r - np.einsum("ij,ij->i", pu, qv)
        dp = gamma * (err[:, None] * qv - lambda_p * pu)
        dq = gamma * (err[:, None] * pu - lambda_q * qv)
        np.add.at(p_factors, u, dp)
        np.add.at(q_factors, v, dq)


def _sgd_sweep_interpreted(users, items, values, p_factors, q_factors,
                           gamma, lambda_p, lambda_q, batch):
    """Rating-at-a-time oracle with the same per-batch staleness."""
    for start in range(0, users.size, batch):
        u = users[start:start + batch]
        v = items[start:start + batch]
        r = values[start:start + batch]
        pu = p_factors[u].copy()
        qv = q_factors[v].copy()
        for i in range(u.size):
            err = float(r[i]) - float(np.dot(pu[i], qv[i]))
            dp = gamma * (err * qv[i] - lambda_p * pu[i])
            dq = gamma * (err * pu[i] - lambda_q * qv[i])
            p_factors[u[i]] += dp
            q_factors[v[i]] += dq


def gd_step(ratings_csr, ratings_csr_t, user_degrees, item_degrees,
            p_factors, q_factors, gamma, lambda_p, lambda_q):
    """One full Gradient Descent step (equations 11-12), simultaneous."""
    if interpreted():
        _gd_step_interpreted(ratings_csr, user_degrees, item_degrees,
                             p_factors, q_factors, gamma, lambda_p, lambda_q)
        return
    errors = ratings_csr.copy()
    predicted = np.einsum(
        "ij,ij->i",
        p_factors[_row_index(ratings_csr)], q_factors[ratings_csr.indices]
    )
    errors.data = ratings_csr.data - predicted
    grad_p = errors @ q_factors - lambda_p * user_degrees[:, None] * p_factors
    errors_t = errors.T.tocsr()
    grad_q = errors_t @ p_factors - lambda_q * item_degrees[:, None] * q_factors
    p_factors += gamma * grad_p
    q_factors += gamma * grad_q


def _gd_step_interpreted(ratings_csr, user_degrees, item_degrees,
                         p_factors, q_factors, gamma, lambda_p, lambda_q):
    """Rating-at-a-time gradient accumulation in CSR order."""
    indptr = ratings_csr.indptr.tolist()
    indices = ratings_csr.indices.tolist()
    data = ratings_csr.data.tolist()
    grad_p = np.zeros_like(p_factors)
    grad_q = np.zeros_like(q_factors)
    for u in range(ratings_csr.shape[0]):
        for e in range(indptr[u], indptr[u + 1]):
            v = indices[e]
            error = data[e] - float(np.dot(p_factors[u], q_factors[v]))
            grad_p[u] += error * q_factors[v]
            grad_q[v] += error * p_factors[u]
    grad_p -= lambda_p * user_degrees[:, None] * p_factors
    grad_q -= lambda_q * item_degrees[:, None] * q_factors
    p_factors += gamma * grad_p
    q_factors += gamma * grad_q


def _row_index(csr_matrix) -> np.ndarray:
    return np.repeat(np.arange(csr_matrix.shape[0]), np.diff(csr_matrix.indptr))


class CFBlockedGD(Kernel):
    """Full-gradient CF updates over a prepared ratings matrix."""

    algorithm = "collaborative_filtering"
    direction = "blocked-gd"

    def prepare(self, ratings):
        from scipy import sparse

        self.ratings = ratings
        self.csr = sparse.csr_matrix(
            (ratings.ratings, (ratings.users, ratings.items)),
            shape=(ratings.num_users, ratings.num_items),
        )
        self.csr_t = self.csr.T.tocsr()
        self.user_degrees = ratings.user_degrees().astype(np.float64)
        self.item_degrees = ratings.item_degrees().astype(np.float64)
        return self

    def step(self, p_factors, q_factors, gamma, lambda_p, lambda_q):
        gd_step(self.csr, self.csr_t, self.user_degrees, self.item_degrees,
                p_factors, q_factors, gamma, lambda_p, lambda_q)
        work = KernelWork(edges=float(self.ratings.num_ratings),
                          vertices=float(self.ratings.num_users
                                         + self.ratings.num_items))
        return (p_factors, q_factors), work

    def rmse(self, p_factors, q_factors) -> float:
        return training_rmse(self.ratings, p_factors, q_factors)


class CFBlockedSGD(Kernel):
    """Mini-batch SGD sweeps (the Gemulla diagonal-block inner loop)."""

    algorithm = "collaborative_filtering"
    direction = "blocked-sgd"

    def __init__(self, batch: int = _SGD_BATCH):
        self.batch = batch

    def prepare(self, ratings):
        self.ratings = ratings
        return self

    def step(self, users, items, values, p_factors, q_factors, gamma,
             lambda_p, lambda_q):
        sgd_sweep(users, items, values, p_factors, q_factors, gamma,
                  lambda_p, lambda_q, batch=self.batch)
        work = KernelWork(edges=float(users.size))
        return (p_factors, q_factors), work

    def rmse(self, p_factors, q_factors) -> float:
        return training_rmse(self.ratings, p_factors, q_factors)
