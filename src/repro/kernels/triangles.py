"""Masked ``nnz(A ∘ A²)`` triangle kernels.

On an id-oriented graph, the overlap matrix ``(A @ A) ∘ A`` holds, per
oriented edge (u, w), the number of two-paths u -> x -> w — each
triangle u < x < w counted exactly once at its (u, w) edge. The
vectorized backend computes it as one sparse matrix product (what every
engine's counting reduces to); the interpreted backend replays it with
per-edge Python set intersections, producing the *same* overlap matrix
structure and values. ``aa_product``/``masked_sum`` expose the unfused
two-step form CombBLAS is stuck with (Section 6.2's missing
inter-operation optimization).
"""

from __future__ import annotations

import numpy as np
from scipy import sparse

from ..algorithms.triangles import require_oriented
from .backend import interpreted
from .base import Kernel, KernelWork


class TriangleMaskedCount(Kernel):
    """Fused masked count: ``sum((A @ A) ∘ A)`` plus the overlap matrix."""

    algorithm = "triangle_counting"
    direction = "masked-spgemm"

    def prepare(self, graph):
        require_oriented(graph)
        self.graph = graph
        return self

    def step(self):
        graph = self.graph
        if interpreted():
            count, overlap = _overlap_interpreted(graph)
        else:
            n = graph.num_vertices
            adjacency = sparse.csr_matrix(
                (np.ones(graph.num_edges, dtype=np.float64),
                 graph.targets.astype(np.int64),
                 graph.offsets.astype(np.int64)),
                shape=(n, n),
            )
            paths = adjacency @ adjacency
            overlap = paths.multiply(adjacency)
            count = int(overlap.sum())
        work = KernelWork(edges=float(graph.num_edges),
                          vertices=float(graph.num_vertices))
        return (count, overlap), work


def _overlap_interpreted(graph):
    """Per-edge two-path counting: ``|N_out(u) ∩ N_in(w)|`` for each edge."""
    reverse = graph.reverse()
    offsets = graph.offsets.tolist()
    targets = graph.targets.tolist()
    in_offsets = reverse.offsets.tolist()
    in_targets = reverse.targets.tolist()
    rows, cols, data = [], [], []
    total = 0
    for u in range(graph.num_vertices):
        start, end = offsets[u], offsets[u + 1]
        if end == start:
            continue
        out_u = set(targets[start:end])
        for e in range(start, end):
            w = targets[e]
            paths = 0
            for f in range(in_offsets[w], in_offsets[w + 1]):
                if in_targets[f] in out_u:
                    paths += 1
            if paths:
                rows.append(u)
                cols.append(w)
                data.append(float(paths))
                total += paths
    n = graph.num_vertices
    overlap = sparse.csr_matrix(
        (np.array(data), (np.array(rows, dtype=np.int64),
                          np.array(cols, dtype=np.int64))),
        shape=(n, n),
    )
    return total, overlap


def aa_product(adjacency):
    """``A @ A`` with the full product materialized (CombBLAS's SpGEMM)."""
    if not interpreted():
        return adjacency @ adjacency
    n = adjacency.shape[0]
    indptr = adjacency.indptr.tolist()
    indices = adjacency.indices.tolist()
    values = adjacency.data.tolist()
    out_indptr = [0]
    out_indices = []
    out_data = []
    for u in range(n):
        accumulator = {}
        for e in range(indptr[u], indptr[u + 1]):
            v = indices[e]
            a_uv = values[e]
            for f in range(indptr[v], indptr[v + 1]):
                w = indices[f]
                accumulator[w] = accumulator.get(w, 0.0) + a_uv * values[f]
        for w in sorted(accumulator):
            out_indices.append(w)
            out_data.append(accumulator[w])
        out_indptr.append(len(out_indices))
    return sparse.csr_matrix(
        (np.array(out_data), np.array(out_indices, dtype=np.int64),
         np.array(out_indptr, dtype=np.int64)),
        shape=(n, n),
    )


def masked_sum(adjacency, product) -> float:
    """``sum(A ∘ product)`` — the elementwise mask-and-reduce step."""
    if not interpreted():
        return float(adjacency.multiply(product).sum())
    indptr = adjacency.indptr.tolist()
    indices = adjacency.indices.tolist()
    values = adjacency.data.tolist()
    p_indptr = product.indptr.tolist()
    p_indices = product.indices.tolist()
    p_data = product.data.tolist()
    total = 0.0
    for u in range(adjacency.shape[0]):
        row = {p_indices[f]: p_data[f]
               for f in range(p_indptr[u], p_indptr[u + 1])}
        for e in range(indptr[u], indptr[u + 1]):
            entry = row.get(indices[e])
            if entry is not None:
                total += values[e] * entry
    return float(total)
