"""The ``Kernel`` protocol and the analytic work record kernels return.

A kernel is the numeric hot loop of one algorithm, shared by every
framework family. The protocol (documented for engine authors in
:mod:`repro.frameworks.base`) is::

    kernel = registry.kernel(algorithm, direction)(**algorithm_params)
    kernel.prepare(graph)                 # bind/cache per-graph state
    result, work = kernel.step(state)     # one superstep's numerics

``step`` returns the numerical result *plus* a :class:`KernelWork` of
analytic counts — edges touched, vertices touched, frontier size —
computed from array sizes and degrees rather than loop iterations.
Engines multiply those counts by their profile's efficiency/overhead
constants to build :class:`~repro.cluster.ComputeWork`, which is why the
interpreted and vectorized backends charge identical simulated work.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class KernelWork:
    """Analytic counts of what one kernel step touched.

    Derived from sizes/degrees (``frontier.size``, ``degrees[frontier]``
    sums, ``nnz``), never from backend loop trip counts — both backends
    report identical numbers by construction.
    """

    edges: float = 0.0      #: adjacency entries the step visited
    vertices: float = 0.0   #: vertices whose state the step read/wrote
    frontier: float = 0.0   #: active input vertices (sparse steps)


class Kernel:
    """Base class for the registered kernels (see module docstring).

    Subclasses set :attr:`algorithm` and :attr:`direction` (the registry
    key), implement :meth:`prepare` and :meth:`step`, and dispatch their
    numerics on :func:`repro.kernels.backend.active_backend`.
    """

    algorithm = None
    direction = None

    def prepare(self, graph):
        """Bind per-graph state; returns ``self`` for chaining."""
        raise NotImplementedError

    def step(self, *args, **kwargs):
        """Run one superstep; returns ``(result, KernelWork)``."""
        raise NotImplementedError
