"""Dispatch table: ``(algorithm, direction)`` -> kernel class.

Mirrors :mod:`repro.algorithms.registry`'s ``(algorithm, framework)``
table one layer down: engines look their numeric hot loop up here
instead of importing concrete functions, so a new backend or a swapped
kernel implementation never touches engine code.
"""

from __future__ import annotations

from ..errors import KernelError
from .propagation import KCorePeel, LPSync, SSSPRelax, WCCPropagate
from .sgd import CFBlockedGD, CFBlockedSGD
from .spmv import BFSPush, PageRankPull
from .triangles import TriangleMaskedCount

KERNELS = {
    ("pagerank", "pull"): PageRankPull,
    ("bfs", "push"): BFSPush,
    ("triangle_counting", "masked-spgemm"): TriangleMaskedCount,
    ("collaborative_filtering", "blocked-gd"): CFBlockedGD,
    ("collaborative_filtering", "blocked-sgd"): CFBlockedSGD,
    ("wcc", "propagate"): WCCPropagate,
    ("sssp", "relax"): SSSPRelax,
    ("k_core", "peel"): KCorePeel,
    ("label_propagation", "sync"): LPSync,
}


def directions(algorithm: str) -> tuple:
    """The registered directions for one algorithm, sorted."""
    return tuple(sorted(d for (a, d) in KERNELS if a == algorithm))


def kernel(algorithm: str, direction: str):
    """Look up a kernel class; raises :class:`KernelError` on a miss."""
    try:
        return KERNELS[(algorithm, direction)]
    except KeyError:
        known = ", ".join(f"{a}/{d}" for a, d in sorted(KERNELS))
        raise KernelError(
            f"no kernel registered for ({algorithm!r}, {direction!r}); "
            f"known: {known}"
        ) from None
