"""Resilient sweep engine: durable, resumable experiment sweeps.

The paper's headline artifacts (Tables 5/6, Figures 3-7) are sweeps over
(algorithm x framework x dataset x nodes) cells in which some cells
legitimately fail — CombBLAS OOMs on Twitter triangle counting, Giraph
cannot fit graphs at low node counts. A monolithic in-memory loop loses
every completed cell on the first crash, hang or Ctrl-C. This module is
the layer between "loop over run_experiment" and "unattended overnight
sweep":

* **Enumeration up front.** A sweep is a list of cell *keys* (plain
  dicts of strings/numbers) plus one executor. The engine knows the
  whole frontier before the first cell runs, so coverage is always
  well-defined.
* **Per-cell isolation.** Each cell runs inside its own try/except
  boundary. Typed failures (:class:`~repro.errors.CapacityError`,
  :class:`~repro.errors.ExpressibilityError`,
  :class:`~repro.errors.DeadlineExceeded`,
  :class:`~repro.errors.NodeFailure`) become typed cell records —
  ``ok`` / ``out-of-memory`` / ``unsupported`` / ``timeout`` /
  ``failed`` — exactly the DNF vocabulary benchmarking studies print as
  dashes.
* **Deadlines on the simulated clock.** ``deadline_s`` is handed to the
  executor (and from there to the :class:`~repro.cluster.Cluster`), so
  a hung convergence loop surfaces as a ``timeout`` cell, not a wedged
  process.
* **Retry + quarantine.** Unexpected exceptions (anything *not* typed)
  are treated as transient: the cell is retried with capped exponential
  backoff, and quarantined as ``failed`` after ``max_retries`` retries
  so one bad configuration cannot sink the sweep.
* **Durable journal.** Every finished cell is appended to a JSONL
  journal (header written atomically, records flushed+fsynced line by
  line). An interrupted sweep resumed from its journal *replays*
  completed cells — it never recomputes them — and tolerates a
  torn (partially written) final line from a mid-write crash.
* **Completeness report.** :meth:`SweepResult.completeness` summarizes
  coverage and the failure taxonomy per sweep; retry / quarantine /
  deadline / replay events are mirrored as tracer instants so the
  flight recorder explains every DNF.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from ..datagen import cache as _dataset_cache
from ..graph import sharded as _sharded_graphs
from ..errors import (
    CapacityError,
    DeadlineExceeded,
    ExpressibilityError,
    NodeFailure,
    ReproError,
)
from ..observability import NULL_TRACER
from .persistence import _jsonable, atomic_write_text
from .runner import (
    CELL_STATUSES,
    STATUS_CRASHED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_OOM,
    STATUS_TIMEOUT,
    STATUS_UNSUPPORTED,
)

JOURNAL_VERSION = 1

#: Typed errors an executor may raise, with the cell status each maps to.
#: ``MemoryError`` is typed on purpose: with the supervised pool capping
#: worker address space (``memory_limit_mb``), a *real* allocation
#: blow-up surfaces exactly like the simulator's ``CapacityError`` —
#: as the paper's ``out-of-memory`` dash, not a quarantined crash.
TYPED_FAILURES = (
    (CapacityError, STATUS_OOM),
    (ExpressibilityError, STATUS_UNSUPPORTED),
    (DeadlineExceeded, STATUS_TIMEOUT),
    (NodeFailure, STATUS_FAILED),
    (MemoryError, STATUS_OOM),
)

_TYPED_ERRORS = tuple(error for error, _ in TYPED_FAILURES)


def cell_id(key: dict) -> str:
    """Canonical identity of a cell key (stable across runs/processes)."""
    return json.dumps({str(k): key[k] for k in key}, sort_keys=True,
                      separators=(",", ":"))


@dataclass
class CellOutcome:
    """What an executor reports for one cell: a status plus its payload.

    Executors that call :func:`~repro.harness.run_experiment` should
    return :func:`outcome_of` so the runner's own failure classification
    (OOM-as-result etc.) carries through; executors that just compute a
    value may return it bare — the engine treats a non-outcome return as
    ``ok``.
    """

    status: str
    value: object = None
    failure: str = ""


def outcome_of(run) -> CellOutcome:
    """Lift a :class:`~repro.harness.RunResult` into a cell outcome.

    The journaled payload is the minimal JSON the table/figure
    assemblers need (the comparison runtime), never the full result
    object — journals stay small and replay stays exact.
    """
    value = {"runtime_s": run.runtime_or_none()} if run.ok else None
    return CellOutcome(run.status, value=value, failure=run.failure)


@dataclass
class CellRecord:
    """The durable outcome of one sweep cell."""

    key: dict
    status: str
    value: object = None
    failure: str = ""
    attempts: int = 1
    backoff_s: list = field(default_factory=list)
    quarantined: bool = False
    #: True when a *wall-clock* deadline (the supervised pool killing a
    #: hung worker) produced this record, as opposed to the simulated
    #: clock's ``DeadlineExceeded``. Real-world, not reproducible, so
    #: resume re-runs such cells instead of replaying them.
    wall_clock: bool = False
    #: True when this record came from a journal instead of execution.
    #: Not serialized — it describes this process, not the cell.
    replayed: bool = field(default=False, compare=False)

    @property
    def real_fault(self) -> bool:
        """Did a real process fault (crash / wall timeout) end this cell?

        Such outcomes describe the machine the sweep ran on, not the
        simulated experiment, so resume treats them as *not completed*:
        the cell is re-executed rather than replayed, and a fault-free
        rerun converges to the journal a clean run would have written.
        """
        return self.status == STATUS_CRASHED or \
            (self.status == STATUS_TIMEOUT and self.wall_clock)

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def runtime(self):
        """``value["runtime_s"]`` for experiment cells, None on DNF."""
        if not self.ok or not isinstance(self.value, dict):
            return None
        return self.value.get("runtime_s")

    def to_dict(self) -> dict:
        out = {
            "key": {str(k): self.key[k] for k in self.key},
            "status": self.status,
            "value": self.value,
            "attempts": self.attempts,
        }
        if self.failure:
            out["failure"] = self.failure
        if self.backoff_s:
            out["backoff_s"] = list(self.backoff_s)
        if self.quarantined:
            out["quarantined"] = True
        if self.wall_clock:
            out["wall_clock"] = True
        return out

    @classmethod
    def from_dict(cls, payload: dict) -> "CellRecord":
        if "key" not in payload or "status" not in payload:
            raise ReproError("journal record is missing key/status")
        if payload["status"] not in CELL_STATUSES:
            raise ReproError(
                f"journal record has unknown status {payload['status']!r}"
            )
        return cls(
            key=dict(payload["key"]),
            status=payload["status"],
            value=payload.get("value"),
            failure=payload.get("failure", ""),
            attempts=int(payload.get("attempts", 1)),
            backoff_s=list(payload.get("backoff_s", [])),
            quarantined=bool(payload.get("quarantined", False)),
            wall_clock=bool(payload.get("wall_clock", False)),
            replayed=True,
        )


class SweepJournal:
    """Append-only JSONL run store for one sweep.

    Line 1 is a header (sweep name, journal version, engine config),
    written atomically via temp-file + ``os.replace``; every line after
    it is one completed :class:`CellRecord`. Appends go through an
    ``O_APPEND`` descriptor with exactly **one** ``write`` + ``fsync``
    per record: POSIX appends of one buffer do not interleave, so even
    a burst of completions (the parallel executor draining its merge
    buffer) can tear at most the final record mid-write — never
    interleave two. The loader drops a torn trailing line (the
    mid-write crash signature) but refuses garbage anywhere else.
    """

    def __init__(self, path):
        self.path = Path(path)
        self._fd = None
        # Set by load() when the file ends in a torn line: the intact
        # prefix that open() must restore before appending, so a new
        # record never concatenates onto the partial one.
        self._repaired_text = None

    def exists(self) -> bool:
        return self.path.exists()

    def load(self, name: str) -> dict:
        """Read back ``{cell_id: CellRecord}``; validates the header."""
        lines = self.path.read_text().split("\n")
        lines = [line for line in lines if line.strip()] or [""]
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError:
            raise ReproError(f"{self.path} has no valid journal header")
        if header.get("journal") != name \
                or header.get("version") != JOURNAL_VERSION:
            raise ReproError(
                f"{self.path} is a journal for "
                f"{header.get('journal')!r} v{header.get('version')}, "
                f"not {name!r} v{JOURNAL_VERSION}"
            )
        records = {}
        for index, line in enumerate(lines[1:], start=2):
            try:
                record = CellRecord.from_dict(json.loads(line))
            except json.JSONDecodeError:
                if index == len(lines):
                    # Torn final line: the crash happened mid-append.
                    # Everything before it is intact; drop it, and make
                    # open() rewrite the file without it so the next
                    # append starts on a fresh line.
                    self._repaired_text = \
                        "\n".join(lines[:index - 1]) + "\n"
                    break
                raise ReproError(
                    f"{self.path}:{index} is corrupt mid-journal; "
                    "refusing to resume from it"
                )
            records[cell_id(record.key)] = record
        return records

    def retain_prefix(self, count: int) -> None:
        """Keep only the header and the first ``count`` record lines.

        Called on resume when the journal tail holds real-fault records
        (``crashed``, wall-clock ``timeout``): merge order equals
        enumeration order, so truncating to the clean prefix and
        re-executing everything after it reconverges the journal to the
        bytes a fault-free run writes. The rewrite happens in
        :meth:`open`, through the same atomic path torn-tail repair
        uses.
        """
        text = self._repaired_text if self._repaired_text is not None \
            else self.path.read_text()
        lines = [line for line in text.split("\n") if line.strip()]
        self._repaired_text = "\n".join(lines[:1 + count]) + "\n"

    def open(self, name: str, config: dict) -> None:
        """Start (or continue) appending; writes the header if new."""
        if not self.path.exists():
            header = {"journal": name, "version": JOURNAL_VERSION,
                      "config": _jsonable(config)}
            atomic_write_text(self.path, json.dumps(header) + "\n")
        elif self._repaired_text is not None:
            atomic_write_text(self.path, self._repaired_text)
            self._repaired_text = None
        self._fd = os.open(self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT,
                           0o644)

    def append(self, record: CellRecord) -> None:
        line = json.dumps(_jsonable(record.to_dict()), sort_keys=True)
        # One write per record: an O_APPEND write of a single buffer is
        # atomic with respect to other appends, so a crash mid-burst
        # tears at most this line and never splices two records.
        os.write(self._fd, (line + "\n").encode())
        os.fsync(self._fd)

    def close(self) -> None:
        if self._fd is not None:
            os.close(self._fd)
            self._fd = None


@dataclass(frozen=True)
class CellPolicy:
    """Per-cell execution policy, shared by serial and parallel paths.

    A plain picklable value object: the parallel executor ships one to
    every worker so a cell behaves identically no matter which process
    (or how many) runs it.
    """

    deadline_s: float = None
    max_retries: int = 2
    backoff_base_s: float = 0.5
    backoff_cap_s: float = 8.0


def execute_cell(key: dict, execute, policy: CellPolicy,
                 tracer=None, sleep=None) -> CellRecord:
    """One cell behind its isolation boundary, with the retry policy.

    The single implementation of the engine's failure semantics —
    typed-failure classification, capped-exponential-backoff retries,
    quarantine — used verbatim by :class:`Sweep` in-process and by
    every :mod:`repro.harness.parallel` worker, so scheduling can never
    change what a cell records. Dataset-cache instants emitted while
    the cell runs land on ``tracer``.
    """
    tracer = tracer if tracer is not None else NULL_TRACER
    attempts = 0
    backoffs = []
    while True:
        attempts += 1
        with tracer.span("cell", attempt=attempts, **key), \
                _dataset_cache.use_tracer(tracer), \
                _sharded_graphs.use_tracer(tracer):
            try:
                outcome = execute(key, budget_s=policy.deadline_s)
            except _TYPED_ERRORS as error:
                status = next(s for err, s in TYPED_FAILURES
                              if isinstance(error, err))
                if status == STATUS_TIMEOUT:
                    tracer.instant("cell-deadline",
                                   budget_s=policy.deadline_s, **key)
                return CellRecord(key, status, failure=str(error),
                                  attempts=attempts, backoff_s=backoffs)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as error:  # unexpected: maybe transient
                failure = f"{type(error).__name__}: {error}"
                if attempts > policy.max_retries:
                    tracer.instant("cell-quarantined",
                                   attempts=attempts, error=failure,
                                   **key)
                    return CellRecord(key, STATUS_FAILED,
                                      failure=failure, attempts=attempts,
                                      backoff_s=backoffs,
                                      quarantined=True)
                delay = min(policy.backoff_base_s * 2 ** (attempts - 1),
                            policy.backoff_cap_s)
                backoffs.append(delay)
                tracer.instant("cell-retry", attempt=attempts,
                               backoff_s=delay, error=failure, **key)
                if sleep is not None:
                    sleep(delay)
                continue
        if isinstance(outcome, CellOutcome):
            status, value, failure = \
                outcome.status, outcome.value, outcome.failure
        else:
            status, value, failure = STATUS_OK, outcome, ""
        if status == STATUS_TIMEOUT:
            tracer.instant("cell-deadline", budget_s=policy.deadline_s,
                           **key)
        # Journaled and fresh values must be indistinguishable, so
        # normalize to JSON types *before* anyone consumes them.
        return CellRecord(key, status, value=_jsonable(value),
                          failure=failure, attempts=attempts,
                          backoff_s=backoffs)


@dataclass
class SweepResult:
    """All cell records of one sweep, in enumeration order."""

    name: str
    keys: list
    records: dict
    executed: int = 0
    replayed: int = 0
    #: Supervisor accounting (0 for serial / unsupervised runs): worker
    #: processes restarted after a death, and cells killed for blowing
    #: their wall-clock deadline.
    worker_restarts: int = 0
    wall_timeouts: int = 0

    def get(self, **key) -> CellRecord:
        """The record for one cell, by its key fields."""
        cid = cell_id(key)
        if cid not in self.records:
            raise ReproError(f"sweep {self.name!r} has no cell {cid}")
        return self.records[cid]

    def __iter__(self):
        for key in self.keys:
            yield self.records[cell_id(key)]

    def to_dict(self) -> dict:
        """JSON-safe snapshot: every record in enumeration order.

        Scheduling-independent by design — a ``jobs=4`` sweep must
        produce exactly the dict a serial sweep does, which the
        determinism tests assert byte-for-byte.
        """
        return {
            "sweep": self.name,
            "records": [self.records[cell_id(key)].to_dict()
                        for key in self.keys],
            "executed": self.executed,
            "replayed": self.replayed,
            "completeness": self.completeness(),
        }

    def completeness(self) -> dict:
        """Coverage + failure taxonomy: the sweep's summary report."""
        counts = {status: 0 for status in CELL_STATUSES}
        dnf, quarantined, retried = [], [], 0
        for record in self:
            counts[record.status] += 1
            retried += record.attempts - 1
            if record.quarantined:
                quarantined.append(record.key)
            if not record.ok:
                dnf.append({"key": record.key, "status": record.status,
                            "failure": record.failure})
        total = len(self.keys)
        return {
            "sweep": self.name,
            "cells": total,
            "statuses": counts,
            "coverage": counts[STATUS_OK] / total if total else 1.0,
            "executed": self.executed,
            "replayed": self.replayed,
            "retries": retried,
            "worker_restarts": self.worker_restarts,
            "wall_timeouts": self.wall_timeouts,
            "quarantined": quarantined,
            "dnf": dnf,
        }


class Sweep:
    """The resilient sweep engine.

    ``Sweep("table5").run(cells, execute)`` runs every cell through an
    isolated failure boundary; add ``journal=`` for durability,
    ``resume=True`` to replay a previous journal, ``deadline_s=`` for a
    per-cell simulated-time budget, and ``max_retries=`` /
    ``backoff_base_s`` / ``backoff_cap_s`` for the transient-failure
    policy. ``sleep`` is the backoff clock — ``None`` (the default)
    records the schedule without real-time waiting, which is the right
    choice for a simulator; pass ``time.sleep`` when the executor talks
    to real systems.

    ``jobs`` fans cells out over the **supervised worker pool**
    (:mod:`repro.harness.supervisor`): ``None``/``1`` run in-process,
    ``0`` means ``os.cpu_count()``, and any other N runs N workers.
    The parent stays the sole journal writer and merges records in
    enumeration order, so journals, resume, retries and DNF taxonomy
    are **byte-identical across any worker count**.

    The supervisor adds real-process fault tolerance on top:
    ``wall_deadline_s`` is a per-cell *wall-clock* budget (distinct
    from the simulated ``deadline_s``) after which a hung worker is
    killed and the cell records ``timeout`` with ``wall_clock=true``;
    ``max_crashes`` quarantines a poison cell as ``crashed`` after it
    kills that many workers; ``memory_limit_mb`` caps each worker's
    address space (``RLIMIT_AS``, as headroom above the interpreter's
    footprint at fork) so a real allocation blow-up surfaces as the
    ``out-of-memory`` status; and ``real_chaos`` injects *actual*
    process faults (:class:`~repro.chaos.RealFaultPlan`, also via
    ``$REPRO_CHAOS_REAL``) to prove all of the above. Any of these
    knobs routes execution through the supervisor even at ``jobs=1``.

    The engine is deliberately stateless between ``run`` calls except
    for ``last``, the most recent :class:`SweepResult` (handy for
    callers like the CLI that get back only assembled table data).
    """

    def __init__(self, name: str, journal=None, resume: bool = False,
                 deadline_s: float = None, max_retries: int = 2,
                 backoff_base_s: float = 0.5, backoff_cap_s: float = 8.0,
                 sleep=None, tracer=None, jobs=None,
                 wall_deadline_s: float = None, max_crashes: int = 2,
                 memory_limit_mb: float = None,
                 mapped_allowance_mb: float = 0.0, real_chaos=None,
                 pool=None, stop=None, on_cell=None):
        from ..chaos.real import resolve_real_chaos

        if max_retries < 0:
            raise ReproError("max_retries must be >= 0")
        if jobs is not None and jobs < 0:
            raise ReproError("jobs must be >= 0 (0 = all cores)")
        if wall_deadline_s is not None and wall_deadline_s <= 0:
            raise ReproError("wall_deadline_s must be > 0")
        if max_crashes < 1:
            raise ReproError("max_crashes must be >= 1")
        if memory_limit_mb is not None and memory_limit_mb <= 0:
            raise ReproError("memory_limit_mb must be > 0")
        if mapped_allowance_mb < 0:
            raise ReproError("mapped_allowance_mb must be >= 0")
        self.name = name
        self.journal_path = Path(journal) if journal is not None else None
        self.resume = resume
        self.deadline_s = deadline_s
        self.max_retries = max_retries
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        self.sleep = sleep
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.jobs = jobs
        self.wall_deadline_s = wall_deadline_s
        self.max_crashes = max_crashes
        self.memory_limit_mb = memory_limit_mb
        self.mapped_allowance_mb = mapped_allowance_mb
        self.real_chaos = resolve_real_chaos(real_chaos)
        #: Externally owned, already-started SupervisorPool to reuse
        #: (warm workers persist across runs); None = own a fresh pool.
        self.pool = pool
        #: Cooperative drain probe for non-main threads (returns a
        #: truthy signal number to drain) — the serving layer's SIGTERM
        #: path, where real signal handlers cannot be installed.
        self.stop = stop
        #: Optional per-record hook, called after each cell is merged
        #: (and journaled): ``on_cell(record)``.
        self.on_cell = on_cell
        self.last = None

    def policy(self) -> CellPolicy:
        return CellPolicy(deadline_s=self.deadline_s,
                          max_retries=self.max_retries,
                          backoff_base_s=self.backoff_base_s,
                          backoff_cap_s=self.backoff_cap_s)

    def supervisor_policy(self):
        """The parent-side supervision policy for the worker pool."""
        from .supervisor import SupervisorPolicy

        limit_bytes = int(self.memory_limit_mb * 2**20) \
            if self.memory_limit_mb else None
        allowance = int(self.mapped_allowance_mb * 2**20)
        return SupervisorPolicy(wall_deadline_s=self.wall_deadline_s,
                                max_crashes=self.max_crashes,
                                memory_limit_bytes=limit_bytes,
                                mapped_allowance_bytes=allowance)

    def supervised(self) -> bool:
        """Must cells run in worker processes (even at ``jobs=1``)?

        Wall-clock deadlines, crash containment, memory caps and real
        chaos all need a process boundary between the supervisor and
        the cell — in-process execution cannot kill a hung cell.
        """
        return bool(self.wall_deadline_s is not None
                    or self.memory_limit_mb is not None
                    or (self.real_chaos is not None
                        and len(self.real_chaos)))

    def effective_jobs(self) -> int:
        """The worker count ``run`` will use (resolves ``jobs=0``)."""
        if self.pool is not None:
            return self.pool.jobs
        if self.jobs == 0:
            return os.cpu_count() or 1
        return self.jobs or 1

    def _config(self) -> dict:
        # Deliberately excludes ``jobs``: the journal of a parallel
        # sweep must be byte-identical to (and resumable as) a serial
        # one — scheduling is not part of the sweep's identity.
        return {"deadline_s": self.deadline_s,
                "max_retries": self.max_retries,
                "backoff_base_s": self.backoff_base_s,
                "backoff_cap_s": self.backoff_cap_s}

    def run(self, cells, execute) -> SweepResult:
        """Run (or resume) the sweep; returns every cell's record.

        ``cells`` — an iterable of cell-key dicts, enumerated up front;
        ``execute(key, budget_s=...)`` — computes one cell and returns a
        JSON-safe payload or a :class:`CellOutcome`. The executor is
        never called for a cell already in the journal.
        """
        keys = [dict(key) for key in cells]
        ids = [cell_id(key) for key in keys]
        if len(set(ids)) != len(ids):
            raise ReproError(f"sweep {self.name!r} enumerates duplicate cells")

        journal, records = None, {}
        if self.journal_path is not None:
            journal = SweepJournal(self.journal_path)
            if journal.exists():
                if not self.resume:
                    raise ReproError(
                        f"journal {self.journal_path} already exists; pass "
                        "resume=True (--resume) to continue it or remove it "
                        "to start over"
                    )
                loaded = journal.load(self.name)
                # Only cells of *this* sweep replay; stale extras are
                # ignored (e.g. the frontier was narrowed between runs).
                records = {cid: loaded[cid] for cid in ids if cid in loaded}
                records = self._drop_real_faults(ids, records, journal)
            journal.open(self.name, self._config())

        result = SweepResult(self.name, keys, records)
        jobs = self.effective_jobs()
        tracer = self.tracer
        try:
            with tracer.span("sweep", sweep=self.name, cells=len(keys),
                             resumed=len(records), jobs=jobs):
                pending = []
                for index, (key, cid) in enumerate(zip(keys, ids)):
                    if cid in records:
                        result.replayed += 1
                        tracer.instant("cell-replayed", **key)
                    else:
                        pending.append((index, key, cid))
                if pending and (self.supervised()
                                or self.pool is not None
                                or (jobs > 1 and len(pending) > 1)):
                    self._run_parallel(pending, execute, jobs, len(keys),
                                       records, result, journal)
                else:
                    for _index, key, cid in pending:
                        record = self._run_cell(key, execute)
                        records[cid] = record
                        result.executed += 1
                        if journal is not None:
                            journal.append(record)
                        if self.on_cell is not None:
                            self.on_cell(record)
        finally:
            if journal is not None:
                journal.close()
        self.last = result
        return result

    def _drop_real_faults(self, ids, records, journal) -> dict:
        """Forget journaled cells a *real* process fault ended.

        A ``crashed`` or wall-clock ``timeout`` record describes the
        machine (a poison binary, an overloaded box), not the simulated
        experiment — replaying it would freeze a transient outcome
        forever. Resume instead re-executes those cells: the journal is
        truncated to its clean enumeration-order prefix (merge order ==
        enumeration order, so everything after the first real-fault
        line re-runs deterministically) and a fault-free resume
        converges byte-for-byte to the journal of a clean run.
        """
        if not any(record.real_fault for record in records.values()):
            return records
        kept = {}
        for cid in ids:
            record = records.get(cid)
            if record is None or record.real_fault:
                break
            kept[cid] = record
        for cid, record in records.items():
            if record.real_fault:
                self.tracer.instant("cell-refaulted", status=record.status,
                                    **record.key)
        journal.retain_prefix(len(kept))
        return kept

    def _run_cell(self, key: dict, execute) -> CellRecord:
        """One cell behind its isolation boundary, with retry policy."""
        return execute_cell(key, execute, self.policy(),
                            tracer=self.tracer, sleep=self.sleep)

    def _run_parallel(self, pending, execute, jobs, num_cells, records,
                      result, journal) -> None:
        """Fan pending cells over the supervised pool; merge in order."""
        from .supervisor import SupervisorStats, run_cells_supervised

        plan = self.real_chaos if self.real_chaos is not None \
            and len(self.real_chaos) else None
        supervise = self.supervisor_policy()
        if plan is not None:
            plan.validate(num_cells,
                          supervise.memory_limit_bytes is not None)
        stats = SupervisorStats()
        try:
            for cell in run_cells_supervised(
                    pending, execute, self.policy(), jobs,
                    supervise=supervise, traced=self.tracer.enabled,
                    sleep=self.sleep, tracer=self.tracer, plan=plan,
                    stats=stats, pool=self.pool, stop=self.stop):
                records[cell.cid] = cell.record
                result.executed += 1
                self.tracer.merge_spans(cell.spans, worker=cell.worker)
                if journal is not None:
                    journal.append(cell.record)
                if self.on_cell is not None:
                    self.on_cell(cell.record)
        finally:
            result.worker_restarts += stats.restarts
            result.wall_timeouts += stats.wall_timeouts
