"""Supervised worker pool: parallel sweeps that survive real faults.

The PR-5 executor fanned cells over a bare ``multiprocessing.Pool``,
which defends against nothing the real world does to long sweeps: a
worker that segfaults or is OOM-killed stalls ``imap`` forever, a cell
that spins past any reasonable wall time wedges the whole run, and a
poison cell would be re-dispatched until the machine gives up. Ammar &
Özsu's eight-system study reports exactly this failure class — jobs
that *fail or never return* — as the dominant result at scale, and the
PR-3 DNF taxonomy exists to record it honestly. This module closes the
gap with a parent-side **supervisor** driving long-lived workers over
explicit per-worker pipes:

* **Death detection + restart.** The supervisor waits on each worker's
  result pipe *and* its process sentinel
  (``multiprocessing.connection.wait``), so a dead worker — any exit
  code, any signal — is noticed immediately, its in-flight cell is
  re-dispatched, and a replacement worker is started.
* **Poison-cell quarantine.** A cell that kills its worker
  ``max_crashes`` times is quarantined with the typed DNF status
  ``crashed`` (exit signal/code recorded) instead of crash-looping the
  pool.
* **Wall-clock deadlines.** ``wall_deadline_s`` bounds each cell in
  *real* seconds — distinct from the PR-3 simulated-clock
  ``deadline_s`` — after which the hung worker is SIGKILLed and the
  cell records DNF ``timeout`` with ``wall_clock=true``.
* **Memory caps.** ``memory_limit_bytes`` caps each worker's address
  space (``RLIMIT_AS``, as headroom above the interpreter's footprint
  at fork), so a real allocation blow-up raises ``MemoryError`` — the
  ``out-of-memory`` DNF status — instead of invoking the OOM killer.
* **Graceful drain.** SIGINT/SIGTERM stop dispatch, flush the merged
  prefix to the journal, leave in-flight cells pending and raise
  :class:`~repro.errors.SweepInterrupted` (CLI exit code 8), so
  ``--resume`` continues byte-identically.

Every PR-5 durability guarantee is preserved: workers run the exact
:func:`~repro.harness.sweep.execute_cell` semantics, the parent remains
the sole journal writer, results merge in **enumeration order** (so a
``jobs=N`` journal is byte-identical to a serial one), and worker
tracer spans graft under the parent's sweep span. Supervisor events —
``worker-restart``, ``wall-timeout``, ``poison-quarantine``, ``drain``
— are parent-side tracer instants, and none of the fault bookkeeping
(worker names, crash counts for cells that eventually complete) leaks
into the journal: a cell that survives a worker kill journals the same
bytes a clean run writes.

Shutdown semantics (the old pool got this wrong): on the clean path
workers are asked to exit (sentinel task), then joined — the
``close()``/``join()`` idiom; ``terminate()`` is reserved for the
error/drain path.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection

from ..errors import ReproError, SweepInterrupted
from ..observability import NULL_TRACER, Tracer
from .runner import STATUS_CRASHED, STATUS_TIMEOUT
from .sweep import CellRecord, execute_cell


@dataclass(frozen=True)
class SupervisorPolicy:
    """Parent-side supervision knobs, one value object per sweep.

    Distinct from :class:`~repro.harness.sweep.CellPolicy` on purpose:
    the cell policy travels *into* workers and defines what a cell
    records; this policy stays in the parent and defines what happens
    to the worker processes around it.
    """

    #: Real-seconds budget per cell dispatch; None = no wall deadline.
    wall_deadline_s: float = None
    #: Worker deaths a single cell may cause before quarantine.
    max_crashes: int = 2
    #: RLIMIT_AS headroom (bytes) above the worker's footprint at fork;
    #: None = no cap.
    memory_limit_bytes: int = None
    #: Supervision poll period (real seconds): the upper bound on how
    #: stale liveness/deadline checks can be when no pipe event fires.
    heartbeat_s: float = 0.1


@dataclass
class SupervisorStats:
    """Mutable fault accounting the caller reads after the run."""

    restarts: int = 0
    wall_timeouts: int = 0
    poisoned: int = 0


@dataclass
class CompletedCell:
    """One merged result the parent consumes in enumeration order."""

    index: int
    cid: str
    record: object          # CellRecord
    spans: list             # worker-side Span objects (may be empty)
    worker: str             # supervised worker name, e.g. "sweep-worker-2"


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def describe_exit(exitcode) -> str:
    """Human-readable worker exit: ``signal 9 (SIGKILL)`` or ``exit 3``."""
    if exitcode is None:
        return "still running"
    if exitcode < 0:
        try:
            name = signal.Signals(-exitcode).name
        except ValueError:
            name = "unknown signal"
        return f"signal {-exitcode} ({name})"
    return f"exit code {exitcode}"


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _apply_memory_limit(headroom_bytes: int) -> None:
    """Cap this process's address space at footprint + headroom.

    The cap is *headroom above the current footprint* (read from
    ``/proc/self/statm`` where available) rather than an absolute
    number, so ``memory_limit_mb=256`` means "a cell may allocate
    ~256 MB" regardless of how much address space the interpreter and
    numpy already map. Platforms without ``resource``/``RLIMIT_AS``
    silently skip the cap — the supervisor still contains the fallout
    (the OOM-killed worker is just a crash).
    """
    try:
        import resource
    except ImportError:
        return
    base = 0
    try:
        with open("/proc/self/statm") as handle:
            base = int(handle.read().split()[0]) \
                * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        pass
    limit = base + int(headroom_bytes)
    try:
        _soft, hard = resource.getrlimit(resource.RLIMIT_AS)
        if hard != resource.RLIM_INFINITY:
            limit = min(limit, hard)
        resource.setrlimit(resource.RLIMIT_AS, (limit, hard))
    except (AttributeError, ValueError, OSError):
        pass


class _BallooningExecute:
    """Executor wrapper for injected ``oom(...)`` faults.

    Balloons real memory *inside* the cell's isolation boundary, so the
    resulting ``MemoryError`` flows through
    :func:`~repro.harness.sweep.execute_cell`'s typed-failure
    classification and records the paper's ``out-of-memory`` status —
    the same path a genuine worker-side allocation blow-up takes.
    """

    def __init__(self, execute, mb: int):
        self.execute = execute
        self.mb = int(mb)

    def __call__(self, key, budget_s=None):
        chunks = []
        chunk_bytes = 16 * 2**20
        try:
            for _ in range(max(1, (self.mb * 2**20) // chunk_bytes)):
                # Touch the pages so the balloon is real memory, not
                # just reserved address space.
                chunks.append(bytearray(chunk_bytes))
        except MemoryError:
            raise MemoryError(
                f"real-chaos balloon hit the worker address-space cap "
                f"after ~{len(chunks) * chunk_bytes // 2**20} MB of "
                f"{self.mb} MB") from None
        finally:
            del chunks
        return self.execute(key, budget_s=budget_s)


def _worker_main(task_conn, result_conn, execute, policy, traced, sleep,
                 memory_limit_bytes, plan) -> None:
    """Long-lived worker loop: recv task, run cell, send record.

    The parent owns shutdown: SIGINT is ignored (a terminal Ctrl-C hits
    the whole process group; the parent's drain logic decides what it
    means), and the loop exits on the ``None`` sentinel or on EOF —
    which also covers a dead parent, so SIGKILLing the sweep never
    leaks orphan workers.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):
        pass
    if memory_limit_bytes:
        _apply_memory_limit(memory_limit_bytes)
    while True:
        try:
            task = task_conn.recv()
        except (EOFError, OSError):
            break
        if task is None:
            break
        index, key, cid, crashes = task
        run_execute = execute
        if plan is not None:
            if plan.kill_now(index, crashes):
                os.kill(os.getpid(), signal.SIGKILL)
            hang_s = plan.hang_seconds(index)
            if hang_s is not None and crashes == 0:
                time.sleep(hang_s)
            balloon = plan.balloon_mb(index)
            if balloon is not None and crashes == 0:
                run_execute = _BallooningExecute(execute, balloon)
        tracer = Tracer() if traced else NULL_TRACER
        record = execute_cell(key, run_execute, policy, tracer=tracer,
                              sleep=sleep)
        spans = list(tracer.spans) if traced else []
        try:
            result_conn.send((index, cid, record, spans))
        except (BrokenPipeError, OSError):
            break


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


class _WorkerHandle:
    """One supervised worker: process + its two pipe endpoints."""

    def __init__(self, context, name, init_args):
        task_recv, self.task_conn = context.Pipe(duplex=False)
        self.result_conn, result_send = context.Pipe(duplex=False)
        self.process = context.Process(
            target=_worker_main, name=name,
            args=(task_recv, result_send) + init_args, daemon=True)
        self.process.start()
        # Close the child's ends in the parent so a dead worker reads
        # as EOF on result_conn instead of blocking forever.
        task_recv.close()
        result_send.close()
        self.name = name
        self.inflight = None          # (index, key, cid) or None
        self.deadline_at = None       # monotonic seconds, or None
        self.killed_for_timeout = False

    def dispatch(self, task, crashes: int, wall_deadline_s) -> None:
        self.task_conn.send(tuple(task) + (crashes,))
        self.inflight = task
        self.killed_for_timeout = False
        self.deadline_at = time.monotonic() + wall_deadline_s \
            if wall_deadline_s is not None else None

    def settle(self) -> None:
        self.inflight = None
        self.deadline_at = None
        self.killed_for_timeout = False

    def close(self) -> None:
        for conn in (self.task_conn, self.result_conn):
            try:
                conn.close()
            except OSError:
                pass


def run_cells_supervised(pending, execute, policy, jobs, supervise=None,
                         traced=False, sleep=None, tracer=None, plan=None,
                         stats=None):
    """Yield :class:`CompletedCell` for ``pending`` in enumeration order.

    ``pending`` is a list of ``(index, key, cid)`` triples; ``policy``
    is the picklable :class:`~repro.harness.sweep.CellPolicy` every
    worker applies; ``supervise`` the parent-side
    :class:`SupervisorPolicy`; ``plan`` an optional
    :class:`~repro.chaos.RealFaultPlan`; ``stats`` an optional
    :class:`SupervisorStats` the caller reads afterwards. Workers pull
    cells greedily while this generator yields strictly in submission
    order — the property the byte-identical-journal guarantee rests on.
    """
    supervise = supervise if supervise is not None else SupervisorPolicy()
    tracer = tracer if tracer is not None else NULL_TRACER
    stats = stats if stats is not None else SupervisorStats()
    pending = [tuple(task) for task in pending]
    if not pending:
        return
    context = _mp_context()
    init_args = (execute, policy, traced, sleep,
                 supervise.memory_limit_bytes, plan)

    queue = deque(pending)            # tasks awaiting (re-)dispatch
    crash_counts = {}                 # cid -> worker deaths so far
    buffered = {}                     # index -> CompletedCell
    order = [index for index, _key, _cid in pending]
    head = 0                          # next position in `order` to yield
    workers = []
    spawned = 0
    drain_signal = [None]             # set by the signal handlers

    def _drain_handler(signum, _frame):
        drain_signal[0] = signum

    def _install(signum, handler):
        try:
            return signal.signal(signum, handler)
        except (ValueError, OSError):
            return None               # not the main thread

    def _start_worker():
        nonlocal spawned
        spawned += 1
        try:
            worker = _WorkerHandle(context, f"sweep-worker-{spawned}",
                                   init_args)
        except Exception as error:
            if _looks_like_pickling_error(error):
                raise ReproError(
                    "supervised sweeps need a picklable executor on "
                    "this platform (module-level function, not a "
                    "closure); run with jobs=1 or use the 'fork' start "
                    f"method: {error}") from error
            raise
        workers.append(worker)
        return worker

    def _complete(worker, payload) -> None:
        index, cid, record, spans = payload
        buffered[index] = CompletedCell(index=index, cid=cid,
                                        record=record, spans=spans,
                                        worker=worker.name)
        worker.settle()

    def _reap(worker) -> None:
        """A worker died: classify, re-dispatch or quarantine, restart."""
        worker.process.join()
        exitcode = worker.process.exitcode
        task = worker.inflight
        workers.remove(worker)
        worker.close()
        if task is not None:
            index, key, cid = task
            if worker.killed_for_timeout:
                stats.wall_timeouts += 1
                tracer.instant(
                    "wall-timeout", worker=worker.name,
                    wall_deadline_s=supervise.wall_deadline_s, **key)
                record = CellRecord(
                    key, STATUS_TIMEOUT, wall_clock=True,
                    failure=f"wall-clock deadline of "
                            f"{supervise.wall_deadline_s:g} s exceeded; "
                            "worker killed")
                buffered[index] = CompletedCell(
                    index=index, cid=cid, record=record, spans=[],
                    worker=worker.name)
            else:
                crashes = crash_counts.get(cid, 0) + 1
                crash_counts[cid] = crashes
                if crashes >= supervise.max_crashes:
                    stats.poisoned += 1
                    tracer.instant("poison-quarantine", worker=worker.name,
                                   crashes=crashes,
                                   exit=describe_exit(exitcode), **key)
                    record = CellRecord(
                        key, STATUS_CRASHED, attempts=crashes,
                        quarantined=True,
                        failure=f"cell killed its worker {crashes} "
                                f"time(s); quarantined as poison "
                                f"(last death: {describe_exit(exitcode)})")
                    buffered[index] = CompletedCell(
                        index=index, cid=cid, record=record, spans=[],
                        worker=worker.name)
                else:
                    queue.appendleft(task)
        if queue and len(workers) < jobs:
            replacement = _start_worker()
            stats.restarts += 1
            tracer.instant("worker-restart", worker=replacement.name,
                           after=describe_exit(exitcode),
                           replaces=worker.name)

    old_int = _install(signal.SIGINT, _drain_handler)
    old_term = _install(signal.SIGTERM, _drain_handler)
    clean = False
    try:
        for _ in range(min(max(jobs, 1), len(pending))):
            _start_worker()
        while head < len(order):
            if drain_signal[0] is not None:
                # Drain: everything merged so far is already yielded
                # (and journaled by the caller); in-flight cells simply
                # stay pending for --resume.
                still_pending = len(order) - head
                tracer.instant("drain", signum=drain_signal[0],
                               pending=still_pending)
                raise SweepInterrupted(drain_signal[0], still_pending)
            # Dispatch work to idle workers.
            for worker in workers:
                if worker.inflight is None and queue:
                    task = queue.popleft()
                    crashes = crash_counts.get(task[2], 0)
                    try:
                        worker.dispatch(task, crashes,
                                        supervise.wall_deadline_s)
                    except Exception as error:
                        if _looks_like_pickling_error(error):
                            raise ReproError(
                                "supervised sweeps need picklable cell "
                                f"keys: {error}") from error
                        raise
            # Heartbeat: wake on a result, a death, or the nearest
            # wall deadline — whichever comes first.
            timeout = supervise.heartbeat_s
            now = time.monotonic()
            for worker in workers:
                if worker.deadline_at is not None:
                    timeout = min(timeout,
                                  max(0.0, worker.deadline_at - now))
            ready = set(connection.wait(
                [worker.result_conn for worker in workers]
                + [worker.process.sentinel for worker in workers],
                timeout=timeout))
            for worker in list(workers):
                if worker.result_conn in ready:
                    try:
                        _complete(worker, worker.result_conn.recv())
                    except (EOFError, OSError):
                        pass          # death raced the recv; reap below
            for worker in list(workers):
                if worker.process.sentinel in ready \
                        and not worker.process.is_alive():
                    # Accept a result that raced the death before
                    # declaring the cell crashed.
                    try:
                        if worker.result_conn.poll():
                            _complete(worker, worker.result_conn.recv())
                    except (EOFError, OSError):
                        pass
                    _reap(worker)
            # Enforce wall-clock deadlines on the survivors.
            now = time.monotonic()
            for worker in workers:
                if worker.deadline_at is not None \
                        and now >= worker.deadline_at \
                        and not worker.killed_for_timeout:
                    if worker.result_conn.poll():
                        continue      # finished just in time
                    worker.killed_for_timeout = True
                    worker.process.kill()
            # Yield the merged enumeration-order prefix.
            while head < len(order) and order[head] in buffered:
                yield buffered.pop(order[head])
                head += 1
        clean = True
    finally:
        _shutdown(workers, clean)
        if old_int is not None:
            signal.signal(signal.SIGINT, old_int)
        if old_term is not None:
            signal.signal(signal.SIGTERM, old_term)


def _shutdown(workers, clean: bool) -> None:
    """Stop the pool: sentinel + join when clean, terminate otherwise."""
    for worker in workers:
        if clean:
            try:
                worker.task_conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        else:
            worker.process.terminate()
    deadline = time.monotonic() + 5.0
    for worker in workers:
        worker.process.join(timeout=max(0.1, deadline - time.monotonic()))
        if worker.process.is_alive():
            worker.process.kill()
            worker.process.join()
        worker.close()


def _looks_like_pickling_error(error) -> bool:
    """Is ``error`` a serialization failure (vs a genuine executor bug)?

    Deliberately narrow: only ``pickle.PicklingError`` and the
    ``TypeError``s the serialization layer raises ("cannot pickle X")
    qualify. An ``AttributeError`` — or any other exception whose
    message happens to mention pickling — propagates untranslated, so a
    real bug is never mislabelled with a misleading "run with jobs=1"
    hint.
    """
    import pickle

    if isinstance(error, pickle.PicklingError):
        return True
    return isinstance(error, TypeError) and "pickle" in str(error).lower()
