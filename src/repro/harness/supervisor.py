"""Supervised worker pool: parallel sweeps that survive real faults.

The PR-5 executor fanned cells over a bare ``multiprocessing.Pool``,
which defends against nothing the real world does to long sweeps: a
worker that segfaults or is OOM-killed stalls ``imap`` forever, a cell
that spins past any reasonable wall time wedges the whole run, and a
poison cell would be re-dispatched until the machine gives up. Ammar &
Özsu's eight-system study reports exactly this failure class — jobs
that *fail or never return* — as the dominant result at scale, and the
PR-3 DNF taxonomy exists to record it honestly. This module closes the
gap with a parent-side **supervisor** driving long-lived workers over
explicit per-worker pipes:

* **Death detection + restart.** The supervisor waits on each worker's
  result pipe *and* its process sentinel
  (``multiprocessing.connection.wait``), so a dead worker — any exit
  code, any signal — is noticed immediately, its in-flight cell is
  re-dispatched, and a replacement worker is started.
* **Poison-cell quarantine.** A cell that kills its worker
  ``max_crashes`` times is quarantined with the typed DNF status
  ``crashed`` (exit signal/code recorded) instead of crash-looping the
  pool.
* **Wall-clock deadlines.** ``wall_deadline_s`` bounds each cell in
  *real* seconds — distinct from the PR-3 simulated-clock
  ``deadline_s`` — after which the hung worker is SIGKILLed and the
  cell records DNF ``timeout`` with ``wall_clock=true``.
* **Memory caps.** ``memory_limit_bytes`` caps each worker's address
  space (``RLIMIT_AS``, as headroom above the interpreter's footprint
  at fork), so a real allocation blow-up raises ``MemoryError`` — the
  ``out-of-memory`` DNF status — instead of invoking the OOM killer.
* **Graceful drain.** SIGINT/SIGTERM stop dispatch, flush the merged
  prefix to the journal, leave in-flight cells pending and raise
  :class:`~repro.errors.SweepInterrupted` (CLI exit code 8), so
  ``--resume`` continues byte-identically.

Since PR-9 the pool is a **long-lived object**:
:class:`SupervisorPool` owns the workers and a supervision thread, and
each *task* ships its own executor, cell policy, tracer and chaos plan
over the pipe. That makes the pool generic — the ``repro serve``
daemon keeps one warm pool across requests, and repeated
:class:`~repro.harness.sweep.Sweep` runs in one process reuse workers
instead of paying fork + import per sweep. The lifecycle is explicit:
``start()`` → ``submit()`` (returns a :class:`Ticket`) → ``drain()`` →
``close()``. :func:`run_cells_supervised` keeps its PR-8 signature and
semantics, implemented on top: it submits every pending cell, waits on
tickets in enumeration order, and — when it owns the pool — tears it
down afterwards.

Every PR-5 durability guarantee is preserved: workers run the exact
:func:`~repro.harness.sweep.execute_cell` semantics, the parent remains
the sole journal writer, results merge in **enumeration order** (so a
``jobs=N`` journal is byte-identical to a serial one), and worker
tracer spans graft under the parent's sweep span. Supervisor events —
``worker-restart``, ``wall-timeout``, ``poison-quarantine``, ``drain``
— are parent-side tracer instants, and none of the fault bookkeeping
(worker names, crash counts for cells that eventually complete) leaks
into the journal: a cell that survives a worker kill journals the same
bytes a clean run writes — and so does a cell that ran on a reused
warm worker instead of a fresh one.

Shutdown semantics (the old pool got this wrong): on the clean path
workers are asked to exit (sentinel task), then joined — the
``close()``/``join()`` idiom; ``terminate()`` is reserved for the
error/drain path.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
import threading
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing import connection

from ..errors import ReproError, SweepInterrupted
from ..observability import NULL_TRACER, Tracer
from .runner import STATUS_CRASHED, STATUS_TIMEOUT
from .sweep import CellRecord, execute_cell


@dataclass(frozen=True)
class SupervisorPolicy:
    """Parent-side supervision knobs, one value object per pool.

    Distinct from :class:`~repro.harness.sweep.CellPolicy` on purpose:
    the cell policy travels *into* workers and defines what a cell
    records; this policy stays in the parent and defines what happens
    to the worker processes around it. ``wall_deadline_s`` is the pool
    default — :meth:`SupervisorPool.submit` may override it per task
    (the serving layer's per-request deadlines ride on that).
    """

    #: Real-seconds budget per cell dispatch; None = no wall deadline.
    wall_deadline_s: float = None
    #: Worker deaths a single cell may cause before quarantine.
    max_crashes: int = 2
    #: RLIMIT_AS headroom (bytes) above the worker's footprint at fork;
    #: None = no cap.
    memory_limit_bytes: int = None
    #: Extra address-space allowance (bytes) on top of
    #: ``memory_limit_bytes`` for *file-backed* maps. RLIMIT_AS counts
    #: mapped shard files the same as anonymous pages, so without this
    #: an out-of-core cell's read-only mmaps would eat the budget meant
    #: for its working set. Ignored when ``memory_limit_bytes`` is None.
    mapped_allowance_bytes: int = 0
    #: Supervision poll period (real seconds): the upper bound on how
    #: stale liveness/deadline checks can be when no pipe event fires.
    heartbeat_s: float = 0.1


@dataclass
class SupervisorStats:
    """Mutable fault accounting the caller reads after the run."""

    restarts: int = 0
    wall_timeouts: int = 0
    poisoned: int = 0


@dataclass
class CompletedCell:
    """One merged result the parent consumes in enumeration order."""

    index: int
    cid: str
    record: object          # CellRecord
    spans: list             # worker-side Span objects (may be empty)
    worker: str             # supervised worker name, e.g. "sweep-worker-2"


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def describe_exit(exitcode) -> str:
    """Human-readable worker exit: ``signal 9 (SIGKILL)`` or ``exit 3``."""
    if exitcode is None:
        return "still running"
    if exitcode < 0:
        try:
            name = signal.Signals(-exitcode).name
        except ValueError:
            name = "unknown signal"
        return f"signal {-exitcode} ({name})"
    return f"exit code {exitcode}"


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _apply_memory_limit(headroom_bytes: int) -> None:
    """Cap this process's address space at footprint + headroom.

    The cap is *headroom above the current footprint* (read from
    ``/proc/self/statm`` where available) rather than an absolute
    number, so ``memory_limit_mb=256`` means "a cell may allocate
    ~256 MB" regardless of how much address space the interpreter and
    numpy already map. Platforms without ``resource``/``RLIMIT_AS``
    silently skip the cap — the supervisor still contains the fallout
    (the OOM-killed worker is just a crash).
    """
    try:
        import resource
    except ImportError:
        return
    base = 0
    try:
        with open("/proc/self/statm") as handle:
            base = int(handle.read().split()[0]) \
                * os.sysconf("SC_PAGE_SIZE")
    except (OSError, ValueError, IndexError):
        pass
    limit = base + int(headroom_bytes)
    try:
        _soft, hard = resource.getrlimit(resource.RLIMIT_AS)
        if hard != resource.RLIM_INFINITY:
            limit = min(limit, hard)
        resource.setrlimit(resource.RLIMIT_AS, (limit, hard))
    except (AttributeError, ValueError, OSError):
        pass


class _BallooningExecute:
    """Executor wrapper for injected ``oom(...)`` faults.

    Balloons real memory *inside* the cell's isolation boundary, so the
    resulting ``MemoryError`` flows through
    :func:`~repro.harness.sweep.execute_cell`'s typed-failure
    classification and records the paper's ``out-of-memory`` status —
    the same path a genuine worker-side allocation blow-up takes.
    """

    def __init__(self, execute, mb: int):
        self.execute = execute
        self.mb = int(mb)

    def __call__(self, key, budget_s=None):
        chunks = []
        chunk_bytes = 16 * 2**20
        try:
            for _ in range(max(1, (self.mb * 2**20) // chunk_bytes)):
                # Touch the pages so the balloon is real memory, not
                # just reserved address space.
                chunks.append(bytearray(chunk_bytes))
        except MemoryError:
            raise MemoryError(
                f"real-chaos balloon hit the worker address-space cap "
                f"after ~{len(chunks) * chunk_bytes // 2**20} MB of "
                f"{self.mb} MB") from None
        finally:
            del chunks
        return self.execute(key, budget_s=budget_s)


def _worker_main(task_conn, result_conn, memory_limit_bytes,
                 mapped_allowance_bytes=0) -> None:
    """Long-lived *generic* worker loop: recv task, run cell, send record.

    Each task frame carries its own executor, cell policy and chaos
    plan (pickled by the parent), so one worker serves back-to-back
    sweeps — and the serving layer's mixed request stream — without
    restarting. The parent owns shutdown: SIGINT is ignored (a terminal
    Ctrl-C hits the whole process group; the parent's drain logic
    decides what it means), and the loop exits on the empty sentinel
    frame or on EOF — which also covers a dead parent, so SIGKILLing
    the sweep never leaks orphan workers.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):
        pass
    if memory_limit_bytes:
        _apply_memory_limit(memory_limit_bytes
                            + int(mapped_allowance_bytes or 0))
    while True:
        try:
            frame = task_conn.recv_bytes()
        except (EOFError, OSError):
            break
        if not frame:
            break
        (ticket_id, index, key, _cid, crashes, execute, policy, traced,
         sleep, plan) = pickle.loads(frame)
        run_execute = execute
        if plan is not None:
            if plan.kill_now(index, crashes):
                os.kill(os.getpid(), signal.SIGKILL)
            hang_s = plan.hang_seconds(index)
            if hang_s is not None and crashes == 0:
                time.sleep(hang_s)
            balloon = plan.balloon_mb(index)
            if balloon is not None and crashes == 0:
                run_execute = _BallooningExecute(execute, balloon)
        tracer = Tracer() if traced else NULL_TRACER
        record = execute_cell(key, run_execute, policy, tracer=tracer,
                              sleep=sleep)
        spans = list(tracer.spans) if traced else []
        try:
            result_conn.send((ticket_id, record, spans))
        except (BrokenPipeError, OSError):
            break


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


class Ticket:
    """A submitted cell's completion handle.

    Returned by :meth:`SupervisorPool.submit`; completed exactly once
    with a :class:`CompletedCell` (or an error if the pool dies under
    it). ``wait`` blocks the caller; ``add_done_callback`` runs on the
    supervision thread — keep callbacks tiny (the serving layer uses
    them to hop results onto its event loop).
    """

    _COUNTER = [0]
    _COUNTER_LOCK = threading.Lock()

    def __init__(self, index, key, cid):
        with Ticket._COUNTER_LOCK:
            Ticket._COUNTER[0] += 1
            self.id = Ticket._COUNTER[0]
        self.index = index
        self.key = key
        self.cid = cid
        self.cell = None          # CompletedCell once done
        self.error = None         # exception if the pool failed this task
        self.cancelled = False
        self._event = threading.Event()
        self._callbacks = []
        self._lock = threading.Lock()

    def done(self) -> bool:
        return self._event.is_set()

    def wait(self, timeout=None):
        """Block for the result; ``None`` on timeout, raises pool errors."""
        if not self._event.wait(timeout):
            return None
        if self.error is not None:
            raise self.error
        return self.cell

    def add_done_callback(self, fn) -> None:
        with self._lock:
            if not self._event.is_set():
                self._callbacks.append(fn)
                return
        fn(self)

    def _finish(self, cell=None, error=None) -> None:
        with self._lock:
            if self._event.is_set():
                return
            self.cell = cell
            self.error = error
            self._event.set()
            callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)


class _Task:
    """Parent-side dispatch state for one submitted cell."""

    __slots__ = ("ticket", "index", "key", "cid", "crashes", "execute",
                 "policy", "traced", "sleep", "plan", "wall_deadline_s",
                 "tracer", "stats")

    def __init__(self, ticket, execute, policy, traced, sleep, plan,
                 wall_deadline_s, tracer, stats):
        self.ticket = ticket
        self.index = ticket.index
        self.key = ticket.key
        self.cid = ticket.cid
        self.crashes = 0
        self.execute = execute
        self.policy = policy
        self.traced = traced
        self.sleep = sleep
        self.plan = plan
        self.wall_deadline_s = wall_deadline_s
        self.tracer = tracer
        self.stats = stats

    def frame(self) -> bytes:
        return pickle.dumps((self.ticket.id, self.index, self.key, self.cid,
                             self.crashes, self.execute, self.policy,
                             self.traced, self.sleep, self.plan))


class _WorkerHandle:
    """One supervised worker: process + its two pipe endpoints."""

    def __init__(self, context, name, memory_limit_bytes,
                 mapped_allowance_bytes=0):
        task_recv, self.task_conn = context.Pipe(duplex=False)
        self.result_conn, result_send = context.Pipe(duplex=False)
        self.process = context.Process(
            target=_worker_main, name=name,
            args=(task_recv, result_send, memory_limit_bytes,
                  mapped_allowance_bytes), daemon=True)
        self.process.start()
        # Close the child's ends in the parent so a dead worker reads
        # as EOF on result_conn instead of blocking forever.
        task_recv.close()
        result_send.close()
        self.name = name
        self.inflight = None          # _Task or None
        self.deadline_at = None       # monotonic seconds, or None
        self.killed_for_timeout = False

    def dispatch(self, task: _Task) -> None:
        self.task_conn.send_bytes(task.frame())
        self.inflight = task
        self.killed_for_timeout = False
        self.deadline_at = time.monotonic() + task.wall_deadline_s \
            if task.wall_deadline_s is not None else None

    def settle(self) -> None:
        self.inflight = None
        self.deadline_at = None
        self.killed_for_timeout = False

    def close(self) -> None:
        for conn in (self.task_conn, self.result_conn):
            try:
                conn.close()
            except OSError:
                pass


#: Sentinel: "use the pool policy's wall deadline" (None means "none").
POOL_DEADLINE = object()


class SupervisorPool:
    """A long-lived supervised worker pool reused across submissions.

    ``start()`` spins up the supervision thread (workers spawn lazily,
    up to ``jobs``, as tasks arrive); ``submit()`` enqueues one cell and
    returns a :class:`Ticket`; ``drain()`` blocks until everything
    submitted so far has settled; ``close()`` shuts the pool down —
    cleanly (sentinel + join) by default, ``force=True`` terminates.

    All supervision — dispatch, death detection, restart, poison
    quarantine, wall-deadline kills — happens on one internal thread,
    so ``submit`` is safe from any thread (the serving layer calls it
    from an asyncio loop, sweeps from worker threads). Fault accounting
    lands both in the pool-wide :attr:`stats` (the server's ``/stats``)
    and in the per-submission ``stats`` object passed to ``submit``.
    """

    def __init__(self, jobs, supervise=None, tracer=None, context=None):
        self.jobs = max(int(jobs), 1)
        self.supervise = supervise if supervise is not None \
            else SupervisorPolicy()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.stats = SupervisorStats()
        self._context = context
        self._lock = threading.RLock()
        self._idle = threading.Condition(self._lock)
        self._queue = deque()         # _Task awaiting (re-)dispatch
        self._workers = []
        self._spawned = 0
        self._started = False
        self._closing = False
        self._force = False
        self._thread = None
        self._wake_recv = None
        self._wake_send = None

    # -- lifecycle ----------------------------------------------------

    def start(self) -> "SupervisorPool":
        with self._lock:
            if self._started:
                return self
            if self._context is None:
                self._context = _mp_context()
            self._wake_recv, self._wake_send = self._context.Pipe(
                duplex=False)
            self._started = True
            self._thread = threading.Thread(
                target=self._run, name="sweep-supervisor", daemon=True)
            self._thread.start()
        return self

    def submit(self, key, cid, execute, policy, *, index=0, traced=False,
               sleep=None, plan=None, wall_deadline_s=POOL_DEADLINE,
               tracer=None, stats=None) -> Ticket:
        """Enqueue one cell; returns its completion :class:`Ticket`.

        ``wall_deadline_s`` overrides the pool policy's default per
        task (pass ``None`` for "no deadline" explicitly). ``tracer``
        and ``stats`` scope fault events to this submission; the
        pool-wide accounting is updated regardless.
        """
        if not self._started or self._closing:
            raise ReproError("SupervisorPool.submit on a pool that is "
                             "not running (call start(), not after close())")
        ticket = Ticket(index, key, cid)
        if wall_deadline_s is POOL_DEADLINE:
            wall_deadline_s = self.supervise.wall_deadline_s
        task = _Task(ticket, execute, policy, traced, sleep, plan,
                     wall_deadline_s,
                     tracer if tracer is not None else NULL_TRACER,
                     stats if stats is not None else SupervisorStats())
        try:
            task.frame()              # surface pickling errors here,
        except Exception as error:    # in the submitting thread
            if _looks_like_pickling_error(error):
                raise ReproError(
                    "supervised sweeps need picklable cell keys and a "
                    "picklable executor (module-level function, not a "
                    f"closure); run with jobs=1: {error}") from error
            raise
        with self._lock:
            self._queue.append(task)
        self._wake()
        return ticket

    def cancel(self, tickets) -> None:
        """Abandon submissions: queued tasks drop, in-flight results drop.

        Cancelled tickets never complete — callers must not ``wait`` on
        them afterwards. Workers stay alive for the next submission
        (an in-flight cell finishes and its result is discarded),
        mirroring the drain contract: nothing cancelled reaches a
        journal.
        """
        wanted = {ticket.id for ticket in tickets}
        with self._lock:
            for task in list(self._queue):
                if task.ticket.id in wanted:
                    self._queue.remove(task)
                    task.ticket.cancelled = True
            for worker in self._workers:
                if worker.inflight is not None \
                        and worker.inflight.ticket.id in wanted:
                    worker.inflight.ticket.cancelled = True
            if not self._outstanding_locked():
                self._idle.notify_all()
        self._wake()

    def drain(self, timeout=None) -> bool:
        """Block until every submitted task settled; False on timeout."""
        deadline = time.monotonic() + timeout if timeout is not None else None
        with self._idle:
            while self._outstanding_locked():
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._idle.wait(timeout=remaining
                                if remaining is not None else 0.5)
        return True

    def close(self, force: bool = False) -> None:
        """Shut down: clean close finishes queued work first,
        ``force=True`` drops the queue and terminates workers."""
        with self._lock:
            if not self._started:
                return
            self._closing = True
            self._force = self._force or force
        self._wake()
        if self._thread is not None:
            self._thread.join(timeout=30.0)
        with self._lock:
            for conn in (self._wake_recv, self._wake_send):
                if conn is not None:
                    try:
                        conn.close()
                    except OSError:
                        pass
            self._wake_recv = self._wake_send = None

    def outstanding(self) -> int:
        with self._lock:
            return self._outstanding_locked()

    @property
    def alive_workers(self) -> int:
        with self._lock:
            return sum(1 for worker in self._workers
                       if worker.process.is_alive())

    # -- internals (supervision thread) -------------------------------

    def _wake(self) -> None:
        with self._lock:
            send = self._wake_send
        if send is None:
            return
        try:
            send.send_bytes(b"w")
        except (BrokenPipeError, OSError):
            pass

    def _outstanding_locked(self) -> int:
        return len(self._queue) + sum(
            1 for worker in self._workers if worker.inflight is not None)

    def _bump(self, task, field) -> None:
        setattr(self.stats, field, getattr(self.stats, field) + 1)
        if task is not None and task.stats is not self.stats:
            setattr(task.stats, field, getattr(task.stats, field) + 1)

    def _start_worker(self) -> _WorkerHandle:
        self._spawned += 1
        worker = _WorkerHandle(self._context,
                               f"sweep-worker-{self._spawned}",
                               self.supervise.memory_limit_bytes,
                               self.supervise.mapped_allowance_bytes)
        self._workers.append(worker)
        return worker

    def _ensure_workers_locked(self) -> None:
        want = min(self.jobs, self._outstanding_locked())
        while len(self._workers) < want:
            self._start_worker()

    def _dispatch_locked(self) -> None:
        for worker in self._workers:
            if worker.inflight is None and self._queue:
                worker.dispatch(self._queue.popleft())

    def _complete(self, worker, payload) -> None:
        ticket_id, record, spans = payload
        task = worker.inflight
        worker.settle()
        if task is None or task.ticket.id != ticket_id:
            return                    # stale frame from a raced dispatch
        if task.ticket.cancelled:
            return
        task.ticket._finish(cell=CompletedCell(
            index=task.index, cid=task.cid, record=record, spans=spans,
            worker=worker.name))

    def _reap(self, worker) -> None:
        """A worker died: classify, re-dispatch or quarantine, restart."""
        worker.process.join()
        exitcode = worker.process.exitcode
        task = worker.inflight
        self._workers.remove(worker)
        worker.close()
        if task is not None:
            if task.ticket.cancelled:
                pass                  # abandoned mid-flight: drop it
            elif worker.killed_for_timeout:
                self._bump(task, "wall_timeouts")
                task.tracer.instant(
                    "wall-timeout", worker=worker.name,
                    wall_deadline_s=task.wall_deadline_s, **task.key)
                record = CellRecord(
                    task.key, STATUS_TIMEOUT, wall_clock=True,
                    failure=f"wall-clock deadline of "
                            f"{task.wall_deadline_s:g} s exceeded; "
                            "worker killed")
                task.ticket._finish(cell=CompletedCell(
                    index=task.index, cid=task.cid, record=record,
                    spans=[], worker=worker.name))
            else:
                task.crashes += 1
                if task.crashes >= self.supervise.max_crashes:
                    self._bump(task, "poisoned")
                    task.tracer.instant(
                        "poison-quarantine", worker=worker.name,
                        crashes=task.crashes,
                        exit=describe_exit(exitcode), **task.key)
                    record = CellRecord(
                        task.key, STATUS_CRASHED, attempts=task.crashes,
                        quarantined=True,
                        failure=f"cell killed its worker {task.crashes} "
                                f"time(s); quarantined as poison "
                                f"(last death: {describe_exit(exitcode)})")
                    task.ticket._finish(cell=CompletedCell(
                        index=task.index, cid=task.cid, record=record,
                        spans=[], worker=worker.name))
                else:
                    self._queue.appendleft(task)
        if self._queue and len(self._workers) < self.jobs \
                and not self._force:
            replacement = self._start_worker()
            self._bump(task, "restarts")
            (task.tracer if task is not None else self.tracer).instant(
                "worker-restart", worker=replacement.name,
                after=describe_exit(exitcode), replaces=worker.name)

    def _run(self) -> None:
        try:
            self._supervise_loop()
        except Exception as error:  # pragma: no cover - defensive
            self._fail_all(error)
            with self._lock:
                workers, self._workers = list(self._workers), []
            _shutdown(workers, clean=False)
            return
        with self._lock:
            clean = not self._force
            workers, self._workers = list(self._workers), []
            if self._force:
                abandoned = list(self._queue)
                self._queue.clear()
                for worker in workers:
                    if worker.inflight is not None:
                        abandoned.append(worker.inflight)
                        worker.inflight = None
                error = ReproError("supervisor pool closed before the "
                                   "cell completed")
                for task in abandoned:
                    if not task.ticket.cancelled:
                        task.ticket._finish(error=error)
            self._idle.notify_all()
        _shutdown(workers, clean)

    def _fail_all(self, error) -> None:
        with self._lock:
            tasks = list(self._queue)
            self._queue.clear()
            for worker in self._workers:
                if worker.inflight is not None:
                    tasks.append(worker.inflight)
                    worker.inflight = None
            for task in tasks:
                task.ticket._finish(error=error)
            self._idle.notify_all()

    def _supervise_loop(self) -> None:
        heartbeat = self.supervise.heartbeat_s
        while True:
            with self._lock:
                if self._closing and (self._force
                                      or not self._outstanding_locked()):
                    return
                self._ensure_workers_locked()
                self._dispatch_locked()
                workers = list(self._workers)
                wake = self._wake_recv
                timeout = heartbeat
                now = time.monotonic()
                for worker in workers:
                    if worker.deadline_at is not None:
                        timeout = min(timeout,
                                      max(0.0, worker.deadline_at - now))
            ready = set(connection.wait(
                [worker.result_conn for worker in workers]
                + [worker.process.sentinel for worker in workers]
                + ([wake] if wake is not None else []),
                timeout=timeout))
            if wake is not None and wake in ready:
                try:
                    while wake.poll():
                        wake.recv_bytes()
                except (EOFError, OSError):
                    pass
            with self._lock:
                for worker in workers:
                    if worker in self._workers \
                            and worker.result_conn in ready:
                        try:
                            self._complete(worker,
                                           worker.result_conn.recv())
                        except (EOFError, OSError):
                            pass      # death raced the recv; reap below
                for worker in workers:
                    if worker in self._workers \
                            and worker.process.sentinel in ready \
                            and not worker.process.is_alive():
                        # Accept a result that raced the death before
                        # declaring the cell crashed.
                        try:
                            if worker.result_conn.poll():
                                self._complete(worker,
                                               worker.result_conn.recv())
                        except (EOFError, OSError):
                            pass
                        self._reap(worker)
                # Enforce wall-clock deadlines on the survivors.
                now = time.monotonic()
                for worker in self._workers:
                    if worker.deadline_at is not None \
                            and now >= worker.deadline_at \
                            and not worker.killed_for_timeout:
                        if worker.result_conn.poll():
                            continue  # finished just in time
                        worker.killed_for_timeout = True
                        worker.process.kill()
                if not self._outstanding_locked():
                    self._idle.notify_all()


def run_cells_supervised(pending, execute, policy, jobs, supervise=None,
                         traced=False, sleep=None, tracer=None, plan=None,
                         stats=None, pool=None, stop=None):
    """Yield :class:`CompletedCell` for ``pending`` in enumeration order.

    ``pending`` is a list of ``(index, key, cid)`` triples; ``policy``
    is the picklable :class:`~repro.harness.sweep.CellPolicy` every
    worker applies; ``supervise`` the parent-side
    :class:`SupervisorPolicy`; ``plan`` an optional
    :class:`~repro.chaos.RealFaultPlan`; ``stats`` an optional
    :class:`SupervisorStats` the caller reads afterwards. Workers pull
    cells greedily while this generator yields strictly in submission
    order — the property the byte-identical-journal guarantee rests on.

    ``pool`` reuses an externally owned, already-started
    :class:`SupervisorPool` (warm workers persist afterwards; the
    pool's ``max_crashes`` / ``memory_limit_bytes`` apply, while this
    call's ``wall_deadline_s`` rides along per task). ``stop`` is a
    cooperative drain probe for non-main threads where signal handlers
    cannot be installed: a callable returning a truthy signal number to
    drain, checked once per heartbeat.
    """
    supervise = supervise if supervise is not None else SupervisorPolicy()
    tracer = tracer if tracer is not None else NULL_TRACER
    stats = stats if stats is not None else SupervisorStats()
    pending = [tuple(task) for task in pending]
    if not pending:
        return
    owned = pool is None
    drain_signal = [None]             # set by the signal handlers

    def _drain_handler(signum, _frame):
        drain_signal[0] = signum

    def _install(signum, handler):
        try:
            return signal.signal(signum, handler)
        except (ValueError, OSError):
            return None               # not the main thread

    def _requested_drain():
        if drain_signal[0] is not None:
            return drain_signal[0]
        if stop is not None:
            signum = stop()
            if signum:
                return signal.SIGTERM if signum is True else signum
        return None

    old_int = _install(signal.SIGINT, _drain_handler)
    old_term = _install(signal.SIGTERM, _drain_handler)
    clean = False
    tickets = []
    if owned:
        pool = SupervisorPool(jobs, supervise=supervise,
                              tracer=tracer).start()
    try:
        for index, key, cid in pending:
            tickets.append(pool.submit(
                key, cid, execute, policy, index=index, traced=traced,
                sleep=sleep, plan=plan,
                wall_deadline_s=supervise.wall_deadline_s,
                tracer=tracer, stats=stats))
        heartbeat = supervise.heartbeat_s
        for position, ticket in enumerate(tickets):
            while True:
                signum = _requested_drain()
                if signum is not None:
                    # Drain: everything merged so far is already
                    # yielded (and journaled by the caller); in-flight
                    # cells simply stay pending for --resume.
                    still_pending = len(tickets) - position
                    tracer.instant("drain", signum=signum,
                                   pending=still_pending)
                    raise SweepInterrupted(signum, still_pending)
                cell = ticket.wait(heartbeat)
                if cell is not None:
                    break
            yield cell
        clean = True
    finally:
        if owned:
            pool.close(force=not clean)
        elif not clean:
            pool.cancel(tickets)
        if old_int is not None:
            signal.signal(signal.SIGINT, old_int)
        if old_term is not None:
            signal.signal(signal.SIGTERM, old_term)


def _shutdown(workers, clean: bool) -> None:
    """Stop the pool: sentinel + join when clean, terminate otherwise."""
    for worker in workers:
        if clean:
            try:
                worker.task_conn.send_bytes(b"")
            except (BrokenPipeError, OSError):
                pass
        else:
            worker.process.terminate()
    deadline = time.monotonic() + 5.0
    for worker in workers:
        worker.process.join(timeout=max(0.1, deadline - time.monotonic()))
        if worker.process.is_alive():
            worker.process.kill()
            worker.process.join()
        worker.close()


def _looks_like_pickling_error(error) -> bool:
    """Is ``error`` a serialization failure (vs a genuine executor bug)?

    Deliberately narrow: only ``pickle.PicklingError`` and the
    ``TypeError``s the serialization layer raises ("cannot pickle X")
    qualify. An ``AttributeError`` — or any other exception whose
    message happens to mention pickling — propagates untranslated, so a
    real bug is never mislabelled with a misleading "run with jobs=1"
    hint.
    """
    if isinstance(error, pickle.PicklingError):
        return True
    return isinstance(error, TypeError) and "pickle" in str(error).lower()
