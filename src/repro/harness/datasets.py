"""Experiment-scale dataset construction with paper-scale factors.

Central place that decides, for every experiment, (a) which proxy
dataset to execute on and (b) the ``scale_factor`` that extrapolates the
counted work to the paper's dataset sizes. Proxies are cached per
process (they are deterministic), so the table and figure regenerators
can share them.
"""

from __future__ import annotations

import functools

from ..datagen import (
    CATALOG,
    bfs_variant,
    dataset as _catalog_dataset,
    netflix_like_ratings,
    rmat_graph,
    rmat_triangle_graph,
    triangle_variant,
)

#: Paper weak-scaling budgets (Figure 4 captions).
PAPER_EDGES_PER_NODE = {
    "pagerank": 128e6,
    "bfs": 128e6,
    "collaborative_filtering": 256e6,
    "triangle_counting": 32e6,
    # Second-generation workloads: the propagation-style ones carry the
    # BFS budget; k-core's repeated cascade scans halve it.
    "wcc": 128e6,
    "sssp": 128e6,
    "k_core": 64e6,
    "label_propagation": 128e6,
}

#: Algorithms that run on symmetrized (undirected) proxies. They share
#: BFS's dataset variant: propagation fixpoints, peeling, and community
#: rounds are all defined on undirected graphs in the study.
UNDIRECTED_ALGORITHMS = ("bfs", "wcc", "sssp", "k_core", "label_propagation")

#: CF hidden dimension used throughout the harness. The paper's is ~1000
#: (8 KB messages); we use 32 to keep proxy runs fast — slowdown *ratios*
#: are insensitive to K because every engine's work scales with it.
HARNESS_HIDDEN_DIM = 32

#: Iteration budget for per-iteration-timed algorithms.
HARNESS_ITERATIONS = 3


@functools.lru_cache(maxsize=64)
def single_node_graph(name: str, algorithm: str):
    """Proxy graph for the Figure 3 single-node panels."""
    if algorithm in UNDIRECTED_ALGORITHMS:
        return bfs_variant(name)
    if algorithm == "triangle_counting":
        return triangle_variant(name)
    return _catalog_dataset(name)


@functools.lru_cache(maxsize=8)
def single_node_ratings(name: str):
    return _catalog_dataset(name)


def paper_scale_factor(name: str, proxy_edges: int) -> float:
    """Paper dataset edges / proxy edges for a catalog dataset."""
    spec = CATALOG[name]
    if spec.paper_edges <= 0:
        return 1.0
    return spec.paper_edges / max(proxy_edges, 1)


# -- weak scaling (Figure 4) -------------------------------------------------

#: Proxy edge budget per node for weak-scaling runs. Small enough that a
#: 64-node run executes in seconds, large enough that per-node counters
#: are stable.
PROXY_EDGES_PER_NODE = {
    "pagerank": 16384,
    "bfs": 16384,
    "collaborative_filtering": 24576,
    "triangle_counting": 6144,
    "wcc": 16384,
    "sssp": 16384,
    "k_core": 8192,
    "label_propagation": 16384,
}


def _scale_for_nodes(base_scale: int, nodes: int) -> int:
    scale = base_scale
    remaining = nodes
    while remaining > 1:
        scale += 1
        remaining //= 2
    return scale


@functools.lru_cache(maxsize=64)
def weak_scaling_graph(algorithm: str, nodes: int):
    """Graph with ~PROXY_EDGES_PER_NODE[algorithm] x nodes edges."""
    if algorithm == "triangle_counting":
        return rmat_triangle_graph(_scale_for_nodes(10, nodes),
                                   edge_factor=8, seed=900 + nodes)
    directed = algorithm == "pagerank"
    return rmat_graph(_scale_for_nodes(10, nodes), edge_factor=16,
                      seed=900 + nodes, directed=directed)


@functools.lru_cache(maxsize=64)
def weak_scaling_ratings(nodes: int):
    return netflix_like_ratings(_scale_for_nodes(11, nodes),
                                num_items=64 * nodes, seed=900 + nodes)


#: Triangle counting's work and message volume grow superlinearly in the
#: edge count on heavy-tailed graphs (both scale with sum of squared
#: degrees, ~E^1.25 for RMAT), so its paper-scale extrapolation applies
#: this exponent to the edge ratio instead of scaling linearly.
TRIANGLE_SCALE_EXPONENT = 1.25


def scale_factor_for(algorithm: str, paper_size: float,
                     proxy_size: float) -> float:
    """Extrapolation factor from a proxy size to a paper size."""
    ratio = paper_size / max(proxy_size, 1.0)
    if algorithm == "triangle_counting":
        return ratio ** TRIANGLE_SCALE_EXPONENT
    return ratio


def clear_proxy_caches() -> None:
    """Drop the per-process proxy memoization (not the disk cache).

    Cold/warm cache experiments need the next dataset request to reach
    :mod:`repro.datagen.cache` instead of being absorbed by the
    ``lru_cache`` layer above it.
    """
    single_node_graph.cache_clear()
    single_node_ratings.cache_clear()
    weak_scaling_graph.cache_clear()
    weak_scaling_ratings.cache_clear()


def weak_scaling_dataset(algorithm: str, nodes: int):
    """(dataset, scale_factor) for one weak-scaling point."""
    if algorithm == "collaborative_filtering":
        data = weak_scaling_ratings(nodes)
        proxy_per_node = data.num_ratings / nodes
    else:
        data = weak_scaling_graph(algorithm, nodes)
        proxy_per_node = data.num_edges / nodes
    factor = scale_factor_for(algorithm, PAPER_EDGES_PER_NODE[algorithm],
                              proxy_per_node)
    return data, factor
