"""Experiment harness: regenerate every table and figure of the paper."""

from . import report
from .datasets import (
    HARNESS_HIDDEN_DIM,
    HARNESS_ITERATIONS,
    PAPER_EDGES_PER_NODE,
    paper_scale_factor,
    single_node_graph,
    single_node_ratings,
    weak_scaling_dataset,
)
from .figures import figure3, figure4, figure5, figure6, figure7, sgd_vs_gd
from .graph500 import Graph500Result, graph500_protocol, run_graph500
from .outofcore import OutOfCoreCell, run_outofcore_demo
from .persistence import compare_artifacts, load_artifact, save_artifact
from .runner import (
    CELL_STATUSES,
    STATUS_CRASHED,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_OOM,
    STATUS_TIMEOUT,
    STATUS_UNSUPPORTED,
    RunResult,
    default_params,
    run,
    run_experiment,
)
from .spec import ExperimentSpec, valid_params
from .strong_scaling import parallel_efficiency, strong_scaling
from .supervisor import SupervisorPolicy, SupervisorPool, SupervisorStats
from .sweep import (
    CellOutcome,
    CellPolicy,
    CellRecord,
    Sweep,
    SweepResult,
    execute_cell,
    outcome_of,
)
from .tables import table1, table2, table3, table4, table5, table6, table7

__all__ = [
    "CELL_STATUSES",
    "CellOutcome",
    "CellPolicy",
    "CellRecord",
    "ExperimentSpec",
    "execute_cell",
    "Graph500Result",
    "graph500_protocol",
    "OutOfCoreCell",
    "run_outofcore_demo",
    "STATUS_CRASHED",
    "STATUS_FAILED",
    "STATUS_TIMEOUT",
    "SupervisorPolicy",
    "SupervisorPool",
    "SupervisorStats",
    "Sweep",
    "SweepResult",
    "compare_artifacts",
    "outcome_of",
    "load_artifact",
    "parallel_efficiency",
    "run_graph500",
    "save_artifact",
    "strong_scaling",
    "HARNESS_HIDDEN_DIM",
    "HARNESS_ITERATIONS",
    "PAPER_EDGES_PER_NODE",
    "RunResult",
    "STATUS_OK",
    "STATUS_OOM",
    "STATUS_UNSUPPORTED",
    "default_params",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "paper_scale_factor",
    "report",
    "run",
    "run_experiment",
    "sgd_vs_gd",
    "valid_params",
    "single_node_graph",
    "single_node_ratings",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "weak_scaling_dataset",
]
