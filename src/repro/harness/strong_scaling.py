"""Strong-scaling study: a natural extension of the paper's Figure 4.

The paper measures *weak* scaling (data grows with the cluster). The
complementary question a deployer asks — "my graph is fixed; do more
nodes help?" — is strong scaling: the same dataset on 1..P nodes, where
perfect behaviour is runtime ~ 1/P and every framework eventually bends
away as fixed costs (supersteps, latency) and communication take over.
"""

from __future__ import annotations

import numpy as np

from ..datagen import rmat_graph, rmat_triangle_graph
from .runner import run_experiment


def strong_scaling(algorithm: str = "pagerank",
                   frameworks=("native", "combblas", "graphlab",
                               "socialite", "giraph"),
                   node_counts=(1, 2, 4, 8, 16), scale: int = 14,
                   scale_factor: float = 2000.0, seed: int = 31) -> dict:
    """Fixed dataset, varying node counts.

    Returns ``{framework: {nodes: seconds | status}}`` plus a
    ``"speedup"`` entry per framework (runtime(1 node) / runtime(n)).
    """
    if algorithm == "triangle_counting":
        graph = rmat_triangle_graph(scale, edge_factor=8, seed=seed)
    else:
        graph = rmat_graph(scale, edge_factor=16, seed=seed,
                           directed=algorithm == "pagerank")
    params = {}
    if algorithm == "pagerank":
        params["iterations"] = 3
    elif algorithm == "bfs":
        params["source"] = int(np.argmax(graph.out_degrees()))

    out = {}
    for framework in frameworks:
        curve = {}
        for nodes in node_counts:
            run = run_experiment(algorithm, framework, graph, nodes=nodes,
                                 scale_factor=scale_factor, **params)
            curve[nodes] = run.runtime() if run.ok else run.status
        out[framework] = curve
    return out


def parallel_efficiency(curve: dict) -> dict:
    """Speedup / node-count per point (1.0 = perfect strong scaling)."""
    completed = {n: t for n, t in curve.items() if isinstance(t, float)}
    if not completed:
        return {}
    base_nodes = min(completed)
    base = completed[base_nodes]
    return {
        nodes: (base / t) / (nodes / base_nodes)
        for nodes, t in completed.items()
    }
