"""Regenerators for the paper's Figures 3-7 (as data series).

Each ``figureN()`` returns the plotted series as nested dicts — the same
rows/series the paper's charts show — which ``repro.harness.report``
renders as text and the benchmark modules assert shape invariants on.
"""

from __future__ import annotations

from ..algorithms.registry import ALGORITHMS
from ..datagen import CATALOG
from ..frameworks.native import FIGURE7_LADDER
from .datasets import (
    paper_scale_factor,
    single_node_graph,
    single_node_ratings,
    weak_scaling_dataset,
)
from .runner import run_experiment
from .sweep import Sweep, outcome_of
from .tables import (
    MULTI_NODE_FRAMEWORKS,
    SINGLE_NODE_DATASETS,
    TABLE_FRAMEWORKS,
    _params,
    _single_node_cell,
    _weak_scaling_cell,
)

ALL_FRAMEWORKS = ("native",) + TABLE_FRAMEWORKS
MULTI_FRAMEWORKS = ("native",) + MULTI_NODE_FRAMEWORKS


def figure3(frameworks=ALL_FRAMEWORKS, algorithms=ALGORITHMS,
            sweep: Sweep = None) -> dict:
    """Single-node runtimes per dataset (4 panels).

    Returns ``{algorithm: {dataset: {framework: seconds | status}}}``.
    Sweep-routed: pass ``sweep=Sweep(..., journal=...)`` for a durable,
    resumable regeneration.
    """
    engine = sweep if sweep is not None else Sweep("figure3")
    cells = [
        {"algorithm": algorithm, "dataset": dataset_name, "framework": name}
        for algorithm in algorithms
        for dataset_name in SINGLE_NODE_DATASETS[algorithm]
        for name in frameworks
    ]
    result = engine.run(cells, _single_node_cell)
    out = {}
    for algorithm in algorithms:
        panel = {}
        for dataset_name in SINGLE_NODE_DATASETS[algorithm]:
            cell = {}
            for name in frameworks:
                record = result.get(algorithm=algorithm,
                                    dataset=dataset_name, framework=name)
                cell[name] = record.runtime() if record.ok else record.status
            panel[dataset_name] = cell
        out[algorithm] = panel
    return out


def figure4(frameworks=MULTI_FRAMEWORKS, algorithms=ALGORITHMS,
            node_counts=(1, 2, 4, 8, 16, 32, 64), sweep: Sweep = None) -> dict:
    """Weak-scaling curves (4 panels).

    Returns ``{algorithm: {framework: {nodes: seconds | status}}}``.
    Horizontal curves = perfect weak scaling, as in the paper.
    Sweep-routed like :func:`figure3`.
    """
    engine = sweep if sweep is not None else Sweep("figure4")
    cells = [
        {"algorithm": algorithm, "nodes": nodes, "framework": name}
        for algorithm in algorithms
        for nodes in node_counts
        for name in frameworks
    ]
    result = engine.run(cells, _weak_scaling_cell)
    out = {}
    for algorithm in algorithms:
        curves = {name: {} for name in frameworks}
        for nodes in node_counts:
            for name in frameworks:
                record = result.get(algorithm=algorithm, nodes=nodes,
                                    framework=name)
                curves[name][nodes] = record.runtime() if record.ok \
                    else record.status
        out[algorithm] = curves
    return out


#: Figure 5 configuration: dataset + node count per algorithm.
FIGURE5_CONFIG = {
    "pagerank": ("twitter", 4),
    "bfs": ("twitter", 4),
    "collaborative_filtering": ("yahoo_music", 4),
    "triangle_counting": ("twitter", 16),
}


def _figure5_cell(key: dict, budget_s: float = None):
    """Sweep executor for one Figure 5 real-world cell."""
    algorithm = key["algorithm"]
    if algorithm == "collaborative_filtering":
        data = single_node_ratings(key["dataset"])
        factor = paper_scale_factor(key["dataset"], data.num_ratings)
    else:
        from .datasets import scale_factor_for

        data = single_node_graph(key["dataset"], algorithm)
        factor = scale_factor_for(algorithm,
                                  CATALOG[key["dataset"]].paper_edges,
                                  data.num_edges)
    run = run_experiment(algorithm, key["framework"], data,
                         nodes=key["nodes"], scale_factor=factor,
                         deadline_s=budget_s, **_params(algorithm, data))
    return outcome_of(run)


def figure5(frameworks=MULTI_FRAMEWORKS, sweep: Sweep = None) -> dict:
    """Large real-world proxies on multiple nodes.

    Twitter for PageRank/BFS (4 nodes) and triangle counting (16 nodes —
    "required 16 nodes to complete", Section 4.1.1); Yahoo Music for
    collaborative filtering (4 nodes). CombBLAS's triangle-counting OOM
    on Twitter surfaces as an ``out-of-memory`` status, as in the paper.
    Sweep-routed like :func:`figure3`.
    """
    engine = sweep if sweep is not None else Sweep("figure5")
    cells = [
        {"algorithm": algorithm, "dataset": dataset_name, "nodes": nodes,
         "framework": name}
        for algorithm, (dataset_name, nodes) in FIGURE5_CONFIG.items()
        for name in frameworks
    ]
    result = engine.run(cells, _figure5_cell)
    out = {}
    for algorithm, (dataset_name, nodes) in FIGURE5_CONFIG.items():
        cell = {}
        for name in frameworks:
            record = result.get(algorithm=algorithm, dataset=dataset_name,
                                nodes=nodes, framework=name)
            cell[name] = record.runtime() if record.ok else record.status
        out[algorithm] = {"dataset": dataset_name, "nodes": nodes,
                          "runtimes": cell}
    return out


#: Figure 6 normalization constants (from the figure's caption).
FIGURE6_NORMALIZERS = {
    "cpu_utilization": 1.0,          # 100 = fully busy
    "peak_network_bandwidth": 5.5e9,  # network limit
    "memory_footprint_bytes": 64 * 2**30,  # node DRAM
}


def figure6(frameworks=MULTI_FRAMEWORKS, algorithms=ALGORITHMS,
            nodes: int = 4) -> dict:
    """System metrics at 4 nodes (4 panels of 4 bars per framework).

    Returns ``{algorithm: {framework: {metric: value-in-[0,100]}}}``.
    Bytes sent are normalized to Giraph's, per the paper's caption.
    """
    out = {}
    for algorithm in algorithms:
        data, factor = weak_scaling_dataset(algorithm, nodes)
        params = _params(algorithm, data)
        raw = {}
        for name in frameworks:
            run = run_experiment(algorithm, name, data, nodes=nodes,
                                 scale_factor=factor, enforce_memory=False,
                                 **params)
            raw[name] = run.metrics_or_none()

        giraph_bytes = None
        if raw.get("giraph") is not None:
            giraph_bytes = max(raw["giraph"].bytes_sent_per_node, 1.0)

        panel = {}
        for name, metrics in raw.items():
            if metrics is None:
                panel[name] = None
                continue
            bytes_norm = (100.0 * metrics.bytes_sent_per_node / giraph_bytes
                          if giraph_bytes else 0.0)
            panel[name] = {
                "cpu_utilization": 100.0 * metrics.cpu_utilization,
                "peak_network_bw": 100.0 * metrics.peak_network_bandwidth
                / FIGURE6_NORMALIZERS["peak_network_bandwidth"],
                "memory_footprint": 100.0 * metrics.memory_footprint_bytes
                / FIGURE6_NORMALIZERS["memory_footprint_bytes"],
                "network_bytes_sent": bytes_norm,
            }
        out[algorithm] = panel
    return out


def figure7(algorithms=("pagerank", "bfs"), nodes: int = 4) -> dict:
    """Native optimization waterfall (cumulative speedups vs baseline).

    Returns ``{algorithm: [(label, speedup), ...]}`` in ladder order.
    Multi-node (4 nodes) like the paper's message-optimization context.
    """
    out = {}
    for algorithm in algorithms:
        data, factor = weak_scaling_dataset(algorithm, nodes)
        params = _params(algorithm, data)
        ladder = []
        baseline = None
        for label, options in FIGURE7_LADDER:
            run = run_experiment(algorithm, "native", data, nodes=nodes,
                                 scale_factor=factor, options=options,
                                 **params)
            runtime = run.runtime()
            if baseline is None:
                baseline = runtime
            ladder.append((label, baseline / runtime))
        out[algorithm] = ladder
    return out


def sgd_vs_gd(hidden_dim: int = 16, max_iterations: int = 300) -> dict:
    """The Section 3.2 convergence study on the Netflix proxy."""
    from ..algorithms.collaborative import sgd_vs_gd_iterations

    ratings = single_node_ratings("netflix")
    return sgd_vs_gd_iterations(ratings, hidden_dim=hidden_dim,
                                max_iterations=max_iterations)
