"""The out-of-core headline demonstration: OOM -> ok under one cap.

The tentpole claim of the streaming pipeline is a *transition*: a
Graph500 run at a scale whose monolithic in-memory build dies under an
``RLIMIT_AS`` cap completes through the streamed sharded path, with
bounded peak RSS, on the same machine and the same cap. This module
stages exactly that as a two-cell supervised sweep so the evidence lands
in a durable sweep journal:

* cell ``{"mode": "in-memory"}`` builds the dense CSR **fresh** (the
  disk cache is bypassed on purpose — a cached graph would mmap instead
  of allocate, which is the streamed pipeline's trick, not the
  monolithic baseline's). Under the cap the allocation blow-up raises
  ``MemoryError``, which the sweep's typed-failure taxonomy records as
  the paper's ``out-of-memory`` status.
* cell ``{"mode": "streamed"}`` builds the identical graph through
  :func:`~repro.datagen.rmat_graph_sharded` and runs the same Graph500
  protocol partition-at-a-time under ``memory_budget_mb``, completing
  with status ``ok`` and its peak RSS in the journaled value.

Both cells run in supervised worker processes with the same
``memory_limit_mb`` (anonymous headroom); ``mapped_allowance_mb`` grants
extra *address space* for the streamed cell's read-only shard maps —
``RLIMIT_AS`` counts file-backed pages too, and mapped clean pages are
reclaimable, which is the whole point of the sharded layout.
"""

from __future__ import annotations

from ..datagen import DEFAULT_CHUNK_EDGES, rmat_graph, rmat_graph_sharded
from ..observability import reset_peak_rss
from .graph500 import graph500_protocol
from .runner import STATUS_OK, STATUS_OOM
from .sweep import Sweep

#: Sweep/journal name of the demonstration.
SWEEP_NAME = "graph500-outofcore"


class OutOfCoreCell:
    """Picklable sweep executor for one demonstration configuration.

    A plain value object (module-level class, primitive attributes) so
    the supervised pool can ship it to workers; ``__call__(key,
    budget_s=...)`` makes it a drop-in sweep ``execute``.
    """

    def __init__(self, scale: int, edge_factor: int = 16, seed: int = 1,
                 framework: str = "native", num_roots: int = 4,
                 chunk_edges: int = DEFAULT_CHUNK_EDGES,
                 num_partitions: int = None,
                 memory_budget_mb: float = None):
        self.scale = scale
        self.edge_factor = edge_factor
        self.seed = seed
        self.framework = framework
        self.num_roots = num_roots
        self.chunk_edges = chunk_edges
        self.num_partitions = num_partitions
        self.memory_budget_mb = memory_budget_mb

    def _build(self, mode: str):
        if mode == "streamed":
            return rmat_graph_sharded(
                self.scale, edge_factor=self.edge_factor, seed=self.seed,
                directed=False, chunk_edges=self.chunk_edges,
                num_partitions=self.num_partitions,
                memory_budget_mb=self.memory_budget_mb)
        # The undecorated dense builder: no disk cache, no mmap — the
        # honest monolithic baseline that must hold the whole edge list
        # and its dedup sort in anonymous memory at once.
        return rmat_graph.__wrapped__(
            self.scale, edge_factor=self.edge_factor, seed=self.seed,
            directed=False)

    def __call__(self, key: dict, budget_s: float = None) -> dict:
        # Both modes share one long-lived worker; rewind the kernel's
        # peak-RSS counter so each cell journals *its own* high water,
        # not the earlier in-memory cell's dying allocation spike.
        reset_peak_rss()
        graph = self._build(key["mode"])
        result = graph500_protocol(
            graph, scale=self.scale, framework=self.framework,
            num_roots=self.num_roots, streamed=key["mode"] == "streamed")
        return {
            "runtime_s": result.mean_time_s,
            "harmonic_mean_teps": result.harmonic_mean_teps,
            "num_edges": result.num_edges,
            "num_roots": result.num_roots,
            "all_valid": result.all_valid,
            "peak_rss_mb": round(result.peak_rss_mb, 2),
        }


def run_outofcore_demo(scale: int = 18, edge_factor: int = 16,
                       memory_limit_mb: float = 256.0,
                       mapped_allowance_mb: float = None,
                       memory_budget_mb: float = 64.0,
                       chunk_edges: int = DEFAULT_CHUNK_EDGES,
                       num_partitions: int = None, num_roots: int = 4,
                       framework: str = "native", seed: int = 1,
                       journal=None, tracer=None) -> dict:
    """Run the two-cell demonstration; return the transition record.

    ``memory_limit_mb`` is the per-worker anonymous headroom
    (``RLIMIT_AS`` above the interpreter's footprint at fork);
    ``mapped_allowance_mb`` defaults to twice the graph's on-disk CSR
    size so shard maps never eat the anonymous budget;
    ``memory_budget_mb`` caps the streamed cell's resident shard working
    set. ``journal`` (a path) makes the evidence durable.

    The returned dict carries both cell records plus ``transition`` —
    True exactly when the in-memory cell recorded ``out-of-memory`` and
    the streamed cell recorded ``ok``.
    """
    num_vertices = 1 << scale
    directed_edges = 2 * edge_factor * num_vertices  # symmetrized
    if mapped_allowance_mb is None:
        csr_bytes = 8 * (num_vertices + 1) + 8 * directed_edges
        mapped_allowance_mb = max(64.0, 2.0 * csr_bytes / 2**20)
    execute = OutOfCoreCell(scale, edge_factor=edge_factor, seed=seed,
                            framework=framework, num_roots=num_roots,
                            chunk_edges=chunk_edges,
                            num_partitions=num_partitions,
                            memory_budget_mb=memory_budget_mb)
    cells = [{"mode": "in-memory", "scale": scale},
             {"mode": "streamed", "scale": scale}]
    sweep = Sweep(SWEEP_NAME, journal=journal, jobs=1, max_retries=0,
                  memory_limit_mb=memory_limit_mb,
                  mapped_allowance_mb=mapped_allowance_mb, tracer=tracer)
    result = sweep.run(cells, execute)
    records = {record.key["mode"]: record
               for record in result.records.values()}
    in_memory = records["in-memory"]
    streamed = records["streamed"]
    return {
        "sweep": SWEEP_NAME,
        "scale": scale,
        "edge_factor": edge_factor,
        "memory_limit_mb": memory_limit_mb,
        "mapped_allowance_mb": round(mapped_allowance_mb, 2),
        "memory_budget_mb": memory_budget_mb,
        "chunk_edges": chunk_edges,
        "in_memory": {"status": in_memory.status,
                      "failure": in_memory.failure,
                      "value": in_memory.value},
        "streamed": {"status": streamed.status,
                     "failure": streamed.failure,
                     "value": streamed.value},
        "transition": (in_memory.status == STATUS_OOM
                       and streamed.status == STATUS_OK),
    }
