"""Experiment runner: one (algorithm, framework, dataset, nodes) cell.

Wraps the registry runners with the cluster construction, paper-scale
extrapolation factor, and failure classification: out-of-memory and
expressibility failures are *results* in this paper (CombBLAS's Twitter
triangle counting OOM, Galois's missing multi-node support), not crashes,
so they come back as statuses instead of exceptions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..algorithms.registry import runner as _lookup
from ..cluster import Cluster, paper_cluster
from ..errors import CapacityError, ExpressibilityError, ReproError
from ..frameworks.results import AlgorithmResult

STATUS_OK = "ok"
STATUS_OOM = "out-of-memory"
STATUS_UNSUPPORTED = "unsupported"


@dataclass
class RunResult:
    """Outcome of one experiment cell."""

    algorithm: str
    framework: str
    nodes: int
    status: str
    result: AlgorithmResult = None
    failure: str = ""
    config: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def runtime(self) -> float:
        """The paper's comparison number (time/iter or total), seconds."""
        if not self.ok:
            raise ReproError(
                f"{self.framework}/{self.algorithm} did not complete: "
                f"{self.status} ({self.failure})"
            )
        return self.result.runtime_for_comparison()

    def metrics(self):
        return self.result.metrics if self.ok else None


def run_experiment(algorithm: str, framework: str, dataset, nodes: int = 1,
                   scale_factor: float = 1.0, enforce_memory: bool = True,
                   **params) -> RunResult:
    """Run one cell of the study on a fresh simulated cluster.

    ``scale_factor`` is paper size / proxy size; it extrapolates the
    counted work, traffic and memory to the paper's dataset sizes.
    """
    run = _lookup(algorithm, framework)
    cluster = Cluster(paper_cluster(nodes), scale_factor=scale_factor,
                      enforce_memory=enforce_memory)
    config = {"nodes": nodes, "scale_factor": scale_factor, **params}
    try:
        result = run(dataset, cluster, **params)
    except CapacityError as error:
        return RunResult(algorithm, framework, nodes, STATUS_OOM,
                         failure=str(error), config=config)
    except ExpressibilityError as error:
        return RunResult(algorithm, framework, nodes, STATUS_UNSUPPORTED,
                         failure=str(error), config=config)
    except ReproError as error:
        if "single-node" in str(error):
            return RunResult(algorithm, framework, nodes, STATUS_UNSUPPORTED,
                             failure=str(error), config=config)
        raise
    return RunResult(algorithm, framework, nodes, STATUS_OK, result=result,
                     config=config)
