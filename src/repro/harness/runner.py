"""Experiment runner: one (algorithm, framework, dataset, nodes) cell.

This is the single front door to the study. :func:`run` takes a typed
:class:`~repro.harness.spec.ExperimentSpec` and wraps the registry
runners with cluster construction, the paper-scale extrapolation
factor, per-algorithm default parameters (:func:`default_params`),
optional flight-recorder tracing, and failure classification:
out-of-memory and expressibility failures are *results* in this paper
(CombBLAS's Twitter triangle counting OOM, Galois's missing multi-node
support), not crashes, so they come back as statuses instead of
exceptions. :func:`run_experiment` is the historical keyword-tail
entry point, now a thin shim that builds the spec and delegates.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass, field

import numpy as np

from ..algorithms.registry import profile_for, runner as _lookup
from ..chaos import FaultSchedule
from ..cluster import Cluster, paper_cluster
from ..errors import (
    CapacityError,
    DeadlineExceeded,
    ExpressibilityError,
    ReproError,
)
from ..frameworks.results import AlgorithmResult
from ..kernels.backend import use_backend
from .spec import ExperimentSpec

STATUS_OK = "ok"
STATUS_OOM = "out-of-memory"
STATUS_UNSUPPORTED = "unsupported"
STATUS_TIMEOUT = "timeout"
STATUS_FAILED = "failed"
#: A poison cell: it killed its worker process ``max_crashes`` times
#: (segfault, SIGKILL, OOM-killer) and was quarantined by the
#: supervised pool instead of being re-dispatched forever.
STATUS_CRASHED = "crashed"

#: Every status a cell record can carry, in report order.
CELL_STATUSES = (STATUS_OK, STATUS_OOM, STATUS_UNSUPPORTED, STATUS_TIMEOUT,
                 STATUS_FAILED, STATUS_CRASHED)


def default_params(algorithm: str, dataset=None) -> dict:
    """The harness's standard parameters for one algorithm.

    The one place that encodes how the study configures each workload:
    PageRank and CF iteration counts (runtimes are compared per
    iteration, so a few suffice), the CF hidden dimension, and the
    Graph500-style BFS source — the highest-out-degree vertex, because a
    random id can land on an isolated vertex and trivialize the run.
    """
    from .datasets import HARNESS_HIDDEN_DIM, HARNESS_ITERATIONS

    if algorithm == "pagerank":
        return {"iterations": HARNESS_ITERATIONS}
    if algorithm == "collaborative_filtering":
        return {"iterations": 2, "hidden_dim": HARNESS_HIDDEN_DIM}
    if algorithm in ("bfs", "sssp") and dataset is not None:
        return {"source": int(np.argmax(dataset.out_degrees()))}
    if algorithm == "label_propagation":
        return {"iterations": HARNESS_ITERATIONS}
    return {}


def _json_safe(value):
    """Recursively convert numpy containers/scalars for json.dump."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    return value


@dataclass
class RunResult:
    """Outcome of one experiment cell."""

    algorithm: str
    framework: str
    nodes: int
    status: str
    result: AlgorithmResult = None
    failure: str = ""
    config: dict = field(default_factory=dict)
    #: The Tracer passed to run_experiment, if any. A declared dataclass
    #: field (not a shared class attribute) so instances never alias it
    #: and ``dataclasses.fields`` sees it; excluded from repr/compare
    #: because a tracer is a recording device, not part of the outcome.
    trace: object = field(default=None, repr=False, compare=False)
    #: RecoveryStats when run with faults=..., else None.
    recovery: object = field(default=None)

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    def _require_ok(self, what: str) -> None:
        if not self.ok:
            raise ReproError(
                f"{self.framework}/{self.algorithm} did not complete, so "
                f"{what} is unavailable: {self.status} ({self.failure})"
            )

    def runtime(self) -> float:
        """The paper's comparison number (time/iter or total), seconds."""
        self._require_ok("a runtime")
        return self.result.runtime_for_comparison()

    def runtime_or_none(self):
        """Like :meth:`runtime`, but ``None`` for failed runs."""
        return self.result.runtime_for_comparison() if self.ok else None

    def metrics(self):
        """The run's :class:`RunMetrics`; raises on failed runs.

        Mirrors :meth:`runtime` — both raise on failure, both have an
        ``_or_none`` variant for callers that tabulate failures.
        """
        self._require_ok("metrics")
        return self.result.metrics

    def metrics_or_none(self):
        """Like :meth:`metrics`, but ``None`` for failed runs."""
        return self.result.metrics if self.ok else None

    def to_dict(self) -> dict:
        """JSON-safe summary of the cell (for ``--json`` output)."""
        out = {
            "algorithm": self.algorithm,
            "framework": self.framework,
            "nodes": self.nodes,
            "status": self.status,
            "config": _json_safe(self.config),
        }
        if self.failure:
            out["failure"] = self.failure
        if self.ok:
            out["runtime_s"] = self.result.runtime_for_comparison()
            out["result"] = self.result.to_dict()
        out["recovery"] = (_json_safe(self.recovery.to_dict())
                           if self.recovery is not None else None)
        return out


def run(spec: ExperimentSpec, trace=None) -> RunResult:
    """Run one :class:`ExperimentSpec` cell on a fresh simulated cluster.

    ``spec.scale_factor`` is paper size / proxy size; it extrapolates
    the counted work, traffic and memory to the paper's dataset sizes.
    Unspecified algorithm parameters fall back to
    :func:`default_params`. Pass ``trace=Tracer()`` to flight-record the
    run; the tracer comes back on ``RunResult.trace`` with every span
    and counter the execution stack emitted.

    ``spec.dataset`` may be a catalog name (resolved through
    :func:`repro.datagen.dataset`) or an in-memory graph/ratings object.
    ``spec.kernels`` pins the kernel backend for the duration of the
    run; simulated results are backend-independent, so this only moves
    wall-clock time.

    ``spec.faults`` turns the cell into a chaos run: either a spec
    string (``"crash(node=2, superstep=3); drop(p=0.01)"``, seeded with
    ``spec.fault_seed``) or a :class:`~repro.chaos.FaultSchedule`. The
    framework's own :class:`~repro.chaos.RecoveryPolicy` applies unless
    ``spec.recovery`` overrides it; fault-free runs are byte-for-byte
    unaffected. Recovery accounting lands on ``RunResult.recovery``.
    Crashes a fail-fast framework cannot absorb raise
    :class:`~repro.errors.NodeFailure`.

    ``spec.deadline_s`` caps the cell's *simulated* runtime: the cluster
    raises :class:`~repro.errors.DeadlineExceeded` once its clock
    crosses the budget, which comes back as a ``timeout`` status — the
    paper's DNF dash — instead of an exception.
    """
    algorithm, framework, nodes = spec.algorithm, spec.framework, spec.nodes
    dataset = spec.dataset
    if isinstance(dataset, str):
        from ..datagen import dataset as _catalog
        dataset = _catalog(dataset)
    runner = _lookup(algorithm, framework)
    merged = dict(default_params(algorithm, dataset))
    merged.update(spec.params)
    faults = spec.faults
    recovery = spec.recovery
    if isinstance(faults, str):
        faults = FaultSchedule.from_spec(faults, seed=spec.fault_seed)
    elif faults is not None:
        faults = faults.fresh()
    if faults is not None and recovery is None:
        recovery = profile_for(framework).recovery_policy()
    cluster = Cluster(paper_cluster(nodes), scale_factor=spec.scale_factor,
                      enforce_memory=spec.enforce_memory, tracer=trace,
                      faults=faults, recovery=recovery,
                      deadline_s=spec.deadline_s)
    config = {"nodes": nodes, "scale_factor": spec.scale_factor, **merged}
    if spec.deadline_s is not None:
        config["deadline_s"] = spec.deadline_s
    if faults is not None:
        config["faults"] = faults.spec()
        config["fault_seed"] = faults.seed

    def _finish(status, result=None, failure=""):
        cell = RunResult(algorithm, framework, nodes, status, result=result,
                         failure=failure, config=config)
        cell.trace = cluster.tracer if trace is not None else None
        cell.recovery = cluster.recovery_stats() if faults is not None else None
        return cell

    backend = (use_backend(spec.kernels) if spec.kernels is not None
               else contextlib.nullcontext())
    with backend, cluster.trace_span("run", algorithm=algorithm,
                                     framework=framework, nodes=nodes):
        try:
            result = runner(dataset, cluster, **merged)
        except CapacityError as error:
            return _finish(STATUS_OOM, failure=str(error))
        except ExpressibilityError as error:
            return _finish(STATUS_UNSUPPORTED, failure=str(error))
        except DeadlineExceeded as error:
            return _finish(STATUS_TIMEOUT, failure=str(error))
        except ReproError as error:
            if "single-node" in str(error):
                return _finish(STATUS_UNSUPPORTED, failure=str(error))
            raise
    return _finish(STATUS_OK, result=result)


def run_experiment(algorithm: str, framework: str, dataset, nodes: int = 1,
                   scale_factor: float = 1.0, enforce_memory: bool = True,
                   trace=None, faults=None, fault_seed: int = 0,
                   recovery=None, deadline_s: float = None,
                   **params) -> RunResult:
    """Thin shim over :class:`ExperimentSpec` + :func:`run`.

    Kept for compatibility — new code should build an
    :class:`ExperimentSpec` and call :func:`run` directly. Constructing
    the spec validates every field, so unknown ``**params`` keys now
    raise :class:`~repro.errors.SpecError` naming the valid parameters
    instead of disappearing into a runner's keyword tail.
    """
    spec = ExperimentSpec(
        algorithm=algorithm, framework=framework, dataset=dataset,
        nodes=nodes, scale_factor=scale_factor,
        enforce_memory=enforce_memory, faults=faults, fault_seed=fault_seed,
        recovery=recovery, deadline_s=deadline_s, params=params,
    )
    return run(spec, trace=trace)
