"""Multiprocessing cell executor for the resilient sweep engine.

The paper's study is a cross-product of (algorithm x framework x
dataset x nodes) cells, and its cells are *independent*: GraphLab and
Galois win benchmarks by keeping every core busy, and the harness that
measures them should too. This module fans a sweep's pending cells over
worker processes while keeping every PR-3 durability guarantee intact:

* **Workers compute, the parent journals.** Each worker runs the exact
  same :func:`~repro.harness.sweep.execute_cell` the serial engine
  uses — same typed-failure classification, same retry/backoff/
  quarantine policy (shipped as a picklable
  :class:`~repro.harness.sweep.CellPolicy`). Completed records stream
  back to the parent, which remains the **sole journal writer**.
* **Enumeration-order merge.** Workers finish cells in any order, but
  the parent merges (and journals) them in enumeration order, so a
  ``jobs=N`` journal is byte-identical to a serial one and
  resume/replay cannot tell them apart. A crash loses only cells not
  yet merged — exactly the serial contract.
* **Determinism by construction.** Cell seeds derive from cell keys,
  never from worker identity or scheduling; the dataset cache
  (:mod:`repro.datagen.cache`) gives every worker the same immutable
  arrays. Any worker count produces the same records.
* **Merged timeline.** Each worker runs its own
  :class:`~repro.observability.Tracer` per cell and ships the spans
  home; the parent merges them under its open ``sweep`` span with a
  ``worker=`` attribute, so one flight record explains the whole pool.

Since PR-8 the pool itself is *supervised*: the bare
``multiprocessing.Pool`` (whose ``imap`` stalls forever when a worker
is SIGKILLed) is replaced by :mod:`repro.harness.supervisor`, which
detects worker death, restarts and re-dispatches, quarantines poison
cells as DNF ``crashed``, enforces wall-clock deadlines, and drains
gracefully on SIGINT/SIGTERM. :func:`run_cells_parallel` is the
compatibility entry point: same signature and yield contract as the
old pool executor, now fault-tolerant underneath.

Workers are started with the ``fork`` method where the platform offers
it (executors need not be picklable); ``spawn`` platforms require a
picklable executor and get a typed error otherwise.
"""

from __future__ import annotations

from .supervisor import (
    CompletedCell,
    SupervisorPolicy,
    SupervisorPool,
    SupervisorStats,
    Ticket,
    _looks_like_pickling_error,
    _mp_context,
    run_cells_supervised,
)

#: Compatibility re-exports: PR-5 callers import these from here.
__all__ = [
    "CompletedCell",
    "SupervisorPolicy",
    "SupervisorPool",
    "SupervisorStats",
    "Ticket",
    "_looks_like_pickling_error",
    "_mp_context",
    "run_cells_parallel",
    "run_cells_supervised",
]


def run_cells_parallel(pending, execute, policy, jobs, traced=False,
                       sleep=None):
    """Yield :class:`CompletedCell` for ``pending`` in enumeration order.

    ``pending`` is a list of ``(index, key, cid)`` triples. Workers
    pull cells greedily (a slow cell never strands a batch behind it)
    while this generator yields strictly in submission order — the
    property the byte-identical-journal guarantee rests on. Runs on the
    supervised pool with default supervision (no wall deadline, no
    memory cap): worker deaths are still detected, re-dispatched and —
    for poison cells — quarantined as ``crashed`` instead of hanging
    the sweep.
    """
    yield from run_cells_supervised(pending, execute, policy, jobs,
                                    traced=traced, sleep=sleep)
