"""Multiprocessing cell executor for the resilient sweep engine.

The paper's study is a cross-product of (algorithm x framework x
dataset x nodes) cells, and its cells are *independent*: GraphLab and
Galois win benchmarks by keeping every core busy, and the harness that
measures them should too. This module fans a sweep's pending cells over
a process pool while keeping every PR-3 durability guarantee intact:

* **Workers compute, the parent journals.** Each worker runs the exact
  same :func:`~repro.harness.sweep.execute_cell` the serial engine
  uses — same typed-failure classification, same retry/backoff/
  quarantine policy (shipped as a picklable
  :class:`~repro.harness.sweep.CellPolicy`). Completed records stream
  back to the parent, which remains the **sole journal writer**.
* **Enumeration-order merge.** Results are consumed through an ordered
  ``imap``: workers finish cells in any order, but the parent merges
  (and journals) them in enumeration order, so a ``jobs=N`` journal is
  byte-identical to a serial one and resume/replay cannot tell them
  apart. A crash loses only cells not yet merged — exactly the serial
  contract.
* **Determinism by construction.** Cell seeds derive from cell keys,
  never from worker identity or scheduling; the dataset cache
  (:mod:`repro.datagen.cache`) gives every worker the same immutable
  arrays. Any worker count produces the same records.
* **Merged timeline.** Each worker runs its own
  :class:`~repro.observability.Tracer` per cell and ships the spans
  home; the parent merges them under its open ``sweep`` span with a
  ``worker=`` attribute, so one flight record explains the whole pool.

Workers are started with the ``fork`` method where the platform offers
it (executors need not be picklable); ``spawn`` platforms require a
picklable executor and get a typed error otherwise.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass

from ..errors import ReproError
from ..observability import NULL_TRACER, Tracer
from .sweep import execute_cell

#: Per-worker state installed by the pool initializer: the executor,
#: the cell policy, whether to trace, and the backoff sleep callable.
_WORKER_STATE = None


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def _init_worker(execute, policy, traced, sleep) -> None:
    global _WORKER_STATE
    _WORKER_STATE = (execute, policy, traced, sleep)


def _run_one(item):
    """Worker entry: one cell through the shared execution semantics."""
    index, key, cid = item
    execute, policy, traced, sleep = _WORKER_STATE
    tracer = Tracer() if traced else NULL_TRACER
    record = execute_cell(key, execute, policy, tracer=tracer, sleep=sleep)
    spans = list(tracer.spans) if traced else []
    return index, cid, record, spans, multiprocessing.current_process().name


@dataclass
class CompletedCell:
    """One merged result the parent consumes in enumeration order."""

    index: int
    cid: str
    record: object          # CellRecord
    spans: list             # worker-side Span objects (may be empty)
    worker: str             # pool worker name, e.g. "ForkPoolWorker-2"


def run_cells_parallel(pending, execute, policy, jobs, traced=False,
                       sleep=None):
    """Yield :class:`CompletedCell` for ``pending`` in enumeration order.

    ``pending`` is a list of ``(index, key, cid)`` triples. Workers
    pull cells greedily (``chunksize=1``, so a slow cell never strands
    a batch behind it) while this generator yields strictly in
    submission order — the property the byte-identical-journal
    guarantee rests on.
    """
    context = _mp_context()
    try:
        pool = context.Pool(processes=jobs, initializer=_init_worker,
                            initargs=(execute, policy, traced, sleep))
    except (AttributeError, TypeError, ModuleNotFoundError) as error:
        raise ReproError(
            f"cannot start {jobs} sweep workers: {error}") from error
    try:
        for index, cid, record, spans, worker in pool.imap(
                _run_one, list(pending), chunksize=1):
            yield CompletedCell(index=index, cid=cid, record=record,
                                spans=spans, worker=worker)
    except Exception as error:
        if _looks_like_pickling_error(error):
            raise ReproError(
                "parallel sweeps need a picklable executor on this "
                "platform (module-level function, not a closure); run "
                f"with jobs=1 or use the 'fork' start method: {error}"
            ) from error
        raise
    finally:
        pool.terminate()
        pool.join()


def _looks_like_pickling_error(error) -> bool:
    import pickle

    return isinstance(error, (pickle.PicklingError, AttributeError)) or \
        "pickle" in str(error).lower()
