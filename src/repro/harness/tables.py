"""Regenerators for the paper's Tables 1-7.

Each ``tableN()`` returns plain data (dicts / lists of rows) that
``repro.harness.report`` renders in the paper's format; the benchmark
modules under ``benchmarks/`` drive these and assert the paper-shape
invariants.
"""

from __future__ import annotations

import numpy as np

from ..algorithms.registry import ALGORITHMS
from ..datagen import CATALOG, rmat_graph, rmat_triangle_graph, \
    netflix_like_ratings
from ..frameworks.base import PROFILES
from .datasets import (
    paper_scale_factor,
    single_node_graph,
    single_node_ratings,
    weak_scaling_dataset,
)
from .runner import default_params, run, run_experiment
from .spec import ExperimentSpec
from .sweep import Sweep, outcome_of

#: Frameworks of the headline comparison, in the paper's column order.
TABLE_FRAMEWORKS = ("combblas", "graphlab", "socialite", "giraph", "galois")
MULTI_NODE_FRAMEWORKS = ("combblas", "graphlab", "socialite", "giraph")

#: Single-node datasets per algorithm (paper Figure 3 panels).
SINGLE_NODE_DATASETS = {
    "pagerank": ("livejournal", "facebook", "wikipedia", "synthetic"),
    "bfs": ("livejournal", "facebook", "wikipedia", "synthetic"),
    "triangle_counting": ("livejournal", "facebook", "wikipedia",
                          "synthetic"),
    "collaborative_filtering": ("netflix", "synthetic"),
    "wcc": ("livejournal", "facebook", "wikipedia", "synthetic"),
    "sssp": ("livejournal", "facebook", "wikipedia", "synthetic"),
    "k_core": ("livejournal", "facebook", "wikipedia", "synthetic"),
    "label_propagation": ("livejournal", "facebook", "wikipedia",
                          "synthetic"),
}

#: Assumed paper-scale sizes of the single-node synthetic runs (the paper
#: does not state them; sized like the real single-node datasets).
SYNTHETIC_SINGLE_NODE_EDGES = 100e6


def _single_node_dataset(algorithm: str, name: str):
    """(dataset, scale_factor) for a Figure 3 / Table 5 cell."""
    from .datasets import scale_factor_for

    if algorithm == "collaborative_filtering":
        if name == "synthetic":
            data = netflix_like_ratings(scale=13, num_items=290, seed=777)
            return data, SYNTHETIC_SINGLE_NODE_EDGES / data.num_ratings
        data = single_node_ratings(name)
        return data, paper_scale_factor(name, data.num_ratings)
    if name == "synthetic":
        if algorithm == "triangle_counting":
            data = rmat_triangle_graph(scale=13, edge_factor=16, seed=778)
        else:
            data = rmat_graph(scale=13, edge_factor=16, seed=778,
                              directed=algorithm == "pagerank")
        return data, scale_factor_for(algorithm,
                                      SYNTHETIC_SINGLE_NODE_EDGES,
                                      data.num_edges)
    data = single_node_graph(name, algorithm)
    return data, scale_factor_for(algorithm, CATALOG[name].paper_edges,
                                  data.num_edges)


def _params(algorithm: str, data=None) -> dict:
    return default_params(algorithm, data)


def _geomean(values) -> float:
    values = [v for v in values if v is not None and np.isfinite(v)]
    if not values:
        return float("nan")
    return float(np.exp(np.mean(np.log(values))))


# ---------------------------------------------------------------------------
# Sweep cell executors (shared with repro.harness.figures).
# ---------------------------------------------------------------------------

def _single_node_cell(key: dict, budget_s: float = None):
    """Sweep executor for one Figure 3 / Table 5 cell (1 node)."""
    data, factor = _single_node_dataset(key["algorithm"], key["dataset"])
    spec = ExperimentSpec(algorithm=key["algorithm"],
                          framework=key["framework"], dataset=data, nodes=1,
                          scale_factor=factor, deadline_s=budget_s,
                          params=_params(key["algorithm"], data))
    return outcome_of(run(spec))


def _weak_scaling_cell(key: dict, budget_s: float = None):
    """Sweep executor for one Figure 4 / Table 6 weak-scaling cell."""
    data, factor = weak_scaling_dataset(key["algorithm"], key["nodes"])
    spec = ExperimentSpec(algorithm=key["algorithm"],
                          framework=key["framework"], dataset=data,
                          nodes=key["nodes"], scale_factor=factor,
                          deadline_s=budget_s,
                          params=_params(key["algorithm"], data))
    return outcome_of(run(spec))


def _slowdown_table(result, algorithms, frameworks, axis: str,
                    axis_values) -> dict:
    """Assemble a Table 5/6 payload from sweep cell records.

    ``axis`` is the inner enumeration field (``dataset`` or ``nodes``);
    slowdowns geomean over the axis points where both the framework and
    the native baseline completed, and every cell's status is reported
    so DNF cells stay visible, as in the paper.
    """
    out = {}
    for algorithm in algorithms:
        per_framework = {name: [] for name in frameworks}
        statuses = {name: [] for name in frameworks}
        for value in axis_values(algorithm):
            baseline = result.get(algorithm=algorithm, framework="native",
                                  **{axis: value}).runtime()
            for name in frameworks:
                record = result.get(algorithm=algorithm, framework=name,
                                    **{axis: value})
                statuses[name].append(record.status)
                if record.ok and baseline is not None:
                    per_framework[name].append(record.runtime() / baseline)
        out[algorithm] = {
            name: {
                "slowdown": _geomean(per_framework[name]),
                "statuses": statuses[name],
            }
            for name in frameworks
        }
    return out


# ---------------------------------------------------------------------------
# Table 1 — algorithm characteristics.
# ---------------------------------------------------------------------------

def table1(hidden_dim: int = 1024) -> list:
    """Measured/structural characteristics of the four algorithms.

    Message sizes are measured from the vertex-programming engine's
    actual exchanges; the rest mirrors the algorithms' definitions.
    ``hidden_dim`` defaults to the paper's effective K (8 KB messages).
    """
    from ..datagen import dataset as catalog_dataset

    graph = catalog_dataset("rmat_mini")
    bfs_graph = single_node_graph("rmat_mini", "bfs")
    bfs_result = run_experiment("bfs", "native", bfs_graph,
                                **_params("bfs", bfs_graph))
    frontier = bfs_result.result.extras["frontier_sizes"]
    reached = bfs_result.result.extras["reached"]
    partial_active = any(size < reached for size in frontier[:-1])

    rows = [
        {
            "algorithm": "PageRank",
            "graph_type": "Directed, unweighted edges",
            "vertex_property": "Double (pagerank)",
            "access_pattern": "Streaming",
            "message_bytes_per_edge": 8,
            "vertex_active": "All iterations",
        },
        {
            "algorithm": "Breadth First Search",
            "graph_type": "Undirected, unweighted edges",
            "vertex_property": "Int (distance)",
            "access_pattern": "Random",
            "message_bytes_per_edge": 4,
            "vertex_active": "Some iterations" if partial_active else
                             "All iterations",
        },
        {
            "algorithm": "Collaborative Filtering",
            "graph_type": "Bipartite graph; Undirected, weighted edges",
            "vertex_property": "Array of Doubles (pu or qv)",
            "access_pattern": "Streaming",
            "message_bytes_per_edge": 8 * hidden_dim,
            "vertex_active": "All iterations",
        },
        {
            "algorithm": "Triangle Counting",
            "graph_type": "Directed, unweighted edges",
            "vertex_property": "Long (Ntriangles)",
            "access_pattern": "Streaming",
            "message_bytes_per_edge":
                (0, int(8 * graph.out_degrees().max())),
            "vertex_active": "Non-iterative",
        },
    ]
    return rows


# ---------------------------------------------------------------------------
# Table 2 — framework feature matrix.
# ---------------------------------------------------------------------------

def table2() -> list:
    """The high-level framework comparison, straight from the profiles."""
    order = ("native", "graphlab", "combblas", "socialite", "galois",
             "giraph")
    rows = []
    for name in order:
        profile = PROFILES[name]
        rows.append({
            "framework": profile.display_name,
            "programming_model": profile.model,
            "multi_node": profile.multinode,
            "language": profile.language,
            "graph_partitioning": profile.partitioning,
            "communication_layer": profile.comm_layer.name,
        })
    return rows


# ---------------------------------------------------------------------------
# Table 3 — datasets.
# ---------------------------------------------------------------------------

def table3() -> list:
    """Paper dataset inventory next to the generated proxies."""
    rows = []
    for name, spec in CATALOG.items():
        if name.startswith("rmat_mini"):
            continue
        proxy = spec.build()
        if spec.kind == "ratings":
            proxy_size = f"{proxy.num_users} users x {proxy.num_items} items"
            proxy_edges = proxy.num_ratings
        else:
            proxy_size = f"{proxy.num_vertices} vertices"
            proxy_edges = proxy.num_edges
        rows.append({
            "dataset": name,
            "paper_vertices": spec.paper_vertices,
            "paper_edges": spec.paper_edges,
            "proxy_size": proxy_size,
            "proxy_edges": proxy_edges,
            "description": spec.description,
        })
    return rows


# ---------------------------------------------------------------------------
# Table 4 — native efficiency vs hardware limits.
# ---------------------------------------------------------------------------

def table4() -> dict:
    """Native bound-by classification and achieved bandwidths, 1 & 4 nodes."""
    from ..cluster import PAPER_NODE

    out = {}
    for algorithm in ALGORITHMS:
        out[algorithm] = {}
        for nodes in (1, 4):
            data, factor = weak_scaling_dataset(algorithm, nodes)
            run = run_experiment(algorithm, "native", data, nodes=nodes,
                                 scale_factor=factor,
                                 **_params(algorithm, data))
            metrics = run.metrics()
            bound = metrics.bound_by()
            if bound == "memory":
                achieved = metrics.achieved_memory_bandwidth
                limit = PAPER_NODE.stream_bandwidth
            else:
                achieved = metrics.average_network_bandwidth
                limit = PAPER_NODE.link_bandwidth
            out[algorithm][nodes] = {
                "bound_by": bound,
                "achieved_gbps": achieved / 1e9,
                "efficiency": achieved / limit,
                "network_fraction": metrics.network_fraction,
            }
    return out


# ---------------------------------------------------------------------------
# Tables 5 / 6 — single and multi node slowdowns.
# ---------------------------------------------------------------------------

def table5(frameworks=TABLE_FRAMEWORKS, algorithms=ALGORITHMS,
           sweep: Sweep = None) -> dict:
    """Single-node slowdowns vs native, geomean over the Figure 3 datasets.

    All cells (including the native baselines) run through the
    resilient sweep engine; pass ``sweep=Sweep(..., journal=...)`` for a
    durable, resumable regeneration with per-cell deadlines. The
    default is a plain in-memory sweep with identical output.
    """
    frameworks = tuple(frameworks)
    algorithms = tuple(algorithms)
    engine = sweep if sweep is not None else Sweep("table5")
    # The native baseline is always swept; asking for it explicitly
    # must not enumerate the cell twice.
    swept = ("native",) + tuple(f for f in frameworks if f != "native")
    cells = [
        {"algorithm": algorithm, "dataset": dataset_name, "framework": name}
        for algorithm in algorithms
        for dataset_name in SINGLE_NODE_DATASETS[algorithm]
        for name in swept
    ]
    result = engine.run(cells, _single_node_cell)
    return _slowdown_table(result, algorithms, frameworks, "dataset",
                           lambda algorithm: SINGLE_NODE_DATASETS[algorithm])


def table6(frameworks=MULTI_NODE_FRAMEWORKS, algorithms=ALGORITHMS,
           node_counts=(4, 16), sweep: Sweep = None) -> dict:
    """Multi-node slowdowns vs native, geomean over weak-scaling points.

    Sweep-routed like :func:`table5`.
    """
    frameworks = tuple(frameworks)
    algorithms = tuple(algorithms)
    engine = sweep if sweep is not None else Sweep("table6")
    swept = ("native",) + tuple(f for f in frameworks if f != "native")
    cells = [
        {"algorithm": algorithm, "nodes": nodes, "framework": name}
        for algorithm in algorithms
        for nodes in node_counts
        for name in swept
    ]
    result = engine.run(cells, _weak_scaling_cell)
    return _slowdown_table(result, algorithms, frameworks, "nodes",
                           lambda _algorithm: node_counts)


# ---------------------------------------------------------------------------
# Table 7 — SociaLite network optimizations.
# ---------------------------------------------------------------------------

def table7(nodes: int = 4) -> dict:
    """Before/after the Section 6.1.3 SociaLite network fix, 4 nodes."""
    out = {}
    for algorithm in ("pagerank", "triangle_counting"):
        data, factor = weak_scaling_dataset(algorithm, nodes)
        params = _params(algorithm, data)
        before = run_experiment(algorithm, "socialite-published", data,
                                nodes=nodes, scale_factor=factor, **params)
        after = run_experiment(algorithm, "socialite", data,
                               nodes=nodes, scale_factor=factor, **params)
        out[algorithm] = {
            "before_s": before.runtime(),
            "after_s": after.runtime(),
            "speedup": before.runtime() / after.runtime(),
        }
    return out
