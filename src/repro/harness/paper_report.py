"""One-document reproduction report: all artifacts + claim checklist.

``generate_report()`` regenerates every table and figure, runs the
headline claim checks, and emits a single markdown document — the
artifact a reproducibility reviewer reads first. The CLI exposes it as
``python -m repro report``.
"""

from __future__ import annotations

from datetime import datetime, timezone

import numpy as np

from . import (
    figure3,
    figure4,
    figure5,
    figure6,
    figure7,
    report,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
)


def _claim_checks(t4, t5, t6, t7, f5, f7) -> list:
    """The paper's headline claims, evaluated on regenerated data."""
    def slowdown(table, algorithm, framework):
        return table[algorithm][framework]["slowdown"]

    giraph_gaps = [slowdown(t5, a, "giraph") for a in t5]
    checks = [
        ("native is only limited by hardware on one node "
         "(all workloads memory-bandwidth bound)",
         all(cells[1]["bound_by"] == "memory" for cells in t4.values())),
        ("Galois is the best framework on a single node",
         all(slowdown(t5, a, "galois")
             <= min(slowdown(t5, a, f) for f in
                    ("combblas", "graphlab", "socialite", "giraph")
                    if np.isfinite(slowdown(t5, a, f))) * 1.5
             for a in t5)),
        ("Giraph is 1.5-3 orders of magnitude off native",
         all(gap > 20 for gap in giraph_gaps)),
        ("CombBLAS OOMs on real-world triangle counting",
         t5["triangle_counting"]["combblas"]["statuses"]
         .count("out-of-memory") >= 2),
        ("CombBLAS is the worst non-Giraph framework for multi-node "
         "triangle counting",
         slowdown(t6, "triangle_counting", "combblas")
         >= max(slowdown(t6, "triangle_counting", f)
                for f in ("graphlab", "socialite"))),
        ("SociaLite is best-in-class for multi-node triangle counting",
         slowdown(t6, "triangle_counting", "socialite")
         <= min(slowdown(t6, "triangle_counting", f)
                for f in ("combblas", "graphlab")) * 1.25),
        ("SociaLite's network fix gains 1.6-2.4x (Table 7)",
         1.2 <= t7["triangle_counting"]["speedup"] <= 2.6
         and 1.6 <= t7["pagerank"]["speedup"] <= 3.2),
        ("CombBLAS OOMs on Twitter-scale triangle counting (Figure 5)",
         f5["triangle_counting"]["runtimes"]["combblas"] == "out-of-memory"),
        ("the native optimization stack is worth a large factor (Figure 7)",
         all(ladder[-1][1] > 3.0 for ladder in f7.values())),
    ]
    return checks


def generate_report() -> str:
    """Regenerate everything; return the markdown report."""
    t1, t2, t3 = table1(), table2(), table3()
    t4, t5, t6, t7 = table4(), table5(), table6(), table7()
    f3, f4, f5 = figure3(), figure4(), figure5()
    f6, f7 = figure6(), figure7()

    checks = _claim_checks(t4, t5, t6, t7, f5, f7)
    passed = sum(1 for _, ok in checks if ok)

    lines = [
        "# Reproduction report",
        "",
        f"Generated {datetime.now(timezone.utc).isoformat()} — "
        "Satish et al., SIGMOD 2014.",
        "",
        f"## Headline claims: {passed}/{len(checks)} reproduced",
        "",
    ]
    for claim, ok in checks:
        lines.append(f"- [{'x' if ok else ' '}] {claim}")
    lines.append("")

    def block(title, text):
        lines.extend([f"## {title}", "", "```", text, "```", ""])

    block("Table 1", report.render_rows(
        t1, ["algorithm", "graph_type", "vertex_property", "access_pattern",
             "message_bytes_per_edge", "vertex_active"]))
    block("Table 2", report.render_rows(
        t2, ["framework", "programming_model", "multi_node", "language",
             "graph_partitioning", "communication_layer"]))
    block("Table 3", report.render_rows(
        t3, ["dataset", "paper_vertices", "paper_edges", "proxy_size",
             "proxy_edges"]))
    block("Table 4", report.render_table4(t4))
    block("Table 5", report.render_slowdown_table(
        t5, "single-node slowdowns vs native (geomean)"))
    block("Table 6", report.render_slowdown_table(
        t6, "multi-node slowdowns vs native (geomean)"))
    block("Table 7", report.render_table7(t7))
    block("Figure 3", report.render_runtime_panels(
        f3, "single-node runtimes (seconds)"))
    block("Figure 4", report.render_scaling_curves(
        f4, "weak scaling 1-64 nodes (seconds)"))
    block("Figure 5", report.render_runtime_panels(
        f5, "large real-world proxies"))
    block("Figure 6", report.render_figure6(f6))
    block("Figure 7", report.render_figure7(f7))
    return "\n".join(lines)
