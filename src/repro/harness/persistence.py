"""Persist regenerated artifacts and compare runs across versions.

Reproduction studies live or die by tracked drift: this module writes
the harness' table/figure data to JSON (with environment stamps) and
diffs two saved runs, flagging cells that moved beyond a tolerance —
the regression check a maintainer runs before accepting a model change.
"""

from __future__ import annotations

import json
import math
import os
import platform
import tempfile
from datetime import datetime, timezone
from pathlib import Path

from ..errors import ReproError


def _jsonable(value):
    """Recursively convert harness outputs (numpy scalars etc.) to JSON."""
    if isinstance(value, dict):
        return {str(key): _jsonable(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if hasattr(value, "item"):          # numpy scalar
        value = value.item()
    if isinstance(value, float) and not math.isfinite(value):
        return None                      # NaN and +/-inf -> null
    return value


def atomic_write_text(path, text: str) -> Path:
    """Crash-safe file replacement: temp file in the same dir + os.replace.

    A crash (or Ctrl-C) mid-write leaves either the old file or the new
    one, never a truncated hybrid; the temp file is cleaned up on any
    failure. The temp file lives next to the target because
    ``os.replace`` is only atomic within one filesystem.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=path.parent,
                                    prefix=path.name + ".", suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def save_artifact(path, name: str, data, metadata: dict = None) -> Path:
    """Write one artifact (e.g. table5 output) with an environment stamp.

    The write is atomic (see :func:`atomic_write_text`): an interrupted
    save never corrupts a previously saved artifact.
    """
    payload = {
        "artifact": name,
        "created": datetime.now(timezone.utc).isoformat(),
        "python": platform.python_version(),
        "metadata": _jsonable(metadata or {}),
        "data": _jsonable(data),
    }
    return atomic_write_text(path, json.dumps(payload, indent=2,
                                              sort_keys=True))


def load_artifact(path) -> dict:
    path = Path(path)
    if not path.exists():
        raise ReproError(f"no saved artifact at {path}")
    payload = json.loads(path.read_text())
    for key in ("artifact", "data"):
        if key not in payload:
            raise ReproError(f"{path} is not a saved artifact (missing {key})")
    return payload


def _walk_numbers(data, prefix=""):
    if isinstance(data, dict):
        for key, value in data.items():
            yield from _walk_numbers(value, f"{prefix}/{key}")
    elif isinstance(data, list):
        for index, value in enumerate(data):
            yield from _walk_numbers(value, f"{prefix}[{index}]")
    elif isinstance(data, (int, float)) and not isinstance(data, bool):
        yield prefix, float(data)


def compare_artifacts(old: dict, new: dict, tolerance: float = 0.25) -> dict:
    """Diff two saved artifacts; returns drifted/added/removed cells.

    ``tolerance`` is the allowed relative change for numeric leaves.
    """
    if old["artifact"] != new["artifact"]:
        raise ReproError(
            f"artifact mismatch: {old['artifact']} vs {new['artifact']}"
        )
    old_values = dict(_walk_numbers(old["data"]))
    new_values = dict(_walk_numbers(new["data"]))

    drifted = {}
    for key in old_values.keys() & new_values.keys():
        before, after = old_values[key], new_values[key]
        if before == after:
            continue
        denominator = max(abs(before), 1e-12)
        change = abs(after - before) / denominator
        if change > tolerance:
            drifted[key] = {"before": before, "after": after,
                            "relative_change": change}
    return {
        "artifact": old["artifact"],
        "drifted": drifted,
        "added": sorted(new_values.keys() - old_values.keys()),
        "removed": sorted(old_values.keys() - new_values.keys()),
        "clean": not drifted and old_values.keys() == new_values.keys(),
    }
