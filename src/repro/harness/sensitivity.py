"""Hardware sensitivity analysis: where do the crossovers move?

The paper's roadmap (Section 6.2) implicitly asks "how fast would the
network have to be for framework X to stop being network bound?". This
module answers such questions directly by sweeping the simulated
hardware: scale the per-node link bandwidth or the memory bandwidth and
re-run an experiment, reporting runtime as a function of the swept knob
and the point at which the bottleneck flips.
"""

from __future__ import annotations

from dataclasses import replace as dataclass_replace

from ..cluster import Cluster, ClusterSpec, NodeSpec
from ..algorithms.registry import runner as _lookup


def _spec_with(node: NodeSpec, link_scale: float = 1.0,
               memory_scale: float = 1.0) -> NodeSpec:
    return dataclass_replace(
        node,
        link_bandwidth=node.link_bandwidth * link_scale,
        stream_bandwidth=node.stream_bandwidth * memory_scale,
        random_bandwidth=node.random_bandwidth * memory_scale,
    )


def sweep(algorithm: str, framework: str, dataset, nodes: int = 4,
          knob: str = "link", scales=(0.25, 0.5, 1.0, 2.0, 4.0, 8.0),
          scale_factor: float = 1.0, **params) -> list:
    """Runtime vs hardware scale for one experiment cell.

    ``knob`` is ``"link"`` (network bandwidth) or ``"memory"`` (DRAM
    bandwidth). Returns a list of rows: scale, runtime, network share,
    bound-by classification.
    """
    if knob not in ("link", "memory"):
        raise ValueError(f"knob must be 'link' or 'memory', got {knob!r}")
    run = _lookup(algorithm, framework)
    rows = []
    for scale in scales:
        node = _spec_with(
            NodeSpec(),
            link_scale=scale if knob == "link" else 1.0,
            memory_scale=scale if knob == "memory" else 1.0,
        )
        cluster = Cluster(ClusterSpec(num_nodes=nodes, node=node),
                          scale_factor=scale_factor, enforce_memory=False)
        result = run(dataset, cluster, **params)
        metrics = result.metrics
        rows.append({
            "scale": scale,
            "runtime_s": result.runtime_for_comparison(),
            "network_fraction": metrics.network_fraction,
            "bound_by": metrics.bound_by(),
        })
    return rows


def crossover_scale(rows: list) -> float:
    """First swept scale at which the bottleneck classification flips.

    Returns ``nan`` if the bottleneck never changes over the sweep.
    """
    if not rows:
        return float("nan")
    first = rows[0]["bound_by"]
    for row in rows[1:]:
        if row["bound_by"] != first:
            return float(row["scale"])
    return float("nan")


def diminishing_returns(rows: list, threshold: float = 0.05) -> float:
    """Smallest scale beyond which further scaling gains < ``threshold``.

    The deployment question: how much faster hardware is still worth
    buying for this workload/framework pair?
    """
    for current, following in zip(rows, rows[1:]):
        gain = 1.0 - following["runtime_s"] / max(current["runtime_s"],
                                                  1e-18)
        if gain < threshold:
            return float(current["scale"])
    return float(rows[-1]["scale"]) if rows else float("nan")
