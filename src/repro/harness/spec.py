"""Typed experiment specification: the harness's front-door value object.

An :class:`ExperimentSpec` captures everything that defines one cell of
the study — algorithm, framework, dataset, cluster shape, chaos and
deadline settings, kernel backend, and algorithm parameters — as a
frozen dataclass validated at construction time. It replaces the long
positional/keyword tail of :func:`repro.harness.runner.run_experiment`
(which survives as a thin shim) and gives sweeps, the CLI, and tests a
single serializable description to pass around.

Validation is strict: unknown algorithms, frameworks, kernel backends,
and — the historical foot-gun — misspelled ``params`` keys all raise
:class:`~repro.errors.SpecError` naming the valid choices, instead of
silently flowing into a runner's ``**kwargs``.
"""

from __future__ import annotations

import functools
import inspect
from dataclasses import dataclass, field, fields

from ..algorithms.registry import ALGORITHMS, FRAMEWORKS, _RUNNERS
from ..errors import SpecError
from ..kernels.backend import BACKENDS


@functools.lru_cache(maxsize=None)
def valid_params(algorithm: str) -> tuple:
    """Parameter names any registered runner of ``algorithm`` accepts.

    The union over every framework's runner signature (beyond the
    uniform ``(dataset, cluster)`` prefix), sorted. Wrappers that only
    expose ``**params`` contribute nothing — their wrapped runner's
    entry covers them.
    """
    names = set()
    for (algo, _framework), runner in _RUNNERS.items():
        if algo != algorithm:
            continue
        parameters = list(inspect.signature(runner).parameters.values())
        for parameter in parameters[2:]:
            if parameter.kind in (parameter.POSITIONAL_OR_KEYWORD,
                                  parameter.KEYWORD_ONLY):
                names.add(parameter.name)
    return tuple(sorted(names))


@dataclass(frozen=True)
class ExperimentSpec:
    """One fully-specified experiment cell.

    ``dataset`` is either a catalog name (string — serializable) or an
    in-memory :class:`~repro.graph.CSRGraph` / RatingsMatrix. ``faults``
    is a chaos spec string or a FaultSchedule. ``kernels`` optionally
    pins the kernel backend (``"vectorized"`` / ``"interpreted"``) for
    this run; ``None`` defers to ``REPRO_KERNELS`` / the default.
    ``params`` holds algorithm parameters and is validated against
    :func:`valid_params`.
    """

    algorithm: str
    framework: str
    dataset: object
    nodes: int = 1
    scale_factor: float = 1.0
    enforce_memory: bool = True
    faults: object = None
    fault_seed: int = 0
    recovery: object = None
    deadline_s: float = None
    kernels: str = None
    params: dict = field(default_factory=dict)

    def __post_init__(self):
        if self.algorithm not in ALGORITHMS:
            raise SpecError(
                f"unknown algorithm {self.algorithm!r}; "
                f"known: {', '.join(ALGORITHMS)}"
            )
        if self.framework not in FRAMEWORKS:
            raise SpecError(
                f"unknown framework {self.framework!r}; "
                f"known: {', '.join(FRAMEWORKS)}"
            )
        if not isinstance(self.nodes, int) or self.nodes < 1:
            raise SpecError(f"nodes must be a positive int, got {self.nodes!r}")
        if not self.scale_factor > 0:
            raise SpecError(
                f"scale_factor must be > 0, got {self.scale_factor!r}"
            )
        if self.deadline_s is not None and not self.deadline_s > 0:
            raise SpecError(
                f"deadline_s must be > 0 or None, got {self.deadline_s!r}"
            )
        if self.kernels is not None and self.kernels not in BACKENDS:
            raise SpecError(
                f"unknown kernel backend {self.kernels!r}; "
                f"known: {', '.join(BACKENDS)}"
            )
        object.__setattr__(self, "params", dict(self.params))
        known = valid_params(self.algorithm)
        unknown = sorted(set(self.params) - set(known))
        if unknown:
            raise SpecError(
                f"unknown parameter(s) {', '.join(map(repr, unknown))} for "
                f"{self.algorithm}; valid: {', '.join(known)}"
            )

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe form; requires a catalog-name dataset."""
        if not isinstance(self.dataset, str):
            raise SpecError(
                "only specs with a catalog-name dataset serialize; got an "
                f"in-memory {type(self.dataset).__name__}"
            )
        if self.recovery is not None:
            raise SpecError(
                "specs with a recovery-policy override do not serialize; "
                "leave recovery=None to use the framework's own policy"
            )
        faults = self.faults
        if faults is not None and not isinstance(faults, str):
            faults = faults.spec()
        return {
            "algorithm": self.algorithm,
            "framework": self.framework,
            "dataset": self.dataset,
            "nodes": self.nodes,
            "scale_factor": self.scale_factor,
            "enforce_memory": self.enforce_memory,
            "faults": faults,
            "fault_seed": self.fault_seed,
            "deadline_s": self.deadline_s,
            "kernels": self.kernels,
            "params": dict(self.params),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentSpec":
        """Inverse of :meth:`to_dict`; rejects unknown keys."""
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise SpecError(
                f"unknown spec field(s) {', '.join(map(repr, unknown))}; "
                f"valid: {', '.join(sorted(known))}"
            )
        return cls(**payload)
