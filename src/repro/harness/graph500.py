"""Graph500-style BFS benchmark harness (the paper's reference [23]).

"This algorithm is part of the Graph500 benchmark" (Section 2). The
official benchmark prescribes: generate an RMAT graph at a given scale,
pick 64 search keys uniformly from the vertices with at least one edge,
run one BFS per key, *validate* every output tree, and report the
harmonic mean of TEPS (traversed edges per second) with its quantiles.

This module reproduces that protocol on the simulated cluster for any of
the package's frameworks; TEPS here are simulated-time TEPS at the
configured extrapolation factor.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..algorithms.bfs import UNREACHED, validate_distances
from ..datagen import rmat_graph, rmat_graph_sharded
from ..observability import peak_rss_bytes
from .runner import run_experiment


@dataclass
class Graph500Result:
    """The statistics the official benchmark reports."""

    scale: int
    num_edges: int
    num_roots: int
    harmonic_mean_teps: float
    min_teps: float
    median_teps: float
    max_teps: float
    mean_time_s: float
    all_valid: bool
    streamed: bool = False
    peak_rss_mb: float = 0.0

    def __repr__(self) -> str:
        return (
            f"Graph500Result(scale={self.scale}, "
            f"harmonic_mean_teps={self.harmonic_mean_teps:.3e}, "
            f"valid={self.all_valid})"
        )


def choose_search_keys(graph, num_roots: int, seed: int = 2) -> np.ndarray:
    """Sample roots uniformly from vertices with degree >= 1 (spec 2.4)."""
    degrees = graph.out_degrees()
    candidates = np.nonzero(degrees > 0)[0]
    if candidates.size == 0:
        raise ValueError("graph has no vertices with edges")
    rng = np.random.default_rng(seed)
    count = min(num_roots, candidates.size)
    return rng.choice(candidates, size=count, replace=False)


def traversed_edges(graph, distances) -> float:
    """Edges with at least one endpoint reached, counted once.

    The Graph500 TEPS numerator: input edges "traversed" by the search.
    On our symmetrized graphs each undirected edge is stored twice, so
    halve the directed count. Counted from degrees — identical to
    masking an expanded per-edge source array, but O(V) memory, which
    the out-of-core runs rely on.
    """
    reached = distances != UNREACHED
    return float((graph.out_degrees() * reached).sum()) / 2.0


def run_graph500(scale: int = 12, edge_factor: int = 16, nodes: int = 1,
                 framework: str = "native", num_roots: int = 16,
                 scale_factor: float = 1.0, seed: int = 1,
                 streamed: bool = False, memory_budget_mb: float = None,
                 chunk_edges: int = 1 << 18,
                 num_partitions: int = None) -> Graph500Result:
    """Run the Graph500 BFS protocol and return its statistics.

    ``num_roots`` defaults to 16 (the official 64 at laptop scale just
    repeats similar searches; tests use fewer still). ``streamed=True``
    builds the graph through the out-of-core pipeline (byte-identical
    dataset, bounded peak RSS) with shard working sets capped at
    ``memory_budget_mb``.
    """
    if streamed:
        graph = rmat_graph_sharded(
            scale, edge_factor=edge_factor, seed=seed, directed=False,
            chunk_edges=chunk_edges, num_partitions=num_partitions,
            memory_budget_mb=memory_budget_mb)
    else:
        graph = rmat_graph(scale, edge_factor=edge_factor, seed=seed,
                           directed=False)
    return graph500_protocol(graph, scale=scale, framework=framework,
                             nodes=nodes, num_roots=num_roots,
                             scale_factor=scale_factor, streamed=streamed)


def graph500_protocol(graph, scale: int, framework: str = "native",
                      nodes: int = 1, num_roots: int = 16,
                      scale_factor: float = 1.0,
                      streamed: bool = False) -> Graph500Result:
    """The Graph500 measurement loop on an already-built graph.

    Split from :func:`run_graph500` so the out-of-core demonstration can
    run the identical protocol against graphs it builds itself (a fresh
    in-memory build versus a streamed sharded one) under one memory cap.
    """
    roots = choose_search_keys(graph, num_roots)

    teps = []
    times = []
    all_valid = True
    for root in roots:
        run = run_experiment("bfs", framework, graph, nodes=nodes,
                             scale_factor=scale_factor, source=int(root))
        if not run.ok:
            raise RuntimeError(
                f"{framework} BFS failed on root {root}: {run.status}"
            )
        distances = run.result.values
        all_valid &= validate_distances(graph, int(root), distances)
        edges = traversed_edges(graph, distances) * scale_factor
        seconds = run.runtime()
        times.append(seconds)
        teps.append(edges / seconds if seconds > 0 else 0.0)

    teps = np.asarray(teps)
    return Graph500Result(
        scale=scale,
        num_edges=graph.num_edges // 2,
        num_roots=len(roots),
        harmonic_mean_teps=float(len(teps) / np.sum(1.0 / teps)),
        min_teps=float(teps.min()),
        median_teps=float(np.median(teps)),
        max_teps=float(teps.max()),
        mean_time_s=float(np.mean(times)),
        all_valid=bool(all_valid),
        streamed=streamed,
        peak_rss_mb=peak_rss_bytes() / (1 << 20),
    )
