"""Text renderers: paper-style tables from the harness data structures."""

from __future__ import annotations


def _format_cell(value, width: int = 10) -> str:
    if value is None:
        return "-".rjust(width)
    if isinstance(value, str):
        return value.rjust(width)
    if isinstance(value, float):
        if value != value:  # NaN
            return "n/a".rjust(width)
        if value >= 100:
            return f"{value:.0f}".rjust(width)
        if value >= 1:
            return f"{value:.1f}".rjust(width)
        return f"{value:.3g}".rjust(width)
    return str(value).rjust(width)


def render_rows(rows: list, columns: list, title: str = "") -> str:
    """Generic fixed-width table from a list of row dicts."""
    widths = {
        col: max(len(col), *(len(str(row.get(col, ""))) for row in rows))
        for col in columns
    }
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(col.ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(
            str(row.get(col, "")).ljust(widths[col]) for col in columns
        ))
    return "\n".join(lines)


def render_slowdown_table(data: dict, title: str) -> str:
    """Tables 5/6: rows = algorithms, columns = frameworks."""
    frameworks = list(next(iter(data.values())).keys())
    lines = [title]
    header = "algorithm".ljust(26) + "".join(f.rjust(12) for f in frameworks)
    lines.append(header)
    lines.append("-" * len(header))
    for algorithm, cells in data.items():
        row = algorithm.ljust(26)
        for framework in frameworks:
            cell = cells[framework]
            slowdown = cell["slowdown"]
            if slowdown != slowdown:  # NaN: nothing completed
                status = next((s for s in cell["statuses"] if s != "ok"),
                              "n/a")
                row += status[:11].rjust(12)
            else:
                row += f"{slowdown:.1f}".rjust(12)
        lines.append(row)
    return "\n".join(lines)


def render_table4(data: dict) -> str:
    lines = ["Table 4: native efficiency vs hardware limits"]
    header = ("algorithm".ljust(26) + "nodes".rjust(6)
              + "bound by".rjust(10) + "achieved".rjust(12)
              + "efficiency".rjust(12))
    lines.append(header)
    lines.append("-" * len(header))
    for algorithm, per_nodes in data.items():
        for nodes, cell in per_nodes.items():
            lines.append(
                algorithm.ljust(26) + str(nodes).rjust(6)
                + cell["bound_by"].rjust(10)
                + f"{cell['achieved_gbps']:.1f} GB/s".rjust(12)
                + f"{100 * cell['efficiency']:.0f}%".rjust(12)
            )
    return "\n".join(lines)


def render_table7(data: dict) -> str:
    lines = ["Table 7: SociaLite network optimization (4 nodes)"]
    header = ("algorithm".ljust(26) + "before".rjust(10) + "after".rjust(10)
              + "speedup".rjust(10))
    lines.append(header)
    lines.append("-" * len(header))
    for algorithm, cell in data.items():
        lines.append(
            algorithm.ljust(26)
            + f"{cell['before_s']:.2f}s".rjust(10)
            + f"{cell['after_s']:.2f}s".rjust(10)
            + f"{cell['speedup']:.1f}x".rjust(10)
        )
    return "\n".join(lines)


def render_runtime_panels(data: dict, title: str) -> str:
    """Figures 3/5-style: one block per algorithm, rows per dataset."""
    lines = [title]
    for algorithm, panel in data.items():
        lines.append(f"\n[{algorithm}]")
        if "runtimes" in panel:  # Figure 5 shape
            inner = {f"{panel['dataset']} ({panel['nodes']} nodes)":
                     panel["runtimes"]}
        else:
            inner = panel
        frameworks = list(next(iter(inner.values())).keys())
        header = "dataset".ljust(30) + "".join(f.rjust(12)
                                               for f in frameworks)
        lines.append(header)
        for dataset_name, cell in inner.items():
            row = dataset_name.ljust(30)
            for framework in frameworks:
                value = cell[framework]
                if isinstance(value, str):
                    row += value[:11].rjust(12)
                else:
                    row += f"{value:.3g}s".rjust(12)
            lines.append(row)
    return "\n".join(lines)


def render_scaling_curves(data: dict, title: str) -> str:
    """Figure 4: per algorithm, rows = frameworks, columns = node counts."""
    lines = [title]
    for algorithm, curves in data.items():
        lines.append(f"\n[{algorithm}] (seconds; flat rows = perfect scaling)")
        node_counts = list(next(iter(curves.values())).keys())
        header = "framework".ljust(14) + "".join(
            f"{n}n".rjust(11) for n in node_counts
        )
        lines.append(header)
        for framework, series in curves.items():
            row = framework.ljust(14)
            for nodes in node_counts:
                value = series[nodes]
                row += (value[:10].rjust(11) if isinstance(value, str)
                        else f"{value:.3g}".rjust(11))
            lines.append(row)
    return "\n".join(lines)


def render_figure6(data: dict) -> str:
    lines = ["Figure 6: system metrics at 4 nodes (normalized to 100)"]
    metrics = ("cpu_utilization", "peak_network_bw", "memory_footprint",
               "network_bytes_sent")
    for algorithm, panel in data.items():
        lines.append(f"\n[{algorithm}]")
        header = "framework".ljust(14) + "".join(m.rjust(20) for m in metrics)
        lines.append(header)
        for framework, cell in panel.items():
            row = framework.ljust(14)
            if cell is None:
                row += "did not complete".rjust(20)
            else:
                for metric in metrics:
                    row += f"{cell[metric]:.1f}".rjust(20)
            lines.append(row)
    return "\n".join(lines)


def render_sweep_completeness(report: dict) -> str:
    """The sweep's coverage + DNF taxonomy summary, paper-dash style."""
    statuses = report["statuses"]
    lines = [
        f"Sweep '{report['sweep']}': {report['cells']} cells, "
        f"{100 * report['coverage']:.0f}% ok "
        f"({report['executed']} executed, {report['replayed']} replayed "
        f"from journal, {report['retries']} retries)"
    ]
    taxonomy = ", ".join(f"{status}={count}"
                         for status, count in statuses.items() if count)
    lines.append(f"  statuses: {taxonomy if taxonomy else 'none'}")
    # Supervisor accounting: only worth a line when real faults happened
    # (keeps clean-run output identical to the pre-supervisor engine).
    restarts = report.get("worker_restarts", 0)
    wall = report.get("wall_timeouts", 0)
    if restarts or wall:
        lines.append(f"  supervisor: {restarts} worker restart(s), "
                     f"{wall} wall-clock timeout(s)")
    for entry in report["dnf"]:
        key = " ".join(f"{k}={v}" for k, v in entry["key"].items())
        lines.append(f"  DNF [{entry['status']:>13}] {key}"
                     + (f" — {entry['failure']}" if entry["failure"] else ""))
    for key in report["quarantined"]:
        flat = " ".join(f"{k}={v}" for k, v in key.items())
        lines.append(f"  quarantined: {flat}")
    return "\n".join(lines)


def render_figure7(data: dict) -> str:
    lines = ["Figure 7: native optimization waterfall (cumulative speedup)"]
    for algorithm, ladder in data.items():
        lines.append(f"\n[{algorithm}]")
        for label, speedup in ladder:
            bar = "#" * max(int(round(speedup)), 1)
            lines.append(f"  {label:<32} {speedup:5.1f}x  {bar}")
    return "\n".join(lines)
