"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run`` — one experiment cell: algorithm x framework x dataset x nodes;
* ``trace`` — run one cell with the flight recorder and export the trace;
* ``chaos`` — run one cell fault-free and under a ``--faults`` schedule,
  and report what surviving the faults cost;
* ``sweep`` — a durable, resumable multi-cell sweep (table5/table6/
  figure3/figure4/figure5) with per-cell deadlines, retry + quarantine
  and a JSONL journal; ``--jobs N`` fans the cells over a *supervised*
  worker pool (crash/hang/OOM containment, ``--wall-deadline``,
  ``--real-chaos`` fault injection) with a byte-identical journal;
* ``cache`` — inspect or clear the content-addressed dataset cache;
* ``table N`` / ``figure N`` — regenerate one paper artifact;
* ``perf`` — roofline bounds + gap attribution (``analyze``), ranked
  optimization what-ifs (``advise``) and the perf-regression gate
  (``baseline record|check|list``);
* ``datasets`` — list the catalog and proxy sizes;
* ``frameworks`` — list frameworks and their profiles;
* ``graph500`` — the Graph500 BFS protocol on the simulator;
* ``regenerate`` — everything, like ``scripts/regenerate_all.py``.
"""

from __future__ import annotations

import argparse
import json
import sys

# Exit codes, one per failure class, so scripts and CI can tell a
# legitimate DNF (the paper's dashes) from a broken invocation. 2 is
# argparse's usage-error code.
EXIT_OK = 0
EXIT_FAILURE = 1
EXIT_USAGE = 2
EXIT_OOM = 3
EXIT_UNSUPPORTED = 4
EXIT_NODE_FAILURE = 5
EXIT_DEADLINE = 6
EXIT_PERF_REGRESSION = 7
EXIT_INTERRUPTED = 8

EXIT_CODES_HELP = """\
exit codes:
  0  success (for `sweep`: the sweep completed; DNF cells are results)
  1  cell failed / unclassified error
  2  usage error
  3  out of memory (CapacityError)
  4  unsupported by the framework's programming model
  5  node failure the framework could not recover
  6  simulated deadline exceeded (timeout)
  7  perf gate failed: cells regressed beyond the baseline tolerance
  8  sweep drained on SIGINT/SIGTERM: journal flushed, finish via --resume
"""

#: RunResult.status -> exit code (``run``/``trace`` commands).
_STATUS_EXITS = {
    "ok": EXIT_OK,
    "out-of-memory": EXIT_OOM,
    "unsupported": EXIT_UNSUPPORTED,
    "failed": EXIT_NODE_FAILURE,
    "timeout": EXIT_DEADLINE,
}


def _exit_code_for(error) -> int:
    """Map a typed experiment failure to its exit code."""
    from .errors import (
        CapacityError,
        DeadlineExceeded,
        NodeFailure,
        PerfRegression,
        SweepInterrupted,
    )

    if isinstance(error, SweepInterrupted):
        return EXIT_INTERRUPTED
    if isinstance(error, CapacityError):
        return EXIT_OOM
    if isinstance(error, DeadlineExceeded):
        return EXIT_DEADLINE
    if isinstance(error, NodeFailure):
        return EXIT_NODE_FAILURE
    if isinstance(error, PerfRegression):
        return EXIT_PERF_REGRESSION
    return EXIT_FAILURE


def _failure_exit(error, label: str) -> int:
    """Report a typed experiment failure on stderr; returns its code.

    The single place every command funnels typed failures through, so
    the failure-class -> exit-code mapping cannot drift between
    commands (it used to be duplicated in ``chaos`` and ``main``).
    """
    print(f"{label}: {error}", file=sys.stderr)
    return _exit_code_for(error)


def _run_cell(args, trace=None):
    """Shared run/trace front half: build an ExperimentSpec and run it."""
    from .harness import ExperimentSpec, run

    # Only pass what was given (the runner fills in default_params),
    # and only to the algorithms that take it.
    params = {}
    if args.algorithm in ("pagerank", "collaborative_filtering",
                          "label_propagation") \
            and args.iterations is not None:
        params["iterations"] = args.iterations
    if args.algorithm == "collaborative_filtering" \
            and args.hidden_dim is not None:
        params["hidden_dim"] = args.hidden_dim
    spec = ExperimentSpec(
        algorithm=args.algorithm, framework=args.framework,
        dataset=args.dataset, nodes=args.nodes,
        scale_factor=args.scale_factor,
        faults=getattr(args, "faults", None) or None,
        fault_seed=getattr(args, "fault_seed", 0),
        deadline_s=getattr(args, "deadline", None),
        kernels=getattr(args, "kernels", None),
        params=params,
    )
    return run(spec, trace=trace)


def _print_run(result) -> None:
    metrics = result.metrics()
    print(f"algorithm          : {result.algorithm}")
    print(f"framework          : {result.framework}")
    print(f"nodes              : {result.nodes}")
    print(f"runtime            : {result.runtime():.4f} s (simulated)")
    print(f"iterations         : {metrics.num_iterations}")
    print(f"cpu utilization    : {100 * metrics.cpu_utilization:.0f}%")
    print(f"bytes sent per node: {metrics.bytes_sent_per_node / 1e6:.1f} MB")
    print(f"memory footprint   : "
          f"{metrics.memory_footprint_bytes / 2**30:.2f} GiB/node")
    print(f"bound by           : {metrics.bound_by()}")
    if result.recovery is not None:
        stats = result.recovery
        print(f"faults injected    : {stats.faults_injected} "
              f"({stats.crashes} crashes, {stats.recoveries} recovered)")
        print(f"fault overhead     : {stats.total_overhead_s:.4f} s "
              f"(checkpoint {stats.checkpoint_time_s:.4f}, "
              f"recovery {stats.recovery_time_s:.4f}, "
              f"retry {stats.retry_time_s:.4f})")


def _cmd_run(args) -> int:
    result = _run_cell(args)
    if args.json:
        print(json.dumps(result.to_dict(), indent=2))
        return _STATUS_EXITS.get(result.status, EXIT_FAILURE)
    if not result.ok:
        print(f"status: {result.status} ({result.failure})")
        return _STATUS_EXITS.get(result.status, EXIT_FAILURE)
    _print_run(result)
    return EXIT_OK


def _cmd_trace(args) -> int:
    from .observability import (
        Tracer,
        chrome_trace,
        render_summary_tree,
        steps_csv,
        write_chrome_trace,
    )

    result = _run_cell(args, trace=Tracer())
    tracer = result.trace
    if args.out:
        write_chrome_trace(tracer, args.out)
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(steps_csv(tracer))
    if args.json:
        payload = result.to_dict()
        payload["trace"] = chrome_trace(tracer)
        print(json.dumps(payload, indent=2))
    else:
        if not result.ok:
            print(f"status: {result.status} ({result.failure})")
        print(render_summary_tree(tracer))
        if args.out:
            print(f"\nwrote Chrome trace to {args.out} "
                  f"(open in chrome://tracing or ui.perfetto.dev)")
        if args.csv:
            print(f"wrote per-superstep CSV to {args.csv}")
    return _STATUS_EXITS.get(result.status, EXIT_FAILURE)


def _cmd_chaos(args) -> int:
    """Same cell twice — fault-free, then under the schedule — and diff."""
    from .errors import NodeFailure

    faults, seed = args.faults, args.fault_seed
    args.faults = None
    baseline = _run_cell(args)
    args.faults, args.fault_seed = faults, seed
    try:
        chaos = _run_cell(args)
    except NodeFailure as failure:
        if args.json:
            print(json.dumps({
                "baseline": baseline.to_dict(),
                "faults": faults,
                "fault_seed": seed,
                "status": "node-failure",
                "node": failure.node,
                "superstep": failure.superstep,
            }, indent=2))
        else:
            print(f"schedule    : {faults} (seed {seed})")
            print(f"baseline    : {baseline.metrics().total_time_s:.4f} s")
            print(f"chaos run   : FAILED — {failure}")
            print(f"              ({args.framework} runs fail-fast; pick a "
                  "checkpointing framework to survive crashes)")
        return _exit_code_for(failure)
    if args.json:
        print(json.dumps({"baseline": baseline.to_dict(),
                          "chaos": chaos.to_dict()}, indent=2))
        return _STATUS_EXITS.get(chaos.status, EXIT_FAILURE)
    if not chaos.ok or not baseline.ok:
        failed = baseline if not baseline.ok else chaos
        print(f"status: {failed.status} ({failed.failure})")
        return _STATUS_EXITS.get(failed.status, EXIT_FAILURE)
    stats = chaos.recovery
    # Total wall clock, not time/iteration: the overhead lines below are
    # whole-run seconds and the ratio must be read against them.
    clean_s = baseline.metrics().total_time_s
    chaos_s = chaos.metrics().total_time_s
    print(f"schedule    : {chaos.config['faults']} (seed {seed})")
    print(f"baseline    : {clean_s:.4f} s")
    print(f"under faults: {chaos_s:.4f} s "
          f"({chaos_s / max(clean_s, 1e-18):.2f}x)")
    print(f"faults      : {stats.faults_injected} injected, "
          f"{stats.crashes} crashes, {stats.recoveries} recovered")
    if stats.messages_dropped or stats.messages_corrupted:
        print(f"messages    : {stats.messages_dropped} dropped, "
              f"{stats.messages_corrupted} corrupted "
              f"({stats.retransmitted_bytes / 1e6:.1f} MB retransmitted)")
    print(f"checkpoints : {stats.checkpoints_written} written "
          f"({stats.checkpoint_bytes / 2**30:.2f} GiB, "
          f"{stats.checkpoint_time_s:.4f} s)")
    print(f"overhead    : {stats.total_overhead_s:.4f} s total "
          f"(recovery {stats.recovery_time_s:.4f}, "
          f"retry {stats.retry_time_s:.4f})")
    if stats.events:
        print("timeline    :")
        for event in stats.events:
            attrs = ", ".join(f"{key}={value}" for key, value in event.items()
                              if key not in ("kind", "superstep"))
            print(f"  step {event.get('superstep', '?'):>3}  "
                  f"{event['kind']:<14} {attrs}")
    return 0


#: Sweepable artifact producers and their renderers, by target name.
def _sweep_targets():
    from .harness import figures, report, tables

    return {
        "table5": (tables.table5, True,
                   lambda d: report.render_slowdown_table(d, "Table 5")),
        "table6": (tables.table6, True,
                   lambda d: report.render_slowdown_table(d, "Table 6")),
        "figure3": (figures.figure3, True,
                    lambda d: report.render_runtime_panels(d, "Figure 3")),
        "figure4": (figures.figure4, True,
                    lambda d: report.render_scaling_curves(d, "Figure 4")),
        "figure5": (figures.figure5, False,
                    lambda d: report.render_runtime_panels(d, "Figure 5")),
    }


def _cmd_sweep(args) -> int:
    """Durable, resumable regeneration of one sweep artifact."""
    from .harness import report
    from .harness.sweep import Sweep
    from .observability import Tracer, write_chrome_trace

    producer, takes_algorithms, renderer = _sweep_targets()[args.target]
    kwargs = {}
    if args.frameworks:
        kwargs["frameworks"] = tuple(args.frameworks.split(","))
    if args.algorithms:
        if not takes_algorithms:
            print(f"{args.target} does not take --algorithms",
                  file=sys.stderr)
            return EXIT_USAGE
        kwargs["algorithms"] = tuple(args.algorithms.split(","))
    tracer = Tracer()
    engine = Sweep(args.target, journal=args.journal, resume=args.resume,
                   deadline_s=args.deadline, max_retries=args.max_retries,
                   jobs=args.jobs, tracer=tracer,
                   wall_deadline_s=args.wall_deadline,
                   max_crashes=args.max_crashes,
                   memory_limit_mb=args.memory_limit_mb,
                   real_chaos=args.real_chaos)
    data = producer(sweep=engine, **kwargs)
    completeness = engine.last.completeness()
    if args.json:
        print(json.dumps({"data": data, "completeness": completeness},
                         indent=2, sort_keys=True))
    else:
        print(renderer(data))
        print()
        print(report.render_sweep_completeness(completeness))
    if args.save:
        from .harness.persistence import save_artifact

        save_artifact(args.save, args.target, data,
                      metadata={"completeness": completeness})
        if not args.json:
            print(f"\nsaved to {args.save}")
    if args.trace_out:
        write_chrome_trace(tracer, args.trace_out)
    # DNF cells (OOM, timeout, ...) are *results* of a sweep, not
    # errors: the sweep itself completing means exit 0.
    return EXIT_OK


def _cmd_table(args) -> int:
    from . import harness
    from .harness import report

    renderers = {
        1: lambda d: report.render_rows(
            d, ["algorithm", "graph_type", "vertex_property",
                "access_pattern", "message_bytes_per_edge", "vertex_active"],
            "Table 1"),
        2: lambda d: report.render_rows(
            d, ["framework", "programming_model", "multi_node", "language",
                "graph_partitioning", "communication_layer"], "Table 2"),
        3: lambda d: report.render_rows(
            d, ["dataset", "paper_vertices", "paper_edges", "proxy_size",
                "proxy_edges"], "Table 3"),
        4: report.render_table4,
        5: lambda d: report.render_slowdown_table(d, "Table 5"),
        6: lambda d: report.render_slowdown_table(d, "Table 6"),
        7: report.render_table7,
    }
    if args.number not in renderers:
        print(f"no table {args.number}; the paper has tables 1-7")
        return 2
    data = getattr(harness, f"table{args.number}")()
    print(renderers[args.number](data))
    if args.save:
        from .harness.persistence import save_artifact
        save_artifact(args.save, f"table{args.number}", data)
        print(f"\nsaved to {args.save}")
    return 0


def _cmd_figure(args) -> int:
    from . import harness
    from .harness import report

    renderers = {
        3: lambda d: report.render_runtime_panels(d, "Figure 3"),
        4: lambda d: report.render_scaling_curves(d, "Figure 4"),
        5: lambda d: report.render_runtime_panels(d, "Figure 5"),
        6: report.render_figure6,
        7: report.render_figure7,
    }
    if args.number not in renderers:
        print(f"no figure {args.number}; the paper has figures 3-7")
        return 2
    data = getattr(harness, f"figure{args.number}")()
    print(renderers[args.number](data))
    if args.save:
        from .harness.persistence import save_artifact
        save_artifact(args.save, f"figure{args.number}", data)
        print(f"\nsaved to {args.save}")
    return 0


def _cmd_cache(args) -> int:
    """Inspect or clear the content-addressed dataset cache."""
    from .datagen import cache_entries, cache_stats, \
        clear_cache_report
    from .datagen.cache import cache_root

    if args.action == "clear":
        report = clear_cache_report(stale_only=args.stale)
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
            return EXIT_OK
        removed = report["removed"]
        print(f"removed {removed} {'stale ' if args.stale else ''}"
              f"entr{'y' if removed == 1 else 'ies'} from {cache_root()}, "
              f"reclaimed {report['reclaimed_bytes'] / 1e6:.2f} MB")
        for kind, bucket in sorted(report["by_kind"].items()):
            print(f"  {kind:<12} {bucket['entries']:>3} entries  "
                  f"{bucket['bytes'] / 1e6:8.2f} MB")
        return EXIT_OK
    if args.action == "list":
        listed = cache_entries()
        if args.json:
            print(json.dumps(listed, indent=2, sort_keys=True))
            return EXIT_OK
        if not listed:
            print(f"cache at {cache_root()} is empty")
            return EXIT_OK
        for item in listed:
            stale = "  STALE" if item["stale"] else ""
            shards = f"  {item['partitions']} shards" \
                if item.get("partitions") else ""
            print(f"{item['key']}  {item['generator']:<22} "
                  f"{item['kind']:<12} {item['bytes'] / 1e6:8.2f} MB"
                  f"{shards}{stale}")
        print(f"{len(listed)} entries at {cache_root()}")
        return EXIT_OK
    # stats
    summary = cache_stats()
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
        return EXIT_OK
    print(f"root          : {summary['root']}")
    print(f"enabled       : {summary['enabled']}")
    print(f"entries       : {summary['entries']} "
          f"({summary['stale_entries']} stale)")
    print(f"total size    : {summary['bytes'] / 1e6:.2f} MB")
    for name, bucket in sorted(summary["by_generator"].items()):
        print(f"  {name:<22} {bucket['entries']:>3} entries  "
              f"{bucket['bytes'] / 1e6:8.2f} MB")
    shards = summary["shards"]
    print(f"out-of-core   : {shards['sharded_graphs']} sharded graphs "
          f"({shards['partitions']} partitions), "
          f"{shards['edge_shards']} edge shards, "
          f"{shards['bytes'] / 1e6:.2f} MB")
    memory = summary["pinned"]["memory"]
    print(f"pinned memory : {memory['resident_bytes'] / 1e6:.2f} MB "
          f"resident of {memory['virtual_bytes'] / 1e6:.2f} MB virtual")
    return EXIT_OK


def _cmd_datasets(_args) -> int:
    from .harness import report, table3

    print(report.render_rows(
        table3(), ["dataset", "paper_vertices", "paper_edges", "proxy_size",
                   "proxy_edges"],
        "Datasets (paper sizes and generated proxies)"))
    return 0


def _cmd_frameworks(_args) -> int:
    from .frameworks.base import PROFILES

    for name, profile in sorted(PROFILES.items()):
        print(f"{name:<22} {profile.model:<16} {profile.language:<8} "
              f"comm={profile.comm_layer.name:<14} "
              f"multinode={profile.multinode}")
    return 0


def _cmd_graph500(args) -> int:
    from .harness.graph500 import run_graph500

    result = run_graph500(scale=args.scale, nodes=args.nodes,
                          framework=args.framework,
                          num_roots=args.roots,
                          scale_factor=args.scale_factor,
                          streamed=args.streamed,
                          memory_budget_mb=args.memory_budget_mb,
                          chunk_edges=args.chunk_edges,
                          num_partitions=args.partitions)
    mode = "streamed (out-of-core)" if result.streamed else "in-memory"
    print(f"Graph500 BFS, scale {result.scale} "
          f"({result.num_edges:,} undirected edges), "
          f"{result.num_roots} roots on {args.framework}, {mode}:")
    print(f"  harmonic mean TEPS : {result.harmonic_mean_teps:.3e}")
    print(f"  min / median / max : {result.min_teps:.3e} / "
          f"{result.median_teps:.3e} / {result.max_teps:.3e}")
    print(f"  mean BFS time      : {result.mean_time_s:.4f} s")
    print(f"  peak RSS           : {result.peak_rss_mb:.1f} MB")
    print(f"  all trees valid    : {result.all_valid}")
    return 0 if result.all_valid else 1


def _cmd_regenerate(_args) -> int:
    import subprocess

    return subprocess.call([sys.executable, "scripts/regenerate_all.py"])


def _parse_node_counts(spec: str):
    return tuple(int(part) for part in spec.split(",") if part)


def _cmd_perf_analyze(args) -> int:
    """Roofline ratios for one framework; gap attribution when not native."""
    from . import perf

    algorithms = tuple(args.algorithms.split(",")) if args.algorithms \
        else None
    node_counts = _parse_node_counts(args.nodes)
    table = perf.roofline_table(framework=args.framework,
                                algorithms=algorithms,
                                node_counts=node_counts)
    attributions = []
    if args.framework != "native":
        from .algorithms.registry import ALGORITHMS

        for algorithm in algorithms or ALGORITHMS:
            for nodes in node_counts:
                cell = table[algorithm][nodes]
                if "ratio" not in cell:
                    continue
                attributions.append(perf.attribute_cell(
                    algorithm, args.framework, nodes=nodes))
    if args.json:
        payload = {"framework": args.framework, "roofline": table,
                   "attributions": [a.to_dict() for a in attributions]}
        print(json.dumps(payload, indent=2, sort_keys=True))
        return EXIT_OK
    print(perf.render_roofline(
        table, title=f"Roofline: {args.framework} vs hardware bounds"))
    for attribution in attributions:
        print()
        print(perf.render_attribution(attribution))
    return EXIT_OK


def _cmd_perf_advise(args) -> int:
    from . import perf

    advice = perf.advise_cell(args.algorithm, nodes=args.nodes)
    if args.json:
        print(json.dumps([item.to_dict() for item in advice], indent=2))
    else:
        print(perf.render_advice(
            advice, f"{args.algorithm} on {args.nodes} node(s)"))
    return EXIT_OK


def _cmd_serve(args) -> int:
    """Run the long-lived experiment service until SIGTERM/SIGINT."""
    import asyncio

    from .serve import ExperimentService
    from .serve.admission import AdmissionPolicy

    policy = AdmissionPolicy(max_running=args.max_running,
                             max_queue=args.max_queue,
                             max_deadline_s=args.max_deadline,
                             memory_budget_mb=args.memory_budget_mb)
    service = ExperimentService(args.host, args.port, jobs=args.jobs,
                                state_dir=args.state_dir, policy=policy,
                                warm=not args.no_warm)

    def _announce(host, port):
        print(f"repro-serve listening on http://{host}:{port} "
              f"(pool jobs={args.jobs}, state={args.state_dir})",
              flush=True)

    service.on_ready = _announce
    return asyncio.run(service.run())


def _cmd_loadgen(args) -> int:
    """Seeded mixed load against a running server; reports latency."""
    from .serve.loadgen import render_loadgen, run_loadgen

    report = run_loadgen(args.host, args.port, requests=args.requests,
                         concurrency=args.concurrency, seed=args.seed,
                         timeout_s=args.timeout, settle=not args.no_settle)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_loadgen(report))
    return EXIT_FAILURE if report["failed"] else EXIT_OK


def _cmd_perf_baseline(args) -> int:
    from . import perf

    if args.action == "list":
        from benchmarks.conftest import load_benchmarks

        registry = load_benchmarks()
        if args.json:
            print(json.dumps(
                {name: {"artifact": bench.artifact,
                        "producer": f"{bench.producer.__module__}."
                                    f"{bench.producer.__name__}"}
                 for name, bench in sorted(registry.items())},
                indent=2, sort_keys=True))
            return EXIT_OK
        for name in sorted(registry):
            bench = registry[name]
            print(f"{name:<28} artifact={bench.artifact:<12} "
                  f"{bench.producer.__module__}.{bench.producer.__name__}")
        print(f"{len(registry)} registered benchmarks")
        return EXIT_OK
    if args.action == "record":
        algorithms = tuple(args.algorithms.split(",")) if args.algorithms \
            else None
        frameworks = tuple(args.frameworks.split(",")) if args.frameworks \
            else perf.GATE_FRAMEWORKS
        benchmarks = tuple(args.benchmarks.split(",")) if args.benchmarks \
            else ()
        payload = perf.record(path=args.out, algorithms=algorithms,
                              frameworks=frameworks,
                              node_counts=_parse_node_counts(args.nodes),
                              benchmarks=benchmarks,
                              parallel_jobs=args.parallel_jobs)
        if args.json:
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            print(f"recorded {len(payload['cells'])} cells"
                  + (f" + {len(payload['wall_clock'])} wall-clock "
                     f"benchmarks" if payload["wall_clock"] else "")
                  + f" to {args.out}")
            if "parallel" in payload:
                print(perf.render_parallel(payload["parallel"]))
        return EXIT_OK
    # check
    report = perf.check(path=args.baseline, tolerance=args.tolerance,
                        inject=args.inject)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(perf.render_gate(report))
    return EXIT_OK if report.ok else EXIT_PERF_REGRESSION


def _cmd_perf_kernels(args) -> int:
    from . import perf
    from .errors import PerfRegression

    try:
        report = perf.check_kernel_backends(min_speedup=args.min_speedup)
    except PerfRegression as error:
        print(f"kernel gate: {error}", file=sys.stderr)
        return EXIT_PERF_REGRESSION
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(perf.render_kernel_report(report))
    return EXIT_OK


def _cmd_perf_outofcore(args) -> int:
    from . import perf
    from .errors import PerfRegression

    subset = dict(perf.OUTOFCORE_SUBSET)
    if args.scale is not None:
        subset["scale"] = args.scale
    try:
        report = perf.check_outofcore(min_ratio=args.min_ratio,
                                      subset=subset)
    except PerfRegression as error:
        print(f"outofcore gate: {error}", file=sys.stderr)
        return EXIT_PERF_REGRESSION
    if args.record:
        perf.record_outofcore(path=args.out, subset=subset)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(perf.render_outofcore_report(report))
        if args.record:
            print(f"recorded baseline to {args.out}")
    return EXIT_OK


def _cmd_outofcore(args) -> int:
    """The OOM -> ok demonstration (``repro outofcore demo``)."""
    from .harness.outofcore import run_outofcore_demo

    result = run_outofcore_demo(
        scale=args.scale, memory_limit_mb=args.memory_limit_mb,
        mapped_allowance_mb=args.mapped_allowance_mb,
        memory_budget_mb=args.memory_budget_mb,
        chunk_edges=args.chunk_edges, num_partitions=args.partitions,
        num_roots=args.roots, journal=args.journal)
    if args.json:
        print(json.dumps(result, indent=2, sort_keys=True))
    else:
        print(f"Graph500 at scale {result['scale']} under a "
              f"{result['memory_limit_mb']:.0f} MB cap "
              f"(+{result['mapped_allowance_mb']:.0f} MB for shard maps):")
        print(f"  in-memory : {result['in_memory']['status']}")
        streamed = result["streamed"]
        value = streamed["value"] or {}
        extra = ""
        if value:
            extra = (f"  (peak RSS {value['peak_rss_mb']:.1f} MB, "
                     f"{value['harmonic_mean_teps']:.3e} TEPS, "
                     f"valid={value['all_valid']})")
        print(f"  streamed  : {streamed['status']}{extra}")
        if args.journal:
            print(f"  journal   : {args.journal}")
        print("TRANSITION: out-of-memory -> ok"
              if result["transition"] else
              "no transition (expected in-memory=out-of-memory, "
              "streamed=ok)")
    return EXIT_OK if result["transition"] else 1


def build_parser() -> argparse.ArgumentParser:
    from .algorithms.registry import ALGORITHMS, FRAMEWORKS

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Navigating the Maze of Graph "
                    "Analytics Frameworks' (SIGMOD 2014)",
        epilog=EXIT_CODES_HELP,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def _cell_arguments(command, positional_dataset=False):
        command.add_argument("algorithm", choices=ALGORITHMS)
        command.add_argument("framework", choices=FRAMEWORKS)
        if positional_dataset:
            command.add_argument("dataset", nargs="?", default="rmat_mini")
        else:
            command.add_argument("--dataset", default="rmat_mini")
        command.add_argument("--nodes", type=int, default=1)
        command.add_argument("--scale-factor", type=float, default=1.0)
        command.add_argument("--iterations", type=int, default=None,
                             help="override the harness default")
        command.add_argument("--hidden-dim", type=int, default=None,
                             help="CF hidden dimension (harness default: 32)")
        command.add_argument("--deadline", type=float, default=None,
                             help="simulated-seconds budget; exceeding it "
                                  "is a 'timeout' result (exit 6)")
        command.add_argument("--kernels", default=None,
                             choices=("vectorized", "interpreted"),
                             help="kernel backend for this run (default: "
                                  "$REPRO_KERNELS or vectorized)")
        command.add_argument("--json", action="store_true",
                             help="print the result as JSON")

    def _fault_arguments(command, required=False):
        command.add_argument(
            "--faults", required=required, default=None,
            help="fault schedule spec, e.g. "
                 "'crash(node=2, superstep=3); drop(p=0.01)'")
        command.add_argument("--fault-seed", type=int, default=0,
                             help="seed for probabilistic faults")

    run = sub.add_parser("run", help="run one experiment cell")
    _cell_arguments(run)
    _fault_arguments(run)
    run.set_defaults(func=_cmd_run)

    trace = sub.add_parser(
        "trace", help="flight-record one cell and export the trace")
    _cell_arguments(trace, positional_dataset=True)
    _fault_arguments(trace)
    trace.add_argument("--out", help="write Chrome trace_event JSON here")
    trace.add_argument("--csv", help="write per-superstep CSV here")
    trace.set_defaults(func=_cmd_trace)

    chaos = sub.add_parser(
        "chaos", help="compare one cell fault-free vs under a fault schedule")
    _cell_arguments(chaos)
    _fault_arguments(chaos, required=True)
    chaos.set_defaults(func=_cmd_chaos)

    sweep = sub.add_parser(
        "sweep",
        help="durable, resumable sweep over one paper artifact",
        description="Regenerate a table/figure through the resilient "
                    "sweep engine: every cell is isolated, journaled, "
                    "retried with backoff on unexpected errors and "
                    "quarantined when it keeps failing; DNF cells "
                    "(out-of-memory / unsupported / timeout / failed / "
                    "crashed) are results, so a completed sweep exits 0. "
                    "--jobs runs cells in supervised worker processes "
                    "that survive real crashes, hangs and memory "
                    "blow-ups; SIGINT/SIGTERM drains to the journal "
                    "(exit 8) and --resume finishes the rest.",
        epilog=EXIT_CODES_HELP,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sweep.add_argument("target",
                       choices=("table5", "table6", "figure3", "figure4",
                                "figure5"))
    sweep.add_argument("--journal",
                       help="append-only JSONL journal; completed cells "
                            "are replayed from it on --resume")
    sweep.add_argument("--resume", action="store_true",
                       help="continue an interrupted sweep from --journal "
                            "instead of refusing to overwrite it")
    sweep.add_argument("--deadline", type=float, default=None,
                       help="per-cell budget in simulated seconds; cells "
                            "over it become 'timeout' records")
    sweep.add_argument("--max-retries", type=int, default=2,
                       help="retries (with capped exponential backoff) "
                            "before a cell with unexpected errors is "
                            "quarantined (default: 2)")
    sweep.add_argument("--jobs", type=int, nargs="?", const=0, default=1,
                       help="worker processes for cell execution; bare "
                            "--jobs (or 0) means all cores, default 1 "
                            "runs serially. The journal is byte-identical "
                            "for every worker count")
    sweep.add_argument("--wall-deadline", type=float, default=None,
                       help="per-cell budget in REAL seconds; the "
                            "supervisor kills a worker that exceeds it "
                            "and records 'timeout' with wall_clock=true")
    sweep.add_argument("--max-crashes", type=int, default=2,
                       help="worker deaths one cell may cause before it "
                            "is quarantined as 'crashed' (default: 2)")
    sweep.add_argument("--memory-limit-mb", type=float, default=None,
                       help="per-worker address-space headroom in MB "
                            "(RLIMIT_AS); real allocation blow-ups "
                            "surface as 'out-of-memory' cells")
    sweep.add_argument("--real-chaos", default=None, metavar="SPEC",
                       help="inject real process faults, e.g. "
                            "'kill(cell=3); hang(cell=5, seconds=300); "
                            "oom(cell=2, mb=512)' (also via "
                            "$REPRO_CHAOS_REAL)")
    sweep.add_argument("--frameworks",
                       help="comma-separated framework subset")
    sweep.add_argument("--algorithms",
                       help="comma-separated algorithm subset")
    sweep.add_argument("--save", help="also save the data as JSON")
    sweep.add_argument("--trace-out",
                       help="write the sweep's Chrome trace_event JSON "
                            "(retry/quarantine/deadline instants) here")
    sweep.add_argument("--json", action="store_true",
                       help="print data + completeness report as JSON")
    sweep.set_defaults(func=_cmd_sweep)

    table = sub.add_parser("table", help="regenerate a paper table")
    table.add_argument("number", type=int)
    table.add_argument("--save", help="also save the data as JSON")
    table.set_defaults(func=_cmd_table)

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("number", type=int)
    figure.add_argument("--save", help="also save the data as JSON")
    figure.set_defaults(func=_cmd_figure)

    sub.add_parser("datasets", help="list the dataset catalog") \
        .set_defaults(func=_cmd_datasets)
    sub.add_parser("frameworks", help="list framework profiles") \
        .set_defaults(func=_cmd_frameworks)

    g500 = sub.add_parser("graph500", help="Graph500 BFS protocol")
    g500.add_argument("--scale", type=int, default=12)
    g500.add_argument("--nodes", type=int, default=1)
    g500.add_argument("--framework", default="native", choices=FRAMEWORKS)
    g500.add_argument("--roots", type=int, default=8)
    g500.add_argument("--scale-factor", type=float, default=1.0)
    g500.add_argument("--streamed", action="store_true",
                      help="build the graph through the out-of-core "
                           "pipeline (byte-identical, bounded peak RSS)")
    g500.add_argument("--memory-budget-mb", type=float, default=None,
                      help="resident shard working-set cap for "
                           "--streamed runs")
    g500.add_argument("--chunk-edges", type=int, default=1 << 18,
                      help="edges per generation chunk for --streamed")
    g500.add_argument("--partitions", type=int, default=None,
                      help="shard partition count for --streamed "
                           "(default: sized for ~8 MB of ids each)")
    g500.set_defaults(func=_cmd_graph500)

    sub.add_parser("regenerate", help="regenerate every table and figure") \
        .set_defaults(func=_cmd_regenerate)

    perf = sub.add_parser(
        "perf",
        help="rooflines, gap attribution, what-if advice, regression gate",
        description="The repro.perf subsystem: compare runs against "
                    "hardware speed-of-light bounds (analyze), rank the "
                    "Section 6.1 optimizations by predicted speedup "
                    "(advise), and defend per-cell runtimes over time "
                    "(baseline record/check; a failed check exits 7).",
        epilog=EXIT_CODES_HELP,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    perf_sub = perf.add_subparsers(dest="perf_command", required=True)

    analyze = perf_sub.add_parser(
        "analyze",
        help="roofline ratios; plus the gap decomposition vs native "
             "for non-native frameworks")
    analyze.add_argument("--framework", default="native", choices=FRAMEWORKS)
    analyze.add_argument("--algorithms",
                         help="comma-separated subset (default: all four)")
    analyze.add_argument("--nodes", default="1,4",
                         help="comma-separated node counts (default: 1,4)")
    analyze.add_argument("--json", action="store_true")
    analyze.set_defaults(func=_cmd_perf_analyze)

    advise = perf_sub.add_parser(
        "advise", help="rank the Figure 7 what-ifs for one workload")
    advise.add_argument("algorithm", choices=ALGORITHMS)
    advise.add_argument("--nodes", type=int, default=4)
    advise.add_argument("--json", action="store_true")
    advise.set_defaults(func=_cmd_perf_advise)

    baseline = perf_sub.add_parser(
        "baseline", help="record/check BENCH_*.json perf baselines")
    baseline.add_argument("action", choices=("record", "check", "list"))
    baseline.add_argument("--out", default="BENCH_perf.json",
                          help="baseline file to record (default: "
                               "BENCH_perf.json)")
    baseline.add_argument("--baseline", default="BENCH_perf.json",
                          help="baseline file to check against")
    baseline.add_argument("--tolerance", type=float, default=0.05,
                          help="allowed relative slowdown (default: 0.05)")
    baseline.add_argument("--inject", default=None,
                          help="synthetic slowdowns for gate self-tests, "
                               "e.g. 'bfs/giraph=2.0' (';'-separated)")
    baseline.add_argument("--algorithms",
                          help="comma-separated subset (record only)")
    baseline.add_argument("--frameworks",
                          help="comma-separated subset (record only; "
                               "default: native,combblas,graphlab,giraph)")
    baseline.add_argument("--nodes", default="1,4",
                          help="comma-separated node counts (record only)")
    baseline.add_argument("--benchmarks",
                          help="also time these registered wall-clock "
                               "benchmarks ('all' for every one; advisory)")
    baseline.add_argument("--parallel-jobs", type=int, nargs="?", const=0,
                          default=None,
                          help="also record the pool-overhead/speedup "
                               "advisory for a parallel sweep with this "
                               "many workers (bare flag or 0 = all cores; "
                               "record only)")
    baseline.add_argument("--json", action="store_true")
    baseline.set_defaults(func=_cmd_perf_baseline)

    kernels = perf_sub.add_parser(
        "kernels",
        help="differential + speedup gate for the kernel backends",
        description="Run the kernel report subset under both "
                    "REPRO_KERNELS backends; fail (exit 7) if simulated "
                    "results differ or the vectorized speedup is below "
                    "--min-speedup.")
    kernels.add_argument("--min-speedup", type=float, default=2.0,
                         help="required vectorized-over-interpreted "
                              "wall-clock factor (default: 2.0)")
    kernels.add_argument("--json", action="store_true")
    kernels.set_defaults(func=_cmd_perf_kernels)

    ooc_gate = perf_sub.add_parser(
        "outofcore",
        help="ingest-throughput + digest-identity gate for the "
             "out-of-core pipeline",
        description="Build the same R-MAT graph through the in-memory "
                    "and streamed sharded paths; fail (exit 7) if the "
                    "partition digests differ or streamed ingest falls "
                    "below --min-ratio of the in-memory throughput.")
    ooc_gate.add_argument("--min-ratio", type=float, default=0.5,
                          help="required streamed/in-memory ingest "
                               "throughput (default: 0.5)")
    ooc_gate.add_argument("--scale", type=int, default=None,
                          help="override the gate workload scale")
    ooc_gate.add_argument("--record", action="store_true",
                          help="also write the measured report as the "
                               "baseline file")
    ooc_gate.add_argument("--out", default="BENCH_outofcore.json",
                          help="baseline file for --record")
    ooc_gate.add_argument("--json", action="store_true")
    ooc_gate.set_defaults(func=_cmd_perf_outofcore)

    cache = sub.add_parser(
        "cache",
        help="inspect or clear the content-addressed dataset cache",
        description="Manage the on-disk dataset cache "
                    "($REPRO_CACHE_DIR, default .repro_cache): list "
                    "entries, show aggregate stats, or delete entries "
                    "(--stale keeps ones matching the current code "
                    "version).")
    cache.add_argument("action", choices=("list", "clear", "stats"))
    cache.add_argument("--stale", action="store_true",
                       help="clear only entries recorded under a "
                            "different datagen code version")
    cache.add_argument("--json", action="store_true")
    cache.set_defaults(func=_cmd_cache)

    outofcore = sub.add_parser(
        "outofcore",
        help="out-of-core pipeline demonstrations",
        description="The OOM -> ok headline: run the Graph500 protocol "
                    "twice under one RLIMIT_AS cap — the monolithic "
                    "in-memory build records out-of-memory, the "
                    "streamed sharded build completes — and journal "
                    "the transition. Exits 0 only when the transition "
                    "holds.")
    outofcore.add_argument("action", choices=("demo",))
    outofcore.add_argument("--scale", type=int, default=18,
                           help="R-MAT scale (default 18: dense needs "
                                "~600 MB, streamed ~190 MB)")
    outofcore.add_argument("--memory-limit-mb", type=float, default=256.0,
                           help="per-worker anonymous headroom "
                                "(RLIMIT_AS above fork footprint)")
    outofcore.add_argument("--mapped-allowance-mb", type=float,
                           default=None,
                           help="extra address space for read-only "
                                "shard maps (default: 2x the on-disk "
                                "CSR size)")
    outofcore.add_argument("--memory-budget-mb", type=float, default=64.0,
                           help="resident shard working-set cap for "
                                "the streamed cell")
    outofcore.add_argument("--chunk-edges", type=int, default=1 << 18)
    outofcore.add_argument("--partitions", type=int, default=None)
    outofcore.add_argument("--roots", type=int, default=4)
    outofcore.add_argument("--journal", default=None,
                           help="write the two-cell sweep journal here")
    outofcore.add_argument("--json", action="store_true")
    outofcore.set_defaults(func=_cmd_outofcore)

    serve = sub.add_parser(
        "serve",
        help="long-lived async experiment service (JSON over HTTP)",
        description="Run the repro.serve daemon: hot pinned datasets, "
                    "one warm supervised worker pool shared across "
                    "requests, typed admission control, and a "
                    "journal-backed job registry under --state-dir. "
                    "SIGTERM drains gracefully — running sweeps stop "
                    "at the next cell boundary with their journals "
                    "flushed (exit 8 when anything was interrupted; "
                    "a restarted server resumes them byte-identically).",
        epilog=EXIT_CODES_HELP,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8750,
                       help="TCP port (0 picks a free one; default 8750)")
    serve.add_argument("--jobs", type=int, default=2,
                       help="supervised pool workers (default: 2)")
    serve.add_argument("--state-dir", default=".repro_serve",
                       help="job journal + auto sweep journals "
                            "(default: .repro_serve)")
    serve.add_argument("--max-running", type=int, default=8,
                       help="admission: concurrent jobs (default: 8)")
    serve.add_argument("--max-queue", type=int, default=64,
                       help="admission: queued jobs beyond running "
                            "(default: 64)")
    serve.add_argument("--max-deadline", type=float, default=600.0,
                       help="admission: largest accepted per-request "
                            "wall deadline in seconds (default: 600)")
    serve.add_argument("--memory-budget-mb", type=float, default=4096.0,
                       help="admission: total reservable memory budget "
                            "(default: 4096)")
    serve.add_argument("--no-warm", action="store_true",
                       help="skip pinning the gate datasets at startup")
    serve.set_defaults(func=_cmd_serve)

    loadgen = sub.add_parser(
        "loadgen",
        help="deterministic seeded load generator for 'repro serve'",
        description="Drive a running server with a seeded mixed stream "
                    "(warm gate experiments, perf analyses, durable "
                    "sweeps) over concurrent keep-alive connections; "
                    "reports client-observed p50/p90/p99 latency and "
                    "throughput. The same seed always issues the same "
                    "request sequence.")
    loadgen.add_argument("--host", default="127.0.0.1")
    loadgen.add_argument("--port", type=int, default=8750)
    loadgen.add_argument("--requests", type=int, default=200)
    loadgen.add_argument("--concurrency", type=int, default=8)
    loadgen.add_argument("--seed", type=int, default=0)
    loadgen.add_argument("--timeout", type=float, default=120.0,
                         help="per-request client timeout in seconds")
    loadgen.add_argument("--no-settle", action="store_true",
                         help="return without waiting for async (202) "
                              "jobs to finish on the server")
    loadgen.add_argument("--json", action="store_true")
    loadgen.set_defaults(func=_cmd_loadgen)

    rep = sub.add_parser("report",
                         help="full markdown reproduction report")
    rep.add_argument("--output", default="reproduction_report.md")
    rep.set_defaults(func=_cmd_report)
    return parser


def _cmd_report(args) -> int:
    from pathlib import Path

    from .harness.paper_report import generate_report

    text = generate_report()
    Path(args.output).write_text(text)
    passed_line = next(line for line in text.splitlines()
                       if line.startswith("## Headline claims"))
    print(f"wrote {args.output}")
    print(passed_line.lstrip("# "))
    return 0


def main(argv=None) -> int:
    from .errors import (
        CapacityError,
        DeadlineExceeded,
        NodeFailure,
        ReproError,
        SweepInterrupted,
    )

    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except SweepInterrupted as failure:
        # A drained sweep is a *successful save*, not a crash: the
        # journal holds every merged cell and --resume finishes the rest.
        return _failure_exit(failure, "interrupted")
    except NodeFailure as failure:
        # A --faults crash on a fail-fast framework: a typed outcome of
        # the experiment, not a bug — report it like one.
        return _failure_exit(failure, "node failure")
    except CapacityError as failure:
        return _failure_exit(failure, "out of memory")
    except DeadlineExceeded as failure:
        return _failure_exit(failure, "deadline exceeded")
    except ReproError as failure:
        # Any other typed library failure (e.g. a journal that needs
        # --resume): a clean message, not a traceback.
        return _failure_exit(failure, "error")
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        return EXIT_OK


if __name__ == "__main__":
    sys.exit(main())
