"""A tiny asyncio HTTP/JSON client for the experiment service.

No third-party HTTP stack exists in this environment, and the service
speaks a deliberately small dialect (JSON bodies, explicit
``Content-Length``, keep-alive), so forty lines of stream handling
cover everything the load generator, the CLI and the tests need. One
:class:`ServeClient` holds one keep-alive connection; concurrency
comes from opening several clients (the load generator opens one per
simulated user).
"""

from __future__ import annotations

import asyncio
import json

from ..errors import ReproError


class ServeClient:
    """One keep-alive connection to a running ``repro serve``."""

    def __init__(self, host: str, port: int, timeout_s: float = 120.0):
        self.host = host
        self.port = port
        self.timeout_s = timeout_s
        self._reader = None
        self._writer = None

    async def _connect(self) -> None:
        if self._writer is not None and not self._writer.is_closing():
            return
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port)

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
            self._writer = None
            self._reader = None

    async def request(self, method: str, path: str, body=None):
        """One round trip; returns ``(status, payload_dict)``.

        Reconnects once on a dropped keep-alive connection (the server
        may have closed it between requests).
        """
        for attempt in (1, 2):
            await self._connect()
            try:
                return await asyncio.wait_for(
                    self._round_trip(method, path, body), self.timeout_s)
            except (ConnectionResetError, BrokenPipeError,
                    asyncio.IncompleteReadError):
                await self.close()
                if attempt == 2:
                    raise ReproError(
                        f"connection to {self.host}:{self.port} dropped "
                        f"during {method} {path}") from None

    async def _round_trip(self, method: str, path: str, body):
        payload = b""
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
        head = (f"{method} {path} HTTP/1.1\r\n"
                f"Host: {self.host}:{self.port}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n\r\n")
        self._writer.write(head.encode("latin-1") + payload)
        await self._writer.drain()
        status, headers = await self._read_head()
        length = int(headers.get("content-length", 0) or 0)
        raw = await self._reader.readexactly(length) if length else b""
        if headers.get("connection", "").lower() == "close":
            await self.close()
        try:
            decoded = json.loads(raw) if raw else {}
        except json.JSONDecodeError:
            decoded = {"raw": raw.decode("utf-8", "replace")}
        return status, decoded

    async def _read_head(self):
        status_line = await self._reader.readline()
        if not status_line:
            raise asyncio.IncompleteReadError(b"", None)
        parts = status_line.decode("latin-1").split(None, 2)
        if len(parts) < 2 or not parts[1].isdigit():
            raise ReproError(
                f"malformed status line from server: {status_line!r}")
        headers = {}
        while True:
            line = await self._reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        return int(parts[1]), headers

    async def stream_events(self, job_id: str):
        """Yield NDJSON event dicts from ``GET /jobs/<id>/events``.

        Uses a dedicated connection (the stream never keep-alives).
        """
        reader, writer = await asyncio.open_connection(self.host,
                                                       self.port)
        try:
            head = (f"GET /jobs/{job_id}/events HTTP/1.1\r\n"
                    f"Host: {self.host}:{self.port}\r\n\r\n")
            writer.write(head.encode("latin-1"))
            await writer.drain()
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n"):
                    break          # end of response headers
                if not line:
                    return
            while True:
                line = await reader.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
