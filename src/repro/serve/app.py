"""The experiment service: a long-lived asyncio HTTP daemon.

``repro serve`` turns the one-shot CLI into a persistent process that
amortizes the two costs every cold run pays — dataset generation and
worker-pool fork — across an arbitrary request stream:

* **Hot datasets.** At startup the service warms the perf-gate subset
  through :func:`repro.datagen.cache.pinning`, so the weak-scaling
  graphs live pinned in memory. Workers fork *after* the warm-up and
  inherit the pins, so a served gate cell never touches the disk cache
  (its ``dataset-cache-hit`` instant carries ``pinned=true`` as proof).
* **One warm pool.** A single
  :class:`~repro.harness.supervisor.SupervisorPool` serves every
  request; per-task executors ride the PR-9 submit path, and sweeps
  run through the same pool via ``Sweep(pool=...)``.
* **Typed admission.** The :class:`~repro.serve.admission` controller
  bounds concurrency and memory before a request becomes a job.
* **Durable jobs.** Every admitted request is a
  :class:`~repro.serve.jobs.Job` journaled under ``--state-dir``;
  SIGTERM drains gracefully (admission closes, running sweeps stop at
  the next cell boundary, exit code 8 when anything was interrupted)
  and a restarted server reports interrupted sweeps as resumable —
  resubmitting them with ``resume=true`` replays the journaled prefix
  and converges byte-identically.

The HTTP layer is deliberately raw ``asyncio`` streams — no
third-party web framework — because the wire surface is six small
JSON routes and one NDJSON event stream.
"""

from __future__ import annotations

import asyncio
import json
import signal
import threading
import time

from ..datagen import cache as dataset_cache
from ..errors import ReproError, SweepInterrupted
from ..observability import current_rss_bytes, peak_rss_bytes
from ..harness.supervisor import SupervisorPolicy, SupervisorPool
from ..harness.sweep import CellPolicy, Sweep, cell_id
from .admission import AdmissionController
from .api import (
    ApiError,
    parse_body,
    parse_experiment_request,
    parse_perf_request,
    parse_sweep_request,
    reason,
)
from .jobs import (
    STATE_DONE,
    STATE_FAILED,
    STATE_INTERRUPTED,
    STATE_RUNNING,
    JobConflict,
    JobRegistry,
)

#: Default warm set: the perf-gate node counts (datasets are shared
#: across frameworks, so warming (algorithm, nodes) covers the gate).
WARM_NODE_COUNTS = (1, 4)

_SERVER_HEADER = "repro-serve"


# ---------------------------------------------------------------------------
# Cell executors (module-level: they ship pickled to pool workers)
# ---------------------------------------------------------------------------


def _gate_cell(key, budget_s=None):
    """One perf-gate cell — byte-identical to what the baseline gate
    measures (:func:`repro.perf.baselines.measure_cells`)."""
    from ..harness.datasets import clear_proxy_caches, weak_scaling_dataset
    from ..harness.runner import run_experiment
    from ..harness.sweep import outcome_of

    # Drop the fork-inherited lru memo so the lookup reaches the pin
    # layer and emits its ``dataset-cache-hit`` instant — the tracer
    # proof that served cells run against the warm pinned dataset. The
    # pinned hit itself is a dict lookup, so this costs nothing.
    clear_proxy_caches()
    data, factor = weak_scaling_dataset(key["algorithm"], key["nodes"])
    run = run_experiment(key["algorithm"], key["framework"], data,
                         nodes=key["nodes"], scale_factor=factor,
                         deadline_s=budget_s)
    return outcome_of(run)


def _spec_cell(key, budget_s=None):
    """One full :class:`~repro.harness.spec.ExperimentSpec` run."""
    from ..harness.runner import run
    from ..harness.spec import ExperimentSpec
    from ..harness.sweep import outcome_of

    return outcome_of(run(ExperimentSpec.from_dict(key["spec"])))


def _perf_cell(key, budget_s=None):
    """Roofline + gap attribution, same shape as ``repro perf analyze``."""
    from .. import perf
    from ..algorithms.registry import ALGORITHMS

    framework = key["framework"]
    algorithms = tuple(key["algorithms"]) if key.get("algorithms") else None
    node_counts = tuple(key["node_counts"])
    table = perf.roofline_table(framework=framework, algorithms=algorithms,
                                node_counts=node_counts)
    attributions = []
    if framework != "native":
        for algorithm in algorithms or ALGORITHMS:
            for nodes in node_counts:
                if "ratio" not in table[algorithm][nodes]:
                    continue
                attributions.append(perf.attribute_cell(
                    algorithm, framework, nodes=nodes).to_dict())
    return {"framework": framework,
            "roofline": {algorithm: {str(n): cell
                                     for n, cell in by_nodes.items()}
                         for algorithm, by_nodes in table.items()},
            "attributions": attributions}


_EXECUTORS = {"gate": _gate_cell, "experiment": _spec_cell,
              "perf-analyze": _perf_cell}

#: Served cells fail fast: every executor is deterministic, so retry
#: backoff would only burn the request's wall deadline.
_SERVE_POLICY = CellPolicy(deadline_s=None, max_retries=0,
                           backoff_base_s=0.0, backoff_cap_s=0.0)


def _sweep_targets():
    from ..harness import figures, tables

    return {
        "table5": (tables.table5, True),
        "table6": (tables.table6, True),
        "figure3": (figures.figure3, True),
        "figure4": (figures.figure4, True),
        "figure5": (figures.figure5, False),
    }


class ExperimentService:
    """The daemon behind ``repro serve``; owns pool, cache pins, jobs."""

    def __init__(self, host="127.0.0.1", port=8750, *, jobs=2,
                 state_dir=None, policy=None, warm=True,
                 warm_node_counts=WARM_NODE_COUNTS, tracer=None):
        self.host = host
        self.port = port
        self.jobs = jobs
        self.warm = warm
        self.warm_node_counts = tuple(warm_node_counts)
        self.tracer = tracer
        self.registry = JobRegistry(state_dir)
        self.admission = AdmissionController(policy)
        self.pool = SupervisorPool(jobs, supervise=SupervisorPolicy(),
                                   tracer=tracer)
        self.started_s = None
        self.on_ready = None         # callback(host, port) once bound
        self.requests = 0
        self.responses = {}          # status -> count
        self.cache_hits = {"total": 0, "pinned": 0}
        self.warmed = []             # pinned entry keys from warm-up
        self.pinned_memory = {"virtual_bytes": 0, "resident_bytes": 0}
        self._loop = None
        self._tasks = set()          # background job tasks
        self._drain_event = None     # asyncio.Event once the loop exists
        self._drain_signum = None
        self._interrupted = 0
        self._lock = threading.Lock()

    # -- lifecycle ----------------------------------------------------

    def start(self) -> None:
        """Synchronous warm-up: recover jobs, pin datasets, start pool.

        Runs *before* the event loop serves traffic and before any
        worker forks, so forked workers inherit the pinned datasets.
        """
        recovered = self.registry.load()
        if recovered:
            resumable = len(self.registry.resumable_sweeps())
            if self.tracer is not None:
                self.tracer.instant("serve-recovered", jobs=recovered,
                                    resumable_sweeps=resumable)
        if self.warm:
            from ..algorithms.registry import ALGORITHMS
            from ..harness.datasets import (
                clear_proxy_caches,
                weak_scaling_dataset,
            )

            # An embedding process may already hold the lru memos for
            # these datasets; drop them so the lookups below reach the
            # dataset cache and actually pin.
            clear_proxy_caches()
            with dataset_cache.pinning():
                # Every (algorithm, nodes) weak-scaling dataset in the
                # gate subset; identical datasets dedupe on their
                # content-addressed cache key, so this pins each
                # distinct graph/ratings matrix exactly once.
                for algorithm in ALGORITHMS:
                    for nodes in self.warm_node_counts:
                        weak_scaling_dataset(algorithm, nodes)
            self.warmed = [entry["key"] for entry in dataset_cache.pinned()]
            # Reserve admission headroom for what the warm set actually
            # keeps resident: mmap-backed pinned shards reserve ~nothing
            # (their clean pages are reclaimable), so the budget is not
            # double-charged for the pipeline's on-disk graphs.
            self.pinned_memory = dataset_cache.pinned_memory()
            self.admission.reserve_baseline(
                self.pinned_memory["resident_bytes"] / 2**20)
        self.pool.start()
        self.started_s = time.time()

    def stop(self) -> int:
        """Tear down after drain; returns the process exit code."""
        self.pool.close(force=self._interrupted > 0)
        self.registry.close()
        dataset_cache.clear_pins()
        return 8 if self._interrupted else 0

    def _initiate_drain(self, signum: int) -> None:
        self._drain_signum = signum
        self.admission.start_drain()
        for job in self.registry.active():
            job.stop_requested = True
        if self._drain_event is not None:
            self._drain_event.set()

    async def run(self) -> int:
        """Serve until SIGTERM/SIGINT; returns the exit code (0 or 8)."""
        self.start()
        self._loop = asyncio.get_running_loop()
        self._drain_event = asyncio.Event()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                self._loop.add_signal_handler(
                    signum, self._initiate_drain, signum)
            except (NotImplementedError, RuntimeError):
                pass
        server = await asyncio.start_server(self._handle, self.host,
                                            self.port)
        if self.port == 0:
            self.port = server.sockets[0].getsockname()[1]
        if self.on_ready is not None:
            self.on_ready(self.host, self.port)
        try:
            await self._resume_interrupted()
            await self._drain_event.wait()
            server.close()
            await server.wait_closed()
            if self._tasks:
                await asyncio.gather(*list(self._tasks),
                                     return_exceptions=True)
        finally:
            code = self.stop()
        return code

    async def _resume_interrupted(self) -> None:
        """Resubmit sweeps a previous process left interrupted.

        Their journals hold the completed prefix, so resuming replays
        it and finishes only the pending cells — the restarted sweep's
        journal is byte-identical to an uninterrupted run's.
        """
        for stale in self.registry.resumable_sweeps():
            request = dict(stale.request)
            request.update({"kind": "sweep", "resume": True,
                            "journal": stale.journal, "wait": False,
                            "resumed_from": stale.id})
            request.setdefault("target", "table5")
            try:
                await self._submit_sweep(request)
            except ApiError:
                continue      # no capacity: stays resumable for later

    # -- HTTP plumbing ------------------------------------------------

    async def _handle(self, reader, writer) -> None:
        try:
            while True:
                request_line = await reader.readline()
                if not request_line:
                    return
                try:
                    method, path, _version = \
                        request_line.decode("latin-1").split(None, 2)
                except ValueError:
                    return
                headers = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                length = int(headers.get("content-length", 0) or 0)
                body = await reader.readexactly(length) if length else b""
                keep_alive = headers.get("connection", "").lower() \
                    != "close"
                self.requests += 1
                try:
                    handled = await self._route(method, path.split("?")[0],
                                                body, writer)
                except ApiError as error:
                    handled = (error.status, error.payload())
                except ReproError as error:
                    handled = (500, {"error": "internal",
                                     "message": str(error)})
                if handled is None:      # route streamed its own bytes
                    return
                status, payload = handled
                self.responses[status] = self.responses.get(status, 0) + 1
                self._write_json(writer, status, payload,
                                 keep_alive=keep_alive)
                await writer.drain()
                if not keep_alive:
                    return
        except (asyncio.IncompleteReadError, ConnectionResetError,
                BrokenPipeError):
            pass
        except asyncio.CancelledError:
            # Server shutdown cancels idle keep-alive handlers; a
            # swallowed cancellation here just means "connection done".
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError,
                    asyncio.CancelledError):
                pass

    @staticmethod
    def _write_json(writer, status: int, payload: dict, *,
                    keep_alive: bool = True) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        head = (f"HTTP/1.1 {status} {reason(status)}\r\n"
                f"Server: {_SERVER_HEADER}\r\n"
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: "
                f"{'keep-alive' if keep_alive else 'close'}\r\n\r\n")
        writer.write(head.encode("latin-1") + body)

    async def _route(self, method: str, path: str, raw: bytes, writer):
        if path == "/healthz" and method == "GET":
            return 200, {"status": "draining" if self.admission.draining
                         else "ok", "uptime_s": time.time() - self.started_s}
        if path == "/stats" and method == "GET":
            return 200, self.stats()
        if path == "/experiments" and method == "POST":
            return await self._submit_pool_job(
                parse_experiment_request(parse_body(raw)))
        if path == "/perf/analyze" and method == "POST":
            return await self._submit_pool_job(
                parse_perf_request(parse_body(raw)))
        if path == "/sweeps" and method == "POST":
            return await self._submit_sweep(
                parse_sweep_request(parse_body(raw)))
        if path == "/jobs" and method == "GET":
            return 200, {"jobs": [job.to_dict()
                                  for job in self.registry.jobs()]}
        if path.startswith("/jobs/") and method == "GET":
            rest = path[len("/jobs/"):]
            if rest.endswith("/events"):
                await self._stream_events(rest[:-len("/events")], writer)
                return None
            job = self.registry.get(rest)
            if job is None:
                raise ApiError(404, "not-found", f"no job {rest!r}")
            return 200, job.to_dict()
        if path in ("/healthz", "/stats", "/jobs", "/experiments",
                    "/sweeps", "/perf/analyze") \
                or path.startswith("/jobs/"):
            raise ApiError(405, "bad-request",
                           f"{method} not allowed on {path}")
        raise ApiError(404, "not-found", f"no route {method} {path}")

    # -- stats --------------------------------------------------------

    def stats(self) -> dict:
        pool_stats = self.pool.stats
        return {
            "uptime_s": time.time() - self.started_s,
            "requests": self.requests,
            "responses": {str(code): count for code, count
                          in sorted(self.responses.items())},
            "jobs": self.registry.counts(),
            "admission": self.admission.stats(),
            "pool": {
                "jobs": self.pool.jobs,
                "alive_workers": self.pool.alive_workers,
                "outstanding": self.pool.outstanding(),
                "restarts": pool_stats.restarts,
                "wall_timeouts": pool_stats.wall_timeouts,
                "poisoned": pool_stats.poisoned,
            },
            "cache": {
                "hits": dict(self.cache_hits),
                "pinned": dataset_cache.stats()["pinned"],
                "warmed": list(self.warmed),
            },
            "memory": {
                "peak_rss_mb": round(peak_rss_bytes() / 2**20, 2),
                "current_rss_mb": round(current_rss_bytes() / 2**20, 2),
                "pinned_virtual_mb": round(
                    self.pinned_memory["virtual_bytes"] / 2**20, 2),
                "pinned_resident_mb": round(
                    self.pinned_memory["resident_bytes"] / 2**20, 2),
            },
        }

    def _count_cache_hits(self, spans) -> None:
        with self._lock:
            for span in spans:
                if span.name == "dataset-cache-hit":
                    self.cache_hits["total"] += 1
                    if span.attrs.get("pinned"):
                        self.cache_hits["pinned"] += 1

    # -- events -------------------------------------------------------

    def _publish(self, job, payload: dict) -> None:
        """Record + fan out one job event (any thread)."""
        self.registry.record_event(job, payload)
        loop = self._loop
        if loop is None:
            return
        for queue in list(job.subscribers):
            loop.call_soon_threadsafe(queue.put_nowait, payload)

    def _transition(self, job, state, result=None, error=None) -> None:
        event = self.registry.transition(job, state, result=result,
                                         error=error)
        self._publish(job, event)

    async def _stream_events(self, job_id: str, writer) -> None:
        job = self.registry.get(job_id)
        if job is None:
            error = ApiError(404, "not-found", f"no job {job_id!r}")
            self.responses[404] = self.responses.get(404, 0) + 1
            self._write_json(writer, 404, error.payload(),
                             keep_alive=False)
            await writer.drain()
            return
        self.responses[200] = self.responses.get(200, 0) + 1
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Server: " + _SERVER_HEADER.encode() + b"\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Connection: close\r\n\r\n")
        queue = asyncio.Queue()
        job.subscribers.append(queue)
        try:
            for event in list(job.events):
                writer.write((json.dumps(event, sort_keys=True) + "\n")
                             .encode("utf-8"))
            writer.write((json.dumps(
                {"event": "state", "job": job.id, "state": job.state},
                sort_keys=True) + "\n").encode("utf-8"))
            await writer.drain()
            while job.active:
                event = await queue.get()
                writer.write((json.dumps(event, sort_keys=True) + "\n")
                             .encode("utf-8"))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                job.subscribers.remove(queue)
            except ValueError:
                pass

    # -- pool-backed jobs (experiment / gate / perf-analyze) ----------

    async def _submit_pool_job(self, request: dict):
        slot = self.admission.admit(request.get("deadline_s"),
                                    request.get("memory_mb"))
        try:
            job = self.registry.create(request["kind"], _public(request))
        except Exception:
            slot.release()
            raise
        task = self._spawn(self._run_pool_job(job, request, slot))
        if not request.get("wait", True):
            return 202, job.to_dict()
        await asyncio.shield(task)
        return 200, job.to_dict()

    def _spawn(self, coro) -> asyncio.Task:
        task = self._loop.create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    def _pool_key(self, request: dict) -> dict:
        kind = request["kind"]
        if kind == "gate":
            return dict(request["gate"])
        if kind == "experiment":
            return {"spec": request["spec"]}
        return {"framework": request["framework"],
                "algorithms": list(request["algorithms"] or ()),
                "node_counts": list(request["node_counts"])}

    async def _run_pool_job(self, job, request: dict, slot) -> None:
        loop = asyncio.get_running_loop()
        future = loop.create_future()

        def _complete(ticket) -> None:
            loop.call_soon_threadsafe(_resolve, ticket)

        def _resolve(ticket) -> None:
            if not future.done():
                if ticket.error is not None:
                    future.set_exception(ticket.error)
                else:
                    future.set_result(ticket.cell)

        try:
            key = self._pool_key(request)
            self._transition(job, STATE_RUNNING)
            ticket = self.pool.submit(
                key, cell_id(key), _EXECUTORS[request["kind"]],
                _SERVE_POLICY, traced=True,
                wall_deadline_s=slot.deadline_s)
            ticket.add_done_callback(_complete)
            cell = await future
            self._count_cache_hits(cell.spans)
            record = cell.record
            result = {"status": record.status, "value": record.value}
            if record.failure:
                result["failure"] = record.failure
            # DNF statuses (out-of-memory, timeout, ...) are *results*
            # in this paper, not errors: the job still completes.
            self._transition(job, STATE_DONE, result=result)
        except Exception as error:
            self._transition(job, STATE_FAILED,
                             error={"code": "internal",
                                    "message": f"{type(error).__name__}: "
                                               f"{error}"})
        finally:
            slot.release()

    # -- sweep jobs ---------------------------------------------------

    async def _submit_sweep(self, request: dict):
        if request.get("algorithms") \
                and not _sweep_targets()[request["target"]][1]:
            raise ApiError(400, "bad-request",
                           f"{request['target']} does not take "
                           "'algorithms'")
        slot = self.admission.admit(request.get("deadline_s"),
                                    request.get("memory_mb"))
        try:
            journal = request.get("journal")
            if journal is None and self.registry.state_dir is None:
                raise ApiError(
                    400, "bad-request",
                    "sweeps need a 'journal' path when the server "
                    "runs without --state-dir")
            try:
                job = self.registry.create("sweep", _public(request),
                                           journal=journal)
            except JobConflict as conflict:
                raise ApiError(409, "conflict", str(conflict),
                               journal=conflict.path,
                               holder=conflict.holder) from None
            if journal is None:
                self.registry.assign_journal(
                    job, self.registry.state_dir / "journals"
                    / f"{job.id}.jsonl")
        except Exception:
            slot.release()
            raise
        task = self._spawn(self._run_sweep_job(job, request, slot))
        if not request.get("wait", False):
            return 202, job.to_dict()
        await asyncio.shield(task)
        return 200, job.to_dict()

    def _execute_sweep(self, job, request: dict) -> dict:
        """Blocking sweep body; runs on a worker thread."""
        from pathlib import Path

        producer, takes_algorithms = _sweep_targets()[request["target"]]
        kwargs = {}
        if request.get("frameworks"):
            kwargs["frameworks"] = tuple(request["frameworks"])
        if request.get("algorithms") and takes_algorithms:
            kwargs["algorithms"] = tuple(request["algorithms"])
        Path(job.journal).parent.mkdir(parents=True, exist_ok=True)

        def _stop():
            return signal.SIGTERM if job.stop_requested else None

        def _on_cell(record) -> None:
            self._publish(job, {"event": "cell", "job": job.id,
                                "cell": record.key,
                                "status": record.status})

        engine = Sweep(request["target"], journal=job.journal,
                       resume=bool(request.get("resume")),
                       deadline_s=request.get("sim_deadline_s"),
                       max_retries=request.get("max_retries", 2),
                       pool=self.pool, stop=_stop, on_cell=_on_cell)
        data = producer(sweep=engine, **kwargs)
        return {"target": request["target"], "data": data,
                "completeness": engine.last.completeness()}

    async def _run_sweep_job(self, job, request: dict, slot) -> None:
        try:
            self._transition(job, STATE_RUNNING)
            result = await asyncio.to_thread(self._execute_sweep, job,
                                             request)
            self._transition(job, STATE_DONE, result=result)
        except SweepInterrupted as drained:
            self._interrupted += 1
            self._transition(job, STATE_INTERRUPTED,
                             error={"code": "interrupted",
                                    "message": str(drained),
                                    "pending": drained.pending})
        except Exception as error:
            code = error.code if isinstance(error, ApiError) else "internal"
            self._transition(job, STATE_FAILED,
                             error={"code": code,
                                    "message": f"{type(error).__name__}: "
                                               f"{error}"})
        finally:
            slot.release()


def _public(request: dict) -> dict:
    """The request as echoed back on the job (JSON-safe, no Nones)."""
    return {key: (list(value) if isinstance(value, tuple) else value)
            for key, value in sorted(request.items())
            if value is not None}
