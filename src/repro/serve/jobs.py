"""Journal-backed job registry: request state that survives restarts.

Every request the service admits becomes a :class:`Job` with the same
durability discipline the sweep engine established in PR-3: state
transitions are appended to a JSONL journal (``jobs.jsonl`` in the
server's state directory) as they happen, so a SIGTERM — or a SIGKILL —
loses nothing already recorded. On startup the registry replays the
journal; jobs the previous process left ``queued``/``running`` are
folded to ``interrupted`` (their sweep journals hold the completed
prefix, and the server resubmits them with ``resume=true`` so a
restart converges byte-identically with a clean run).

The registry is also where the duplicate-writer bug is closed: two
in-flight sweeps pointing at one journal path would interleave appends
and corrupt the file. :meth:`JobRegistry.create` holds a set of active
journal paths and refuses the second submission with a typed
:class:`JobConflict` (HTTP 409) until the first reaches a terminal
state.
"""

from __future__ import annotations

import itertools
import json
import threading
import time
from pathlib import Path

from ..errors import ReproError

STATE_QUEUED = "queued"
STATE_RUNNING = "running"
STATE_DONE = "done"
STATE_FAILED = "failed"
STATE_INTERRUPTED = "interrupted"

#: States a job can still leave.
ACTIVE_STATES = (STATE_QUEUED, STATE_RUNNING)
TERMINAL_STATES = (STATE_DONE, STATE_FAILED, STATE_INTERRUPTED)

#: Ring-buffer cap on per-job in-memory events (cell completions).
MAX_EVENTS = 1000


class JobConflict(ReproError):
    """A second in-flight submission of the same sweep journal path."""

    def __init__(self, path: str, holder: str):
        super().__init__(
            f"journal {path!r} is already being written by in-flight "
            f"job {holder}; wait for it or submit a different path")
        self.path = path
        self.holder = holder


class Job:
    """One admitted request: typed state + an event stream."""

    def __init__(self, job_id: str, kind: str, request: dict,
                 journal=None, created_s=None):
        self.id = job_id
        self.kind = kind
        self.request = request
        self.journal = journal
        self.state = STATE_QUEUED
        self.result = None
        self.error = None            # {"code", "message"} on failure
        self.created_s = created_s if created_s is not None else time.time()
        self.finished_s = None
        self.events = []             # bounded history of event dicts
        self.subscribers = []        # asyncio.Queue per /events stream
        self.stop_requested = False  # cooperative drain flag for sweeps

    @property
    def active(self) -> bool:
        return self.state in ACTIVE_STATES

    def to_dict(self) -> dict:
        out = {
            "job": self.id,
            "kind": self.kind,
            "state": self.state,
            "request": self.request,
            "created_s": self.created_s,
        }
        if self.journal is not None:
            out["journal"] = str(self.journal)
        if self.result is not None:
            out["result"] = self.result
        if self.error is not None:
            out["error"] = self.error
        if self.finished_s is not None:
            out["finished_s"] = self.finished_s
        return out


class JobRegistry:
    """All jobs, with an append-only journal under ``state_dir``.

    Thread-safe: the asyncio loop creates jobs while sweep threads
    transition them; every mutation happens under one lock and is
    appended to the journal before anyone can observe it.
    """

    def __init__(self, state_dir=None):
        self.state_dir = Path(state_dir) if state_dir is not None else None
        self._lock = threading.Lock()
        self._jobs = {}
        self._active_journals = {}    # normalized path -> job id
        self._counter = itertools.count(1)
        self._journal_file = None
        if self.state_dir is not None:
            self.state_dir.mkdir(parents=True, exist_ok=True)
            self._journal_path = self.state_dir / "jobs.jsonl"
        else:
            self._journal_path = None

    # -- persistence --------------------------------------------------

    def load(self) -> int:
        """Replay the journal; stale active jobs fold to interrupted.

        Returns how many jobs were recovered.
        """
        if self._journal_path is None or not self._journal_path.exists():
            return 0
        highest = 0
        with self._lock:
            for line in self._journal_path.read_text().splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError:
                    continue          # torn tail from a mid-write crash
                job_id = entry.get("job")
                if entry.get("event") == "created":
                    job = Job(job_id, entry.get("kind", "?"),
                              entry.get("request", {}),
                              journal=entry.get("journal"),
                              created_s=entry.get("t"))
                    self._jobs[job_id] = job
                    try:
                        highest = max(highest,
                                      int(str(job_id).split("-")[-1]))
                    except ValueError:
                        pass
                elif entry.get("event") == "journal" \
                        and job_id in self._jobs:
                    self._jobs[job_id].journal = entry.get("journal")
                elif entry.get("event") == "state" \
                        and job_id in self._jobs:
                    job = self._jobs[job_id]
                    job.state = entry.get("state", job.state)
                    job.result = entry.get("result", job.result)
                    job.error = entry.get("error", job.error)
                    job.finished_s = entry.get("t", job.finished_s)
            # The previous process died with these in flight: they are
            # interrupted by definition (their sweep journals keep the
            # completed prefix).
            for job in self._jobs.values():
                if job.active:
                    job.state = STATE_INTERRUPTED
                    job.error = {"code": "interrupted",
                                 "message": "server stopped while the "
                                            "job was in flight"}
                    self._append_locked({
                        "event": "state", "job": job.id,
                        "state": STATE_INTERRUPTED, "error": job.error,
                        "t": time.time(),
                    })
            self._counter = itertools.count(highest + 1)
            return len(self._jobs)

    def _append_locked(self, entry: dict) -> None:
        if self._journal_path is None:
            return
        if self._journal_file is None:
            self._journal_file = open(self._journal_path, "a",
                                      encoding="utf-8")
        self._journal_file.write(json.dumps(entry, sort_keys=True) + "\n")
        self._journal_file.flush()

    def close(self) -> None:
        with self._lock:
            if self._journal_file is not None:
                self._journal_file.close()
                self._journal_file = None

    # -- lifecycle ----------------------------------------------------

    @staticmethod
    def _normalize(journal) -> str:
        return str(Path(journal).expanduser().resolve())

    def create(self, kind: str, request: dict, journal=None) -> Job:
        """Admit one job; refuses duplicate in-flight journal paths."""
        with self._lock:
            if journal is not None:
                normalized = self._normalize(journal)
                holder = self._active_journals.get(normalized)
                if holder is not None:
                    raise JobConflict(str(journal), holder)
            job = Job(f"job-{next(self._counter):06d}", kind, request,
                      journal=str(journal) if journal is not None else None)
            self._jobs[job.id] = job
            if journal is not None:
                self._active_journals[self._normalize(journal)] = job.id
            self._append_locked({
                "event": "created", "job": job.id, "kind": kind,
                "request": request, "journal": job.journal,
                "t": job.created_s,
            })
            return job

    def assign_journal(self, job: Job, journal) -> None:
        """Late-bind a journal path (auto-named from the job id)."""
        with self._lock:
            job.journal = str(journal)
            self._active_journals[self._normalize(journal)] = job.id
            self._append_locked({"event": "journal", "job": job.id,
                                 "journal": job.journal,
                                 "t": time.time()})

    def transition(self, job: Job, state: str, result=None,
                   error=None) -> dict:
        """Move a job to ``state``; returns the event dict published."""
        with self._lock:
            job.state = state
            if result is not None:
                job.result = result
            if error is not None:
                job.error = error
            event = {"event": "state", "job": job.id, "state": state,
                     "t": time.time()}
            if state in TERMINAL_STATES:
                job.finished_s = event["t"]
                if job.journal is not None:
                    self._active_journals.pop(
                        self._normalize(job.journal), None)
                entry = dict(event)
                if result is not None:
                    entry["result"] = result
                if error is not None:
                    entry["error"] = error
                self._append_locked(entry)
            else:
                self._append_locked(event)
            if error is not None:
                event["error"] = error
            return event

    # -- queries ------------------------------------------------------

    def get(self, job_id: str):
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda job: job.id)

    def counts(self) -> dict:
        out = {state: 0
               for state in ACTIVE_STATES + TERMINAL_STATES}
        for job in self.jobs():
            out[job.state] = out.get(job.state, 0) + 1
        return out

    def active(self) -> list:
        return [job for job in self.jobs() if job.active]

    def resumable_sweeps(self) -> list:
        """Interrupted sweep jobs with a journal: restart candidates."""
        return [job for job in self.jobs()
                if job.kind == "sweep" and job.state == STATE_INTERRUPTED
                and job.journal]

    # -- events -------------------------------------------------------

    def record_event(self, job: Job, payload: dict) -> None:
        """Append a non-state event (cell completion) to the history."""
        with self._lock:
            job.events.append(payload)
            if len(job.events) > MAX_EVENTS:
                del job.events[:len(job.events) - MAX_EVENTS]
