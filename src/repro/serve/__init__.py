"""The serving layer: a long-lived async experiment service.

Every result used to cost a fresh CLI process — interpreter start,
dataset generation, worker-pool fork — to answer one query. GraphMat's
headline lesson (amortize graph construction across queries) and the
ROADMAP's north star (sustained mixed traffic, not one-shot runs) both
point at a persistent daemon. This package is that daemon:

* :mod:`~repro.serve.app` — the asyncio HTTP server
  (:class:`~repro.serve.app.ExperimentService`): hot pinned datasets,
  one warm :class:`~repro.harness.supervisor.SupervisorPool` shared
  across requests, graceful SIGTERM drain with PR-3 exit-8 semantics.
* :mod:`~repro.serve.api` — the typed JSON request/response shapes and
  HTTP error taxonomy (rejections map onto the sweep DNF vocabulary).
* :mod:`~repro.serve.admission` — bounded queue + per-request wall
  deadlines + memory budgets; typed 503/504/400 rejections.
* :mod:`~repro.serve.jobs` — journal-backed job registry: every
  request is a job, state survives restarts, duplicate in-flight
  journal submissions are refused with a 409.
* :mod:`~repro.serve.client` — a tiny asyncio HTTP/JSON client (no
  third-party deps) used by the load generator, tests and CI.
* :mod:`~repro.serve.loadgen` — deterministic seeded load generator
  reporting p50/p99 latency + throughput into ``BENCH_serve.json``.
"""

from .admission import AdmissionController, AdmissionPolicy
from .api import ApiError
from .app import ExperimentService
from .client import ServeClient
from .jobs import (
    STATE_DONE,
    STATE_FAILED,
    STATE_INTERRUPTED,
    STATE_QUEUED,
    STATE_RUNNING,
    Job,
    JobConflict,
    JobRegistry,
)
from .loadgen import build_plan, render_loadgen, run_loadgen

__all__ = [
    "AdmissionController",
    "AdmissionPolicy",
    "ApiError",
    "ExperimentService",
    "Job",
    "JobConflict",
    "JobRegistry",
    "STATE_DONE",
    "STATE_FAILED",
    "STATE_INTERRUPTED",
    "STATE_QUEUED",
    "STATE_RUNNING",
    "ServeClient",
    "build_plan",
    "render_loadgen",
    "run_loadgen",
]
