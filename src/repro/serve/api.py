"""Typed JSON-over-HTTP shapes for the experiment service.

One module owns the wire contract: request parsing/validation, the
HTTP error taxonomy, and the JSON renderings of jobs. The server and
the load generator both import from here, so the two cannot drift.

Error taxonomy — every rejection is a typed :class:`ApiError` whose
``code`` reuses the PR-3 DNF vocabulary where one applies:

=================  ======  ==========================================
code               status  meaning
=================  ======  ==========================================
``bad-request``    400     malformed body / unknown field / bad value
``not-found``      404     no such route or job
``conflict``       409     duplicate in-flight sweep journal path
``overloaded``     503     admission queue full (or draining)
``out-of-memory``  503     memory budget exhausted (400 if it can
                           *never* fit)
``timeout``        400     requested wall deadline above the cap
                           (504 when a queued request expires unrun)
=================  ======  ==========================================
"""

from __future__ import annotations

import json

from ..errors import ReproError, SpecError

#: Sweep targets the service accepts — the same set the CLI exposes.
SWEEP_TARGETS = ("table5", "table6", "figure3", "figure4", "figure5")

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}


class ApiError(ReproError):
    """A typed HTTP rejection: status code + machine-readable code."""

    def __init__(self, status: int, code: str, message: str, **detail):
        super().__init__(message)
        self.status = status
        self.code = code
        self.detail = detail

    def payload(self) -> dict:
        out = {"error": self.code, "message": str(self)}
        if self.detail:
            out["detail"] = {key: value for key, value
                             in sorted(self.detail.items())}
        return out


def bad_request(message: str, **detail) -> ApiError:
    return ApiError(400, "bad-request", message, **detail)


def reason(status: int) -> str:
    return _REASONS.get(status, "Unknown")


def parse_body(raw: bytes) -> dict:
    if not raw:
        return {}
    try:
        body = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise bad_request(f"request body is not valid JSON: {error}") \
            from None
    if not isinstance(body, dict):
        raise bad_request("request body must be a JSON object")
    return body


def _field(body: dict, name: str, kind, default=None, required=False):
    if name not in body:
        if required:
            raise bad_request(f"missing required field {name!r}")
        return default
    value = body[name]
    if value is None and not required:
        return default
    if kind is float and isinstance(value, int) \
            and not isinstance(value, bool):
        value = float(value)
    if not isinstance(value, kind) or isinstance(value, bool) \
            and kind is not bool:
        raise bad_request(
            f"field {name!r} must be {getattr(kind, '__name__', kind)}, "
            f"got {type(value).__name__}")
    return value


def _names(body: dict, name: str):
    value = body.get(name)
    if value is None:
        return None
    if not isinstance(value, list) \
            or not all(isinstance(item, str) for item in value):
        raise bad_request(f"field {name!r} must be a list of strings")
    return tuple(value)


#: Admission fields shared by every request kind.
def parse_admission_fields(body: dict) -> dict:
    return {
        "deadline_s": _field(body, "deadline_s", float),
        "memory_mb": _field(body, "memory_mb", float),
    }


def parse_experiment_request(body: dict) -> dict:
    """``POST /experiments``: a full spec, or a perf-gate cell.

    ``{"spec": {...ExperimentSpec fields...}}`` runs one experiment
    through the typed spec facade; ``{"gate": {"algorithm", "framework",
    "nodes"}}`` runs one perf-gate cell (the weak-scaling dataset +
    ``run_experiment`` path the baseline gate measures) — the form the
    load generator and warm-latency proof use.
    """
    from ..harness.spec import ExperimentSpec

    spec = body.get("spec")
    gate = body.get("gate")
    if (spec is None) == (gate is None):
        raise bad_request(
            "experiment request needs exactly one of 'spec' or 'gate'")
    out = parse_admission_fields(body)
    out["wait"] = _field(body, "wait", bool, default=True)
    if spec is not None:
        if not isinstance(spec, dict):
            raise bad_request("field 'spec' must be an object")
        try:
            parsed = ExperimentSpec.from_dict(spec)
        except (SpecError, ReproError) as error:
            raise bad_request(f"invalid experiment spec: {error}") from None
        if not isinstance(parsed.dataset, str):
            raise bad_request(
                "served experiments need a catalog dataset name")
        out["kind"] = "experiment"
        out["spec"] = parsed.to_dict()
        return out
    if not isinstance(gate, dict):
        raise bad_request("field 'gate' must be an object")
    cell = {
        "algorithm": _field(gate, "algorithm", str, required=True),
        "framework": _field(gate, "framework", str, required=True),
        "nodes": _field(gate, "nodes", int, default=1),
    }
    from ..algorithms.registry import ALGORITHMS, FRAMEWORKS

    if cell["algorithm"] not in ALGORITHMS:
        raise bad_request(f"unknown algorithm {cell['algorithm']!r}; "
                          f"valid: {', '.join(ALGORITHMS)}")
    if cell["framework"] not in FRAMEWORKS:
        raise bad_request(f"unknown framework {cell['framework']!r}; "
                          f"valid: {', '.join(FRAMEWORKS)}")
    if cell["nodes"] < 1:
        raise bad_request("gate 'nodes' must be >= 1")
    out["kind"] = "gate"
    out["gate"] = cell
    return out


def parse_sweep_request(body: dict) -> dict:
    """``POST /sweeps``: a durable sweep job (async by default)."""
    target = _field(body, "target", str, required=True)
    if target not in SWEEP_TARGETS:
        raise bad_request(f"unknown sweep target {target!r}; valid: "
                          f"{', '.join(SWEEP_TARGETS)}")
    out = parse_admission_fields(body)
    out.update({
        "kind": "sweep",
        "target": target,
        "algorithms": _names(body, "algorithms"),
        "frameworks": _names(body, "frameworks"),
        "journal": _field(body, "journal", str),
        "resume": _field(body, "resume", bool, default=False),
        "sim_deadline_s": _field(body, "sim_deadline_s", float),
        "max_retries": _field(body, "max_retries", int, default=2),
        "wait": _field(body, "wait", bool, default=False),
    })
    if out["max_retries"] < 0:
        raise bad_request("'max_retries' must be >= 0")
    return out


def parse_perf_request(body: dict) -> dict:
    """``POST /perf/analyze``: roofline + gap attribution for a framework."""
    from ..algorithms.registry import FRAMEWORKS

    framework = _field(body, "framework", str, default="native")
    if framework not in FRAMEWORKS:
        raise bad_request(f"unknown framework {framework!r}; valid: "
                          f"{', '.join(FRAMEWORKS)}")
    nodes = body.get("node_counts", [1])
    if not isinstance(nodes, list) or not nodes \
            or not all(isinstance(n, int) and not isinstance(n, bool)
                       and n >= 1 for n in nodes):
        raise bad_request("'node_counts' must be a list of ints >= 1")
    out = parse_admission_fields(body)
    out.update({
        "kind": "perf-analyze",
        "framework": framework,
        "algorithms": _names(body, "algorithms"),
        "node_counts": list(nodes),
        "wait": _field(body, "wait", bool, default=True),
    })
    return out
