"""Admission control: bounded queue, wall deadlines, memory budgets.

A long-lived service dies by accepting everything. The controller
decides *before* a request becomes a job whether the server can honor
it, and rejects with a typed :class:`~repro.serve.api.ApiError` whose
code reuses the PR-3 DNF vocabulary:

* ``overloaded`` (503) — running + queued jobs at capacity, or the
  server is draining after SIGTERM.
* ``out-of-memory`` — the request's memory budget does not fit the
  currently reserved headroom (503: retry later) or can *never* fit
  the server budget (400: don't bother retrying).
* ``timeout`` (400) — the requested wall deadline exceeds the cap the
  server is willing to hold a slot for.

Accepted requests get a :class:`Slot` that reserves queue space and
memory until released; ``with controller.admit(...)`` scopes the
reservation to the request's lifetime.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from .api import ApiError


@dataclass(frozen=True)
class AdmissionPolicy:
    """Capacity knobs; defaults sized for a small shared box."""

    max_running: int = 8          # jobs executing concurrently
    max_queue: int = 64           # admitted-but-waiting jobs
    default_deadline_s: float = 60.0
    max_deadline_s: float = 600.0
    default_memory_mb: float = 256.0
    memory_budget_mb: float = 4096.0


class Slot:
    """One admitted request's reservation; release exactly once."""

    def __init__(self, controller: "AdmissionController",
                 deadline_s: float, memory_mb: float):
        self.controller = controller
        self.deadline_s = deadline_s
        self.memory_mb = memory_mb
        self._released = False

    def release(self) -> None:
        if not self._released:
            self._released = True
            self.controller._release(self)

    def __enter__(self) -> "Slot":
        return self

    def __exit__(self, *exc) -> None:
        self.release()


class AdmissionController:
    """Thread-safe gate in front of the job registry."""

    def __init__(self, policy: AdmissionPolicy = None):
        self.policy = policy if policy is not None else AdmissionPolicy()
        self._lock = threading.Lock()
        self._active = 0
        self._reserved_mb = 0.0
        self._baseline_mb = 0.0
        self._draining = False
        self.admitted = 0
        self.rejected = {}        # code -> count

    # -- lifecycle ----------------------------------------------------

    def start_drain(self) -> None:
        """Stop admitting; in-flight reservations finish normally."""
        with self._lock:
            self._draining = True

    @property
    def draining(self) -> bool:
        return self._draining

    def reserve_baseline(self, memory_mb: float) -> None:
        """Permanently reserve headroom for the warm pinned set.

        Called once at startup with the warm set's **resident** bytes
        (:func:`repro.datagen.pinned_memory`), not its virtual size:
        mmap-backed pinned graphs keep their pages reclaimable, so
        counting ``nbytes`` would double-charge the budget for memory
        the kernel can take back under pressure.
        """
        with self._lock:
            self._baseline_mb += max(float(memory_mb), 0.0)

    # -- admission ----------------------------------------------------

    def admit(self, deadline_s=None, memory_mb=None) -> Slot:
        """Reserve capacity or raise a typed rejection."""
        policy = self.policy
        if deadline_s is None:
            deadline_s = policy.default_deadline_s
        if memory_mb is None:
            memory_mb = policy.default_memory_mb
        if deadline_s <= 0:
            raise self._reject(ApiError(
                400, "bad-request",
                "'deadline_s' must be positive"))
        if deadline_s > policy.max_deadline_s:
            raise self._reject(ApiError(
                400, "timeout",
                f"requested deadline {deadline_s:.0f}s exceeds the "
                f"server cap of {policy.max_deadline_s:.0f}s",
                deadline_s=deadline_s,
                max_deadline_s=policy.max_deadline_s))
        if memory_mb <= 0:
            raise self._reject(ApiError(
                400, "bad-request", "'memory_mb' must be positive"))
        if memory_mb > policy.memory_budget_mb:
            raise self._reject(ApiError(
                400, "out-of-memory",
                f"requested budget {memory_mb:.0f} MB exceeds the "
                f"server's total budget of "
                f"{policy.memory_budget_mb:.0f} MB",
                memory_mb=memory_mb,
                budget_mb=policy.memory_budget_mb))
        with self._lock:
            if self._draining:
                raise self._reject_locked(ApiError(
                    503, "overloaded",
                    "server is draining; retry against a fresh "
                    "instance"))
            capacity = policy.max_running + policy.max_queue
            if self._active >= capacity:
                raise self._reject_locked(ApiError(
                    503, "overloaded",
                    f"admission queue is full ({self._active} jobs "
                    f"in flight, capacity {capacity}); retry later",
                    active=self._active, capacity=capacity))
            reserved = self._baseline_mb + self._reserved_mb
            if reserved + memory_mb > policy.memory_budget_mb:
                raise self._reject_locked(ApiError(
                    503, "out-of-memory",
                    f"memory budget exhausted "
                    f"({reserved:.0f} of "
                    f"{policy.memory_budget_mb:.0f} MB reserved, "
                    f"{memory_mb:.0f} MB requested); retry later",
                    reserved_mb=reserved,
                    requested_mb=memory_mb,
                    budget_mb=policy.memory_budget_mb))
            self._active += 1
            self._reserved_mb += memory_mb
            self.admitted += 1
            return Slot(self, deadline_s, memory_mb)

    def _reject(self, error: ApiError) -> ApiError:
        with self._lock:
            return self._reject_locked(error)

    def _reject_locked(self, error: ApiError) -> ApiError:
        self.rejected[error.code] = self.rejected.get(error.code, 0) + 1
        return error

    def _release(self, slot: Slot) -> None:
        with self._lock:
            self._active -= 1
            self._reserved_mb -= slot.memory_mb

    # -- reporting ----------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            return {
                "active": self._active,
                "capacity": self.policy.max_running
                + self.policy.max_queue,
                "reserved_mb": self._reserved_mb,
                "baseline_mb": self._baseline_mb,
                "budget_mb": self.policy.memory_budget_mb,
                "draining": self._draining,
                "admitted": self.admitted,
                "rejected": dict(sorted(self.rejected.items())),
            }
