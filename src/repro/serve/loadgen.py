"""Deterministic seeded load generator for the experiment service.

``repro loadgen`` drives a running ``repro serve`` with a mixed,
concurrent request stream — mostly warm perf-gate experiments, plus
perf-analyze calls and durable sweeps — and reports client-observed
latency percentiles and throughput. The stream is *deterministic*: the
request plan is derived from one seed via :func:`repro.rng.derive`
(per-component RNG discipline, same as the chaos layer), so two runs
with the same seed issue byte-identical request sequences. That makes
the report a usable benchmark: ``BENCH_serve.json`` records it as the
serving section of the perf-baseline file, and CI replays the same
seed against the same server configuration.

Only wall-clock *measurement* is nondeterministic — which is exactly
the PR-4 rule for wall-clock benchmark entries (advisory, never
gated).
"""

from __future__ import annotations

import asyncio
import time

import numpy as np

from ..rng import derive
from .client import ServeClient

#: Request mix weights (gate experiment / perf-analyze / sweep). Gates
#: dominate on purpose: they are the warm-path latency being proven.
DEFAULT_MIX = {"gate": 0.92, "perf-analyze": 0.05, "sweep": 0.03}

#: Sweeps stay tiny (one algorithm, one framework) so a load run's
#: tail is bounded; the point is exercising the durable path, not
#: regenerating the paper under load.
_SWEEP_TARGET = "table5"


def build_plan(seed: int, requests: int, mix=None) -> list:
    """The deterministic request plan: ``requests`` (kind, body) pairs."""
    from ..algorithms.registry import ALGORITHMS
    from ..perf.baselines import GATE_FRAMEWORKS, GATE_NODE_COUNTS

    mix = dict(DEFAULT_MIX if mix is None else mix)
    kinds = sorted(mix)
    weights = np.array([mix[kind] for kind in kinds], dtype=float)
    weights /= weights.sum()
    rng = derive(seed, "serve", "loadgen")
    algorithms = tuple(ALGORITHMS)
    plan = []
    for _ in range(requests):
        kind = kinds[int(rng.choice(len(kinds), p=weights))]
        algorithm = algorithms[int(rng.integers(len(algorithms)))]
        if kind == "gate":
            framework = GATE_FRAMEWORKS[
                int(rng.integers(len(GATE_FRAMEWORKS)))]
            nodes = int(GATE_NODE_COUNTS[
                int(rng.integers(len(GATE_NODE_COUNTS)))])
            plan.append(("gate", "/experiments", {
                "gate": {"algorithm": algorithm, "framework": framework,
                         "nodes": nodes},
                "wait": True,
            }))
        elif kind == "perf-analyze":
            plan.append(("perf-analyze", "/perf/analyze", {
                "framework": "native",
                "algorithms": [algorithm],
                "node_counts": [1],
                "wait": True,
            }))
        else:
            plan.append(("sweep", "/sweeps", {
                "target": _SWEEP_TARGET,
                "algorithms": [algorithm],
                "frameworks": ["native"],
                "wait": False,
            }))
    return plan


async def _drive(host, port, plan, concurrency, timeout_s, samples,
                 failures):
    """Fan the plan over ``concurrency`` keep-alive connections."""

    async def worker(items):
        client = ServeClient(host, port, timeout_s=timeout_s)
        try:
            for kind, path, body in items:
                started = time.perf_counter()
                try:
                    status, payload = await client.request("POST", path,
                                                           body)
                except Exception as error:
                    failures.append({"kind": kind, "status": 0,
                                     "error": f"{type(error).__name__}: "
                                              f"{error}"})
                    continue
                elapsed = time.perf_counter() - started
                if status >= 400:
                    failures.append({"kind": kind, "status": status,
                                     "error": payload.get("error",
                                                          "unknown")})
                else:
                    samples.append((kind, elapsed))
        finally:
            await client.close()

    # Round-robin partitioning keeps each connection's subsequence —
    # and therefore the whole run — deterministic for a given seed.
    await asyncio.gather(*(worker(plan[lane::concurrency])
                           for lane in range(concurrency)))


def _percentiles(latencies) -> dict:
    values = np.asarray(latencies, dtype=float)
    return {
        "p50_s": float(np.quantile(values, 0.50)),
        "p90_s": float(np.quantile(values, 0.90)),
        "p99_s": float(np.quantile(values, 0.99)),
        "mean_s": float(values.mean()),
        "max_s": float(values.max()),
    }


async def _settle(host, port, timeout_s) -> None:
    """Wait until the server has no queued/running jobs left.

    Async (202) sweeps outlive their responses; settling before
    reporting keeps a benchmark run's teardown deterministic (SIGTERM
    after settle is a clean drain, exit 0).
    """
    client = ServeClient(host, port, timeout_s=timeout_s)
    deadline = time.perf_counter() + timeout_s
    try:
        while time.perf_counter() < deadline:
            _status, stats = await client.request("GET", "/stats")
            jobs = stats.get("jobs", {})
            if not jobs.get("running", 0) and not jobs.get("queued", 0):
                return
            await asyncio.sleep(0.1)
    finally:
        await client.close()


def run_loadgen(host: str, port: int, *, requests: int = 200,
                concurrency: int = 8, seed: int = 0, mix=None,
                timeout_s: float = 120.0, settle: bool = True) -> dict:
    """Run the seeded load test; returns the benchmark report dict."""
    plan = build_plan(seed, requests, mix=mix)
    samples, failures = [], []
    started = time.perf_counter()
    asyncio.run(_drive(host, port, plan, max(1, concurrency), timeout_s,
                       samples, failures))
    duration_s = time.perf_counter() - started
    if settle:
        asyncio.run(_settle(host, port, timeout_s))
    by_kind = {}
    for kind in sorted({kind for kind, _, _ in plan}):
        latencies = [elapsed for sample_kind, elapsed in samples
                     if sample_kind == kind]
        entry = {"requests": sum(1 for k, _, _ in plan if k == kind),
                 "completed": len(latencies)}
        if latencies:
            entry.update(_percentiles(latencies))
        by_kind[kind] = entry
    report = {
        "requests": len(plan),
        "completed": len(samples),
        "failed": len(failures),
        "concurrency": concurrency,
        "seed": seed,
        "duration_s": duration_s,
        "throughput_rps": len(samples) / duration_s if duration_s else 0.0,
        "by_kind": by_kind,
    }
    if samples:
        report["latency_s"] = _percentiles(
            [elapsed for _, elapsed in samples])
    if failures:
        codes = {}
        for failure in failures:
            label = f"{failure['status']}:{failure['error']}"
            codes[label] = codes.get(label, 0) + 1
        report["failure_codes"] = dict(sorted(codes.items()))
    return report


def render_loadgen(report: dict) -> str:
    """Terminal summary of one load run."""
    lines = [
        f"loadgen: {report['completed']}/{report['requests']} requests "
        f"ok ({report['failed']} failed) in {report['duration_s']:.2f} s "
        f"at concurrency {report['concurrency']} "
        f"(seed {report['seed']})",
        f"  throughput : {report['throughput_rps']:.1f} req/s",
    ]
    latency = report.get("latency_s")
    if latency:
        lines.append(
            f"  latency    : p50 {1e3 * latency['p50_s']:.1f} ms   "
            f"p90 {1e3 * latency['p90_s']:.1f} ms   "
            f"p99 {1e3 * latency['p99_s']:.1f} ms   "
            f"max {1e3 * latency['max_s']:.1f} ms")
    for kind, entry in sorted(report["by_kind"].items()):
        detail = f"{entry['completed']}/{entry['requests']} ok"
        if "p50_s" in entry:
            detail += (f"   p50 {1e3 * entry['p50_s']:.1f} ms   "
                       f"p99 {1e3 * entry['p99_s']:.1f} ms")
        lines.append(f"  {kind:<12}: {detail}")
    for label, count in sorted(report.get("failure_codes", {}).items()):
        lines.append(f"  FAILURE {label}: {count}")
    return "\n".join(lines)
