"""Ablation: compute/communication overlap on network-bound algorithms.

"Overlap of computation and communication ... has been shown to improve
performance of various optimized implementations [28]. Native code for
BFS, pagerank and Triangle Counting all benefit between 1.2-2x."
"""

from repro.frameworks.native import NativeOptions
from repro.harness import run_experiment
from repro.harness.datasets import weak_scaling_dataset
from benchmarks.conftest import register_benchmark


def measure(nodes=4):
    rows = {}
    for algorithm in ("pagerank", "triangle_counting"):
        data, factor = weak_scaling_dataset(algorithm, nodes)
        params = {"iterations": 3} if algorithm == "pagerank" else {}
        on = run_experiment(algorithm, "native", data, nodes=nodes,
                            scale_factor=factor,
                            options=NativeOptions(), **params)
        off = run_experiment(algorithm, "native", data, nodes=nodes,
                             scale_factor=factor,
                             options=NativeOptions(overlap=False), **params)
        rows[algorithm] = {
            "overlap_s": on.runtime(),
            "serial_s": off.runtime(),
            "speedup": off.runtime() / on.runtime(),
            "footprint_ratio": (
                off.result.metrics.memory_footprint_bytes
                / max(on.result.metrics.memory_footprint_bytes, 1.0)
            ),
        }
    return rows


def test_overlap_benefit(regenerate):
    rows = regenerate(measure)
    print()
    print("Native compute/communication overlap at 4 nodes:")
    for algorithm, row in rows.items():
        print(f"  {algorithm:<20} overlap={row['overlap_s']:.3f}s "
              f"serial={row['serial_s']:.3f}s "
              f"speedup={row['speedup']:.2f}x "
              f"buffered-memory-ratio={row['footprint_ratio']:.1f}x")

    for algorithm, row in rows.items():
        # Paper: 1.2-2x benefit on the network-bound algorithms.
        assert 1.1 < row["speedup"] < 2.5, algorithm
    # Blocking also bounds triangle counting's buffer memory.
    assert rows["triangle_counting"]["footprint_ratio"] >= 1.0


register_benchmark("ablation_overlap", measure, artifact="ablation")
