"""Supervised pool: overhead vs a raw multiprocessing.Pool, and recovery.

Two claims ride on this file:

* supervision is (nearly) free — a clean warm-cache table5 subset
  through the supervised pool at ``jobs=4`` costs within ~10% of the
  same cells through a bare ``multiprocessing.Pool`` (the PR-5
  executor, reconstructed here as the reference); asserted only on
  machines with >=4 cores, advisory elsewhere;
* recovery is fast — a single injected SIGKILL costs one worker
  restart and re-dispatch, measured as the wall-clock delta between a
  clean and a one-kill run of the same sweep.

The producer registered as ``supervised_pool`` feeds ``repro perf
baseline --benchmarks`` so both numbers land in the advisory BENCH
timings.
"""

import multiprocessing
import os
import time

from repro.harness.parallel import run_cells_parallel
from repro.harness.sweep import CellPolicy, Sweep, execute_cell
from repro.harness.tables import table5
from benchmarks.conftest import register_benchmark

SUBSET = {"algorithms": ("pagerank", "bfs"), "frameworks": ("galois",)}

_RAW_STATE = None


def _raw_init(execute, policy):
    global _RAW_STATE
    _RAW_STATE = (execute, policy)


def _raw_run_one(item):
    index, key, cid = item
    execute, policy = _RAW_STATE
    return index, cid, execute_cell(key, execute, policy)


def _raw_pool_run(pending, execute, policy, jobs):
    """The PR-5 executor, minimally: bare Pool + ordered imap."""
    context = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods()
        else "spawn")
    pool = context.Pool(processes=jobs, initializer=_raw_init,
                        initargs=(execute, policy))
    try:
        return list(pool.imap(_raw_run_one, pending, chunksize=1))
    finally:
        pool.close()
        pool.join()


def _table5_executor():
    """The subset's cell keys + the picklable table5 executor."""
    from repro.harness.tables import SINGLE_NODE_DATASETS, _single_node_cell

    keys = [
        {"algorithm": algorithm, "dataset": dataset_name, "framework": name}
        for algorithm in SUBSET["algorithms"]
        for dataset_name in SINGLE_NODE_DATASETS[algorithm]
        for name in ("native",) + SUBSET["frameworks"]
    ]
    return keys, _single_node_cell


def test_supervised_pool_overhead_vs_raw_pool(regenerate):
    """Clean-run cost of supervision stays within ~10% of a bare Pool."""
    table5(sweep=Sweep("table5"), **SUBSET)          # warm both caches

    keys, execute = _table5_executor()
    pending = [(index, key, f"cell{index}")
               for index, key in enumerate(keys)]
    policy = CellPolicy()

    start = time.perf_counter()
    raw = _raw_pool_run(pending, execute, policy, jobs=4)
    raw_s = time.perf_counter() - start

    start = time.perf_counter()
    supervised = regenerate(
        lambda: list(run_cells_parallel(pending, execute, policy, jobs=4)))
    supervised_s = time.perf_counter() - start

    assert [c.record.status for c in supervised] \
        == [r.status for _i, _c, r in raw]
    assert [c.index for c in supervised] == [i for i, _c, _r in raw]

    overhead = supervised_s / max(raw_s, 1e-9) - 1.0
    print(f"\nsupervised pool: raw {raw_s:.2f} s, "
          f"supervised {supervised_s:.2f} s "
          f"({100 * overhead:+.1f}% overhead, {os.cpu_count()} cores)")
    if (os.cpu_count() or 1) >= 4:
        # 10% + a small fixed allowance so sub-second runs don't gate
        # on scheduler noise.
        assert supervised_s <= 1.10 * raw_s + 0.25, (supervised_s, raw_s)


def test_recovery_cost_of_one_worker_kill(tmp_path):
    """One injected SIGKILL costs one restart, measured not asserted."""
    table5(sweep=Sweep("table5"), **SUBSET)          # warm both caches

    clean_journal = tmp_path / "clean.jsonl"
    start = time.perf_counter()
    clean = table5(sweep=Sweep("table5", journal=clean_journal, jobs=2),
                   **SUBSET)
    clean_s = time.perf_counter() - start

    chaos_journal = tmp_path / "chaos.jsonl"
    start = time.perf_counter()
    engine = Sweep("table5", journal=chaos_journal, jobs=2,
                   real_chaos="kill(cell=1)")
    chaos = table5(sweep=engine, **SUBSET)
    chaos_s = time.perf_counter() - start

    assert chaos == clean
    assert chaos_journal.read_bytes() == clean_journal.read_bytes()
    assert engine.last.worker_restarts == 1
    print(f"\nrecovery: clean {clean_s:.2f} s, one-kill {chaos_s:.2f} s "
          f"(+{max(chaos_s - clean_s, 0):.2f} s for restart + re-dispatch)")


def _supervised_table5():
    """Zero-arg producer: the subset through the supervised pool."""
    return table5(sweep=Sweep("table5", jobs=0, wall_deadline_s=600),
                  **SUBSET)


register_benchmark("supervised_pool", _supervised_table5, artifact="table5")
