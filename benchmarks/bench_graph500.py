"""Graph500 BFS protocol (the paper's reference [23]) on the simulator."""

from repro.harness.graph500 import run_graph500
from benchmarks.conftest import register_benchmark


def protocol(framework="native"):
    return run_graph500(scale=12, edge_factor=16, num_roots=8, nodes=4,
                        framework=framework, scale_factor=4000.0)


def test_graph500_native(regenerate):
    result = regenerate(protocol)
    print()
    print(f"Graph500 BFS, scale {result.scale} "
          f"({result.num_edges:,} undirected edges), "
          f"{result.num_roots} roots, 4 nodes, native:")
    print(f"  harmonic mean TEPS : {result.harmonic_mean_teps:.3e}")
    print(f"  min / median / max : {result.min_teps:.3e} / "
          f"{result.median_teps:.3e} / {result.max_teps:.3e}")
    print(f"  mean BFS time      : {result.mean_time_s:.4f} s")

    # Every search tree validates (the benchmark's hard requirement).
    assert result.all_valid
    # The simulated native BFS sits in the hundreds-of-MTEPS to
    # few-GTEPS band the paper's class of machine reaches.
    assert 1e8 < result.harmonic_mean_teps < 2e10
    assert result.min_teps > 0


register_benchmark("graph500", protocol, artifact="graph500")
