"""Parallel sweep + dataset cache: the acceptance demonstrations.

Two claims ride on this file:

* a ``jobs=4`` table5 sweep writes a journal *byte-identical* to the
  serial one (and is >=2x faster on a warm cache when the machine
  actually has 4 cores — asserted only there, wall clock is advisory
  elsewhere);
* a cold -> warm rerun skips every dataset generation, proven by the
  tracer's ``dataset-cache-*`` instants rather than by timing.
"""

import os
import time

from repro.harness import table5
from repro.harness.datasets import clear_proxy_caches
from repro.harness.sweep import Sweep
from repro.observability import Tracer
from benchmarks.conftest import register_benchmark


def test_parallel_table5_byte_identical(regenerate, tmp_path, monkeypatch):
    """Serial and jobs=4 table5 agree byte-for-byte; speedup on >=4 cores."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    clear_proxy_caches()
    try:
        table5(sweep=Sweep("table5"))        # warm disk + lru cache layers

        serial_journal = tmp_path / "serial.jsonl"
        start = time.perf_counter()
        serial = table5(sweep=Sweep("table5", journal=serial_journal,
                                    jobs=1))
        serial_s = time.perf_counter() - start

        parallel_journal = tmp_path / "parallel.jsonl"
        start = time.perf_counter()
        parallel = regenerate(
            lambda: table5(sweep=Sweep("table5", journal=parallel_journal,
                                       jobs=4)))
        parallel_s = time.perf_counter() - start

        assert parallel == serial
        assert parallel_journal.read_bytes() == serial_journal.read_bytes()

        print(f"\ntable5 warm-cache: serial {serial_s:.2f} s, "
              f"jobs=4 {parallel_s:.2f} s "
              f"({serial_s / parallel_s:.2f}x, {os.cpu_count()} cores)")
        if (os.cpu_count() or 1) >= 4:
            assert serial_s >= 2.0 * parallel_s, (serial_s, parallel_s)
    finally:
        # The lru layer now holds mmaps into tmp_path; drop them so later
        # benchmarks rebuild from their own cache root.
        clear_proxy_caches()


def test_warm_cache_skips_generation(tmp_path, monkeypatch):
    """A warm rerun performs zero dataset generation (tracer-verified)."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    subset = {"algorithms": ("pagerank", "bfs"), "frameworks": ("galois",)}
    clear_proxy_caches()
    try:
        cold = Tracer()
        cold_data = table5(sweep=Sweep("table5", tracer=cold), **subset)
        assert cold.spans_named("dataset-cache-miss")
        assert cold.spans_named("dataset-cache-store")

        clear_proxy_caches()                 # force the disk-cache path
        warm = Tracer()
        warm_data = table5(sweep=Sweep("table5", tracer=warm), **subset)
        assert warm_data == cold_data
        assert warm.spans_named("dataset-cache-hit")
        assert not warm.spans_named("dataset-cache-miss")
        assert not warm.spans_named("dataset-cache-store")
    finally:
        clear_proxy_caches()


def _table5_parallel():
    """Zero-arg producer: table5 through the pool on every core."""
    return table5(sweep=Sweep("table5", jobs=0))


register_benchmark("parallel_sweep", _table5_parallel, artifact="table5")
