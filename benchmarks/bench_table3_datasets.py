"""Table 3: real-world and largest synthetic datasets (proxy inventory)."""

from repro.harness import report, table3
from benchmarks.conftest import register_benchmark


def test_table3(regenerate):
    rows = regenerate(table3)
    print()
    print(report.render_rows(
        rows,
        columns=["dataset", "paper_vertices", "paper_edges", "proxy_size",
                 "proxy_edges"],
        title="Table 3: datasets (paper sizes and generated proxies)",
    ))

    by_name = {row["dataset"]: row for row in rows}
    # All eight Table 3 datasets present.
    for name in ("facebook", "wikipedia", "livejournal", "netflix",
                 "twitter", "yahoo_music", "synthetic_graph500",
                 "synthetic_collaborative"):
        assert name in by_name
        assert by_name[name]["proxy_edges"] > 0
    # Paper edge counts quoted exactly.
    assert by_name["twitter"]["paper_edges"] == 1_468_365_182
    assert by_name["netflix"]["paper_edges"] == 99_072_112
    # Twitter proxy is the largest graph proxy, as in the paper.
    graphs = [row for row in rows if "users" not in row["proxy_size"]]
    assert max(graphs, key=lambda r: r["proxy_edges"])["dataset"] in (
        "twitter",
    )


register_benchmark("table3", table3, artifact="table3")
