"""Figure 3: single-node runtimes on real-world and synthetic graphs."""

from repro.harness import figure3, report
from benchmarks.conftest import register_benchmark


def test_figure3(regenerate):
    data = regenerate(figure3)
    print()
    print(report.render_runtime_panels(
        data, "Figure 3: single-node runtimes (seconds, proxies)"
    ))

    for algorithm, panel in data.items():
        for dataset_name, cell in panel.items():
            native = cell["native"]
            assert isinstance(native, float), (algorithm, dataset_name)
            # Native is fastest wherever a framework completed.
            for framework, value in cell.items():
                if isinstance(value, float):
                    assert value >= native * 0.99, \
                        (algorithm, dataset_name, framework)
            # Giraph, when it completes, is orders of magnitude slower.
            if isinstance(cell["giraph"], float):
                assert cell["giraph"] > 10 * native

    # "The trends on the synthetic dataset are in line with real-world
    # data": the framework ordering on the synthetic graph matches the
    # majority ordering on the real proxies for PageRank.
    def ranking(cell):
        completed = {f: v for f, v in cell.items() if isinstance(v, float)}
        return sorted(completed, key=completed.get)

    pagerank = data["pagerank"]
    synthetic_rank = ranking(pagerank["synthetic"])
    real_rank = ranking(pagerank["livejournal"])
    assert synthetic_rank[0] == real_rank[0] == "native"
    assert synthetic_rank[-1] == real_rank[-1] == "giraph"


register_benchmark("figure3", figure3, artifact="figure3")
