"""Serving layer: sustained mixed load, and warm-vs-cold amortization.

Two claims ride on this file:

* the daemon *sustains* load — a seeded mixed request stream (gate
  experiments, perf analyses, durable sweeps) completes with zero
  failed requests, and its client-observed p50/p99 latency and
  throughput land in ``BENCH_serve.json`` as the advisory ``serve``
  section of a perf baseline;
* hot caches *pay* — a warm gate request against the server beats the
  same cell as a cold single-shot CLI invocation by >=2x, and the win
  is attributable: the server's ``dataset-cache-hit`` tracer instants
  (``pinned=True``) prove every warm cell was served from the pinned
  dataset cache rather than regenerated.

``BENCH_serve.json`` also carries a normal deterministic ``cells``
section, so ``repro perf baseline check --baseline BENCH_serve.json``
gates simulated-runtime regressions (exit 7) while passing the serve
load report through verbatim.

The producer registered as ``serve_loadgen`` feeds ``repro perf
baseline --benchmarks`` and regenerates ``BENCH_serve.json``.
"""

import asyncio
import os
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.errors import ReproError
from repro.perf.baselines import cell_key, record
from repro.serve import ExperimentService, ServeClient
from repro.serve.loadgen import run_loadgen
from benchmarks.conftest import register_benchmark

ARTIFACT = "BENCH_serve.json"

#: The recorded load run. 1000 requests is the acceptance bar: the
#: daemon must sustain the full seeded mixed stream with zero failures.
LOADGEN = {"requests": 1000, "concurrency": 8, "seed": 0}

#: Gate cells timed warm (served) vs cold (fresh CLI process). One
#: cell per warmed node count plus a second framework for spread.
WARM_COLD_CELLS = (
    ("pagerank", "native", 1),
    ("bfs", "combblas", 4),
    ("wcc", "graphlab", 1),
)

#: Required warm-over-cold latency factor on every compared cell.
MIN_WARM_SPEEDUP = 2.0

_REPO_ROOT = Path(__file__).resolve().parent.parent


class ServerUnderTest:
    """An :class:`ExperimentService` on an ephemeral port, in a thread.

    The service's own ``run()`` loop executes unmodified (warm-up,
    admission, drain); only the SIGTERM delivery differs — the test
    posts ``_initiate_drain`` onto the service loop, which is exactly
    what the signal handler does in a real deployment.
    """

    def __init__(self, state_dir, jobs=2):
        self.service = ExperimentService(port=0, jobs=jobs,
                                         state_dir=state_dir)
        self.ready = threading.Event()
        self.exit_code = None
        self.service.on_ready = lambda _host, _port: self.ready.set()
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self):
        self.exit_code = asyncio.run(self.service.run())

    def __enter__(self):
        self.thread.start()
        if not self.ready.wait(timeout=120):
            raise ReproError("serve benchmark: server did not come up")
        return self

    def __exit__(self, *exc):
        self.drain()

    def drain(self):
        if self.thread.is_alive():
            self.service._loop.call_soon_threadsafe(
                self.service._initiate_drain, int(signal.SIGTERM))
            self.thread.join(timeout=120)
        if self.thread.is_alive():
            raise ReproError("serve benchmark: server did not drain")


async def _warm_latencies(host, port) -> dict:
    """Best-of-3 served latency per warm/cold cell (seconds)."""
    client = ServeClient(host, port, timeout_s=120)
    out = {}
    try:
        for algorithm, framework, nodes in WARM_COLD_CELLS:
            body = {"gate": {"algorithm": algorithm,
                             "framework": framework, "nodes": nodes},
                    "wait": True}
            best = None
            for _ in range(3):
                started = time.perf_counter()
                status, payload = await client.request(
                    "POST", "/experiments", body)
                elapsed = time.perf_counter() - started
                if status != 200 or payload.get("state") != "done":
                    raise ReproError(
                        f"warm gate request failed: {status} {payload}")
                best = elapsed if best is None else min(best, elapsed)
            out[cell_key(algorithm, framework, nodes)] = best
    finally:
        await client.close()
    return out


def _cold_latencies(scratch) -> dict:
    """The same cells as fresh single-shot CLI processes (seconds).

    ``repro perf baseline record`` restricted to one cell is the cold
    path being amortized: interpreter start, imports, dataset
    generation, one measured run.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_REPO_ROOT / "src") + os.pathsep \
        + env.get("PYTHONPATH", "")
    out = {}
    for algorithm, framework, nodes in WARM_COLD_CELLS:
        target = Path(scratch) / f"cold-{algorithm}-{framework}-{nodes}.json"
        command = [sys.executable, "-m", "repro.cli", "perf", "baseline",
                   "record", "--out", str(target),
                   "--algorithms", algorithm, "--frameworks", framework,
                   "--nodes", str(nodes)]
        started = time.perf_counter()
        subprocess.run(command, check=True, env=env, cwd=_REPO_ROOT,
                       stdout=subprocess.DEVNULL)
        out[cell_key(algorithm, framework, nodes)] = \
            time.perf_counter() - started
    return out


async def _server_stats(host, port) -> dict:
    client = ServeClient(host, port, timeout_s=30)
    try:
        _status, stats = await client.request("GET", "/stats")
        return stats
    finally:
        await client.close()


def measure_serve(requests=None, concurrency=None, seed=None) -> dict:
    """Drive the load + warm/cold run; returns the ``serve`` section."""
    requests = LOADGEN["requests"] if requests is None else requests
    concurrency = LOADGEN["concurrency"] if concurrency is None \
        else concurrency
    seed = LOADGEN["seed"] if seed is None else seed

    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
        with ServerUnderTest(Path(tmp) / "state") as server:
            host, port = server.service.host, server.service.port
            warm = asyncio.run(_warm_latencies(host, port))
            report = run_loadgen(host, port, requests=requests,
                                 concurrency=concurrency, seed=seed)
            stats = asyncio.run(_server_stats(host, port))
        if server.exit_code != 0:
            raise ReproError(f"serve benchmark: drain exited "
                             f"{server.exit_code}, expected 0")
        cold = _cold_latencies(tmp)

    if report["failed"]:
        raise ReproError(f"serve loadgen: {report['failed']} of "
                         f"{report['requests']} requests failed: "
                         f"{report.get('failure_codes')}")
    hits = stats.get("cache", {}).get("hits", {})
    if not hits.get("pinned"):
        raise ReproError("serve benchmark: no pinned dataset-cache-hit "
                         "instants — the warm path is unproven")

    cells = {}
    for cell, warm_s in warm.items():
        cold_s = cold[cell]
        cells[cell] = {"warm_s": warm_s, "cold_s": cold_s,
                       "speedup": cold_s / warm_s}
    min_speedup = min(entry["speedup"] for entry in cells.values())
    if min_speedup < MIN_WARM_SPEEDUP:
        worst = min(cells, key=lambda cell: cells[cell]["speedup"])
        raise ReproError(
            f"serve benchmark: warm/cold speedup {min_speedup:.2f}x on "
            f"{worst} is below the required {MIN_WARM_SPEEDUP:.1f}x")

    return {
        "advisory": True,
        "loadgen": {key: report[key]
                    for key in ("requests", "completed", "failed",
                                "concurrency", "seed", "duration_s",
                                "throughput_rps", "latency_s", "by_kind")
                    if key in report},
        "warm_cold": {
            "cells": cells,
            "min_speedup": min_speedup,
            "min_required": MIN_WARM_SPEEDUP,
            "cache_hits": dict(hits),
        },
    }


def produce(path=ARTIFACT, **load_kwargs) -> dict:
    """Regenerate ``BENCH_serve.json``: gate cells + serve section."""
    serve = measure_serve(**load_kwargs)
    return record(path=path, serve=serve)


register_benchmark("serve_loadgen", produce, artifact=ARTIFACT)


def test_serve_sustains_load_and_amortizes(tmp_path):
    """A reduced run of the recorded benchmark, end to end.

    Same machinery as the producer — seeded mixed load with zero
    failures, warm/cold >=2x with pinned-cache-hit proof — at a size a
    test suite can afford. The 1000-request acceptance run is the
    registered producer itself.
    """
    payload = produce(path=tmp_path / ARTIFACT, requests=60)
    serve = payload["serve"]
    assert serve["loadgen"]["failed"] == 0
    assert serve["loadgen"]["completed"] == serve["loadgen"]["requests"]
    assert serve["warm_cold"]["min_speedup"] >= MIN_WARM_SPEEDUP
    assert serve["warm_cold"]["cache_hits"]["pinned"] > 0
    assert payload["cells"]                  # the deterministic gate rides along
