"""Extension study: asynchronous vs bulk-synchronous vertex scheduling.

The paper's Section 3 notes GraphLab's asynchronous execution and cites
[24]'s BSP-vs-autonomous comparison. This bench measures the autonomous
advantage directly: vertex updates needed to converge delta-PageRank.
"""

from repro.datagen import rmat_graph
from repro.frameworks.vertex.async_engine import (
    pagerank_delta_async,
    pagerank_sync_to_tolerance,
)
from benchmarks.conftest import register_benchmark


def compare(scale=13, tolerance=1e-6):
    graph = rmat_graph(scale, edge_factor=16, seed=41)
    _, async_stats = pagerank_delta_async(graph, tolerance=tolerance)
    _, sync_iterations, sync_updates = pagerank_sync_to_tolerance(
        graph, tolerance=tolerance
    )
    return {
        "vertices": graph.num_vertices,
        "async_updates": async_stats.updates,
        "sync_updates": sync_updates,
        "sync_iterations": sync_iterations,
        "savings": sync_updates / max(async_stats.updates, 1),
    }


def test_async_scheduling_advantage(regenerate):
    result = regenerate(compare)
    print()
    print(f"Delta-PageRank to 1e-6 on {result['vertices']:,} vertices:")
    print(f"  synchronous : {result['sync_updates']:,} vertex updates "
          f"({result['sync_iterations']} sweeps)")
    print(f"  asynchronous: {result['async_updates']:,} vertex updates")
    print(f"  -> {result['savings']:.1f}x fewer updates with priority "
          "scheduling")

    assert result["savings"] > 1.5
    assert result["async_updates"] > result["vertices"] * 0.5


register_benchmark("async_scheduling", compare, artifact="extension")
