"""Table 6: multi-node slowdowns vs native (geomean over scales)."""

import numpy as np

from repro.harness import report, table6
from benchmarks.conftest import register_benchmark


def test_table6(regenerate_resilient):
    data = regenerate_resilient(table6)
    print()
    print(report.render_slowdown_table(
        data, "Table 6: multi-node slowdowns vs native (geomean)"
    ))

    def slowdown(algorithm, framework):
        return data[algorithm][framework]["slowdown"]

    # Giraph is by far the slowest framework on every workload.
    for algorithm, cells in data.items():
        others = [slowdown(algorithm, f) for f in
                  ("combblas", "graphlab", "socialite")
                  if np.isfinite(slowdown(algorithm, f))]
        assert slowdown(algorithm, "giraph") > 3 * max(others), algorithm
        assert slowdown(algorithm, "giraph") > 25, algorithm

    # CombBLAS is competitive for PageRank (2.5x in the paper) ...
    assert slowdown("pagerank", "combblas") < 5
    # ... but the worst non-Giraph framework for triangle counting.
    tc = {f: slowdown("triangle_counting", f)
          for f in ("combblas", "graphlab", "socialite")}
    assert tc["combblas"] == max(tc.values())

    # SociaLite is best-in-class for multi-node triangle counting
    # ("within 2x of native" in the paper).
    assert tc["socialite"] <= min(tc.values()) * 1.25
    assert tc["socialite"] < 4.0


register_benchmark("table6", table6, artifact="table6")
