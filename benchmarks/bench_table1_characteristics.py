"""Table 1: diversity in the characteristics of the chosen algorithms."""

from repro.harness import report, table1
from benchmarks.conftest import register_benchmark


def test_table1(regenerate):
    rows = regenerate(table1)
    print()
    print(report.render_rows(
        rows,
        columns=["algorithm", "graph_type", "vertex_property",
                 "access_pattern", "message_bytes_per_edge",
                 "vertex_active"],
        title="Table 1: algorithm characteristics",
    ))

    by_name = {row["algorithm"]: row for row in rows}
    # PageRank: 8-byte double messages, all vertices active.
    assert by_name["PageRank"]["message_bytes_per_edge"] == 8
    assert by_name["PageRank"]["vertex_active"] == "All iterations"
    # BFS: 4-byte int messages, only the frontier active.
    assert by_name["Breadth First Search"]["message_bytes_per_edge"] == 4
    assert by_name["Breadth First Search"]["vertex_active"] == \
        "Some iterations"
    # CF: 8K-byte vector messages at the paper's K.
    assert by_name["Collaborative Filtering"]["message_bytes_per_edge"] == 8192
    # Triangle counting: variable message sizes, non-iterative.
    low, high = by_name["Triangle Counting"]["message_bytes_per_edge"]
    assert low == 0 and high > 100
    assert by_name["Triangle Counting"]["vertex_active"] == "Non-iterative"


register_benchmark("table1", table1, artifact="table1")
