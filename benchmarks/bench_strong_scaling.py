"""Strong scaling (extension study): fixed graph, 1-16 nodes."""

from repro.harness.strong_scaling import parallel_efficiency, strong_scaling
from benchmarks.conftest import register_benchmark


def test_strong_scaling_pagerank(regenerate):
    data = regenerate(
        strong_scaling,
        "pagerank",
        ("native", "combblas", "graphlab", "giraph"),
        (1, 2, 4, 8, 16),
    )
    print()
    print("Strong scaling, PageRank on a fixed RMAT graph (seconds):")
    node_counts = sorted(next(iter(data.values())).keys())
    header = "framework".ljust(12) + "".join(f"{n}n".rjust(10)
                                             for n in node_counts)
    print(" " + header)
    for framework, curve in data.items():
        row = " " + framework.ljust(12)
        for nodes in node_counts:
            value = curve[nodes]
            row += (value[:9].rjust(10) if isinstance(value, str)
                    else f"{value:.3g}".rjust(10))
        print(row)
        eff = parallel_efficiency(curve)
        if eff:
            print(f"   efficiency @max nodes: {eff[max(eff)]:.2f}")

    native_eff = parallel_efficiency(data["native"])
    giraph_eff = parallel_efficiency(data["giraph"])
    # Native strong-scales usefully to 16 nodes ...
    assert native_eff[16] > 0.3
    # ... Giraph cannot: fixed superstep overheads dominate.
    assert giraph_eff[16] < native_eff[16]
    # Adding nodes never helps Giraph enough to beat its 1-node run by
    # the ideal factor.
    assert data["giraph"][16] > data["giraph"][1] / 16


def _protocol():
    return strong_scaling("pagerank",
                          ("native", "combblas", "graphlab",
                           "giraph"), (1, 2, 4, 8, 16))


register_benchmark("strong_scaling", _protocol, artifact="extension")
