"""Section 7: placing GPS and GraphX on the paper's spectrum.

The paper anchors both systems against its own measurements: "GPS with
LALP achieves a 12x performance improvement compared to Giraph" and
"GraphX is about 7x slower than GraphLab for pagerank".
"""

from repro.harness import run_experiment
from repro.harness.datasets import weak_scaling_dataset
from benchmarks.conftest import register_benchmark


def related_work_pagerank(nodes=4):
    data, factor = weak_scaling_dataset("pagerank", nodes)
    runtimes = {}
    for framework in ("native", "graphlab", "giraph", "gps", "graphx"):
        run = run_experiment("pagerank", framework, data, nodes=nodes,
                             scale_factor=factor, iterations=3)
        runtimes[framework] = run.runtime()
    return runtimes


def test_related_work_anchors(regenerate):
    runtimes = regenerate(related_work_pagerank)
    native = runtimes["native"]
    print()
    print("PageRank at 4 nodes, related-work systems included:")
    for framework, runtime in sorted(runtimes.items(), key=lambda kv: kv[1]):
        print(f"  {framework:<10} {runtime:8.3f} s  "
              f"({runtime / native:6.1f}x native)")

    gps_vs_giraph = runtimes["giraph"] / runtimes["gps"]
    graphx_vs_graphlab = runtimes["graphx"] / runtimes["graphlab"]
    print(f"\n  GPS improvement over Giraph : {gps_vs_giraph:.1f}x "
          "(paper: ~12x)")
    print(f"  GraphX slowdown vs GraphLab : {graphx_vs_graphlab:.1f}x "
          "(paper: ~7x)")

    # The paper's anchors, within a 2x band.
    assert 6 < gps_vs_giraph < 24
    assert 3.5 < graphx_vs_graphlab < 14
    # "comparable to that of the frameworks studied (but much slower
    # than native code)".
    assert runtimes["gps"] > 3 * native
    assert runtimes["gps"] < runtimes["giraph"]
    # "at the slower end of the spectrum of frameworks considered".
    assert runtimes["graphx"] > runtimes["graphlab"]
    assert runtimes["graphx"] < runtimes["giraph"]


register_benchmark("related_work", related_work_pagerank, artifact="extension")
