"""Ablation: partitioning schemes (Section 6.1.1's load-balance claim).

"2D partitioning as in CombBLAS or advanced 1D partitioning such as
GraphLab gives better load balancing."
"""

import numpy as np

from repro.datagen import rmat_graph
from repro.graph import (
    partition_edges_1d,
    partition_vertex_cut,
    partition_vertices_1d,
)
from benchmarks.conftest import register_benchmark


def measure_balance(nodes=8, scale=13):
    graph = rmat_graph(scale=scale, edge_factor=16, seed=7)
    src_owner_naive = partition_vertices_1d(
        graph.num_vertices, nodes).owner_of_many(graph.sources())
    naive = np.bincount(src_owner_naive, minlength=nodes)

    part = partition_edges_1d(graph, nodes)
    balanced = np.bincount(part.owner_of_many(graph.sources()),
                           minlength=nodes)

    cut = partition_vertex_cut(graph, nodes)
    vertex_cut = cut.edges_per_part()

    def imbalance(counts):
        return float(counts.max() / max(counts.mean(), 1.0))

    return {
        "1d-vertex": imbalance(naive),
        "1d-edge-balanced": imbalance(balanced),
        "vertex-cut": imbalance(vertex_cut),
        "replication_factor": cut.replication_factor(),
    }


def test_partitioning_balance(regenerate):
    result = regenerate(measure_balance)
    print()
    print("Edge-count imbalance (max node / mean node) on RMAT:")
    for scheme in ("1d-vertex", "1d-edge-balanced", "vertex-cut"):
        print(f"  {scheme:<18} {result[scheme]:.3f}")
    print(f"  vertex-cut replication factor: "
          f"{result['replication_factor']:.2f}")

    # Edge-balanced and vertex-cut layouts beat naive vertex splitting.
    assert result["1d-edge-balanced"] < result["1d-vertex"]
    assert result["vertex-cut"] < result["1d-vertex"]
    # Replication is the vertex cut's price.
    assert result["replication_factor"] >= 1.0


register_benchmark("ablation_partitioning", measure_balance, artifact="ablation")
