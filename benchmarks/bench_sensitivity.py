"""Extension study: hardware sensitivity of the framework bottlenecks.

Sweeps simulated network bandwidth for GraphLab's multi-node PageRank
(the paper's canonical network-bound case) and memory bandwidth for
native single-node PageRank (the canonical memory-bound case).
"""

import numpy as np

from repro.harness.datasets import weak_scaling_dataset
from repro.harness.sensitivity import diminishing_returns, sweep
from benchmarks.conftest import register_benchmark


def run_sweeps():
    data, factor = weak_scaling_dataset("pagerank", 4)
    network = sweep("pagerank", "graphlab", data, nodes=4, knob="link",
                    scale_factor=factor, iterations=3)
    data1, factor1 = weak_scaling_dataset("pagerank", 1)
    memory = sweep("pagerank", "native", data1, nodes=1, knob="memory",
                   scale_factor=factor1, iterations=3)
    return {"network": network, "memory": memory}


def test_hardware_sensitivity(regenerate):
    result = regenerate(run_sweeps)
    print()
    print("GraphLab PageRank @4 nodes vs network bandwidth scale:")
    for row in result["network"]:
        print(f"  {row['scale']:>5.2f}x link: {row['runtime_s']:.4f}s  "
              f"network {100 * row['network_fraction']:.0f}%  "
              f"({row['bound_by']}-bound)")
    print("Native PageRank @1 node vs memory bandwidth scale:")
    for row in result["memory"]:
        print(f"  {row['scale']:>5.2f}x DRAM: {row['runtime_s']:.4f}s")

    network = result["network"]
    # GraphLab's network share falls monotonically as the link speeds up.
    shares = [row["network_fraction"] for row in network]
    assert shares[0] > shares[-1]
    # Faster links help it substantially (it is network-limited stock) ...
    assert network[0]["runtime_s"] > 1.5 * network[-1]["runtime_s"]
    # ... but with diminishing returns once compute dominates.
    assert diminishing_returns(network) <= network[-1]["scale"]

    memory = result["memory"]
    # Memory-bound native PageRank scales ~linearly with DRAM bandwidth.
    speedup = memory[2]["runtime_s"] / memory[-1]["runtime_s"]  # 1x -> 8x
    assert speedup > 4.0


register_benchmark("sensitivity", run_sweeps, artifact="extension")
