"""Section 6.2: the framework-improvement roadmap, applied and verified.

The paper predicts how far each recommended change closes the gap to
native; this bench applies the changes and checks every prediction.
"""

from repro.frameworks.roadmap import roadmap_outcomes
from benchmarks.conftest import register_benchmark


def test_roadmap_predictions_hold(regenerate):
    outcomes = regenerate(roadmap_outcomes)
    print()
    print("Section 6.2 roadmap, applied (slowdown vs native at 4 nodes):")
    header = (f"  {'framework':<12}{'workload':<12}{'stock':>8}"
              f"{'roadmap':>9}{'paper bound':>13}")
    print(header)
    for framework, row in outcomes.items():
        print(f"  {framework:<12}{row['algorithm']:<12}"
              f"{row['stock']:>7.1f}x{row['roadmap']:>8.1f}x"
              f"{row['predicted']:>11.0f}x")

    for framework, row in outcomes.items():
        # Every applied recommendation improves on stock ...
        assert row["roadmap"] < row["stock"] * 1.05, framework
        # ... and lands within the paper's predicted bound.
        assert row["roadmap"] <= row["predicted"], framework

    # Giraph's is the most dramatic fix (10x network + 4x workers).
    giraph = outcomes["giraph"]
    assert giraph["stock"] / giraph["roadmap"] > 5


register_benchmark("roadmap", roadmap_outcomes, artifact="roadmap")
