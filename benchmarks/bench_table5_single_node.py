"""Table 5: single-node slowdowns vs native (geomean over datasets)."""

import numpy as np

from repro.harness import report, table5
from benchmarks.conftest import register_benchmark


def test_table5(regenerate_resilient):
    data = regenerate_resilient(table5)
    print()
    print(report.render_slowdown_table(
        data, "Table 5: single-node slowdowns vs native (geomean)"
    ))

    def slowdown(algorithm, framework):
        return data[algorithm][framework]["slowdown"]

    # Native is the reference: every completed framework is >= ~1x.
    for algorithm, cells in data.items():
        for framework, cell in cells.items():
            if np.isfinite(cell["slowdown"]):
                assert cell["slowdown"] >= 0.95, (algorithm, framework)

    # Galois is closest to native on every workload (1.1-2.5x in paper).
    for algorithm in data:
        others = [slowdown(algorithm, f) for f in
                  ("combblas", "graphlab", "socialite", "giraph")
                  if np.isfinite(slowdown(algorithm, f))]
        assert slowdown(algorithm, "galois") <= min(others) * 1.5, algorithm
        assert slowdown(algorithm, "galois") < 3.0

    # Giraph is 1-3 orders of magnitude off on every workload.
    for algorithm in data:
        assert slowdown(algorithm, "giraph") > 20, algorithm

    # CombBLAS runs out of memory on the real-world triangle-counting
    # inputs ("while computing the A^2 matrix product").
    tc_statuses = data["triangle_counting"]["combblas"]["statuses"]
    assert tc_statuses.count("out-of-memory") >= 2

    # CombBLAS is competitive on PageRank (1.9x in the paper).
    assert slowdown("pagerank", "combblas") < 3.5


register_benchmark("table5", table5, artifact="table5")
