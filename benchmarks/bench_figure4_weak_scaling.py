"""Figure 4: weak scaling on synthetic graphs, 1-64 nodes."""

from repro.harness import figure4, report
from benchmarks.conftest import register_benchmark


def test_figure4(regenerate):
    data = regenerate(figure4)
    print()
    print(report.render_scaling_curves(
        data, "Figure 4: weak scaling (constant data per node)"
    ))

    # Native stays within a modest envelope across 1-64 nodes wherever
    # it is memory bound, and grows gently when network bound — the
    # paper's "horizontal lines represent perfect scaling".
    for algorithm, curves in data.items():
        native = curves["native"]
        values = [v for v in native.values() if isinstance(v, float)]
        assert len(values) == len(native)
        assert max(values) < 30 * min(values), algorithm

    # Galois never appears (single-node framework).
    for curves in data.values():
        assert "galois" not in curves

    # Giraph is the slowest framework at every completed scale point.
    for algorithm, curves in data.items():
        for nodes, value in curves["giraph"].items():
            if not isinstance(value, float):
                continue
            for other in ("native", "combblas", "graphlab", "socialite"):
                other_value = curves[other].get(nodes)
                if isinstance(other_value, float):
                    assert value > other_value, (algorithm, nodes, other)

    # CombBLAS only runs on grids its square-process constraint allows —
    # it must still produce results across the sweep (the ProcessGrid
    # picks the largest square), so no missing points.
    for algorithm, curves in data.items():
        assert len(curves["combblas"]) == len(curves["native"])


register_benchmark("figure4", figure4, artifact="figure4")
