"""Ablation: message compression schemes (Section 6.1.1).

Compares raw 8-byte ids, delta-varint, bit-vector, and the adaptive
encoder on BFS-frontier-like id sets of varying density — the data that
motivates the adaptive choice of [28].
"""

import numpy as np

from repro.frameworks.native import encoded_size
from repro.frameworks.native.compression import (
    _varint_size,
    bitvector_encode,
)
from benchmarks.conftest import register_benchmark


def sweep_densities(universe=200_000, densities=(0.001, 0.01, 0.1, 0.5)):
    rng = np.random.default_rng(13)
    rows = []
    for density in densities:
        ids = np.unique(rng.integers(0, universe, int(universe * density)))
        raw = 8 * ids.size
        varint = _varint_size(ids)
        bitvec = len(bitvector_encode(ids, universe))
        adaptive = encoded_size(ids, universe)
        rows.append({
            "density": density,
            "raw": raw,
            "varint": varint,
            "bitvector": bitvec,
            "adaptive": adaptive,
        })
    return rows


def test_compression_schemes(regenerate):
    rows = regenerate(sweep_densities)
    print()
    print("Bytes to ship one id set (universe 200k):")
    print(f"  {'density':>8} {'raw':>10} {'varint':>10} "
          f"{'bitvector':>10} {'adaptive':>10}")
    for row in rows:
        print(f"  {row['density']:>8} {row['raw']:>10} {row['varint']:>10} "
              f"{row['bitvector']:>10} {row['adaptive']:>10}")

    for row in rows:
        # Adaptive always within one tag byte of the best scheme.
        assert row["adaptive"] <= min(row["varint"], row["bitvector"]) + 1
        # And always beats raw ids for these densities (paper: 2.2-3.2x
        # end-to-end).
        assert row["adaptive"] < row["raw"]

    # Sparse sets favor varint, dense sets favor the bit-vector.
    sparse, dense = rows[0], rows[-1]
    assert sparse["varint"] < sparse["bitvector"]
    assert dense["bitvector"] < dense["varint"]


register_benchmark("ablation_compression", sweep_densities, artifact="ablation")
