"""Table 4: efficiency achieved by the native implementations."""

from repro.harness import report, table4
from benchmarks.conftest import register_benchmark


def test_table4(regenerate):
    data = regenerate(table4)
    print()
    print(report.render_table4(data))

    # Paper shape: every algorithm is memory-bandwidth bound on one node
    # with zero network share.
    for algorithm, per_nodes in data.items():
        assert per_nodes[1]["bound_by"] == "memory", algorithm
        assert per_nodes[1]["network_fraction"] == 0.0, algorithm

    # At 4 nodes the network becomes a first-order cost for PageRank and
    # triangle counting (the paper's network-bound pair), and stays
    # minor for BFS and CF (the paper's memory-bound pair).
    for network_heavy in ("pagerank", "triangle_counting"):
        assert data[network_heavy][4]["network_fraction"] > 0.2, network_heavy
    for memory_bound in ("bfs", "collaborative_filtering"):
        assert data[memory_bound][4]["bound_by"] == "memory"
        assert data[memory_bound][4]["network_fraction"] < \
            min(data["pagerank"][4]["network_fraction"],
                data["triangle_counting"][4]["network_fraction"])

    # "Efficiencies are generally within 2-2.5x off the ideal results."
    for algorithm, per_nodes in data.items():
        for nodes, cell in per_nodes.items():
            assert cell["efficiency"] > 0.15, (algorithm, nodes)
            assert cell["efficiency"] <= 1.0, (algorithm, nodes)

    # PageRank is the most efficient single-node workload (92% in the
    # paper); CF and TC sit lower, in the paper's 45-70% band.
    assert data["pagerank"][1]["efficiency"] > 0.75
    assert data["triangle_counting"][1]["efficiency"] < \
        data["pagerank"][1]["efficiency"]


register_benchmark("table4", table4, artifact="table4")
