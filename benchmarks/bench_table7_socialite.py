"""Table 7: SociaLite speedups from the network optimizations (4 nodes)."""

from repro.harness import report, table7
from benchmarks.conftest import register_benchmark


def test_table7(regenerate):
    data = regenerate(table7)
    print()
    print(report.render_table7(data))

    # Paper: PageRank 2.4x, triangle counting 1.6x from switching the
    # published single-socket stack to multiple sockets per worker pair.
    assert 1.6 <= data["pagerank"]["speedup"] <= 3.2
    assert 1.2 <= data["triangle_counting"]["speedup"] <= 2.6
    # PageRank, being more network-bound, gains more than TC.
    assert data["pagerank"]["speedup"] > data["triangle_counting"]["speedup"]


register_benchmark("table7", table7, artifact="table7")
