"""Out-of-core pipeline: streamed ingest throughput and the OOM -> ok demo."""

from repro.perf import measure_outofcore

from benchmarks.conftest import register_benchmark


def outofcore(subset=None):
    return measure_outofcore(subset or {"scale": 13, "edge_factor": 16,
                                        "seed": 1, "chunk_edges": 1 << 17})


def test_outofcore_streamed_ingest(regenerate):
    report = regenerate(outofcore)
    print()
    print(f"Out-of-core ingest, scale {report['scale']} "
          f"({report['edges']:,} directed edges, "
          f"{report['partitions']} partitions):")
    print(f"  in-memory build : {report['in_memory_s']:.3f} s "
          f"({report['in_memory_eps']:.3e} edges/s)")
    print(f"  streamed build  : {report['streamed_s']:.3f} s "
          f"({report['streamed_eps']:.3e} edges/s)")
    print(f"  ratio           : {report['ratio']:.2f}x")

    # The two storage paths must describe the same graph, partition by
    # partition — throughput means nothing against a different graph.
    assert report["identical"]
    # The tentpole floor: streamed ingest keeps at least half the
    # in-memory throughput (measured headroom is ~1x).
    assert report["ratio"] >= 0.5


register_benchmark("outofcore", outofcore, artifact="outofcore")
