"""Figure 5: large real-world graphs (Twitter / Yahoo Music) multi-node."""

from repro.harness import figure5, report
from benchmarks.conftest import register_benchmark


def test_figure5(regenerate):
    data = regenerate(figure5)
    print()
    print(report.render_runtime_panels(
        data, "Figure 5: large real-world proxies on multiple nodes"
    ))

    # Configuration matches the paper: Twitter on 4 nodes except triangle
    # counting on 16; Yahoo Music on 4.
    assert data["pagerank"]["nodes"] == 4
    assert data["triangle_counting"]["nodes"] == 16
    assert data["triangle_counting"]["dataset"] == "twitter"
    assert data["collaborative_filtering"]["dataset"] == "yahoo_music"

    # CombBLAS runs out of memory on Twitter triangle counting ("this
    # data point is not plotted").
    tc = data["triangle_counting"]["runtimes"]
    assert tc["combblas"] == "out-of-memory"

    # Native completes everywhere and is fastest.
    for algorithm, panel in data.items():
        runtimes = panel["runtimes"]
        assert isinstance(runtimes["native"], float)
        for framework, value in runtimes.items():
            if isinstance(value, float):
                assert value >= runtimes["native"] * 0.99, \
                    (algorithm, framework)

    # SociaLite beats GraphLab and Giraph on Twitter triangle counting
    # (it "performs best among our frameworks" there).
    completed = {f: v for f, v in tc.items()
                 if isinstance(v, float) and f != "native"}
    assert min(completed, key=completed.get) == "socialite"


register_benchmark("figure5", figure5, artifact="figure5")
